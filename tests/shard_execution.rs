//! Differential tests for sharded enumeration: the in-process shard driver
//! (`plan_shards` → `run_shard` per shard → `merge_shard_families`, the
//! same steps the multi-process `mqce --shards` coordinator runs over
//! worker processes) must produce a family byte-identical to the
//! single-process [`Session`](mqce::Session) pipeline across the γ×θ grid
//! at 1, 2 and 4 shards — and a shard whose anchor panics must surface as a
//! contained best-effort result, never as a hang or an escaped panic.

use mqce::core::shard::{merge_shard_families, plan_shards, run_shard, run_sharded};
use mqce::core::{MqceConfig, PreparedGraph, Session};
use mqce::graph::generators::{
    community_graph, planted_quasi_cliques, CommunityGraphParams, PlantedGroup,
};
use mqce::graph::Graph;

fn community(n: usize, communities: usize, seed: u64) -> Graph {
    community_graph(
        CommunityGraphParams {
            n,
            num_communities: communities,
            p_intra: 0.9,
            inter_degree: 1.5,
        },
        seed,
    )
}

#[test]
fn sharded_family_matches_single_process_across_the_grid() {
    let graphs = [
        ("community-120", community(120, 8, 42)),
        ("community-200", community(200, 10, 7)),
        (
            "planted",
            planted_quasi_cliques(
                150,
                0.02,
                &[
                    PlantedGroup {
                        size: 14,
                        density: 0.95,
                    },
                    PlantedGroup {
                        size: 10,
                        density: 1.0,
                    },
                ],
                99,
            ),
        ),
    ];
    for (name, g) in &graphs {
        let prepared = PreparedGraph::new(g.clone());
        for gamma in [0.8, 0.9] {
            for theta in [4, 6] {
                let config = MqceConfig::new(gamma, theta).unwrap();
                let single = Session::open(g.clone()).config(config).run();
                for num_shards in [1, 2, 4] {
                    let outcome = run_sharded(&prepared, &config, num_shards, 1)
                        .expect("DCFastQC is shardable");
                    assert_eq!(
                        outcome.mqcs, single.mqcs,
                        "{name}: {num_shards}-shard family differs from \
                         single-process at gamma={gamma} theta={theta}"
                    );
                    assert!(
                        !outcome.best_effort,
                        "{name}: unfaulted sharded run reported best-effort"
                    );
                    assert_eq!(outcome.shard_millis.len(), outcome.shards);
                }
            }
        }
    }
}

#[test]
fn sharded_run_is_exact_with_threads_per_shard() {
    let g = community(160, 10, 11);
    let prepared = PreparedGraph::new(g.clone());
    let config = MqceConfig::new(0.9, 5).unwrap();
    let single = Session::open(g).config(config).run();
    let outcome = run_sharded(&prepared, &config, 3, 2).expect("DCFastQC is shardable");
    assert_eq!(outcome.mqcs, single.mqcs);
    assert!(!outcome.best_effort);
}

#[test]
fn merge_reports_its_engine_and_per_shard_interiors_splice_exactly() {
    let g = community(120, 8, 42);
    let prepared = PreparedGraph::new(g.clone());
    let config = MqceConfig::new(0.9, 4).unwrap();
    let plan = plan_shards(&prepared, &config, 3).expect("DCFastQC is shardable");
    assert_eq!(plan.shards.len(), 3);
    let families: Vec<_> = plan
        .shards
        .iter()
        .map(|spec| run_shard(&spec.slice, &spec.anchors, &spec.rank, &config, 1).mqcs)
        .collect();
    // Every shard family is internally maximal and over original vertex ids.
    let n = prepared.graph().num_vertices() as u32;
    for family in &families {
        for set in family {
            assert!(set.iter().all(|&v| v < n));
        }
    }
    let merged = merge_shard_families(&plan, families, &config);
    assert!(!merged.backend.is_empty());
    let single = Session::open(g).config(config).run();
    assert_eq!(merged.mqcs, single.mqcs);
}

#[test]
fn panicking_anchor_yields_contained_best_effort_not_a_hang() {
    let g = community(120, 8, 42);
    let prepared = PreparedGraph::new(g.clone());
    let mut config = MqceConfig::new(0.9, 4).unwrap();
    let reference = run_sharded(&prepared, &config, 4, 1).expect("DCFastQC is shardable");
    assert!(!reference.best_effort);
    // Fault an anchor whose subproblem actually executes (pruned anchors
    // never reach the searcher, so probe the plan's anchors until one
    // panics): exactly one shard then reports a contained panic.
    let plan = plan_shards(&prepared, &config, 4).expect("DCFastQC is shardable");
    let spec = &plan.shards[1];
    let outcome = spec
        .anchors
        .iter()
        .find_map(|&a| {
            config.params.fail_anchor = Some(spec.slice.to_global[a as usize]);
            let out = run_sharded(&prepared, &config, 4, 1).expect("DCFastQC is shardable");
            (out.stats.subproblem_panics >= 1).then_some(out)
        })
        .expect("some anchor of shard 1 executes a DC subproblem");
    assert!(
        outcome.best_effort,
        "a contained subproblem panic must surface as best_effort"
    );
    // The surviving sets are sound: each is a subset of some true maximal
    // set (the panicked anchor's own sets may be missing).
    for set in &outcome.mqcs {
        assert!(
            reference
                .mqcs
                .iter()
                .any(|m| set.iter().all(|v| m.contains(v))),
            "best-effort family emitted a set outside the true family"
        );
    }
}
