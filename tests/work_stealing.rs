//! Integration tests for the work-stealing parallel DC driver: skewed
//! subproblem families (one planted giant community plus many tiny ones)
//! must produce exactly the sequential maximal family at every thread
//! count, intra-subproblem splitting must actually fire on the skewed
//! shape, and deadlines must stay sound while branches are being stolen.

// These suites deliberately keep exercising the deprecated free-function
// entry points: until they are removed they must return exactly what the
// `Session` builder returns, and this is where that contract is enforced.
#![allow(deprecated)]

use std::time::{Duration, Instant};

use mqce::core::dc::{run_dc_parallel, DcConfig, InnerAlgorithm};
use mqce::core::prelude::*;
use mqce::core::quasiclique::is_quasi_clique;
use mqce::core::{enumerate_mqcs_parallel_with, ParallelScheduler};
use mqce_graph::generators::{planted_quasi_cliques, PlantedGroup};
use mqce_graph::Graph;
use mqce_settrie::filter_maximal;

/// Whether sorted set `a` is a subset of sorted set `b`.
fn is_sorted_subset(a: &[u32], b: &[u32]) -> bool {
    let mut it = b.iter();
    a.iter().all(|x| it.any(|y| y == x))
}

/// One heavy planted community and a tail of tiny ones: the shape where the
/// shared-atomic-index driver pins a single worker on the giant subproblem
/// while the rest go idle.
fn skewed_graph() -> Graph {
    let mut groups = vec![PlantedGroup {
        size: 26,
        density: 0.92,
    }];
    for _ in 0..10 {
        groups.push(PlantedGroup {
            size: 8,
            density: 1.0,
        });
    }
    planted_quasi_cliques(180, 0.015, &groups, 20240)
}

#[test]
fn skewed_family_parallel_matches_sequential_at_every_thread_count() {
    let g = skewed_graph();
    let config = MqceConfig::new(0.85, 6).unwrap().with_steal_granularity(1);
    let sequential = enumerate_mqcs(&g, &config);
    assert!(!sequential.timed_out());
    assert!(!sequential.mqcs.is_empty());
    for threads in [1, 2, 4] {
        let parallel = enumerate_mqcs_parallel(&g, &config, threads);
        assert_eq!(
            parallel.mqcs, sequential.mqcs,
            "work-stealing driver differs from sequential at {threads} threads"
        );
        assert!(!parallel.timed_out());
        // Subproblem accounting is thread-count-invariant: every anchor
        // vertex is built exactly once no matter who runs it.
        assert_eq!(
            parallel.stats.dc_subproblems,
            sequential.stats.dc_subproblems
        );
        if threads > 1 {
            assert_eq!(parallel.thread_stats.len(), threads);
            let total: u64 = parallel.thread_stats.iter().map(|t| t.subproblems).sum();
            assert_eq!(total, parallel.stats.dc_subproblems);
        }
    }
}

#[test]
fn shared_index_baseline_still_matches_sequential() {
    let g = skewed_graph();
    let config = MqceConfig::new(0.85, 6).unwrap();
    let sequential = enumerate_mqcs(&g, &config);
    let baseline = enumerate_mqcs_parallel_with(&g, &config, 4, ParallelScheduler::SharedIndex);
    assert_eq!(baseline.mqcs, sequential.mqcs);
}

#[test]
fn intra_subproblem_splitting_fires_on_a_single_giant_community() {
    // One dense community dominates the run: with 4 workers, three drain the
    // cheap tail quickly and go hungry, so the workers holding the heavy
    // subproblems donate branches. Whether a donation window opens in any
    // single run depends on OS scheduling (the deterministic coverage of the
    // branch-packaging itself lives in the scheduler's greedy-sink unit
    // test), so the run is repeated a few times; output equality is asserted
    // every time.
    let g = planted_quasi_cliques(
        80,
        0.01,
        &[PlantedGroup {
            size: 30,
            density: 0.9,
        }],
        7,
    );
    let p = MqceParams::new(0.85, 6).unwrap().with_steal_granularity(1);
    let sequential = run_dc_parallel(
        &g,
        p,
        InnerAlgorithm::FastQc(BranchingStrategy::HybridSe),
        DcConfig::paper_default(),
        1,
        None,
    );
    let expected = filter_maximal(&sequential.outputs);
    let mut seq_sorted = sequential.outputs.clone();
    seq_sorted.sort();
    seq_sorted.dedup();
    let mut donated_somewhere = false;
    for _attempt in 0..8 {
        let parallel = run_dc_parallel(
            &g,
            p,
            InnerAlgorithm::FastQc(BranchingStrategy::HybridSe),
            DcConfig::paper_default(),
            4,
            None,
        );
        assert_eq!(
            filter_maximal(&parallel.outputs),
            expected,
            "stolen split tasks changed the maximal family"
        );
        assert_eq!(
            parallel.stats.split_executed, parallel.stats.split_donated,
            "every donated branch must be executed exactly once"
        );
        // Raw S1 outputs may contain extra dominated sets from split points,
        // but never fewer than the sequential stream's distinct sets.
        let mut par_sorted = parallel.outputs;
        par_sorted.sort();
        par_sorted.dedup();
        assert!(seq_sorted
            .iter()
            .all(|s| par_sorted.binary_search(s).is_ok()));
        if parallel.stats.split_donated > 0 {
            donated_somewhere = true;
            break;
        }
    }
    assert!(
        donated_somewhere,
        "no branches were donated in any of 8 runs on the giant-community workload"
    );
}

#[test]
fn granularity_zero_disables_splitting_but_not_stealing() {
    let g = skewed_graph();
    let p = MqceParams::new(0.85, 6).unwrap().with_steal_granularity(0);
    let outcome = run_dc_parallel(
        &g,
        p,
        InnerAlgorithm::FastQc(BranchingStrategy::HybridSe),
        DcConfig::paper_default(),
        4,
        None,
    );
    assert_eq!(outcome.stats.split_donated, 0);
    assert_eq!(outcome.stats.split_executed, 0);
    let sequential = run_dc_parallel(
        &g,
        p,
        InnerAlgorithm::FastQc(BranchingStrategy::HybridSe),
        DcConfig::paper_default(),
        1,
        None,
    );
    assert_eq!(
        filter_maximal(&outcome.outputs),
        filter_maximal(&sequential.outputs)
    );
}

#[test]
fn quickplus_inner_survives_stealing() {
    // Smaller than the FastQC workloads: Quick+ has no worst-case guarantee
    // and would take tens of seconds on the full skewed graph.
    let mut groups = vec![PlantedGroup {
        size: 14,
        density: 0.95,
    }];
    for _ in 0..6 {
        groups.push(PlantedGroup {
            size: 7,
            density: 1.0,
        });
    }
    let g = planted_quasi_cliques(90, 0.015, &groups, 313);
    let config = MqceConfig::new(0.9, 5)
        .unwrap()
        .with_algorithm(Algorithm::QuickPlus)
        .with_steal_granularity(1);
    let sequential = enumerate_mqcs(&g, &config);
    let parallel = enumerate_mqcs_parallel(&g, &config, 4);
    assert_eq!(parallel.mqcs, sequential.mqcs);
}

#[test]
fn parallel_matches_sequential_across_full_differential_grid() {
    // The γ × θ grid of the differential sweep, run through the work-stealing
    // driver (aggressive splitting) and compared cell by cell against the
    // sequential pipeline, on random, structured and degenerate graphs.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0x57EA1);
    let mut graphs = vec![
        Graph::paper_figure1(),
        Graph::complete(7),
        Graph::star(6),
        Graph::empty(0),
        Graph::empty(4),
    ];
    for _ in 0..4 {
        let n = rng.gen_range(8..14);
        let p = rng.gen_range(0.2..0.85);
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(p) {
                    edges.push((u, v));
                }
            }
        }
        graphs.push(Graph::from_edges(n, &edges));
    }
    for (i, g) in graphs.iter().enumerate() {
        for &gamma in &[0.5, 0.7, 0.9, 1.0] {
            for theta in 2..=4 {
                let config = MqceConfig::new(gamma, theta)
                    .unwrap()
                    .with_steal_granularity(1);
                let sequential = enumerate_mqcs(g, &config);
                let parallel = enumerate_mqcs_parallel(g, &config, 4);
                assert_eq!(
                    parallel.mqcs, sequential.mqcs,
                    "graph {i}: parallel differs at gamma={gamma} theta={theta}"
                );
            }
        }
    }
}

#[test]
fn deadline_under_stealing_returns_sound_partial_result_quickly() {
    // A workload far too big for 40 ms: the run must stop near the deadline
    // (S2 gets its bounded grace slice) and still return only valid, pairwise
    // incomparable quasi-cliques.
    let g = planted_quasi_cliques(
        220,
        0.03,
        &[
            PlantedGroup {
                size: 30,
                density: 0.95,
            },
            PlantedGroup {
                size: 24,
                density: 0.95,
            },
        ],
        99,
    );
    let config = MqceConfig::new(0.8, 5)
        .unwrap()
        .with_steal_granularity(1)
        .with_time_limit(Duration::from_millis(40));
    let start = Instant::now();
    let result = enumerate_mqcs_parallel(&g, &config, 4);
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "deadline was not honoured under stealing"
    );
    for mqc in &result.mqcs {
        assert!(mqc.len() >= 5);
        assert!(
            is_quasi_clique(&g, mqc, 0.8),
            "invalid QC in partial result"
        );
    }
    for (i, a) in result.mqcs.iter().enumerate() {
        for (j, b) in result.mqcs.iter().enumerate() {
            assert!(
                i == j || !is_sorted_subset(a, b),
                "partial result is not an antichain: {a:?} ⊆ {b:?}"
            );
        }
    }
}
