//! Differential harness for incremental enumeration under edge updates:
//! an [`IncrementalSession`] driven through random update schedules must
//! hold its family equal to a full recompute on the mutated graph after
//! every batch — across the γ×θ grid, at 1, 2 and 4 worker threads, with
//! schedules whose later batches delete edges the earlier batches inserted
//! (the round-trip shape that catches stale retained sets).

// These suites deliberately keep exercising the deprecated free-function
// entry points: until they are removed they must return exactly what the
// `Session` builder returns, and this is where that contract is enforced.
#![allow(deprecated)]

use mqce::core::{enumerate_mqcs, IncrementalSession, MqceConfig};
use mqce::graph::generators::{community_graph, CommunityGraphParams};
use mqce::graph::{Graph, GraphDelta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GAMMAS: [f64; 3] = [0.8, 0.9, 0.95];
const THETAS: [usize; 2] = [3, 5];

fn random_graph(rng: &mut StdRng, n: usize, p: f64) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// A deterministic 4-batch schedule of mixed inserts/deletes. The last
/// batch deletes edges inserted by the earlier batches, so the harness
/// exercises the insert-then-delete round trip, not just forward churn.
fn schedule(g: &Graph, seed: u64) -> Vec<GraphDelta> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.num_vertices() as u32;
    let mut current = g.clone();
    let mut inserted: Vec<(u32, u32)> = Vec::new();
    let mut batches = Vec::new();
    for _ in 0..3 {
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        for _ in 0..4 {
            let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if u == v {
                continue;
            }
            if current.has_edge(u, v) {
                deletes.push((u, v));
            } else {
                inserts.push((u, v));
                inserted.push((u, v));
            }
        }
        let delta = GraphDelta::new(inserts, deletes);
        current = delta.apply(&current);
        batches.push(delta);
    }
    // Unwind half of what the schedule inserted (plus nothing else): these
    // edges exist in `current`, so the deletes are real.
    let unwind: Vec<(u32, u32)> = inserted
        .iter()
        .copied()
        .step_by(2)
        .filter(|&(u, v)| current.has_edge(u, v))
        .collect();
    batches.push(GraphDelta::new(Vec::new(), unwind));
    batches
}

/// Drives one graph's schedule through the whole γ×θ grid at one thread
/// count, asserting incremental ≡ full recompute after every batch.
fn run_grid(g: &Graph, label: &str, threads: usize, seed: u64) {
    let batches = schedule(g, seed);
    for gamma in GAMMAS {
        for theta in THETAS {
            let config = MqceConfig::new(gamma, theta).unwrap();
            let mut session = IncrementalSession::new(g.clone(), config, threads);
            let mut current = g.clone();
            for (step, delta) in batches.iter().enumerate() {
                let outcome = session.update(delta);
                current = delta.apply(&current);
                assert_eq!(
                    session.prepared().fingerprint(),
                    current.fingerprint(),
                    "{label}: graph drifted at step {step} \
                     (gamma={gamma}, theta={theta}, threads={threads})"
                );
                let fresh = enumerate_mqcs(&current, &config);
                assert_eq!(
                    session.family(),
                    &fresh.mqcs[..],
                    "{label}: incremental family != full recompute at step {step} \
                     (gamma={gamma}, theta={theta}, threads={threads}, \
                      dirty={}, retired={}, retained={})",
                    outcome.dirty_subproblems,
                    outcome.retired,
                    outcome.retained,
                );
            }
        }
    }
}

fn graphs() -> Vec<(String, Graph)> {
    let mut rng = StdRng::seed_from_u64(0x17C);
    vec![
        ("paper figure 1".to_string(), Graph::paper_figure1()),
        (
            "community-60".to_string(),
            community_graph(
                CommunityGraphParams {
                    n: 60,
                    num_communities: 4,
                    p_intra: 0.9,
                    inter_degree: 1.5,
                },
                13,
            ),
        ),
        ("G(30, 0.3)".to_string(), random_graph(&mut rng, 30, 0.3)),
    ]
}

#[test]
fn incremental_equals_full_recompute_sequential() {
    for (label, g) in &graphs() {
        run_grid(g, label, 1, 0xBEEF);
    }
}

#[test]
fn incremental_equals_full_recompute_two_threads() {
    for (label, g) in &graphs() {
        run_grid(g, label, 2, 0xBEEF);
    }
}

#[test]
fn incremental_equals_full_recompute_four_threads() {
    for (label, g) in &graphs() {
        run_grid(g, label, 4, 0xBEEF);
    }
}
