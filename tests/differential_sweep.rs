//! Differential sweep: `enumerate_mqcs_default` (the full DCFastQC +
//! set-trie pipeline) against the exhaustive `naive` oracle over the whole
//! parameter grid γ ∈ {0.5, 0.7, 0.9, 1.0} × θ ∈ {2, 3, 4}, on a battery of
//! seeded small random graphs spanning sparse to near-complete densities.
//!
//! Unlike the property tests (which sample parameters per case), this sweep
//! guarantees every (γ, θ) cell of the grid is exercised on every graph.

use mqce::core::naive;
use mqce::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GAMMAS: [f64; 4] = [0.5, 0.7, 0.9, 1.0];
const THETAS: [usize; 3] = [2, 3, 4];

fn random_graph(rng: &mut StdRng, n: usize, p: f64) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

fn sweep(g: &Graph, label: &str) {
    for gamma in GAMMAS {
        for theta in THETAS {
            let params = MqceParams::new(gamma, theta).unwrap();
            let expected = naive::all_maximal_quasi_cliques(g, params);
            let got = enumerate_mqcs_default(g, gamma, theta).unwrap();
            assert_eq!(
                got.mqcs, expected,
                "{label}: pipeline differs from oracle at gamma={gamma}, theta={theta}"
            );
        }
    }
}

#[test]
fn pipeline_matches_oracle_across_full_parameter_grid() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for case in 0..12 {
        let n = rng.gen_range(5..10);
        let p = rng.gen_range(0.15..0.95);
        let g = random_graph(&mut rng, n, p);
        sweep(&g, &format!("random case {case} (n={n}, p={p:.2})"));
    }
}

#[test]
fn sweep_covers_structured_graphs() {
    sweep(&Graph::paper_figure1(), "paper figure 1");
    sweep(&Graph::complete(7), "K7");
    sweep(&Graph::cycle(8), "C8");
    sweep(&Graph::star(6), "star6");
    sweep(&Graph::path(7), "P7");
}

#[test]
fn sweep_covers_degenerate_graphs() {
    sweep(&Graph::empty(0), "empty");
    sweep(&Graph::empty(4), "4 isolated vertices");
    sweep(&Graph::from_edges(2, &[(0, 1)]), "single edge");
}
