//! Differential sweep: `enumerate_mqcs_default` (the full DCFastQC +
//! set-trie pipeline) against the exhaustive `naive` oracle over the whole
//! parameter grid γ ∈ {0.5, 0.7, 0.9, 1.0} × θ ∈ {2, 3, 4}, on a battery of
//! seeded small random graphs spanning sparse to near-complete densities.
//!
//! Unlike the property tests (which sample parameters per case), this sweep
//! guarantees every (γ, θ) cell of the grid is exercised on every graph.
//!
//! The second half of the file is the *backend* differential: the bitset
//! adjacency kernel and the sorted-slice path must produce byte-identical
//! MQC sets (and identical raw S1 output) on every tested configuration —
//! including graphs too large for the oracle, where the two backends check
//! each other.

// These suites deliberately keep exercising the deprecated free-function
// entry points: until they are removed they must return exactly what the
// `Session` builder returns, and this is where that contract is enforced.
#![allow(deprecated)]

use mqce::core::naive;
use mqce::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GAMMAS: [f64; 4] = [0.5, 0.7, 0.9, 1.0];
const THETAS: [usize; 3] = [2, 3, 4];

fn random_graph(rng: &mut StdRng, n: usize, p: f64) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

fn sweep(g: &Graph, label: &str) {
    for gamma in GAMMAS {
        for theta in THETAS {
            let params = MqceParams::new(gamma, theta).unwrap();
            let expected = naive::all_maximal_quasi_cliques(g, params);
            let got = enumerate_mqcs_default(g, gamma, theta).unwrap();
            assert_eq!(
                got.mqcs, expected,
                "{label}: pipeline differs from oracle at gamma={gamma}, theta={theta}"
            );
        }
    }
}

#[test]
fn pipeline_matches_oracle_across_full_parameter_grid() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for case in 0..12 {
        let n = rng.gen_range(5..10);
        let p = rng.gen_range(0.15..0.95);
        let g = random_graph(&mut rng, n, p);
        sweep(&g, &format!("random case {case} (n={n}, p={p:.2})"));
    }
}

#[test]
fn sweep_covers_structured_graphs() {
    sweep(&Graph::paper_figure1(), "paper figure 1");
    sweep(&Graph::complete(7), "K7");
    sweep(&Graph::cycle(8), "C8");
    sweep(&Graph::star(6), "star6");
    sweep(&Graph::path(7), "P7");
}

#[test]
fn sweep_covers_degenerate_graphs() {
    sweep(&Graph::empty(0), "empty");
    sweep(&Graph::empty(4), "4 isolated vertices");
    sweep(&Graph::from_edges(2, &[(0, 1)]), "single edge");
}

/// Runs every algorithm × (γ, θ) cell with the bitset kernel forced on and
/// forced off, asserting the two backends agree exactly — on the maximal
/// sets *and* on the raw S1 output (the kernel must change how adjacency is
/// answered, never what the search emits).
fn sweep_backends(g: &Graph, label: &str) {
    for gamma in GAMMAS {
        for theta in THETAS {
            for algorithm in [Algorithm::DcFastQc, Algorithm::FastQc, Algorithm::QuickPlus] {
                let run = |backend: AdjacencyBackend| {
                    enumerate_mqcs(
                        g,
                        &MqceConfig::new(gamma, theta)
                            .unwrap()
                            .with_algorithm(algorithm)
                            .with_backend(backend),
                    )
                };
                let slice = run(AdjacencyBackend::Slice);
                let bitset = run(AdjacencyBackend::Bitset);
                assert_eq!(
                    slice.mqcs, bitset.mqcs,
                    "{label}: backends disagree on MQCs ({algorithm:?}, gamma={gamma}, theta={theta})"
                );
                assert_eq!(
                    slice.qcs, bitset.qcs,
                    "{label}: backends disagree on raw S1 output ({algorithm:?}, gamma={gamma}, theta={theta})"
                );
                assert_eq!(
                    slice.stats.branches, bitset.stats.branches,
                    "{label}: backends explored different search trees ({algorithm:?}, gamma={gamma}, theta={theta})"
                );
            }
        }
    }
}

#[test]
fn backends_agree_on_random_graphs_across_full_grid() {
    // Property-style battery: seeded G(n, p) graphs sweeping size and
    // density, each swept over the full gamma × theta grid. Some of these
    // graphs are larger than the oracle allows — there the two backends
    // verify each other. Sizes are capped because the low-γ grid cells are
    // exponential on dense graphs.
    let mut rng = StdRng::seed_from_u64(0xB175E7);
    for case in 0..10 {
        let n = rng.gen_range(10..17);
        let p = rng.gen_range(0.15..0.85);
        let g = random_graph(&mut rng, n, p);
        sweep_backends(&g, &format!("backend case {case} (n={n}, p={p:.2})"));
    }
}

#[test]
fn backends_agree_on_structured_and_degenerate_graphs() {
    sweep_backends(&Graph::paper_figure1(), "paper figure 1");
    sweep_backends(&Graph::complete(9), "K9");
    sweep_backends(&Graph::star(8), "star8");
    sweep_backends(&Graph::empty(0), "empty");
    sweep_backends(&Graph::empty(5), "5 isolated vertices");
}

#[test]
fn backends_agree_across_word_boundary_graphs() {
    // Vertices beyond id 64 exercise the multi-word rows of the kernel.
    // Sparse enough to keep the low-γ grid cells tractable, and swept at the
    // dense-community shape only for the strong-pruning γ values.
    let mut rng = StdRng::seed_from_u64(0x60D);
    let sparse = random_graph(&mut rng, 80, 0.08);
    sweep_backends(&sparse, "word-boundary G(80, 0.08)");
    let dense = random_graph(&mut rng, 70, 0.5);
    for theta in [4, 6] {
        for algorithm in [Algorithm::DcFastQc, Algorithm::QuickPlus] {
            let run = |backend: AdjacencyBackend| {
                enumerate_mqcs(
                    &dense,
                    &MqceConfig::new(0.9, theta)
                        .unwrap()
                        .with_algorithm(algorithm)
                        .with_backend(backend),
                )
            };
            let slice = run(AdjacencyBackend::Slice);
            let bitset = run(AdjacencyBackend::Bitset);
            assert_eq!(slice.mqcs, bitset.mqcs, "{algorithm:?} theta={theta}");
            assert_eq!(slice.qcs, bitset.qcs, "{algorithm:?} theta={theta}");
        }
    }
}

/// The extremal ≡ inverted S2 differential over the same grid the oracle
/// sweep uses: every (γ, θ) cell on a battery of seeded random graphs, run
/// once per S2 backend through the full pipeline. The prefix-sharing
/// extremal pass must reproduce the inverted reference family byte for byte
/// (and both match the Auto dispatcher's result).
#[test]
fn s2_extremal_equals_inverted_across_full_grid() {
    let mut rng = StdRng::seed_from_u64(0x52BD);
    let mut graphs: Vec<(String, Graph)> = (0..8)
        .map(|case| {
            let n = rng.gen_range(8..16);
            let p = rng.gen_range(0.2..0.9);
            (
                format!("s2 case {case} (n={n}, p={p:.2})"),
                random_graph(&mut rng, n, p),
            )
        })
        .collect();
    graphs.push(("paper figure 1".to_string(), Graph::paper_figure1()));
    graphs.push(("K7".to_string(), Graph::complete(7)));
    for (label, g) in &graphs {
        for gamma in GAMMAS {
            for theta in THETAS {
                let run = |backend: S2Backend| {
                    enumerate_mqcs(
                        g,
                        &MqceConfig::new(gamma, theta)
                            .unwrap()
                            .with_s2_backend(backend),
                    )
                };
                let inverted = run(S2Backend::Inverted);
                let extremal = run(S2Backend::Extremal);
                assert_eq!(
                    extremal.mqcs, inverted.mqcs,
                    "{label}: extremal S2 diverges from inverted (gamma={gamma}, theta={theta})"
                );
                assert_eq!(
                    run(S2Backend::Auto).mqcs,
                    inverted.mqcs,
                    "{label}: auto S2 diverges from inverted (gamma={gamma}, theta={theta})"
                );
            }
        }
    }
}

#[test]
fn auto_backend_matches_forced_backends() {
    // The adaptive heuristic may pick either path; whatever it picks must
    // match the forced-slice result through the whole grid.
    let mut rng = StdRng::seed_from_u64(0xA070);
    let g = random_graph(&mut rng, 25, 0.6);
    for gamma in GAMMAS {
        for theta in THETAS {
            let auto = enumerate_mqcs(
                &g,
                &MqceConfig::new(gamma, theta)
                    .unwrap()
                    .with_backend(AdjacencyBackend::Auto),
            );
            let slice = enumerate_mqcs(
                &g,
                &MqceConfig::new(gamma, theta)
                    .unwrap()
                    .with_backend(AdjacencyBackend::Slice),
            );
            assert_eq!(auto.mqcs, slice.mqcs, "gamma={gamma} theta={theta}");
        }
    }
}
