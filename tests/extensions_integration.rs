//! Integration tests for the extension modules built on top of the core
//! enumeration: query-driven search, top-k mining, kernel expansion, the
//! result verifier, the edge-based quasi-clique comparison and the graph
//! interchange formats.

// These suites deliberately keep exercising the deprecated free-function
// entry points: until they are removed they must return exactly what the
// `Session` builder returns, and this is where that contract is enforced.
#![allow(deprecated)]

use mqce::core::edge_qc;
use mqce::core::kernel::{expand_kernels, KernelConfig};
use mqce::core::quasiclique::is_quasi_clique;
use mqce::core::verify::{verify_mqc_set, Violation};
use mqce::graph::generators;
use mqce::graph::ordering::VertexOrdering;
use mqce::graph::{formats, stats};
use mqce::prelude::*;

fn random_graphs() -> Vec<(String, Graph)> {
    let mut graphs = Vec::new();
    for seed in 0..4u64 {
        graphs.push((
            format!("gnm-sparse-{seed}"),
            generators::erdos_renyi_gnm(40, 90, seed),
        ));
        graphs.push((
            format!("gnm-dense-{seed}"),
            generators::erdos_renyi_gnm(25, 140, seed),
        ));
    }
    graphs.push((
        "planted".to_string(),
        generators::planted_quasi_cliques(
            60,
            0.03,
            &[
                generators::PlantedGroup {
                    size: 9,
                    density: 1.0,
                },
                generators::PlantedGroup {
                    size: 7,
                    density: 0.95,
                },
            ],
            11,
        ),
    ));
    graphs.push((
        "caveman".to_string(),
        generators::relaxed_caveman(5, 7, 0.1, 3),
    ));
    graphs.push((
        "smallworld".to_string(),
        generators::watts_strogatz(50, 6, 0.1, 9),
    ));
    graphs
}

#[test]
fn query_search_agrees_with_filtered_enumeration() {
    for (label, g) in random_graphs() {
        for (gamma, theta) in [(0.6, 4usize), (0.8, 3)] {
            let full = enumerate_mqcs_default(&g, gamma, theta).unwrap().mqcs;
            // Query every vertex that appears in some MQC, plus one that may not.
            let mut queries: Vec<Vec<u32>> = vec![vec![0], vec![g.num_vertices() as u32 / 2]];
            if let Some(first) = full.first() {
                queries.push(vec![first[0]]);
                if first.len() >= 2 {
                    queries.push(vec![first[0], first[1]]);
                }
            }
            for query in queries {
                let expected: Vec<Vec<u32>> = full
                    .iter()
                    .filter(|mqc| query.iter().all(|q| mqc.contains(q)))
                    .cloned()
                    .collect();
                let got = find_mqcs_containing_default(&g, &query, gamma, theta)
                    .unwrap()
                    .mqcs;
                assert_eq!(
                    got, expected,
                    "{label}: query {query:?} gamma={gamma} theta={theta}"
                );
            }
        }
    }
}

#[test]
fn topk_returns_the_largest_mqcs() {
    for (label, g) in random_graphs() {
        let gamma = 0.7;
        let full = enumerate_mqcs_default(&g, gamma, 2).unwrap().mqcs;
        let mut by_size = full.clone();
        by_size.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
        for k in [1usize, 3, 10] {
            let top = find_largest_mqcs(&g, gamma, k, None).unwrap();
            let expected: Vec<Vec<u32>> = by_size.iter().take(k).cloned().collect();
            assert_eq!(top.mqcs, expected, "{label}: k={k}");
        }
    }
}

#[test]
fn kernel_expansion_is_sound_and_bounded_by_exact_topk() {
    for (label, g) in random_graphs() {
        let gamma = 0.7;
        let config = KernelConfig::new(gamma, 0.9, 3, 5).unwrap();
        let result = expand_kernels(&g, config).unwrap();
        for qc in &result.qcs {
            assert!(
                is_quasi_clique(&g, qc, gamma),
                "{label}: expansion is not a QC"
            );
        }
        let exact = find_largest_mqcs(&g, gamma, 1, None).unwrap();
        let exact_best = exact.mqcs.first().map(Vec::len).unwrap_or(0);
        let heuristic_best = result.qcs.first().map(Vec::len).unwrap_or(0);
        assert!(
            heuristic_best <= exact_best,
            "{label}: heuristic {heuristic_best} exceeds exact optimum {exact_best}"
        );
    }
}

#[test]
fn verifier_accepts_real_results_and_rejects_corrupted_ones() {
    for (label, g) in random_graphs().into_iter().take(6) {
        let gamma = 0.8;
        let theta = 3;
        let params = MqceParams::new(gamma, theta).unwrap();
        let result = enumerate_mqcs_default(&g, gamma, theta).unwrap();
        let clean = verify_mqc_set(&g, &result.mqcs, params);
        assert!(clean.is_ok(), "{label}: {clean}");

        if result.mqcs.is_empty() {
            continue;
        }
        // Corruption 1: drop a vertex from the first MQC. The truncated set
        // either stops being a QC, falls below θ, or (if it is still a QC)
        // admits the dropped vertex back as a single-vertex extension — all
        // of which the local verifier must flag.
        let mut corrupted = result.mqcs.clone();
        corrupted[0].pop();
        if !corrupted[0].is_empty() {
            let report = verify_mqc_set(&g, &corrupted, params);
            assert!(
                report.violations.iter().any(|v| {
                    matches!(
                        v,
                        Violation::NotAQuasiClique { .. }
                            | Violation::TooSmall { .. }
                            | Violation::SingleVertexExtension { .. }
                            | Violation::ContainedInAnother { .. }
                    )
                }),
                "{label}: dropped vertex not detected ({report})"
            );
        }
        // Corruption 2: duplicate an MQC as a strict subset of itself plus
        // noise is impossible; instead report a truncated copy alongside the
        // original — the containment check must fire.
        if result.mqcs[0].len() > theta {
            let mut with_subset = result.mqcs.clone();
            let mut sub = with_subset[0].clone();
            sub.pop();
            with_subset.push(sub);
            let report = verify_mqc_set(&g, &with_subset, params);
            assert!(
                report.violations.iter().any(|v| matches!(
                    v,
                    Violation::ContainedInAnother { .. }
                        | Violation::NotAQuasiClique { .. }
                        | Violation::TooSmall { .. }
                )),
                "{label}: planted containment not detected"
            );
        }
    }
}

#[test]
fn degree_qcs_are_edge_qcs_but_not_vice_versa() {
    // Soundness direction: every degree-based γ-QC satisfies the edge-based
    // bound at the same γ (sum the per-vertex degree bound over all vertices).
    let g = Graph::paper_figure1();
    for gamma in [0.5, 0.6, 0.7, 0.9] {
        let result = enumerate_mqcs_default(&g, gamma, 2).unwrap();
        for qc in &result.qcs {
            assert!(
                edge_qc::is_edge_quasi_clique(&g, qc, gamma),
                "degree-QC {qc:?} is not an edge-QC at gamma={gamma}"
            );
        }
    }
    // Converse fails: a star of 3 vertices has 2/3 of the possible edges but
    // the leaves have relative degree 1/2 < 0.6.
    let star = Graph::star(3);
    let set = vec![0u32, 1, 2];
    assert!(edge_qc::is_edge_quasi_clique(&star, &set, 0.6));
    assert!(!is_quasi_clique(&star, &set, 0.6));
}

#[test]
fn formats_roundtrip_preserves_enumeration_results() {
    let g = generators::planted_quasi_cliques(
        50,
        0.04,
        &[generators::PlantedGroup {
            size: 8,
            density: 1.0,
        }],
        29,
    );
    let reference = enumerate_mqcs_default(&g, 0.9, 5).unwrap().mqcs;

    // DIMACS roundtrip.
    let mut dimacs = Vec::new();
    formats::write_dimacs(&g, &mut dimacs).unwrap();
    let g_dimacs = formats::read_dimacs(dimacs.as_slice()).unwrap();
    assert_eq!(
        enumerate_mqcs_default(&g_dimacs, 0.9, 5).unwrap().mqcs,
        reference
    );

    // METIS roundtrip.
    let mut metis = Vec::new();
    formats::write_metis(&g, &mut metis).unwrap();
    let g_metis = formats::read_metis(metis.as_slice()).unwrap();
    assert_eq!(
        enumerate_mqcs_default(&g_metis, 0.9, 5).unwrap().mqcs,
        reference
    );

    // Statistics survive the roundtrips too.
    assert_eq!(GraphStats::compute(&g), GraphStats::compute(&g_dimacs));
    assert_eq!(GraphStats::compute(&g), GraphStats::compute(&g_metis));
}

#[test]
fn ordering_choice_does_not_change_results_only_costs() {
    // The DC framework is exact for any division ordering; the library uses
    // the degeneracy ordering for its complexity bound. Here we confirm the
    // orderings produce permutations with the documented forward-degree
    // relationship on a realistic graph.
    let g = generators::chung_lu_power_law(300, 6.0, 2.5, 41);
    let degeneracy = mqce::graph::core_decomp::degeneracy(&g);
    let deg_order = VertexOrdering::Degeneracy.compute(&g);
    assert_eq!(
        mqce::graph::ordering::max_forward_degree(&g, &deg_order),
        degeneracy
    );
    for ordering in [
        VertexOrdering::Input,
        VertexOrdering::DegreeDescending,
        VertexOrdering::Random(3),
    ] {
        let order = ordering.compute(&g);
        assert!(mqce::graph::ordering::max_forward_degree(&g, &order) >= degeneracy);
    }
}

#[test]
fn clustering_statistics_behave_on_generator_families() {
    // Small-world graphs have much higher clustering than ER graphs with the
    // same number of edges — the qualitative property the dataset suite relies
    // on when standing in for collaboration networks.
    let ws = generators::watts_strogatz(400, 8, 0.05, 5);
    let er = generators::erdos_renyi_gnm(400, ws.num_edges(), 5);
    let c_ws = stats::global_clustering_coefficient(&ws);
    let c_er = stats::global_clustering_coefficient(&er);
    assert!(
        c_ws > 3.0 * c_er,
        "expected small-world clustering ({c_ws:.3}) >> ER clustering ({c_er:.3})"
    );
    // Preferential attachment produces hubs; the grid does not.
    let ba = generators::barabasi_albert(400, 3, 7);
    assert!(ba.max_degree() > 20);
    assert_eq!(generators::grid(20, 20).max_degree(), 4);
}
