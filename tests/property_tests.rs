//! Property-based tests (proptest) over the core invariants of the workspace.

// These suites deliberately keep exercising the deprecated free-function
// entry points: until they are removed they must return exactly what the
// `Session` builder returns, and this is where that contract is enforced.
#![allow(deprecated)]

use mqce::core::naive;
use mqce::core::quasiclique::{max_disconnections, required_degree, tau};
use mqce::graph::core_decomp::core_decomposition;
use mqce::graph::subgraph::{two_hop_neighborhood, InducedSubgraph};
use mqce::prelude::*;
use mqce::settrie::filter_maximal_naive;
use proptest::prelude::*;

/// Strategy: a random graph with 2..=10 vertices given as an edge mask.
fn small_graph() -> impl Strategy<Value = Graph> {
    (2usize..=10, any::<u64>()).prop_map(|(n, mask)| {
        let mut edges = Vec::new();
        let mut bit = 0;
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if mask & (1u64 << (bit % 64)) != 0 {
                    edges.push((u, v));
                }
                bit += 1;
            }
        }
        Graph::from_edges(n, &edges)
    })
}

/// Strategy: medium random graph (up to 40 vertices), too big for the oracle
/// but fine for cross-algorithm agreement.
fn medium_graph() -> impl Strategy<Value = Graph> {
    (10usize..=32, any::<u64>(), 0.08f64..0.35)
        .prop_map(|(n, seed, p)| mqce::graph::generators::erdos_renyi_gnp(n, p, seed))
}

fn gamma_values() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.5),
        Just(0.51),
        Just(0.6),
        Just(0.7),
        Just(0.75),
        Just(0.8),
        Just(0.9),
        Just(0.96),
        Just(1.0)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// τ and the degree requirement are two views of the same threshold:
    /// |H| − ⌈γ(|H|−1)⌉ = ⌊(1−γ)|H| + γ⌋.
    #[test]
    fn tau_and_required_degree_are_consistent(gamma in gamma_values(), size in 1usize..200) {
        prop_assert_eq!(
            size as i64 - required_degree(gamma, size) as i64,
            tau(gamma, size as f64)
        );
    }

    /// Lemma 1: G[H] (non-empty, connected assumed via γ ≥ 0.5 degrees) is a
    /// QC iff Δ(H) ≤ τ(|H|).
    #[test]
    fn lemma1_qc_iff_delta_below_tau(g in small_graph(), gamma in gamma_values()) {
        let all: Vec<u32> = g.vertices().collect();
        for size in 1..=all.len().min(6) {
            // Check a few prefixes instead of all subsets to keep it cheap.
            let h = &all[..size];
            let degree_ok = max_disconnections(&g, h) as i64 <= tau(gamma, h.len() as f64);
            let connected = mqce::graph::connectivity::is_connected_subset(&g, h);
            prop_assert_eq!(is_quasi_clique(&g, h, gamma), degree_ok && connected);
        }
    }

    /// The full pipeline (DCFastQC + set-trie) equals the exhaustive oracle.
    #[test]
    fn pipeline_matches_oracle(g in small_graph(), gamma in gamma_values(), theta in 2usize..4) {
        let expected = naive::all_maximal_quasi_cliques(
            &g, MqceParams::new(gamma, theta).unwrap());
        let result = enumerate_mqcs_default(&g, gamma, theta).unwrap();
        prop_assert_eq!(result.mqcs, expected);
    }

    /// Every S1 output is a quasi-clique containing at least θ vertices, for
    /// every algorithm.
    #[test]
    fn s1_outputs_are_quasi_cliques(g in small_graph(), gamma in gamma_values(), theta in 1usize..4) {
        for algo in [Algorithm::DcFastQc, Algorithm::FastQc, Algorithm::QuickPlus, Algorithm::QuickPlusRaw] {
            let config = MqceConfig::new(gamma, theta).unwrap().with_algorithm(algo);
            let outcome = mqce::core::solve_s1(&g, &config);
            prop_assert_eq!(outcome.stats.outputs_rejected, 0);
            for h in &outcome.outputs {
                prop_assert!(h.len() >= theta);
                prop_assert!(is_quasi_clique(&g, h, gamma));
            }
        }
    }

    /// FastQC and Quick+ agree on medium graphs (no oracle available).
    #[test]
    fn algorithms_agree_on_medium_graphs(g in medium_graph(), theta in 4usize..6) {
        let gamma = 0.85;
        let a = enumerate_mqcs(&g, &MqceConfig::new(gamma, theta).unwrap()
            .with_algorithm(Algorithm::DcFastQc));
        let b = enumerate_mqcs(&g, &MqceConfig::new(gamma, theta).unwrap()
            .with_algorithm(Algorithm::QuickPlus));
        prop_assert_eq!(&a.mqcs, &b.mqcs);
        let c = enumerate_mqcs(&g, &MqceConfig::new(gamma, theta).unwrap()
            .with_algorithm(Algorithm::FastQc)
            .with_branching(BranchingStrategy::SymSe));
        prop_assert_eq!(&a.mqcs, &c.mqcs);
    }

    /// Every MQC lies inside the ⌈γ(θ−1)⌉-core of the graph (the justification
    /// for line 1 of Algorithm 3).
    #[test]
    fn mqcs_live_in_the_core(g in small_graph(), gamma in gamma_values(), theta in 2usize..4) {
        let k = required_degree(gamma, theta);
        let core = mqce::graph::core_decomp::k_core_vertices(&g, k);
        let result = enumerate_mqcs_default(&g, gamma, theta).unwrap();
        for mqc in &result.mqcs {
            for v in mqc {
                prop_assert!(core.contains(v), "vertex {} of MQC {:?} outside the {}-core", v, mqc, k);
            }
        }
    }

    /// For γ ≥ 0.5 every quasi-clique has diameter ≤ 2 (Property 2): all of
    /// its vertices are inside the closed 2-hop ball of any member.
    #[test]
    fn qcs_have_diameter_two(g in small_graph(), gamma in gamma_values()) {
        let qcs = naive::all_quasi_cliques(&g, MqceParams::new(gamma, 2).unwrap());
        for qc in qcs.iter().take(50) {
            let ball = two_hop_neighborhood(&g, qc[0]);
            for v in qc {
                prop_assert!(ball.contains(v));
            }
        }
    }

    /// The set-trie maximality filter agrees with the quadratic reference on
    /// arbitrary set families.
    #[test]
    fn settrie_filter_matches_naive(sets in proptest::collection::vec(
        proptest::collection::vec(0u32..15, 0..6), 0..25)) {
        prop_assert_eq!(filter_maximal(&sets), filter_maximal_naive(&sets));
    }

    /// Every maximality-engine backend (and the auto dispatcher) agrees with
    /// the quadratic reference on arbitrary set families.
    #[test]
    fn s2_engine_backends_match_naive(sets in proptest::collection::vec(
        proptest::collection::vec(0u32..15, 0..6), 0..25)) {
        use mqce::settrie::{filter_maximal_with, S2Backend};
        let expected = filter_maximal_naive(&sets);
        for backend in S2Backend::concrete() {
            prop_assert_eq!(
                filter_maximal_with(&sets, backend),
                expected.clone(),
                "backend {}", backend.name()
            );
        }
        prop_assert_eq!(filter_maximal_with(&sets, S2Backend::Auto), expected);
    }

    /// Core decomposition invariant: every vertex of the k-core has at least k
    /// neighbours inside the k-core, and the degeneracy ordering is a
    /// permutation.
    #[test]
    fn core_decomposition_invariants(g in medium_graph()) {
        let decomp = core_decomposition(&g);
        prop_assert_eq!(decomp.ordering.len(), g.num_vertices());
        let mut sorted = decomp.ordering.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..g.num_vertices() as u32).collect::<Vec<_>>());
        let degeneracy = decomp.degeneracy;
        for k in 0..=degeneracy {
            let core = mqce::graph::core_decomp::k_core_vertices(&g, k);
            for &v in &core {
                let inside = g.neighbors(v).iter().filter(|u| core.contains(u)).count();
                prop_assert!(inside >= k);
            }
        }
    }

    /// Induced subgraphs preserve adjacency exactly.
    #[test]
    fn induced_subgraph_preserves_adjacency(g in medium_graph(), pick in any::<u64>()) {
        let vertices: Vec<u32> = g.vertices().filter(|&v| pick & (1 << (v % 64)) != 0).collect();
        let sub = InducedSubgraph::new(&g, &vertices);
        for (i, &gu) in sub.to_global.iter().enumerate() {
            for (j, &gv) in sub.to_global.iter().enumerate() {
                prop_assert_eq!(
                    sub.graph.has_edge(i as u32, j as u32),
                    g.has_edge(gu, gv)
                );
            }
        }
    }

    /// DIMACS and METIS serialisation round-trips reproduce the same graph
    /// (vertex count, edge set) on arbitrary medium graphs.
    #[test]
    fn format_roundtrips_are_lossless(g in medium_graph()) {
        let mut dimacs = Vec::new();
        mqce::graph::formats::write_dimacs(&g, &mut dimacs).unwrap();
        let gd = mqce::graph::formats::read_dimacs(dimacs.as_slice()).unwrap();
        prop_assert_eq!(gd.num_vertices(), g.num_vertices());
        prop_assert_eq!(&gd, &g);

        let mut metis = Vec::new();
        mqce::graph::formats::write_metis(&g, &mut metis).unwrap();
        let gm = mqce::graph::formats::read_metis(metis.as_slice()).unwrap();
        prop_assert_eq!(&gm, &g);
    }

    /// Query-driven search equals post-filtering the full enumeration, for
    /// every possible single-vertex query.
    #[test]
    fn query_search_equals_filtered_enumeration(g in small_graph(), gamma in gamma_values(), theta in 2usize..4) {
        let full = enumerate_mqcs_default(&g, gamma, theta).unwrap().mqcs;
        for q in g.vertices() {
            let expected: Vec<Vec<u32>> = full.iter().filter(|m| m.contains(&q)).cloned().collect();
            let got = find_mqcs_containing_default(&g, &[q], gamma, theta).unwrap().mqcs;
            prop_assert_eq!(got, expected, "query {}", q);
        }
    }

    /// Every degree-based γ-quasi-clique is also an edge-based γ-quasi-clique
    /// (the converse is false), matching the related-work comparison.
    #[test]
    fn degree_qc_implies_edge_qc(g in small_graph(), gamma in gamma_values()) {
        let qcs = naive::all_quasi_cliques(&g, MqceParams::new(gamma, 2).unwrap());
        for qc in qcs.iter().take(80) {
            prop_assert!(mqce::core::edge_qc::is_edge_quasi_clique(&g, qc, gamma));
        }
    }

    /// Top-k mining returns exactly the k largest MQCs of the full enumeration.
    #[test]
    fn topk_matches_sorted_enumeration(g in small_graph(), gamma in gamma_values(), k in 1usize..4) {
        let mut by_size = enumerate_mqcs_default(&g, gamma, 2).unwrap().mqcs;
        by_size.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
        by_size.truncate(k);
        let top = find_largest_mqcs(&g, gamma, k, None).unwrap();
        prop_assert_eq!(top.mqcs, by_size);
    }

    /// The independent verifier accepts every pipeline result.
    #[test]
    fn verifier_accepts_pipeline_results(g in medium_graph(), theta in 3usize..5) {
        let gamma = 0.8;
        let params = MqceParams::new(gamma, theta).unwrap();
        let result = enumerate_mqcs_default(&g, gamma, theta).unwrap();
        let report = verify_mqc_set(&g, &result.mqcs, params);
        prop_assert!(report.is_ok(), "{}", report);
        let s1 = verify_s1_output(&g, &result.qcs, params);
        prop_assert!(s1.is_ok(), "{}", s1);
    }

    /// Vertex orderings are permutations and the degeneracy ordering minimises
    /// the maximum forward degree.
    #[test]
    fn ordering_invariants(g in medium_graph(), seed in any::<u64>()) {
        use mqce::graph::ordering::{max_forward_degree, VertexOrdering};
        let degeneracy = mqce::graph::core_decomp::degeneracy(&g);
        for ordering in [
            VertexOrdering::Degeneracy,
            VertexOrdering::DegreeAscending,
            VertexOrdering::DegreeDescending,
            VertexOrdering::Input,
            VertexOrdering::Random(seed),
        ] {
            let order = ordering.compute(&g);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..g.num_vertices() as u32).collect::<Vec<_>>());
            prop_assert!(max_forward_degree(&g, &order) >= degeneracy);
        }
        let deg_order = VertexOrdering::Degeneracy.compute(&g);
        prop_assert_eq!(max_forward_degree(&g, &deg_order), degeneracy);
    }

    /// Inserting a batch and then deleting the same edges restores the
    /// original graph byte-identically: same fingerprint, same CSR, same
    /// degeneracy ordering — and an incremental session driven through the
    /// round trip returns to exactly its original maximal family.
    #[test]
    fn insert_then_delete_is_identity(g in medium_graph(), seed in any::<u64>()) {
        use mqce::graph::GraphDelta;
        let n = g.num_vertices() as u32;
        // Derive a deterministic batch of candidate edges from the seed.
        let mut edges = Vec::new();
        let mut x = seed | 1;
        for _ in 0..8 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((x >> 33) as u32) % n;
            let v = ((x >> 13) as u32) % n;
            if u != v && !g.has_edge(u, v) {
                edges.push((u, v));
            }
        }
        let delta = GraphDelta::new(edges, Vec::new());
        let inverse = delta.inverse();
        let restored = inverse.apply(&delta.apply(&g));
        prop_assert_eq!(restored.fingerprint(), g.fingerprint());
        prop_assert_eq!(&restored, &g);
        let before = core_decomposition(&g);
        let after = core_decomposition(&restored);
        prop_assert_eq!(before.ordering, after.ordering);
        prop_assert_eq!(before.core_numbers, after.core_numbers);

        // Drive an incremental session through the round trip: insert batch,
        // delete the same edges, end up with the original family.
        let config = MqceConfig::new(0.8, 3).unwrap();
        let mut session = mqce::core::IncrementalSession::new(g.clone(), config, 1);
        let baseline = session.family().to_vec();
        session.update(&delta);
        session.update(&inverse);
        prop_assert_eq!(session.prepared().fingerprint(), g.fingerprint());
        prop_assert_eq!(session.family(), &baseline[..]);
    }

    /// Graph statistics stay in their mathematical ranges.
    #[test]
    fn statistics_ranges(g in medium_graph()) {
        use mqce::graph::stats::*;
        let c = global_clustering_coefficient(&g);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
        for local in local_clustering_coefficients(&g) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&local));
        }
        let r = degree_assortativity(&g);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "assortativity {}", r);
        let hist = degree_histogram(&g);
        prop_assert_eq!(hist.iter().sum::<usize>(), g.num_vertices());
        // 3·triangles never exceeds the number of wedges (each triangle is a
        // closed wedge at each of its three vertices).
        let wedges: usize = g.vertices().map(|v| { let d = g.degree(v); d * d.saturating_sub(1) / 2 }).sum();
        prop_assert!(3 * triangle_count(&g) <= wedges.max(1));
    }
}
