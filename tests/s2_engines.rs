//! Integration tests for the MQCE-S2 maximality-engine subsystem: backend
//! equivalence against the quadratic reference, incremental-vs-batch
//! equivalence, engine merging, and deadline-aware compaction soundness.

// These suites deliberately keep exercising the deprecated free-function
// entry points: until they are removed they must return exactly what the
// `Session` builder returns, and this is where that contract is enforced.
#![allow(deprecated)]

use std::time::{Duration, Instant};

use mqce::prelude::*;
use mqce::settrie::{filter_maximal, filter_maximal_naive, filter_maximal_with, S2Backend};
use proptest::prelude::*;

/// `a ⊆ b` for sorted slices (local reference helper).
fn is_subset(a: &[u32], b: &[u32]) -> bool {
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// A deterministic overlapping family: subsets of a small universe with
/// enough duplication and containment to exercise every engine path.
fn overlapping_family(n: usize, universe: u32, seed: u64) -> Vec<Vec<u32>> {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) as u32
    };
    (0..n)
        .map(|_| {
            let len = (next() % 9) as usize;
            (0..len).map(|_| next() % universe).collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every backend produces exactly the quadratic reference result on
    /// arbitrary overlapping set families.
    #[test]
    fn all_backends_match_naive(sets in proptest::collection::vec(
        proptest::collection::vec(0u32..20, 0..8), 0..40)) {
        let expected = filter_maximal_naive(&sets);
        for backend in S2Backend::concrete() {
            prop_assert_eq!(
                filter_maximal_with(&sets, backend),
                expected.clone(),
                "backend {}", backend.name()
            );
        }
        prop_assert_eq!(filter_maximal_with(&sets, S2Backend::Auto), expected);
    }

    /// Feeding a family incrementally (in arbitrary chunkings, like the DC
    /// driver does per subproblem) gives the same result as one batch.
    #[test]
    fn incremental_equals_batch(sets in proptest::collection::vec(
        proptest::collection::vec(0u32..15, 0..7), 0..30), chunk in 1usize..7) {
        let batch = filter_maximal(&sets);
        for backend in S2Backend::concrete() {
            let mut engine = backend.new_engine();
            for piece in sets.chunks(chunk) {
                for set in piece {
                    engine.add(set);
                }
            }
            prop_assert_eq!(engine.finish().mqcs, batch.clone(), "backend {}", backend.name());
        }
    }

    /// Merging two engines (the parallel driver's drain-and-re-add) equals
    /// filtering the concatenated family.
    #[test]
    fn merged_engines_equal_batch(
        left in proptest::collection::vec(proptest::collection::vec(0u32..12, 0..6), 0..20),
        right in proptest::collection::vec(proptest::collection::vec(0u32..12, 0..6), 0..20),
    ) {
        let mut all = left.clone();
        all.extend(right.iter().cloned());
        let expected = filter_maximal(&all);
        for backend in S2Backend::concrete() {
            let mut a = backend.new_engine();
            let mut b = backend.new_engine();
            for s in &left { a.add(s); }
            for s in &right { b.add(s); }
            for s in b.drain() { a.add(&s); }
            prop_assert_eq!(a.finish().mqcs, expected.clone(), "backend {}", backend.name());
        }
    }
}

/// Deadline-aware S2: an already-expired deadline must cut the compaction
/// short (flagged as timed out) while still returning an antichain — every
/// returned set is maximal with respect to the returned collection.
#[test]
fn expired_deadline_yields_sound_antichain() {
    let family = overlapping_family(15_000, 60, 3);
    for backend in S2Backend::concrete() {
        let mut engine = backend.new_engine();
        for s in &family {
            engine.add(s);
        }
        let start = Instant::now();
        // An already-expired deadline makes the timeout deterministic: the
        // compaction's first stride poll fires regardless of machine speed.
        let out = engine.finish_with_deadline(Some(Instant::now()));
        // The compaction polls the deadline every few hundred sets, so it
        // must come back quickly rather than completing the full pass.
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "{}: deadline ignored",
            backend.name()
        );
        assert!(out.timed_out, "{}: expected a timeout", backend.name());
        for (i, a) in out.mqcs.iter().enumerate() {
            for (j, b) in out.mqcs.iter().enumerate() {
                assert!(
                    i == j || !is_subset(a, b),
                    "{}: partial result is not an antichain: {a:?} ⊆ {b:?}",
                    backend.name()
                );
            }
        }
    }
}

/// The partial result under a mid-flight deadline is always a subset of the
/// true maximal family (no fabricated sets, no dominated leftovers). Since
/// the full-Bayardo–Panda rework this holds for *every* backend: the
/// extremal pass probes each processed set against the whole family, so its
/// deadline cut keeps only globally maximal sets too.
#[test]
fn partial_result_is_subset_of_true_maximal_family() {
    let family = overlapping_family(8_000, 40, 11);
    let full = filter_maximal(&family);
    for backend in S2Backend::concrete() {
        let mut engine = backend.new_engine();
        for s in &family {
            engine.add(s);
        }
        let out = engine.finish_with_deadline(Some(Instant::now() + Duration::from_millis(2)));
        for set in &out.mqcs {
            assert!(
                full.binary_search(set).is_ok(),
                "{}: partial result contains non-maximal set {set:?}",
                backend.name()
            );
        }
    }
}

/// The end-to-end pipeline respects its wall-clock budget even when S1 emits
/// a large stream: S2 gets at most a bounded grace interval past the limit.
#[test]
fn pipeline_budget_is_not_blown_by_s2() {
    use mqce::graph::generators::erdos_renyi_gnm;
    let g = erdos_renyi_gnm(250, 5500, 5);
    let limit = Duration::from_millis(200);
    for backend in [S2Backend::Auto, S2Backend::Inverted] {
        let config = MqceConfig::new(0.5, 3)
            .unwrap()
            .with_algorithm(Algorithm::QuickPlusRaw)
            .with_s2_backend(backend)
            .with_time_limit(limit);
        let start = Instant::now();
        let result = enumerate_mqcs(&g, &config);
        // The bound is deliberately loose (S1's per-branch deadline polling
        // has its own granularity) but far below an unbounded S2 pass.
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "{:?}: pipeline ran {:?} on a 200ms budget",
            backend,
            start.elapsed()
        );
        // Whatever came back is an antichain.
        for (i, a) in result.mqcs.iter().enumerate() {
            for (j, b) in result.mqcs.iter().enumerate() {
                assert!(i == j || !is_subset(a, b), "{backend:?}: not an antichain");
            }
        }
    }
}

/// Pipeline equivalence across S2 backends on a real enumeration, both
/// sequential and parallel (merged per-thread engines).
#[test]
fn pipeline_backends_agree_sequential_and_parallel() {
    use mqce::graph::generators::{community_graph, CommunityGraphParams};
    let g = community_graph(
        CommunityGraphParams {
            n: 90,
            num_communities: 6,
            p_intra: 0.9,
            inter_degree: 2.0,
        },
        77,
    );
    let reference = enumerate_mqcs(&g, &MqceConfig::new(0.85, 5).unwrap());
    assert!(!reference.mqcs.is_empty());
    for backend in [
        S2Backend::Auto,
        S2Backend::Inverted,
        S2Backend::Bitset,
        S2Backend::Extremal,
    ] {
        let config = MqceConfig::new(0.85, 5).unwrap().with_s2_backend(backend);
        let sequential = enumerate_mqcs(&g, &config);
        assert_eq!(sequential.mqcs, reference.mqcs, "{backend:?} sequential");
        assert_eq!(
            sequential.s2.sets_streamed, reference.s2.sets_streamed,
            "{backend:?}: streamed-set accounting changed"
        );
        let parallel = enumerate_mqcs_parallel(&g, &config, 3);
        assert_eq!(parallel.mqcs, reference.mqcs, "{backend:?} parallel");
    }
}

/// The exact regime the ROADMAP flagged as degenerate for the
/// pre-Bayardo–Panda extremal variant: a small universe whose element
/// frequencies concentrate (skewed heavy overlap), with real domination in
/// the stream. The prefix-sharing pass must agree with the streaming
/// inverted reference — exactly, across several universe sizes and skews.
#[test]
fn extremal_matches_inverted_on_small_universe_heavy_overlap() {
    let mut x = 0x5EEDu64;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) as u32
    };
    for &(n, universe, max_len) in &[
        (6_000usize, 24u32, 10u32),
        (4_000, 60, 14),
        (2_500, 140, 20),
    ] {
        let family: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let len = 4 + next() % (max_len - 3);
                (0..len)
                    // min-of-two skews toward low ids: the concentrated
                    // element distribution of a dense community core.
                    .map(|_| (next() % universe).min(next() % universe))
                    .collect()
            })
            .collect();
        let mut inverted = S2Backend::Inverted.new_engine();
        let mut extremal = S2Backend::Extremal.new_engine();
        for s in &family {
            inverted.add(s);
            extremal.add(s);
        }
        let reference = inverted.finish().mqcs;
        assert_eq!(
            extremal.finish().mqcs,
            reference,
            "extremal diverges on n={n} universe={universe}"
        );
        // The shape is meaningful: heavy domination, not everything maximal.
        assert!(
            reference.len() < n,
            "family at universe={universe} has no domination"
        );
    }
}

/// The auto engine commits to the bitset backend on the INF'd-S1 shape
/// (small universe, heavy overlap) and still returns the exact family.
#[test]
fn auto_resolves_stress_shape_to_bitset() {
    let mut x = 0xABCDu64;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) as u32
    };
    let family: Vec<Vec<u32>> = (0..6000)
        .map(|_| (0..14).map(|_| next() % 120).collect())
        .collect();
    let mut engine = S2Backend::Auto.new_engine();
    for s in &family {
        engine.add(s);
    }
    assert_eq!(engine.name(), "bitset");
    let out = engine.finish();
    assert_eq!(out.backend, "bitset");
    assert_eq!(out.mqcs, filter_maximal(&family));
}
