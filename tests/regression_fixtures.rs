//! Regression fixtures: hand-verified maximal quasi-clique sets for small
//! graphs, checked against every algorithm configuration.
//!
//! Unlike the differential tests (which compare the algorithms against the
//! in-repo oracle), these fixtures pin the *expected answers themselves*, so a
//! bug that slipped into both the oracle and the searchers would still be
//! caught. The expected sets were computed independently (by hand /
//! brute-force outside the library) from Definition 1 and Definition 2 of the
//! paper.

// These suites deliberately keep exercising the deprecated free-function
// entry points: until they are removed they must return exactly what the
// `Session` builder returns, and this is where that contract is enforced.
#![allow(deprecated)]

use mqce::prelude::*;

type Fixture = (&'static str, f64, usize, &'static [&'static [u32]]);

fn run_all_algorithms(g: &Graph, gamma: f64, theta: usize) -> Vec<(Algorithm, Vec<Vec<u32>>)> {
    [
        Algorithm::DcFastQc,
        Algorithm::FastQc,
        Algorithm::BasicDcFastQc,
        Algorithm::QuickPlus,
        Algorithm::QuickPlusRaw,
        Algorithm::Naive,
    ]
    .into_iter()
    .map(|algo| {
        let config = MqceConfig::new(gamma, theta).unwrap().with_algorithm(algo);
        (algo, enumerate_mqcs(g, &config).mqcs)
    })
    .collect()
}

fn expected_sets(expected: &[&[u32]]) -> Vec<Vec<u32>> {
    let mut sets: Vec<Vec<u32>> = expected.iter().map(|s| s.to_vec()).collect();
    sets.sort();
    sets
}

fn check_fixtures(g: &Graph, fixtures: &[Fixture]) {
    for &(label, gamma, theta, expected) in fixtures {
        let expected = expected_sets(expected);
        for (algo, got) in run_all_algorithms(g, gamma, theta) {
            assert_eq!(
                got, expected,
                "{label}: algorithm {algo:?} at gamma={gamma}, theta={theta}"
            );
        }
        // The branching ablations must also reproduce the fixture.
        for branching in [
            BranchingStrategy::HybridSe,
            BranchingStrategy::SymSe,
            BranchingStrategy::Se,
        ] {
            let config = MqceConfig::new(gamma, theta)
                .unwrap()
                .with_algorithm(Algorithm::DcFastQc)
                .with_branching(branching);
            assert_eq!(
                enumerate_mqcs(g, &config).mqcs,
                expected,
                "{label}: branching {branching:?} at gamma={gamma}, theta={theta}"
            );
        }
    }
}

#[test]
fn paper_figure1_fixtures() {
    let g = Graph::paper_figure1();
    let fixtures: &[Fixture] = &[
        (
            "fig1 γ=0.5 θ=3",
            0.5,
            3,
            &[
                &[0, 1, 2, 3, 4],
                &[0, 1, 2, 3, 5],
                &[0, 1, 2, 4, 5, 6, 7],
                &[0, 1, 2, 4, 6, 7, 8],
                &[1, 2, 3, 4, 5, 6, 7],
                &[1, 2, 3, 4, 6, 7, 8],
                &[1, 2, 5, 6, 8],
                &[1, 2, 5, 7, 8],
                &[1, 5, 6, 7, 8],
            ],
        ),
        (
            "fig1 γ=0.6 θ=3",
            0.6,
            3,
            &[
                &[0, 1, 2, 3, 4],
                &[0, 1, 2, 5],
                &[1, 2, 3, 5],
                &[1, 2, 4, 5],
                &[1, 2, 5, 6],
                &[1, 2, 5, 7],
                &[1, 5, 6, 7, 8],
            ],
        ),
        (
            "fig1 γ=0.6 θ=4",
            0.6,
            4,
            &[
                &[0, 1, 2, 3, 4],
                &[0, 1, 2, 5],
                &[1, 2, 3, 5],
                &[1, 2, 4, 5],
                &[1, 2, 5, 6],
                &[1, 2, 5, 7],
                &[1, 5, 6, 7, 8],
            ],
        ),
        (
            "fig1 γ=0.7 θ=3",
            0.7,
            3,
            &[&[0, 1, 2, 3, 4], &[1, 2, 5], &[1, 5, 6, 7, 8]],
        ),
        (
            "fig1 γ=0.9 θ=3",
            0.9,
            3,
            &[
                &[0, 1, 2, 4],
                &[1, 2, 3, 4],
                &[1, 2, 5],
                &[1, 5, 6, 7],
                &[1, 6, 7, 8],
            ],
        ),
        (
            "fig1 γ=1.0 θ=2 (maximal cliques)",
            1.0,
            2,
            &[
                &[0, 1, 2, 4],
                &[1, 2, 3, 4],
                &[1, 2, 5],
                &[1, 5, 6, 7],
                &[1, 6, 7, 8],
            ],
        ),
    ];
    check_fixtures(&g, fixtures);
}

#[test]
fn two_cliques_sharing_a_vertex() {
    // Two 4-cliques {0,1,2,3} and {0,4,5,6} glued at vertex 0.
    let g = Graph::from_edges(
        7,
        &[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (0, 4),
            (0, 5),
            (0, 6),
            (4, 5),
            (4, 6),
            (5, 6),
        ],
    );
    let fixtures: &[Fixture] = &[
        ("shared γ=0.9 θ=3", 0.9, 3, &[&[0, 1, 2, 3], &[0, 4, 5, 6]]),
        ("shared γ=0.6 θ=3", 0.6, 3, &[&[0, 1, 2, 3], &[0, 4, 5, 6]]),
        // At γ=0.5 the whole graph qualifies (every vertex sees ≥ 3 of the 6
        // others), and it absorbs both cliques.
        ("shared γ=0.5 θ=4", 0.5, 4, &[&[0, 1, 2, 3, 4, 5, 6]]),
    ];
    check_fixtures(&g, fixtures);
}

#[test]
fn cycle_fixtures() {
    // In a 6-cycle, the 0.5-MQCs are exactly the six consecutive triples.
    let g = Graph::cycle(6);
    let fixtures: &[Fixture] = &[
        (
            "cycle6 γ=0.5 θ=3",
            0.5,
            3,
            &[
                &[0, 1, 2],
                &[0, 1, 5],
                &[0, 4, 5],
                &[1, 2, 3],
                &[2, 3, 4],
                &[3, 4, 5],
            ],
        ),
        (
            "cycle6 γ=0.5 θ=2",
            0.5,
            2,
            &[
                &[0, 1, 2],
                &[0, 1, 5],
                &[0, 4, 5],
                &[1, 2, 3],
                &[2, 3, 4],
                &[3, 4, 5],
            ],
        ),
        // With γ=0.9 a triple would need to be a triangle; the cycle has none,
        // so only the edges remain (and θ=3 rules even those out).
        ("cycle6 γ=0.9 θ=3", 0.9, 3, &[]),
    ];
    check_fixtures(&g, fixtures);
}

#[test]
fn complete_and_star_fixtures() {
    let complete = Graph::complete(6);
    check_fixtures(
        &complete,
        &[
            ("K6 γ=0.9 θ=3", 0.9, 3, &[&[0, 1, 2, 3, 4, 5]]),
            ("K6 γ=0.5 θ=2", 0.5, 2, &[&[0, 1, 2, 3, 4, 5]]),
            ("K6 γ=0.9 θ=7 (too large)", 0.9, 7, &[]),
        ],
    );

    // A star has no 0.9-QC of size ≥ 3 (leaves have relative degree 1/(k−1)),
    // but the whole star is a 0.5-QC for small sizes: with 4 leaves the hub
    // sees 4/4 and each leaf 1/4 < 0.5, so only triples {hub, leaf, leaf}
    // would need each leaf to see ⌈0.5·2⌉ = 1 — satisfied. The triples are
    // absorbed by no larger set, so they are the 0.5-MQCs.
    let star = Graph::star(5);
    check_fixtures(
        &star,
        &[
            ("star5 γ=0.9 θ=3", 0.9, 3, &[]),
            (
                "star5 γ=0.5 θ=3",
                0.5,
                3,
                &[
                    &[0, 1, 2],
                    &[0, 1, 3],
                    &[0, 1, 4],
                    &[0, 2, 3],
                    &[0, 2, 4],
                    &[0, 3, 4],
                ],
            ),
        ],
    );
}

#[test]
fn disconnected_components_are_enumerated_independently() {
    // Two disjoint triangles plus an isolated vertex.
    let g = Graph::from_edges(7, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
    check_fixtures(
        &g,
        &[
            ("two triangles γ=0.9 θ=3", 0.9, 3, &[&[0, 1, 2], &[3, 4, 5]]),
            ("two triangles γ=0.5 θ=4", 0.5, 4, &[]),
        ],
    );
}

#[test]
fn property1_non_hereditary_example() {
    // The paper's Property 1 example: {v1,v3,v4,v5} is a 0.6-QC while its
    // subset {v1,v3,v4} is not (0-based: {0,2,3,4} vs {0,2,3}).
    let g = Graph::paper_figure1();
    assert!(mqce::core::quasiclique::is_quasi_clique(
        &g,
        &[0, 2, 3, 4],
        0.6
    ));
    assert!(!mqce::core::quasiclique::is_quasi_clique(
        &g,
        &[0, 2, 3],
        0.6
    ));
}

#[test]
fn fixture_results_pass_independent_verification() {
    let g = Graph::paper_figure1();
    for (gamma, theta) in [(0.5, 3usize), (0.6, 3), (0.7, 3), (0.9, 3)] {
        let result = enumerate_mqcs_default(&g, gamma, theta).unwrap();
        let params = MqceParams::new(gamma, theta).unwrap();
        let report = mqce::core::verify::verify_exact_against_oracle(&g, &result.mqcs, params);
        assert!(report.is_ok(), "gamma={gamma} theta={theta}: {report}");
    }
}
