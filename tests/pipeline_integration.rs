//! Integration tests spanning the whole workspace through the `mqce` facade:
//! graph generation → MQCE-S1 enumeration → set-trie filtering.

// These suites deliberately keep exercising the deprecated free-function
// entry points: until they are removed they must return exactly what the
// `Session` builder returns, and this is where that contract is enforced.
#![allow(deprecated)]

use mqce::core::naive;
use mqce::graph::generators::{
    community_graph, erdos_renyi_gnm, planted_quasi_cliques, CommunityGraphParams, PlantedGroup,
};
use mqce::prelude::*;

/// Every algorithm must agree with the exhaustive oracle on random small
/// graphs across the parameter grid.
#[test]
fn all_algorithms_match_oracle_on_random_graphs() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(123456);
    let algorithms = [
        Algorithm::DcFastQc,
        Algorithm::FastQc,
        Algorithm::BasicDcFastQc,
        Algorithm::QuickPlus,
        Algorithm::QuickPlusRaw,
    ];
    for case in 0..20 {
        let n = rng.gen_range(6..13);
        let p = rng.gen_range(0.25..0.85);
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(p) {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(n, &edges);
        let gamma = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0][case % 6];
        let theta = 2 + case % 3;
        let expected = naive::all_maximal_quasi_cliques(&g, MqceParams::new(gamma, theta).unwrap());
        for algo in algorithms {
            let result = enumerate_mqcs(
                &g,
                &MqceConfig::new(gamma, theta).unwrap().with_algorithm(algo),
            );
            assert_eq!(
                result.mqcs, expected,
                "{algo:?} differs from the oracle (case {case}, gamma={gamma}, theta={theta}, n={n})"
            );
        }
    }
}

/// The fast and baseline algorithms must agree with each other on graphs that
/// are too large for the oracle.
#[test]
fn algorithms_agree_on_medium_graphs() {
    // Workload sizes are chosen so that even Quick+ (the intentionally weak
    // baseline — the paper reports it as INF on large dense datasets)
    // finishes in well under a second: cross-algorithm *agreement* is what
    // this test checks, not relative speed.
    let graphs = vec![
        (
            "community",
            community_graph(
                CommunityGraphParams {
                    n: 80,
                    num_communities: 8,
                    p_intra: 0.85,
                    inter_degree: 1.5,
                },
                9,
            ),
            0.8,
            5,
        ),
        ("er-sparse", erdos_renyi_gnm(200, 1200, 17), 0.8, 4),
        (
            "planted",
            planted_quasi_cliques(
                120,
                0.03,
                &[
                    PlantedGroup {
                        size: 12,
                        density: 0.92,
                    },
                    PlantedGroup {
                        size: 9,
                        density: 0.95,
                    },
                ],
                33,
            ),
            0.85,
            6,
        ),
    ];
    for (name, g, gamma, theta) in graphs {
        let reference = enumerate_mqcs(
            &g,
            &MqceConfig::new(gamma, theta)
                .unwrap()
                .with_algorithm(Algorithm::DcFastQc),
        );
        assert!(!reference.mqcs.is_empty() || name == "er-sparse");
        for algo in [
            Algorithm::FastQc,
            Algorithm::BasicDcFastQc,
            Algorithm::QuickPlus,
        ] {
            let result = enumerate_mqcs(
                &g,
                &MqceConfig::new(gamma, theta).unwrap().with_algorithm(algo),
            );
            assert_eq!(
                result.mqcs, reference.mqcs,
                "{algo:?} disagrees with DCFastQC on {name}"
            );
        }
    }
}

/// Every reported MQC must be a quasi-clique, be large enough, and admit no
/// single-vertex extension that is again a quasi-clique.
#[test]
fn outputs_are_sound_quasi_cliques() {
    let g = community_graph(
        CommunityGraphParams {
            n: 200,
            num_communities: 10,
            p_intra: 0.9,
            inter_degree: 2.0,
        },
        5,
    );
    let gamma = 0.85;
    let theta = 5;
    let result = enumerate_mqcs_default(&g, gamma, theta).unwrap();
    assert!(!result.mqcs.is_empty(), "expected some communities");
    for mqc in &result.mqcs {
        assert!(mqc.len() >= theta);
        assert!(is_quasi_clique(&g, mqc, gamma));
        // No single vertex can extend a maximal QC.
        for w in g.vertices() {
            if mqc.contains(&w) {
                continue;
            }
            let mut ext = mqc.clone();
            ext.push(w);
            assert!(
                !is_quasi_clique(&g, &ext, gamma),
                "MQC {mqc:?} extendable by {w}"
            );
        }
    }
    // No MQC may be a subset of another.
    for a in &result.mqcs {
        for b in &result.mqcs {
            if a != b {
                assert!(!a.iter().all(|v| b.contains(v)), "{a:?} ⊂ {b:?}");
            }
        }
    }
}

/// The S1 output of DCFastQC contains every maximal QC, and the set-trie
/// filter of the facade reduces it to exactly the maximal ones.
#[test]
fn s1_plus_settrie_equals_pipeline() {
    let g = planted_quasi_cliques(
        90,
        0.02,
        &[PlantedGroup {
            size: 10,
            density: 1.0,
        }],
        11,
    );
    let config = MqceConfig::new(0.9, 5).unwrap();
    let s1 = mqce::core::solve_s1(&g, &config);
    let filtered = filter_maximal(&s1.outputs);
    let pipeline = enumerate_mqcs(&g, &config);
    assert_eq!(filtered, pipeline.mqcs);
    for mqc in &pipeline.mqcs {
        assert!(s1.outputs.contains(mqc), "S1 output must contain each MQC");
    }
}

/// Graph statistics, set-trie and solver compose for the Table-1 style report.
#[test]
fn table1_style_report_fields() {
    let g = community_graph(
        CommunityGraphParams {
            n: 100,
            num_communities: 6,
            p_intra: 0.9,
            inter_degree: 1.0,
        },
        3,
    );
    let stats = GraphStats::compute(&g);
    assert_eq!(stats.num_vertices, 100);
    assert!(stats.degeneracy >= 1);
    let result = enumerate_mqcs_default(&g, 0.85, 5).unwrap();
    if let Some((min, max, avg)) = result.mqc_size_stats() {
        assert!(min >= 5);
        assert!(max >= min);
        assert!(avg >= min as f64 && avg <= max as f64);
    }
    // #QCs reported by S1 is at least #MQCs.
    assert!(result.qcs.len() >= result.mqcs.len());
}

/// Degenerate inputs are handled gracefully end to end.
#[test]
fn degenerate_inputs() {
    for algo in [Algorithm::DcFastQc, Algorithm::QuickPlus, Algorithm::FastQc] {
        let empty = Graph::empty(0);
        let r = enumerate_mqcs(
            &empty,
            &MqceConfig::new(0.9, 2).unwrap().with_algorithm(algo),
        );
        assert!(r.mqcs.is_empty());

        let isolated = Graph::empty(5);
        let r = enumerate_mqcs(
            &isolated,
            &MqceConfig::new(0.9, 1).unwrap().with_algorithm(algo),
        );
        // Each isolated vertex is a maximal QC of size 1.
        assert_eq!(r.mqcs.len(), 5);

        let single_edge = Graph::from_edges(2, &[(0, 1)]);
        let r = enumerate_mqcs(
            &single_edge,
            &MqceConfig::new(1.0, 2).unwrap().with_algorithm(algo),
        );
        assert_eq!(r.mqcs, vec![vec![0, 1]]);
    }
}

/// Invalid parameters are rejected before any search happens.
#[test]
fn invalid_parameters_are_rejected() {
    assert!(MqceConfig::new(0.3, 2).is_err());
    assert!(MqceConfig::new(0.9, 0).is_err());
    assert!(enumerate_mqcs_default(&Graph::complete(3), 1.5, 2).is_err());
}
