//! `mqce` — maximal γ-quasi-clique enumeration for Rust.
//!
//! This is the facade crate of the workspace reproducing *"Fast Maximal
//! Quasi-clique Enumeration: A Pruning and Branching Co-Design Approach"*
//! (Yu & Long, SIGMOD 2024). It re-exports:
//!
//! * [`graph`] — the graph substrate ([`mqce_graph`]): CSR graphs, builders,
//!   generators, k-core / degeneracy, induced subgraphs, edge-list IO;
//! * [`settrie`] — the set-trie index ([`mqce_settrie`]) used for maximality
//!   filtering (MQCE-S2);
//! * [`core`] — the enumeration algorithms ([`mqce_core`]): FastQC, DCFastQC,
//!   the Quick+ baseline, and the end-to-end pipeline behind the
//!   [`Session`] builder (plus the in-process sharded driver in
//!   [`core::shard`]).
//!
//! # Example
//!
//! ```
//! use mqce::prelude::*;
//!
//! // Build a small social network: two tight friend groups joined by a bridge.
//! let g = Graph::from_edges(7, &[
//!     (0, 1), (0, 2), (1, 2), (2, 3),          // triangle {0,1,2} + bridge
//!     (3, 4), (3, 5), (3, 6), (4, 5), (4, 6), (5, 6),  // 4-clique {3,4,5,6}
//! ]);
//! let result = Session::open(g)
//!     .params(MqceParams::new(0.9, 3).unwrap())
//!     .run();
//! assert_eq!(result.mqcs, vec![vec![0, 1, 2], vec![3, 4, 5, 6]]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mqce_core as core;
pub use mqce_graph as graph;
pub use mqce_settrie as settrie;

pub use mqce_core::{IncrementalSession, Session};

/// One-stop imports: the graph type, the solver entry points and the
/// configuration types.
pub mod prelude {
    pub use mqce_core::prelude::*;
    pub use mqce_core::query::{find_mqcs_containing, find_mqcs_containing_default};
    pub use mqce_core::verify::{verify_mqc_set, verify_s1_output};
    pub use mqce_core::{
        find_largest_mqcs, AdjacencyBackend, Algorithm, BranchingStrategy, MqceConfig, MqceParams,
        MqceResult, Session,
    };
    pub use mqce_graph::{Graph, GraphBuilder, GraphStats, VertexId};
    pub use mqce_settrie::{
        filter_maximal, filter_maximal_with, MaximalityEngine, S2Backend, SetTrie,
    };
}
