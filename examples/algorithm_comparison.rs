//! Compare the algorithms and branching strategies on one workload.
//!
//! A miniature version of the paper's Figures 7/11/12: run Quick+, FastQC and
//! DCFastQC (with every branching strategy) on the same graph and report
//! running time, branch counts and output sizes.
//!
//! ```text
//! cargo run --release --example algorithm_comparison
//! ```

use std::time::Instant;

use mqce::graph::generators::{community_graph, CommunityGraphParams};
use mqce::graph::GraphStats;
use mqce::prelude::*;

fn main() {
    // Communities of ~12 vertices keep the workload feasible for *every*
    // configuration, including the Quick+ baseline — on larger dense
    // communities Quick+ is the paper's INF column and never returns.
    let g = community_graph(
        CommunityGraphParams {
            n: 120,
            num_communities: 10,
            p_intra: 0.9,
            inter_degree: 2.0,
        },
        42,
    );
    let gamma = 0.85;
    let theta = 6;
    println!("workload: {}", GraphStats::compute(&g));
    println!("parameters: gamma={gamma} theta={theta}\n");

    let configurations: Vec<(&str, MqceConfig)> = vec![
        (
            "Quick+ (baseline)",
            MqceConfig::new(gamma, theta)
                .unwrap()
                .with_algorithm(Algorithm::QuickPlus),
        ),
        (
            "FastQC (no DC)",
            MqceConfig::new(gamma, theta)
                .unwrap()
                .with_algorithm(Algorithm::FastQc),
        ),
        (
            "BDCFastQC (basic DC)",
            MqceConfig::new(gamma, theta)
                .unwrap()
                .with_algorithm(Algorithm::BasicDcFastQc),
        ),
        (
            "DCFastQC + SE",
            MqceConfig::new(gamma, theta)
                .unwrap()
                .with_algorithm(Algorithm::DcFastQc)
                .with_branching(BranchingStrategy::Se),
        ),
        (
            "DCFastQC + Sym-SE",
            MqceConfig::new(gamma, theta)
                .unwrap()
                .with_algorithm(Algorithm::DcFastQc)
                .with_branching(BranchingStrategy::SymSe),
        ),
        (
            "DCFastQC + Hybrid-SE",
            MqceConfig::new(gamma, theta)
                .unwrap()
                .with_algorithm(Algorithm::DcFastQc)
                .with_branching(BranchingStrategy::HybridSe),
        ),
    ];

    println!(
        "{:<22} {:>10} {:>12} {:>10} {:>8}",
        "configuration", "time (ms)", "branches", "S1 output", "MQCs"
    );
    let mut reference: Option<Vec<Vec<u32>>> = None;
    for (name, config) in configurations {
        let start = Instant::now();
        let result = Session::open(g.clone()).config(config).run();
        let elapsed = start.elapsed();
        println!(
            "{:<22} {:>10.1} {:>12} {:>10} {:>8}",
            name,
            elapsed.as_secs_f64() * 1e3,
            result.stats.branches,
            result.qcs.len(),
            result.mqcs.len()
        );
        match &reference {
            None => reference = Some(result.mqcs.clone()),
            Some(expected) => assert_eq!(
                &result.mqcs, expected,
                "all configurations must produce the same maximal quasi-cliques"
            ),
        }
    }
    println!("\nall configurations agree on the set of maximal quasi-cliques.");
}
