//! Working with graph files: generate → save → convert → load → mine.
//!
//! The paper's experiments run on konect.cc edge-list dumps; other miners in
//! the literature exchange DIMACS or METIS files. This example shows the full
//! round trip through all three formats and verifies that the enumeration
//! result is identical regardless of the on-disk representation.
//!
//! Run with: `cargo run --release --example dataset_io`

use mqce::graph::generators::{planted_quasi_cliques, PlantedGroup};
use mqce::graph::{edge_list, formats, stats};
use mqce::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("mqce_dataset_io_example");
    std::fs::create_dir_all(&dir)?;

    // A synthetic protein-interaction-like network with two planted complexes.
    let g = planted_quasi_cliques(
        500,
        0.01,
        &[
            PlantedGroup {
                size: 14,
                density: 0.95,
            },
            PlantedGroup {
                size: 10,
                density: 1.0,
            },
        ],
        7,
    );
    println!("generated: {}", GraphStats::compute(&g));
    println!("triangles: {}", stats::triangle_count(&g));
    println!(
        "global clustering coefficient: {:.4}",
        stats::global_clustering_coefficient(&g)
    );

    // Save in all three formats.
    let edge_path = dir.join("ppi.txt");
    let dimacs_path = dir.join("ppi.clq");
    let metis_path = dir.join("ppi.metis");
    edge_list::save_edge_list(&g, &edge_path)?;
    formats::save_dimacs(&g, &dimacs_path)?;
    formats::save_metis(&g, &metis_path)?;
    println!(
        "\nwrote {:?}, {:?}, {:?}",
        edge_path, dimacs_path, metis_path
    );

    // Load each one back and mine it with the paper's default algorithm.
    let from_edge_list = edge_list::load_edge_list(&edge_path)?.graph;
    let from_dimacs = formats::load_dimacs(&dimacs_path)?;
    let from_metis = formats::load_metis(&metis_path)?;

    let gamma = 0.9;
    let theta = 8;
    // DIMACS and METIS preserve vertex ids, so their results must be
    // literally identical. The edge-list format only records edges, so
    // isolated vertices are dropped and ids are compacted on load — there the
    // comparison is on the multiset of MQC sizes.
    let mut reference: Option<Vec<Vec<u32>>> = None;
    let mut reference_sizes: Vec<usize> = Vec::new();
    for (label, graph, ids_preserved) in [
        ("DIMACS   ", &from_dimacs, true),
        ("METIS    ", &from_metis, true),
        ("edge list", &from_edge_list, false),
    ] {
        let result = enumerate_mqcs_default(graph, gamma, theta)?;
        println!(
            "{label}: {} maximal {gamma}-quasi-cliques of size >= {theta} \
             (S1 {:.3}s, S2 {:.3}s)",
            result.mqcs.len(),
            result.s1_time.as_secs_f64(),
            result.s2_time.as_secs_f64()
        );
        let mut sizes: Vec<usize> = result.mqcs.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        match &reference {
            None => {
                reference = Some(result.mqcs);
                reference_sizes = sizes;
            }
            Some(expected) => {
                if ids_preserved {
                    assert_eq!(&result.mqcs, expected, "{label} disagrees");
                } else {
                    assert_eq!(
                        sizes, reference_sizes,
                        "{label} size distribution disagrees"
                    );
                }
            }
        }
    }
    println!("\nall three formats produce consistent results");

    // The planted complexes are recovered.
    let mqcs = reference.unwrap_or_default();
    let complex_a: Vec<u32> = (0..14).collect();
    let complex_b: Vec<u32> = (14..24).collect();
    for (name, complex) in [("A", &complex_a), ("B", &complex_b)] {
        let covered = mqcs
            .iter()
            .any(|mqc| complex.iter().filter(|v| mqc.contains(v)).count() >= complex.len() - 1);
        println!(
            "planted complex {name} ({} proteins): {}",
            complex.len(),
            if covered {
                "recovered"
            } else {
                "NOT recovered"
            }
        );
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
