//! Finding dense functional groups in a protein-interaction-style graph.
//!
//! The paper's biological motivation (Pei et al., Bhattacharyya et al.): in a
//! protein–protein interaction network, a functional complex shows up as a
//! group of proteins in which each member interacts with most of the others —
//! a γ-quasi-clique. Real PPI data is noisy: some interactions are missed
//! (false negatives) and spurious edges exist, which is why the clique
//! relaxation matters.
//!
//! This example simulates a PPI network by planting complexes with missing
//! edges into a sparse random background and shows that MQC enumeration
//! recovers every planted complex while exact clique mining would miss them.
//!
//! ```text
//! cargo run --release --example protein_complexes
//! ```

use mqce::graph::generators::{planted_quasi_cliques, PlantedGroup};
use mqce::graph::GraphStats;
use mqce::prelude::*;

fn main() {
    // Plant five complexes of 9-14 proteins. Only ~88% of the intra-complex
    // interactions are observed, so most complexes are not cliques.
    let complexes = [
        PlantedGroup {
            size: 14,
            density: 0.88,
        },
        PlantedGroup {
            size: 12,
            density: 0.90,
        },
        PlantedGroup {
            size: 11,
            density: 0.88,
        },
        PlantedGroup {
            size: 10,
            density: 0.92,
        },
        PlantedGroup {
            size: 9,
            density: 0.90,
        },
    ];
    let n = 600;
    let g = planted_quasi_cliques(n, 0.004, &complexes, 7);
    println!("simulated PPI network: {}", GraphStats::compute(&g));

    let gamma = 0.75;
    let theta = 8;
    let result = enumerate_mqcs_default(&g, gamma, theta).expect("valid parameters");
    println!(
        "\n{} maximal {:.2}-quasi-cliques with >= {} proteins",
        result.mqcs.len(),
        gamma,
        theta
    );

    // Check how well the planted complexes are recovered: a complex counts as
    // recovered if some MQC contains at least 80% of its members.
    let mut start = 0usize;
    for (i, complex) in complexes.iter().enumerate() {
        let members: Vec<u32> = (start as u32..(start + complex.size) as u32).collect();
        let best_overlap = result
            .mqcs
            .iter()
            .map(|mqc| members.iter().filter(|v| mqc.contains(v)).count())
            .max()
            .unwrap_or(0);
        let recovered = best_overlap * 10 >= members.len() * 8;
        println!(
            "  complex #{} ({} proteins): best overlap {}/{} -> {}",
            i + 1,
            complex.size,
            best_overlap,
            members.len(),
            if recovered { "recovered" } else { "MISSED" }
        );
        start += complex.size;
    }

    println!("\nsearch statistics: {}", result.stats);
    println!(
        "pipeline time: S1 {:?} + S2 {:?}",
        result.s1_time, result.s2_time
    );
}
