//! Top-k mining and query-driven search.
//!
//! Scenario: an analyst has a large collaboration network and wants (a) the
//! handful of *largest* tightly-knit groups overall, and (b) the groups a
//! specific person belongs to — without enumerating every maximal
//! quasi-clique in the graph.
//!
//! Run with: `cargo run --release --example topk_and_query`

use mqce::core::kernel::{expand_kernels, KernelConfig};
use mqce::graph::generators::{community_graph, CommunityGraphParams};
use mqce::prelude::*;

fn main() {
    // A synthetic collaboration network: 400 researchers in 25 groups with a
    // sprinkling of cross-group collaborations.
    let g = community_graph(
        CommunityGraphParams {
            n: 400,
            num_communities: 25,
            p_intra: 0.85,
            inter_degree: 1.5,
        },
        2024,
    );
    let gamma = 0.8;
    println!("graph: {}", GraphStats::compute(&g));

    // (a) The five largest maximal 0.8-quasi-cliques, found exactly.
    let top = find_largest_mqcs(&g, gamma, 5, None).expect("valid parameters");
    println!("\ntop-5 largest maximal {gamma}-quasi-cliques (exact):");
    for (rank, mqc) in top.mqcs.iter().enumerate() {
        println!(
            "  #{:<2} size {:<3} members {:?}",
            rank + 1,
            mqc.len(),
            &mqc[..mqc.len().min(12)]
        );
    }
    println!(
        "  (threshold search finished at theta = {} after {} rounds)",
        top.final_theta, top.rounds
    );

    // (a') The same question answered by the kernel-expansion heuristic of the
    // related work — much cheaper, but without the exactness guarantee.
    let heuristic = expand_kernels(
        &g,
        KernelConfig::new(gamma, 0.95, 4, 5).expect("valid config"),
    )
    .expect("valid parameters");
    println!(
        "\nkernel-expansion heuristic (gamma' = 0.95): {} kernels expanded",
        heuristic.kernels
    );
    for (rank, qc) in heuristic.qcs.iter().enumerate() {
        println!("  #{:<2} size {}", rank + 1, qc.len());
    }
    if let (Some(exact), Some(approx)) = (top.mqcs.first(), heuristic.qcs.first()) {
        println!(
            "  largest: exact {} vs heuristic {} vertices",
            exact.len(),
            approx.len()
        );
    }

    // (b) Which dense groups does researcher 17 belong to? The query-driven
    // search restricts the work to the 2-hop neighbourhood of the query.
    let person = 17u32;
    let result = find_mqcs_containing(
        &g,
        &[person],
        &MqceConfig::new(gamma, 5).expect("valid parameters"),
    )
    .expect("query vertex exists");
    println!(
        "\nmaximal {gamma}-quasi-cliques of size >= 5 containing vertex {person} \
         (search universe: {} of {} vertices):",
        result.universe_size,
        g.num_vertices()
    );
    for mqc in &result.mqcs {
        println!("  size {:<3} members {:?}", mqc.len(), mqc);
    }
    if result.mqcs.is_empty() {
        println!("  (vertex {person} is not part of any group that dense)");
    }
}
