//! Quickstart: enumerate maximal quasi-cliques of a small graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mqce::prelude::*;

fn main() {
    // The running-example graph of the paper (Figure 1): a dense region on
    // vertices {0..4} and a second dense region on {1, 5..8}.
    let g = mqce::graph::Graph::paper_figure1();
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Enumerate all maximal 0.6-quasi-cliques with at least 4 vertices using
    // the paper's default algorithm (DCFastQC + Hybrid-SE branching).
    let gamma = 0.6;
    let theta = 4;
    let result = enumerate_mqcs_default(&g, gamma, theta).expect("valid parameters");

    println!(
        "found {} maximal {:.1}-quasi-cliques with >= {} vertices:",
        result.mqcs.len(),
        gamma,
        theta
    );
    for (i, mqc) in result.mqcs.iter().enumerate() {
        // Report 1-based vertex names to match the paper's figure.
        let names: Vec<String> = mqc.iter().map(|v| format!("v{}", v + 1)).collect();
        println!(
            "  MQC #{:<2} ({} vertices): {}",
            i + 1,
            mqc.len(),
            names.join(", ")
        );
        assert!(is_quasi_clique(&g, mqc, gamma));
    }

    println!("\nsearch statistics: {}", result.stats);
    println!(
        "S1 (branch-and-bound) took {:?}, S2 (maximality filtering) took {:?}",
        result.s1_time, result.s2_time
    );

    // The same call with a different algorithm, for comparison.
    let quick = Session::open(g.clone())
        .config(
            MqceConfig::new(gamma, theta)
                .unwrap()
                .with_algorithm(Algorithm::QuickPlus),
        )
        .run();
    assert_eq!(quick.mqcs, result.mqcs);
    println!(
        "\nQuick+ baseline agrees, but emitted {} candidate QCs vs {} for DCFastQC",
        quick.qcs.len(),
        result.qcs.len()
    );
}
