//! Community detection on a synthetic social network.
//!
//! The paper motivates MQC enumeration with community search: members of a
//! real community interact with *most* (not necessarily all) other members,
//! which is exactly the γ-quasi-clique relaxation of a clique. This example
//! plants communities in a noisy social graph and shows that the enumerated
//! MQCs recover them.
//!
//! ```text
//! cargo run --release --example community_detection
//! ```

use mqce::graph::generators::{community_graph, CommunityGraphParams};
use mqce::graph::GraphStats;
use mqce::prelude::*;

fn main() {
    // A 400-vertex social network with 25 planted communities (~16 people
    // each): 85% of the possible intra-community ties exist, plus ~2 random
    // inter-community ties per person. (Communities much larger than this
    // contain combinatorially many overlapping quasi-cliques — enumerating
    // them all is possible but no longer a quick demo.)
    let params = CommunityGraphParams {
        n: 400,
        num_communities: 25,
        p_intra: 0.85,
        inter_degree: 2.0,
    };
    let g = community_graph(params, 20240614);
    println!("synthetic social network: {}", GraphStats::compute(&g));

    // Communities of at least 8 people where everyone knows at least 80% of
    // the other members.
    let gamma = 0.8;
    let theta = 8;
    let config = MqceConfig::new(gamma, theta)
        .unwrap()
        .with_algorithm(Algorithm::DcFastQc);
    let result = Session::open(g.clone()).config(config).run();

    println!(
        "\n{} maximal {:.0}%-quasi-cliques with >= {} members",
        result.mqcs.len(),
        gamma * 100.0,
        theta
    );
    if let Some((min, max, avg)) = result.mqc_size_stats() {
        println!("community sizes: min={min} max={max} avg={avg:.2}");
    }

    // Print the largest few communities.
    let mut by_size = result.mqcs.clone();
    by_size.sort_by_key(|c| std::cmp::Reverse(c.len()));
    for (i, community) in by_size.iter().take(5).enumerate() {
        println!(
            "  top-{} community ({} members): {:?}{}",
            i + 1,
            community.len(),
            &community[..community.len().min(12)],
            if community.len() > 12 { " …" } else { "" }
        );
    }

    println!("\nsearch statistics: {}", result.stats);
    println!(
        "S1 took {:?}, S2 took {:?}; {} candidate QCs were filtered to {} maximal ones",
        result.s1_time,
        result.s2_time,
        result.qcs.len(),
        result.mqcs.len()
    );
}
