//! Query-driven maximal quasi-clique search.
//!
//! A common variant of MQCE (Section 7 of the paper: Chou et al., Lee &
//! Lakshmanan) asks only for the maximal γ-quasi-cliques that *contain a
//! given set of query vertices* — e.g. "which dense communities is this user
//! part of?". Enumerating everything and filtering afterwards wastes almost
//! all of the work; instead this module restricts the search up-front:
//!
//! * For γ ≥ 0.5 every quasi-clique has diameter at most 2 (Property 2), so
//!   any QC containing a query vertex `q` lies inside the closed 2-hop
//!   neighbourhood of `q`. The candidate universe is therefore the
//!   *intersection* of the query vertices' 2-hop neighbourhoods.
//! * The FastQC search is then seeded with the query set as the initial
//!   partial set `S`, so every explored branch already contains the query.
//!
//! Maximality filtering stays globally correct: any quasi-clique that
//! contains the result also contains the query, so it lives inside the same
//! restricted universe and is found by the same search.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use mqce_graph::subgraph::two_hop_neighborhood;
use mqce_graph::{Graph, VertexId};

use crate::config::{BranchingStrategy, MqceConfig, MqceParams};
use crate::fastqc::run_fastqc;
use crate::quasiclique::is_quasi_clique;
use crate::stats::SearchStats;

/// Errors specific to query-driven search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The query set is empty.
    EmptyQuery,
    /// A query vertex id is not a vertex of the graph.
    VertexOutOfRange(VertexId),
    /// The same vertex appears twice in the query.
    DuplicateVertex(VertexId),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::EmptyQuery => write!(f, "the query vertex set is empty"),
            QueryError::VertexOutOfRange(v) => write!(f, "query vertex {v} is not in the graph"),
            QueryError::DuplicateVertex(v) => write!(f, "query vertex {v} appears twice"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Result of a query-driven search.
#[derive(Clone, Debug, Default)]
pub struct QueryResult {
    /// The maximal γ-quasi-cliques of size ≥ θ that contain every query
    /// vertex, sorted lexicographically.
    pub mqcs: Vec<Vec<VertexId>>,
    /// Size of the restricted candidate universe the search ran on
    /// (query vertices included).
    pub universe_size: usize,
    /// Statistics of the branch-and-bound search.
    pub stats: SearchStats,
    /// Whether the maximality filtering hit the deadline (the MQC list is
    /// then a sound partial antichain).
    pub s2_timed_out: bool,
    /// Wall-clock time of the whole query.
    pub elapsed: Duration,
}

/// Finds all maximal γ-quasi-cliques of size ≥ θ that contain every vertex of
/// `query`.
///
/// `config.algorithm` is ignored (the restricted search always uses FastQC);
/// the branching strategy and time limit are honoured.
///
/// # Errors
/// Returns a [`QueryError`] if the query is empty, contains duplicates, or
/// references a vertex outside the graph.
pub fn find_mqcs_containing(
    g: &Graph,
    query: &[VertexId],
    config: &MqceConfig,
) -> Result<QueryResult, QueryError> {
    let start = Instant::now();
    validate_query(g, query)?;
    let params = config.params;
    let deadline = config.time_limit.map(|limit| Instant::now() + limit);

    // Candidate universe: intersection of the closed 2-hop neighbourhoods.
    let universe = query_universe(g, query);
    // If even the universe is smaller than θ, no result can exist.
    if universe.len() < params.theta {
        return Ok(QueryResult {
            mqcs: Vec::new(),
            universe_size: universe.len(),
            stats: SearchStats::default(),
            s2_timed_out: false,
            elapsed: start.elapsed(),
        });
    }

    // Work on the induced subgraph so the search's O(n) arrays are sized by
    // the (usually tiny) universe, not the whole graph.
    let sub = mqce_graph::InducedSubgraph::new(g, &universe);
    let local_query: Vec<VertexId> = query
        .iter()
        .map(|&v| sub.local(v).expect("query vertex is in its own universe"))
        .collect();
    let local_cand: Vec<VertexId> = (0..universe.len() as VertexId)
        .filter(|v| !local_query.contains(v))
        .collect();

    let outcome = run_fastqc(
        &sub.graph,
        &local_query,
        &local_cand,
        params,
        config.branching,
        deadline,
    );

    // The search can only emit sets that contain S = query, but be defensive
    // about it (and about the QC property) before filtering maximality.
    let mut qcs: Vec<Vec<VertexId>> = Vec::with_capacity(outcome.outputs.len());
    for local_set in &outcome.outputs {
        let global = sub.to_global_set(local_set);
        if query.iter().all(|q| global.contains(q))
            && global.len() >= params.theta
            && is_quasi_clique(g, &global, params.gamma)
        {
            qcs.push(global);
        }
    }
    // Maximality filtering through the configured S2 engine, honouring what
    // remains of the time budget (plus the standard grace slice).
    let mut engine = config.s2_backend.new_engine_with_model(config.s2_model);
    let s2_dl = crate::pipeline::s2_deadline(deadline, config.time_limit);
    let feed_truncated = !crate::pipeline::feed_sets(engine.as_mut(), &qcs, s2_dl);
    let s2_out = engine.finish_with_deadline(s2_dl);

    Ok(QueryResult {
        mqcs: s2_out.mqcs,
        universe_size: universe.len(),
        stats: outcome.stats,
        s2_timed_out: s2_out.timed_out || feed_truncated,
        elapsed: start.elapsed(),
    })
}

/// Convenience wrapper with the default configuration (Hybrid-SE branching,
/// no time limit).
pub fn find_mqcs_containing_default(
    g: &Graph,
    query: &[VertexId],
    gamma: f64,
    theta: usize,
) -> Result<QueryResult, QueryError> {
    let params = MqceParams::new(gamma, theta).map_err(|_| QueryError::EmptyQuery);
    // Parameter errors are surfaced through MqceConfig in the public pipeline;
    // here an invalid γ/θ cannot be represented, so fall back to a panic-free
    // minimal config only when the parameters are valid.
    let params = match params {
        Ok(p) => p,
        Err(_) => return Err(QueryError::EmptyQuery),
    };
    let config = MqceConfig {
        params,
        algorithm: crate::config::Algorithm::FastQc,
        branching: BranchingStrategy::HybridSe,
        max_round: 2,
        s2_backend: crate::config::S2Backend::default(),
        s2_model: crate::config::S2CostModel::default(),
        time_limit: None,
    };
    find_mqcs_containing(g, query, &config)
}

fn validate_query(g: &Graph, query: &[VertexId]) -> Result<(), QueryError> {
    if query.is_empty() {
        return Err(QueryError::EmptyQuery);
    }
    let mut seen: HashMap<VertexId, ()> = HashMap::with_capacity(query.len());
    for &q in query {
        if (q as usize) >= g.num_vertices() {
            return Err(QueryError::VertexOutOfRange(q));
        }
        if seen.insert(q, ()).is_some() {
            return Err(QueryError::DuplicateVertex(q));
        }
    }
    Ok(())
}

/// The candidate universe of a query: the intersection over all query
/// vertices of their closed 2-hop neighbourhoods (sorted). Always contains
/// the query vertices themselves, even if they are further than 2 hops apart
/// (in that case no QC exists and the search terminates immediately anyway).
pub fn query_universe(g: &Graph, query: &[VertexId]) -> Vec<VertexId> {
    let mut counts: HashMap<VertexId, usize> = HashMap::new();
    for &q in query {
        let mut hood = two_hop_neighborhood(g, q);
        if !hood.contains(&q) {
            hood.push(q);
        }
        for v in hood {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    let mut universe: Vec<VertexId> = counts
        .into_iter()
        .filter_map(|(v, c)| (c == query.len()).then_some(v))
        .collect();
    for &q in query {
        if !universe.contains(&q) {
            universe.push(q);
        }
    }
    universe.sort_unstable();
    universe
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::enumerate_mqcs_default;
    use mqce_graph::generators::{planted_quasi_cliques, PlantedGroup};

    /// Reference implementation: full enumeration followed by a containment
    /// filter.
    fn reference_query(
        g: &Graph,
        query: &[VertexId],
        gamma: f64,
        theta: usize,
    ) -> Vec<Vec<VertexId>> {
        let all = enumerate_mqcs_default(g, gamma, theta).unwrap().mqcs;
        all.into_iter()
            .filter(|mqc| query.iter().all(|q| mqc.contains(q)))
            .collect()
    }

    #[test]
    fn matches_filtering_full_enumeration_on_paper_graph() {
        let g = Graph::paper_figure1();
        for gamma in [0.5, 0.6, 0.7, 0.9] {
            for theta in [2usize, 3, 4] {
                for query in [vec![0u32], vec![3], vec![0, 2], vec![4, 5], vec![0, 8]] {
                    let got = find_mqcs_containing_default(&g, &query, gamma, theta)
                        .unwrap()
                        .mqcs;
                    let expected = reference_query(&g, &query, gamma, theta);
                    assert_eq!(got, expected, "gamma={gamma} theta={theta} query={query:?}");
                }
            }
        }
    }

    #[test]
    fn planted_community_is_found_from_any_member() {
        let g = planted_quasi_cliques(
            70,
            0.02,
            &[PlantedGroup {
                size: 10,
                density: 1.0,
            }],
            31,
        );
        for q in [0u32, 4, 9] {
            let result = find_mqcs_containing_default(&g, &[q], 0.9, 8).unwrap();
            assert!(
                result
                    .mqcs
                    .iter()
                    .any(|mqc| (0..10).all(|v| mqc.contains(&v))),
                "query {q} misses the planted clique"
            );
            assert!(result.universe_size < 70, "universe was not restricted");
        }
    }

    #[test]
    fn disconnected_query_has_no_results() {
        // Two far-apart vertices of a path can never be in one QC (γ ≥ 0.5).
        let g = Graph::path(10);
        let result = find_mqcs_containing_default(&g, &[0, 9], 0.5, 2).unwrap();
        assert!(result.mqcs.is_empty());
    }

    #[test]
    fn query_errors() {
        let g = Graph::complete(4);
        assert_eq!(
            find_mqcs_containing_default(&g, &[], 0.9, 2).unwrap_err(),
            QueryError::EmptyQuery
        );
        assert_eq!(
            find_mqcs_containing_default(&g, &[7], 0.9, 2).unwrap_err(),
            QueryError::VertexOutOfRange(7)
        );
        assert_eq!(
            find_mqcs_containing_default(&g, &[1, 1], 0.9, 2).unwrap_err(),
            QueryError::DuplicateVertex(1)
        );
        assert!(QueryError::EmptyQuery.to_string().contains("empty"));
    }

    #[test]
    fn universe_is_intersection_of_two_hop_balls() {
        let g = Graph::path(7);
        // Vertex 3's 2-hop ball is {1..5}; vertex 4's is {2..6}; intersection
        // {2,3,4,5} plus the query vertices themselves.
        let u = query_universe(&g, &[3, 4]);
        assert_eq!(u, vec![2, 3, 4, 5]);
        let single = query_universe(&g, &[0]);
        assert_eq!(single, vec![0, 1, 2]);
    }

    #[test]
    fn theta_larger_than_universe_short_circuits() {
        let g = Graph::path(6);
        let result = find_mqcs_containing_default(&g, &[0], 0.9, 5).unwrap();
        assert!(result.mqcs.is_empty());
        assert_eq!(result.stats.branches, 0);
    }
}
