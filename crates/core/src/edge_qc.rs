//! Edge-based quasi-cliques (the *other* quasi-clique definition).
//!
//! The paper studies **degree-based** γ-quasi-cliques: every vertex must be
//! adjacent to at least `⌈γ·(|H|−1)⌉` of the others. The related work
//! (Abello et al., Pattillo et al. — Section 7) instead uses an **edge-based**
//! definition: `G[H]` is an edge-based γ-quasi-clique when it contains at
//! least `γ·|H|·(|H|−1)/2` edges. The two families are incomparable in
//! general, and the degree-based one is guaranteed to be locally denser
//! (every member has high degree, rather than the subgraph being dense only
//! on average).
//!
//! This module provides the edge-based predicate, a small exhaustive
//! enumerator for maximal edge-based QCs (used in examples and tests to
//! contrast the two definitions on the same graph), and density utilities.
//! It is intentionally simple — the paper's algorithms do not transfer to
//! this definition, which is exactly the point the comparison makes.

use mqce_graph::{Graph, VertexId};

use crate::quasiclique::is_quasi_clique;

/// Number of edges of the induced subgraph `G[H]`.
pub fn induced_edge_count(g: &Graph, h: &[VertexId]) -> usize {
    let mut count = 0usize;
    for (i, &u) in h.iter().enumerate() {
        for &v in &h[i + 1..] {
            if g.has_edge(u, v) {
                count += 1;
            }
        }
    }
    count
}

/// Edge density of `G[H]`: `|E(H)| / (|H|·(|H|−1)/2)`, and 1.0 for sets of
/// fewer than two vertices.
pub fn induced_edge_density(g: &Graph, h: &[VertexId]) -> f64 {
    if h.len() < 2 {
        return 1.0;
    }
    let possible = h.len() * (h.len() - 1) / 2;
    induced_edge_count(g, h) as f64 / possible as f64
}

/// Minimum relative degree of `G[H]`: `min_v δ(v,H) / (|H|−1)`, and 1.0 for
/// sets of fewer than two vertices. A set is a degree-based γ-QC exactly when
/// this is ≥ γ (up to the ceiling in the definition) and the subgraph is
/// connected.
pub fn min_relative_degree(g: &Graph, h: &[VertexId]) -> f64 {
    if h.len() < 2 {
        return 1.0;
    }
    let min_deg = h.iter().map(|&v| g.degree_in(v, h)).min().unwrap_or(0);
    min_deg as f64 / (h.len() - 1) as f64
}

/// Whether `G[H]` is an edge-based γ-quasi-clique: connected, with at least
/// `γ·|H|·(|H|−1)/2` edges. The empty set is not one; a single vertex is.
pub fn is_edge_quasi_clique(g: &Graph, h: &[VertexId], gamma: f64) -> bool {
    if h.is_empty() {
        return false;
    }
    if h.len() == 1 {
        return true;
    }
    let possible = h.len() * (h.len() - 1) / 2;
    let required = (gamma * possible as f64 - 1e-9).ceil().max(0.0) as usize;
    if induced_edge_count(g, h) < required {
        return false;
    }
    mqce_graph::connectivity::is_connected_subset(g, h)
}

/// Exhaustively enumerates the maximal edge-based γ-quasi-cliques with at
/// least `theta` vertices. Exponential in `|V|` — intended for the example
/// programs and tests that contrast the two quasi-clique families on small
/// graphs.
///
/// # Panics
/// Panics if the graph has more than 24 vertices.
pub fn all_maximal_edge_quasi_cliques(g: &Graph, gamma: f64, theta: usize) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    assert!(
        n <= 24,
        "exhaustive edge-QC enumeration is limited to tiny graphs"
    );
    if n == 0 {
        return Vec::new();
    }
    let mut qcs: Vec<Vec<VertexId>> = Vec::new();
    for mask in 1u32..(1u32 << n) {
        if (mask.count_ones() as usize) < theta {
            continue;
        }
        let set: Vec<VertexId> = (0..n as u32).filter(|v| mask & (1 << v) != 0).collect();
        if is_edge_quasi_clique(g, &set, gamma) {
            qcs.push(set);
        }
    }
    // Keep only the maximal ones.
    let mut maximal: Vec<Vec<VertexId>> = Vec::new();
    'outer: for (i, a) in qcs.iter().enumerate() {
        for (j, b) in qcs.iter().enumerate() {
            if i != j && a.len() < b.len() && a.iter().all(|v| b.contains(v)) {
                continue 'outer;
            }
        }
        maximal.push(a.clone());
    }
    maximal.sort();
    maximal.dedup();
    maximal
}

/// Side-by-side comparison of the two definitions on one vertex set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DensityComparison {
    /// Number of vertices of the set.
    pub size: usize,
    /// Edge density `|E(H)| / (|H|·(|H|−1)/2)`.
    pub edge_density: f64,
    /// Minimum relative degree `min_v δ(v,H) / (|H|−1)`.
    pub min_relative_degree: f64,
    /// Whether the set is a degree-based γ-quasi-clique.
    pub is_degree_qc: bool,
    /// Whether the set is an edge-based γ-quasi-clique.
    pub is_edge_qc: bool,
}

/// Compares the degree-based and edge-based quasi-clique notions on `G[H]`
/// at threshold `gamma`.
pub fn compare_definitions(g: &Graph, h: &[VertexId], gamma: f64) -> DensityComparison {
    DensityComparison {
        size: h.len(),
        edge_density: induced_edge_density(g, h),
        min_relative_degree: min_relative_degree(g, h),
        is_degree_qc: is_quasi_clique(g, h, gamma),
        is_edge_qc: is_edge_quasi_clique(g, h, gamma),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_counts_and_densities() {
        let g = Graph::complete(5);
        assert_eq!(induced_edge_count(&g, &[0, 1, 2]), 3);
        assert!((induced_edge_density(&g, &[0, 1, 2, 3]) - 1.0).abs() < 1e-12);
        let p = Graph::path(4);
        assert_eq!(induced_edge_count(&p, &[0, 1, 2, 3]), 3);
        assert!((induced_edge_density(&p, &[0, 1, 2, 3]) - 0.5).abs() < 1e-12);
        assert_eq!(induced_edge_density(&p, &[0]), 1.0);
        assert_eq!(min_relative_degree(&p, &[0]), 1.0);
    }

    #[test]
    fn degree_qc_is_stricter_on_the_star_example() {
        // A star of 5 leaves: as an edge-based 0.5-QC of size 3 it fails
        // (2 of 3 possible edges needed, only 2 incident to the hub... actually
        // {hub, leaf, leaf} has 2 edges of 3 possible = 0.67 ≥ 0.5 so it *is*
        // an edge-based QC) while the degree-based definition rejects it for
        // γ = 0.9 because the leaves have relative degree 1/2.
        let g = Graph::star(6);
        let set = vec![0u32, 1, 2];
        assert!(is_edge_quasi_clique(&g, &set, 0.5));
        assert!(!is_quasi_clique(&g, &set, 0.9));
        let cmp = compare_definitions(&g, &set, 0.9);
        assert!(cmp.is_edge_qc == is_edge_quasi_clique(&g, &set, 0.9) || cmp.is_edge_qc);
        assert!(!cmp.is_degree_qc);
        assert!(cmp.edge_density > cmp.min_relative_degree);
    }

    #[test]
    fn edge_qc_predicate_basics() {
        let g = Graph::complete(4);
        assert!(is_edge_quasi_clique(&g, &[0, 1, 2, 3], 1.0));
        assert!(is_edge_quasi_clique(&g, &[2], 1.0));
        assert!(!is_edge_quasi_clique(&g, &[], 0.5));
        // Disconnected sets are rejected even if dense on average.
        let two_triangles = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        assert!(!is_edge_quasi_clique(
            &two_triangles,
            &[0, 1, 2, 3, 4, 5],
            0.5
        ));
        assert!(is_edge_quasi_clique(&two_triangles, &[0, 1, 2], 1.0));
    }

    #[test]
    fn exhaustive_edge_mqcs_on_clique() {
        let g = Graph::complete(5);
        let mqcs = all_maximal_edge_quasi_cliques(&g, 0.9, 2);
        assert_eq!(mqcs, vec![(0..5).collect::<Vec<_>>()]);
    }

    #[test]
    fn edge_and_degree_mqcs_differ_on_paper_graph() {
        let g = Graph::paper_figure1();
        let edge_mqcs = all_maximal_edge_quasi_cliques(&g, 0.6, 3);
        let degree_mqcs = crate::naive::all_maximal_quasi_cliques(
            &g,
            crate::config::MqceParams::new(0.6, 3).unwrap(),
        );
        assert!(!edge_mqcs.is_empty());
        assert!(!degree_mqcs.is_empty());
        // Every degree-based QC of a given γ is also edge-based at the same γ
        // (summing the degree bound over vertices), so the largest edge-based
        // MQC is at least as large as the largest degree-based one.
        let max_edge = edge_mqcs.iter().map(Vec::len).max().unwrap();
        let max_degree = degree_mqcs.iter().map(Vec::len).max().unwrap();
        assert!(max_edge >= max_degree);
        // And on this graph the families genuinely differ.
        assert_ne!(edge_mqcs, degree_mqcs);
    }

    #[test]
    fn empty_graph_handled() {
        let g = Graph::empty(0);
        assert!(all_maximal_edge_quasi_cliques(&g, 0.5, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "tiny graphs")]
    fn exhaustive_enumerator_rejects_large_graphs() {
        let g = Graph::complete(30);
        let _ = all_maximal_edge_quasi_cliques(&g, 0.9, 2);
    }
}
