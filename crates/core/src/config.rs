//! Algorithm parameters and configuration.

use std::time::Duration;

pub use mqce_settrie::{S2Backend, S2CostModel};

/// Which adjacency representation the branch-and-bound searchers use for
/// edge tests, subset-degree counts and the QC predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AdjacencyBackend {
    /// Build the packed bitset kernel per (sub)graph when the adaptive
    /// size/density threshold recommends it, fall back to sorted slices
    /// otherwise. The default.
    #[default]
    Auto,
    /// Always use the CSR sorted-slice path (binary-search edge tests).
    Slice,
    /// Build the bitset kernel whenever the memory cap allows, even for
    /// sparse subproblems (used by the backend-comparison benchmarks).
    Bitset,
}

impl AdjacencyBackend {
    /// Human-readable name used by the experiment harness.
    pub fn name(&self) -> &'static str {
        match self {
            AdjacencyBackend::Auto => "auto",
            AdjacencyBackend::Slice => "slice",
            AdjacencyBackend::Bitset => "bitset",
        }
    }
}

/// Default [`MqceParams::steal_granularity`]: donate only when at least this
/// many untaken sibling branches are available to package into split tasks.
pub const DEFAULT_STEAL_GRANULARITY: usize = 2;

/// Problem parameters of MQCE: the density threshold `γ` and the size
/// threshold `θ` (Problem 1 of the paper), plus the adjacency backend the
/// searchers should use and the work-stealing split granularity
/// (implementation knobs, carried here so they reach every search entry
/// point without widening their signatures).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MqceParams {
    /// Density threshold `γ ∈ [0.5, 1]`: every vertex of a quasi-clique `H`
    /// must be adjacent to at least `⌈γ·(|H|−1)⌉` other vertices of `H`.
    pub gamma: f64,
    /// Size threshold `θ ≥ 1`: only maximal quasi-cliques with at least `θ`
    /// vertices are enumerated.
    pub theta: usize,
    /// Adjacency backend used by the branch-and-bound searchers.
    pub backend: AdjacencyBackend,
    /// Minimum number of untaken sibling branches a searcher must hold
    /// before it donates them as split tasks to hungry workers (the
    /// `--steal-granularity` knob of the work-stealing parallel DC driver).
    /// `0` disables intra-subproblem splitting entirely (whole subproblems
    /// are still stolen between workers). Only consulted by the parallel
    /// driver; sequential runs ignore it.
    pub steal_granularity: usize,
    /// Test-only fault injection consumed by the DC drivers: panic inside
    /// the searcher of the subproblem anchored at this original-graph
    /// vertex. Exists to prove the per-subproblem `catch_unwind` containment
    /// boundary (unit tests, the daemon's `--fault-injection` mode); always
    /// `None` outside those paths.
    #[doc(hidden)]
    pub fail_anchor: Option<mqce_graph::VertexId>,
}

impl MqceParams {
    /// Creates parameters, validating the ranges assumed by the algorithms.
    ///
    /// # Errors
    /// Returns an error if `gamma ∉ [0.5, 1]` or `theta == 0`. The `γ ≥ 0.5`
    /// restriction follows the paper (Property 2: diameter ≤ 2), which all
    /// pruning rules and the divide-and-conquer decomposition rely on.
    pub fn new(gamma: f64, theta: usize) -> Result<Self, ParamError> {
        if !(0.5..=1.0).contains(&gamma) || gamma.is_nan() {
            return Err(ParamError::GammaOutOfRange(gamma));
        }
        if theta == 0 {
            return Err(ParamError::ThetaZero);
        }
        Ok(MqceParams {
            gamma,
            theta,
            backend: AdjacencyBackend::default(),
            steal_granularity: DEFAULT_STEAL_GRANULARITY,
            fail_anchor: None,
        })
    }

    /// Sets the adjacency backend.
    pub fn with_backend(mut self, backend: AdjacencyBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the work-stealing split granularity (`0` disables splitting).
    pub fn with_steal_granularity(mut self, granularity: usize) -> Self {
        self.steal_granularity = granularity;
        self
    }
}

/// Invalid parameter errors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ParamError {
    /// `γ` must lie in `[0.5, 1]`.
    GammaOutOfRange(f64),
    /// `θ` must be at least 1.
    ThetaZero,
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::GammaOutOfRange(g) => {
                write!(f, "gamma must be in [0.5, 1], got {g}")
            }
            ParamError::ThetaZero => write!(f, "theta must be at least 1"),
        }
    }
}

impl std::error::Error for ParamError {}

/// Which branching method the FastQC searcher uses (Figure 11 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BranchingStrategy {
    /// Hybrid-SE when applicable, Sym-SE otherwise (the paper's default and
    /// the configuration with the best worst-case bound).
    #[default]
    HybridSe,
    /// Always Sym-SE branching.
    SymSe,
    /// Plain set-enumeration (SE) branching, as used by Quick+ — kept for the
    /// branching-strategy ablation; the FastQC pruning rules still apply.
    Se,
}

/// Which enumeration algorithm the pipeline runs for MQCE-S1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// The paper's full algorithm: divide-and-conquer (degeneracy ordering,
    /// one-hop + two-hop pruning) around FastQC. (Algorithm 3.)
    #[default]
    DcFastQc,
    /// FastQC run directly on the whole graph (Algorithm 2), no DC.
    FastQc,
    /// FastQC inside the *basic* divide-and-conquer framework of
    /// Guo et al. / Khalil et al. [19, 24]: 2-hop decomposition in input
    /// order with one-hop pruning only. (`BDCFastQC` in Figure 12.)
    BasicDcFastQc,
    /// The Quick+ baseline (Algorithm 1) wrapped in the basic
    /// divide-and-conquer framework, mirroring the scalable implementation
    /// of [19, 24] used as the paper's baseline.
    QuickPlus,
    /// Quick+ run directly on the whole graph, no DC.
    QuickPlusRaw,
    /// Exhaustive subset enumeration — the testing oracle; only usable on
    /// tiny graphs.
    Naive,
}

impl Algorithm {
    /// Human-readable name used by the experiment harness.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::DcFastQc => "DCFastQC",
            Algorithm::FastQc => "FastQC",
            Algorithm::BasicDcFastQc => "BDCFastQC",
            Algorithm::QuickPlus => "Quick+",
            Algorithm::QuickPlusRaw => "Quick+(raw)",
            Algorithm::Naive => "Naive",
        }
    }
}

/// Full configuration of an MQCE run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MqceConfig {
    /// Problem parameters (`γ`, `θ`).
    pub params: MqceParams,
    /// Which MQCE-S1 algorithm to run.
    pub algorithm: Algorithm,
    /// Branching strategy used by the FastQC-family searchers.
    pub branching: BranchingStrategy,
    /// Number of one-hop/two-hop pruning rounds applied to each DC subgraph
    /// (`MAX_ROUND` in Algorithm 3). The paper's default is 2.
    pub max_round: usize,
    /// Which maximality-engine backend runs MQCE-S2. `Auto` (the default)
    /// commits to a backend from the observed stream statistics.
    pub s2_backend: S2Backend,
    /// The measured cost model the `Auto` S2 dispatcher consults (defaults
    /// to the calibrated table checked in with the settrie crate; replace it
    /// with [`S2CostModel::from_table_str`] output — e.g. the CLI's
    /// `--s2-model` — after re-calibrating on new hardware).
    pub s2_model: S2CostModel,
    /// Optional wall-clock budget; when exceeded the search stops early and
    /// the result is flagged as timed out. The budget covers the whole
    /// pipeline: S1 stops at the deadline and S2 compacts within the
    /// remaining time (plus a small grace interval), returning a sound
    /// partial result when it runs out.
    pub time_limit: Option<Duration>,
}

impl MqceConfig {
    /// Creates a configuration with the paper's defaults (DCFastQC, Hybrid-SE,
    /// `MAX_ROUND = 2`, no time limit).
    pub fn new(gamma: f64, theta: usize) -> Result<Self, ParamError> {
        Ok(MqceConfig {
            params: MqceParams::new(gamma, theta)?,
            algorithm: Algorithm::default(),
            branching: BranchingStrategy::default(),
            max_round: 2,
            s2_backend: S2Backend::default(),
            s2_model: S2CostModel::default(),
            time_limit: None,
        })
    }

    /// Sets the algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the branching strategy (FastQC-family only).
    pub fn with_branching(mut self, branching: BranchingStrategy) -> Self {
        self.branching = branching;
        self
    }

    /// Sets `MAX_ROUND` for the DC pruning.
    pub fn with_max_round(mut self, max_round: usize) -> Self {
        self.max_round = max_round;
        self
    }

    /// Sets the adjacency backend used by the searchers.
    pub fn with_backend(mut self, backend: AdjacencyBackend) -> Self {
        self.params.backend = backend;
        self
    }

    /// Sets the work-stealing split granularity of the parallel DC driver
    /// (`0` disables intra-subproblem splitting).
    pub fn with_steal_granularity(mut self, granularity: usize) -> Self {
        self.params.steal_granularity = granularity;
        self
    }

    /// Sets the MQCE-S2 maximality-engine backend.
    pub fn with_s2_backend(mut self, backend: S2Backend) -> Self {
        self.s2_backend = backend;
        self
    }

    /// Sets the cost model the `Auto` S2 dispatcher consults.
    pub fn with_s2_model(mut self, model: S2CostModel) -> Self {
        self.s2_model = model;
        self
    }

    /// Sets a wall-clock time limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params() {
        let p = MqceParams::new(0.9, 5).unwrap();
        assert_eq!(p.gamma, 0.9);
        assert_eq!(p.theta, 5);
        assert!(MqceParams::new(0.5, 1).is_ok());
        assert!(MqceParams::new(1.0, 100).is_ok());
    }

    #[test]
    fn invalid_params() {
        assert_eq!(
            MqceParams::new(0.3, 5).unwrap_err(),
            ParamError::GammaOutOfRange(0.3)
        );
        assert_eq!(
            MqceParams::new(1.2, 5).unwrap_err(),
            ParamError::GammaOutOfRange(1.2)
        );
        assert_eq!(MqceParams::new(0.9, 0).unwrap_err(), ParamError::ThetaZero);
        assert!(MqceParams::new(f64::NAN, 2).is_err());
    }

    #[test]
    fn config_builder() {
        let cfg = MqceConfig::new(0.8, 4)
            .unwrap()
            .with_algorithm(Algorithm::FastQc)
            .with_branching(BranchingStrategy::SymSe)
            .with_max_round(3)
            .with_backend(AdjacencyBackend::Bitset)
            .with_s2_backend(S2Backend::Extremal)
            .with_time_limit(Duration::from_secs(10));
        assert_eq!(cfg.algorithm, Algorithm::FastQc);
        assert_eq!(cfg.branching, BranchingStrategy::SymSe);
        assert_eq!(cfg.max_round, 3);
        assert_eq!(cfg.params.backend, AdjacencyBackend::Bitset);
        assert_eq!(cfg.s2_backend, S2Backend::Extremal);
        assert!(cfg.time_limit.is_some());
    }

    #[test]
    fn steal_granularity_defaults_and_builder() {
        let p = MqceParams::new(0.9, 2).unwrap();
        assert_eq!(p.steal_granularity, DEFAULT_STEAL_GRANULARITY);
        assert_eq!(p.with_steal_granularity(0).steal_granularity, 0);
        let cfg = MqceConfig::new(0.9, 2).unwrap().with_steal_granularity(7);
        assert_eq!(cfg.params.steal_granularity, 7);
    }

    #[test]
    fn backend_defaults_and_names() {
        let p = MqceParams::new(0.9, 2).unwrap();
        assert_eq!(p.backend, AdjacencyBackend::Auto);
        let p = p.with_backend(AdjacencyBackend::Slice);
        assert_eq!(p.backend, AdjacencyBackend::Slice);
        let names: Vec<_> = [
            AdjacencyBackend::Auto,
            AdjacencyBackend::Slice,
            AdjacencyBackend::Bitset,
        ]
        .iter()
        .map(|b| b.name())
        .collect();
        assert_eq!(names, vec!["auto", "slice", "bitset"]);
    }

    #[test]
    fn algorithm_names_are_distinct() {
        use Algorithm::*;
        let names: Vec<_> = [
            DcFastQc,
            FastQc,
            BasicDcFastQc,
            QuickPlus,
            QuickPlusRaw,
            Naive,
        ]
        .iter()
        .map(|a| a.name())
        .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn param_error_display() {
        assert!(ParamError::ThetaZero.to_string().contains("theta"));
        assert!(ParamError::GammaOutOfRange(2.0)
            .to_string()
            .contains("gamma"));
    }
}
