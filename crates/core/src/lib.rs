//! Maximal γ-quasi-clique enumeration: FastQC, DCFastQC and the Quick+
//! baseline.
//!
//! This crate implements the algorithms of *"Fast Maximal Quasi-clique
//! Enumeration: A Pruning and Branching Co-Design Approach"* (Yu & Long,
//! SIGMOD 2024):
//!
//! * [`fastqc`] — the FastQC branch-and-bound algorithm (SD-space necessary
//!   condition, progressive refinement, Sym-SE and Hybrid-SE branching) with
//!   worst-case time `O(n·d·α_k^n)`, `α_k < 2`.
//! * [`dc`] — the divide-and-conquer driver (`DCFastQC`) and the basic DC
//!   framework used as an ablation baseline.
//! * [`quickplus`] — the Quick+ baseline with SE branching and Type I/II
//!   pruning rules.
//! * [`pipeline`] — the end-to-end MQCE solver: MQCE-S1 (enumeration) plus
//!   MQCE-S2 (set-trie maximality filtering), returning exactly the maximal
//!   quasi-cliques of size ≥ θ.
//! * [`naive`] — an exhaustive oracle for differential testing.
//! * [`quasiclique`] — the γ-quasi-clique predicate and the τ/Δ/σ primitives.
//!
//! # Quick start
//!
//! ```
//! use mqce_core::prelude::*;
//! use mqce_graph::Graph;
//!
//! // A 5-clique with a pendant vertex.
//! let g = Graph::from_edges(6, &[
//!     (0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4),
//!     (2, 3), (2, 4), (3, 4), (4, 5),
//! ]);
//! let result = enumerate_mqcs_default(&g, 0.9, 3).unwrap();
//! assert_eq!(result.mqcs, vec![vec![0, 1, 2, 3, 4]]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
mod branch;
pub mod config;
pub mod dc;
pub mod edge_qc;
pub mod fastqc;
pub mod incremental;
pub mod kernel;
pub mod naive;
pub mod pipeline;
pub mod prepared;
pub mod quasiclique;
pub mod query;
pub mod quickplus;
mod scheduler;
pub mod session;
pub mod shard;
pub mod stats;
pub mod topk;
pub mod verify;

pub use branch::SearchOutcome;
pub use config::{
    AdjacencyBackend, Algorithm, BranchingStrategy, MqceConfig, MqceParams, ParamError, S2Backend,
    S2CostModel,
};
pub use incremental::{IncrementalSession, UpdateOutcome};
pub use mqce_settrie::S2Decision;
#[allow(deprecated)] // the wrappers stay re-exported for downstream code
pub use pipeline::{
    enumerate_mqcs, enumerate_mqcs_default, enumerate_mqcs_parallel, enumerate_mqcs_parallel_with,
    enumerate_mqcs_shared, enumerate_mqcs_shared_parallel, solve_s1, MqceResult, ParallelScheduler,
};
pub use prepared::PreparedGraph;
pub use query::{find_mqcs_containing, find_mqcs_containing_default, QueryError, QueryResult};
pub use session::Session;
pub use shard::{
    merge_shard_families, plan_shards, run_shard, run_sharded, MergedShards, ShardFamily,
    ShardOutcome, ShardPlan, ShardSpec,
};
pub use stats::{S2Stats, SearchStats, ThreadStats};
pub use topk::{find_largest_mqcs, TopKResult};
pub use verify::{
    verify_exact_against_oracle, verify_mqc_set, verify_s1_output, VerificationReport, Violation,
};

/// Commonly used items, re-exported for convenient glob imports.
pub mod prelude {
    pub use crate::config::{
        AdjacencyBackend, Algorithm, BranchingStrategy, MqceConfig, MqceParams, S2Backend,
        S2CostModel,
    };
    #[allow(deprecated)]
    pub use crate::pipeline::{
        enumerate_mqcs, enumerate_mqcs_default, enumerate_mqcs_parallel, solve_s1, MqceResult,
    };
    pub use crate::quasiclique::is_quasi_clique;
    pub use crate::session::Session;
    pub use crate::stats::{S2Stats, SearchStats, ThreadStats};
}
