//! Degree-based upper/lower bounds on how many candidates can (or must) be
//! added to a partial set — the bound-based pruning rules of Quick / Quick+.
//!
//! The paper treats the Quick+ pruning rules as a black box ("Type I" and
//! "Type II", Section 3) and refers to Liu & Wong and Khalil et al. for the
//! details. The strongest of those rules reason about the number `t` of
//! candidate vertices that a quasi-clique under the branch `B = (S, C, D)`
//! could still absorb:
//!
//! * For a vertex `v ∈ S` with `ind = δ(v, S)` neighbours inside `S` and
//!   `ext = δ(v, C)` neighbours among the candidates, a quasi-clique
//!   `H ⊇ S` with `|H| = |S| + t` gives `v` at most `ind + min(t, ext)`
//!   neighbours, while Definition 1 demands `⌈γ·(|S|+t−1)⌉`. The feasible
//!   values of `t` form a contiguous (possibly empty) interval; its maximum is
//!   the **upper bound** `U_v`, its minimum the **lower bound** `L_v`.
//! * `U_min = min_{v∈S} U_v` bounds the size of any QC under the branch by
//!   `|S| + U_min` (Type II: prune when that is below θ), and `L_max =
//!   max_{v∈S} L_v` must not exceed `U_min` (the vertices needed by the most
//!   deficient member must fit under the tightest cap).
//! * A candidate `u ∈ C` can only appear in a large QC under the branch if
//!   *some* feasible `t` admits it ([`candidate_feasible`]); otherwise it can
//!   be dropped from `C` (Type I).
//!
//! All routines work on exact integer comparisons via
//! [`required_degree`], so the epsilon
//! handling matches the rest of the crate.

use crate::quasiclique::required_degree;

/// Whether a vertex with `ind` neighbours in `S` and `ext` neighbours in `C`
/// can satisfy the γ-degree requirement in a quasi-clique of size
/// `s_size + t` (i.e. after `t` candidates joined `S`).
#[inline]
fn feasible(gamma: f64, s_size: usize, ind: usize, ext: usize, t: usize) -> bool {
    ind + t.min(ext) >= required_degree(gamma, s_size + t)
}

/// The largest number of candidates `t ∈ 0..=cap` that can be added while the
/// vertex (a member of `S`) still meets its degree requirement, or `None` if
/// no value of `t` works (the branch holds no quasi-clique containing `S`).
pub fn max_addable(gamma: f64, s_size: usize, ind: usize, ext: usize, cap: usize) -> Option<usize> {
    // Feasibility is unimodal in t (the slack grows while t ≤ ext and then
    // shrinks), so scanning downwards stops at the true maximum.
    (0..=cap)
        .rev()
        .find(|&t| feasible(gamma, s_size, ind, ext, t))
}

/// The smallest number of candidates `t ∈ 0..=cap` that must be added before
/// the vertex (a member of `S`) meets its degree requirement, or `None` if no
/// value of `t` works.
pub fn min_addable(gamma: f64, s_size: usize, ind: usize, ext: usize, cap: usize) -> Option<usize> {
    (0..=cap).find(|&t| feasible(gamma, s_size, ind, ext, t))
}

/// Aggregated bounds over the whole partial set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchBounds {
    /// `U_min`: no quasi-clique under the branch can contain more than
    /// `|S| + upper` vertices.
    pub upper: usize,
    /// `L_max`: at least this many candidates must be added before every
    /// member of `S` meets its degree requirement.
    pub lower: usize,
}

/// Computes [`BranchBounds`] from per-member `(ind, ext)` degree pairs.
/// Returns `None` when some member of `S` cannot be satisfied by any number
/// of additions (the branch can be pruned outright). An empty `S` yields the
/// trivial bounds `upper = cap`, `lower = 0`.
pub fn branch_bounds<I>(gamma: f64, s_size: usize, members: I, cap: usize) -> Option<BranchBounds>
where
    I: IntoIterator<Item = (usize, usize)>,
{
    let mut upper = cap;
    let mut lower = 0usize;
    for (ind, ext) in members {
        let u = max_addable(gamma, s_size, ind, ext, cap)?;
        let l = min_addable(gamma, s_size, ind, ext, cap)?;
        upper = upper.min(u);
        lower = lower.max(l);
    }
    Some(BranchBounds { upper, lower })
}

/// Whether candidate `u` (with `ind_s = δ(u,S)` and `ext_c = δ(u, C∖{u})`)
/// can appear in a quasi-clique of size at least `theta` under the branch,
/// given that at most `t_max` candidates (including `u` itself) can join `S`.
///
/// The check looks for any admissible total number of additions
/// `t ∈ 1..=t_max` with `|S| + t ≥ theta` for which `u` itself can meet the
/// degree requirement; if none exists, `u` can be removed from `C`.
pub fn candidate_feasible(
    gamma: f64,
    theta: usize,
    s_size: usize,
    ind_s: usize,
    ext_c: usize,
    t_max: usize,
) -> bool {
    let t_lo = theta.saturating_sub(s_size).max(1);
    (t_lo..=t_max).any(|t| {
        // After u and t−1 further candidates join, u has ind_s neighbours in
        // the old S plus at most min(t−1, ext_c) among the other newcomers.
        ind_s + (t - 1).min(ext_c) >= required_degree(gamma, s_size + t)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference for the feasibility interval.
    fn feasible_set(gamma: f64, s_size: usize, ind: usize, ext: usize, cap: usize) -> Vec<usize> {
        (0..=cap)
            .filter(|&t| ind + t.min(ext) >= required_degree(gamma, s_size + t))
            .collect()
    }

    #[test]
    fn bounds_match_brute_force() {
        for &gamma in &[0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0] {
            for s_size in 1..8 {
                for ind in 0..s_size {
                    for ext in 0..8 {
                        for cap in 0..10 {
                            let set = feasible_set(gamma, s_size, ind, ext, cap);
                            assert_eq!(
                                max_addable(gamma, s_size, ind, ext, cap),
                                set.last().copied(),
                                "max gamma={gamma} s={s_size} ind={ind} ext={ext} cap={cap}"
                            );
                            assert_eq!(
                                min_addable(gamma, s_size, ind, ext, cap),
                                set.first().copied(),
                                "min gamma={gamma} s={s_size} ind={ind} ext={ext} cap={cap}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn feasible_interval_is_contiguous() {
        // The prune logic relies on the feasible t forming one interval.
        for &gamma in &[0.5, 0.66, 0.75, 0.9, 1.0] {
            for s_size in 1..8 {
                for ind in 0..s_size {
                    for ext in 0..8 {
                        let set = feasible_set(gamma, s_size, ind, ext, 12);
                        if let (Some(&first), Some(&last)) = (set.first(), set.last()) {
                            assert_eq!(set.len(), last - first + 1, "gap in feasible set {set:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn clique_member_bounds() {
        // In a clique branch (every member adjacent to all of S and C), γ=1:
        // the member allows exactly as many additions as it has candidate
        // neighbours.
        let b = branch_bounds(1.0, 4, vec![(3, 5), (3, 2)], 5).unwrap();
        assert_eq!(b.upper, 2);
        assert_eq!(b.lower, 0);
    }

    #[test]
    fn deficient_member_forces_additions() {
        // S has 4 vertices; one member only sees 1 of the other 3, so at
        // γ = 0.6 it needs more neighbours: ⌈0.6·(4+t−1)⌉ ≤ 1 + t.
        let l = min_addable(0.6, 4, 1, 5, 10).unwrap();
        assert!(l >= 2, "lower bound {l}");
        // And a member with no candidate neighbours at all caps the branch.
        let b = branch_bounds(0.6, 4, vec![(1, 5), (3, 0)], 10).unwrap();
        assert_eq!(b.upper, max_addable(0.6, 4, 3, 0, 10).unwrap());
        assert!(b.lower >= 2);
    }

    #[test]
    fn unsatisfiable_member_prunes_branch() {
        // A member with 0 neighbours anywhere can never reach ⌈0.9·(…)⌉.
        assert_eq!(branch_bounds(0.9, 3, vec![(0, 0)], 10), None);
        assert_eq!(max_addable(0.9, 3, 0, 0, 10), None);
        // Empty S gives the trivial bounds.
        assert_eq!(
            branch_bounds(0.9, 0, Vec::new(), 7),
            Some(BranchBounds { upper: 7, lower: 0 })
        );
    }

    #[test]
    fn candidate_feasibility_examples() {
        // A candidate adjacent to all of S and many other candidates is fine.
        assert!(candidate_feasible(0.9, 4, 3, 3, 5, 5));
        // A candidate with no neighbours in S and no candidate neighbours can
        // never reach the requirement once |S| ≥ 2.
        assert!(!candidate_feasible(0.9, 3, 2, 0, 0, 5));
        // θ larger than what the branch can reach rules everything out.
        assert!(!candidate_feasible(0.9, 20, 3, 3, 5, 5));
        // At γ = 0.5 a candidate with one neighbour in S={a,b} can still sit
        // in a QC of size 4 (needs ⌈0.5·3⌉ = 2 ≤ 1 + min(1, ext)).
        assert!(candidate_feasible(0.5, 3, 2, 1, 3, 4));
    }

    #[test]
    fn candidate_rule_subsumes_simple_degree_rule() {
        // The old Type I rule removed u when δ(u, S∪C) < ⌈γ(θ−1)⌉; the
        // bound-based rule must remove at least those vertices.
        for &gamma in &[0.5, 0.7, 0.9] {
            for theta in 2..6 {
                for s_size in 0..4 {
                    for ind in 0..=s_size {
                        for ext in 0..5 {
                            let total_deg = ind + ext;
                            if total_deg < required_degree(gamma, theta) {
                                assert!(
                                    !candidate_feasible(gamma, theta, s_size, ind, ext, 10),
                                    "gamma={gamma} theta={theta} s={s_size} ind={ind} ext={ext}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
