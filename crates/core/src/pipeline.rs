//! End-to-end MQCE pipeline: MQCE-S1 (branch-and-bound enumeration) feeding
//! a streaming MQCE-S2 maximality engine.
//!
//! This is the high-level API most users want: give it a graph and the
//! parameters, get back exactly the maximal γ-quasi-cliques of size ≥ θ.
//!
//! S2 is no longer a batch pass over the full S1 output: the
//! divide-and-conquer drivers stream each subproblem's quasi-cliques into a
//! [`MaximalityEngine`] as they are produced (dropping duplicates and
//! dominated sets on arrival), the parallel driver merges per-thread
//! engines, and the final compaction honours whatever remains of the
//! wall-clock budget — a run that exhausts its time limit in S1 no longer
//! pays an unbounded post-hoc filtering bill on hundreds of thousands of
//! sets.

use std::time::{Duration, Instant};

use mqce_graph::{Graph, VertexId};
use mqce_settrie::MaximalityEngine;

use crate::branch::SearchOutcome;
use crate::config::{Algorithm, MqceConfig, MqceParams};
use crate::dc::{
    prepare_plan_shared, run_dc_parallel_streaming, run_dc_parallel_streaming_plan,
    run_dc_parallel_streaming_shared_index, run_dc_streaming, run_dc_streaming_plan, DcConfig,
    EngineFactory, InnerAlgorithm,
};
use crate::fastqc::fastqc_whole_graph;
use crate::naive;
use crate::prepared::PreparedGraph;
use crate::quickplus::quickplus_whole_graph;
use crate::stats::{S2Stats, SearchStats, ThreadStats};

/// Minimum wall-clock slice MQCE-S2 is granted even when S1 consumed the
/// whole budget: without it a time-limited run whose S1 was cut off would
/// return no maximal sets at all.
const S2_MIN_GRACE: Duration = Duration::from_millis(100);

/// Upper bound on the S2 grace slice (10% of the time limit, clamped).
const S2_MAX_GRACE: Duration = Duration::from_secs(5);

/// Result of an end-to-end MQCE run.
#[derive(Clone, Debug, Default)]
pub struct MqceResult {
    /// The MQCE-S1 output: a set of quasi-cliques containing every maximal QC
    /// of size ≥ θ (possibly with non-maximal members). Sorted vertex sets.
    pub qcs: Vec<Vec<VertexId>>,
    /// The MQCE-S2 output: exactly the maximal quasi-cliques of size ≥ θ,
    /// sorted lexicographically. When [`S2Stats::timed_out`] is set this is
    /// a sound partial result (an antichain) rather than the full family.
    pub mqcs: Vec<Vec<VertexId>>,
    /// Statistics of the S1 search.
    pub stats: SearchStats,
    /// Per-worker counters of the work-stealing scheduler (empty for
    /// sequential runs): what each thread ran, stole and donated, and how
    /// its wall-clock split between busy and hungry.
    pub thread_stats: Vec<ThreadStats>,
    /// Statistics of the S2 maximality engine.
    pub s2: S2Stats,
    /// Wall-clock time of the MQCE-S1 window. For DC algorithms this
    /// includes the streaming S2 `add` probes that run inline with the
    /// search — that overlap is the point of the streaming engine, so the
    /// two stages no longer sum from disjoint measurements.
    pub s1_time: Duration,
    /// Wall-clock time spent in MQCE-S2 (the part not already overlapped
    /// with the search: merging and the final compaction).
    pub s2_time: Duration,
}

impl MqceResult {
    /// Whether the run hit its time limit in either stage (the MQC list may
    /// be incomplete).
    pub fn timed_out(&self) -> bool {
        self.stats.timed_out || self.s2.timed_out
    }

    /// Whether the maximality filtering stage specifically was cut off by
    /// the deadline (the MQC list is then a sound partial antichain).
    pub fn s2_timed_out(&self) -> bool {
        self.s2.timed_out
    }

    /// Sizes of the maximal quasi-cliques: `(min, max, mean)` — the
    /// `|H_min| / |H_max| / |H_avg|` columns of Table 1. Returns `None` when
    /// no MQC was found.
    pub fn mqc_size_stats(&self) -> Option<(usize, usize, f64)> {
        if self.mqcs.is_empty() {
            return None;
        }
        let min = self.mqcs.iter().map(Vec::len).min().unwrap();
        let max = self.mqcs.iter().map(Vec::len).max().unwrap();
        let mean = self.mqcs.iter().map(Vec::len).sum::<usize>() as f64 / self.mqcs.len() as f64;
        Some((min, max, mean))
    }
}

/// The `(inner algorithm, DC configuration)` pair of a DC-family algorithm,
/// `None` for algorithms without a divide-and-conquer decomposition.
pub(crate) fn dc_setup(config: &MqceConfig) -> Option<(InnerAlgorithm, DcConfig)> {
    match config.algorithm {
        Algorithm::DcFastQc => Some((
            InnerAlgorithm::FastQc(config.branching),
            DcConfig::paper_default().with_max_round(config.max_round),
        )),
        Algorithm::BasicDcFastQc => {
            Some((InnerAlgorithm::FastQc(config.branching), DcConfig::basic()))
        }
        Algorithm::QuickPlus => Some((InnerAlgorithm::QuickPlus, DcConfig::basic())),
        _ => None,
    }
}

/// Runs MQCE-S1, streaming outputs into `s2` when an engine is supplied and
/// the algorithm has a DC decomposition (the drivers feed it per
/// subproblem). Returns the outcome plus whether the engine was fed inline —
/// whole-graph algorithms produce their outputs in one batch, which the
/// caller feeds afterwards under the S2 deadline.
fn solve_s1_streaming(
    g: &Graph,
    config: &MqceConfig,
    deadline: Option<Instant>,
    mut s2: Option<&mut dyn MaximalityEngine>,
) -> (SearchOutcome, bool) {
    let params = config.params;
    if let Some((inner, dc)) = dc_setup(config) {
        let fed_inline = s2.is_some();
        let outcome = run_dc_streaming(g, params, inner, dc, deadline, s2.take());
        return (outcome, fed_inline);
    }
    let outcome = match config.algorithm {
        Algorithm::FastQc => fastqc_whole_graph(g, params, config.branching, deadline),
        Algorithm::QuickPlusRaw => quickplus_whole_graph(g, params, deadline),
        Algorithm::Naive => {
            let outputs = naive::all_maximal_quasi_cliques(g, params);
            SearchOutcome {
                stats: SearchStats {
                    outputs: outputs.len() as u64,
                    ..Default::default()
                },
                outputs,
                thread_stats: Vec::new(),
            }
        }
        _ => unreachable!("DC algorithms are handled by dc_setup"),
    };
    (outcome, false)
}

/// Streams `sets` into `engine`, polling the deadline every few hundred
/// sets. Returns `false` when the feed was cut short.
pub(crate) fn feed_sets(
    engine: &mut dyn MaximalityEngine,
    sets: &[Vec<VertexId>],
    deadline: Option<Instant>,
) -> bool {
    for (i, set) in sets.iter().enumerate() {
        if i.is_multiple_of(256) {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return false;
                }
            }
        }
        engine.add(set);
    }
    true
}

/// Runs only MQCE-S1 with the configured algorithm, returning the raw set of
/// quasi-cliques (global vertex ids) and the search statistics.
pub fn solve_s1(g: &Graph, config: &MqceConfig) -> SearchOutcome {
    let deadline = config.time_limit.map(|limit| Instant::now() + limit);
    solve_s1_streaming(g, config, deadline, None).0
}

/// The deadline MQCE-S2 compacts under: the pipeline deadline, but never
/// less than a small grace interval from now — 10% of the time limit,
/// clamped to `[100ms, 5s]` — so a run whose S1 was cut off still returns
/// the sets it can compact within the grace slice.
///
/// A zero time limit grants **no** grace: the caller asked for no work at
/// all (`--time-limit 0`, or a daemon request whose deadline had already
/// passed on arrival), so the run must return immediately with
/// `s2_timed_out = true` and an empty-but-sound partial result rather than
/// burn `S2_MIN_GRACE` and report an unflagged (falsely complete-looking)
/// empty answer.
pub(crate) fn s2_deadline(deadline: Option<Instant>, limit: Option<Duration>) -> Option<Instant> {
    deadline.map(|d| {
        let grace = match limit {
            Some(l) if l.is_zero() => Duration::ZERO,
            Some(l) => (l / 10).clamp(S2_MIN_GRACE, S2_MAX_GRACE),
            None => S2_MIN_GRACE,
        };
        d.max(Instant::now() + grace)
    })
}

/// Assembles the final [`MqceResult`]: compacts the engine under the
/// (already graced) S2 deadline and fills in the S2 statistics. `s2_start`
/// is when post-S1 S2 work began (feeding or merging included), so the
/// reported `s2_time` covers everything not overlapped with the search.
///
/// `merge_phase` says whether `engine` performed a cross-engine merge (the
/// parallel per-thread merge, the incremental frontier merge, the shard
/// coordinator merge) rather than the plain per-subproblem streaming pass:
/// its dispatch audit then lands in [`S2Stats::merge_decision`] instead of
/// [`S2Stats::decision`], so a merge-phase backend choice never overwrites
/// (or masquerades as) a per-subproblem one.
pub(crate) fn finalize(
    outcome: SearchOutcome,
    engine: Box<dyn MaximalityEngine>,
    feed_truncated: bool,
    s2_deadline: Option<Instant>,
    s1_time: Duration,
    s2_start: Instant,
    merge_phase: bool,
) -> MqceResult {
    let sets_streamed = outcome.outputs.len() as u64;
    let sets_retained = engine.live_len() as u64;
    // A zero-budget run reaches this point with its S2 deadline already in
    // the past; the compaction of whatever the engine holds (often nothing)
    // may complete before polling the deadline, so the expiry itself marks
    // the result as partial. Runs with a real budget start compaction with
    // (most of) the grace slice still ahead and do not trip this.
    let deadline_expired = s2_deadline.is_some_and(|d| Instant::now() >= d);
    let s2_out = engine.finish_with_deadline(s2_deadline);
    let s2_time = s2_start.elapsed();
    let mut qcs = outcome.outputs;
    qcs.sort();
    qcs.dedup();
    let (decision, merge_decision) = if merge_phase {
        (None, s2_out.decision)
    } else {
        (s2_out.decision, None)
    };
    MqceResult {
        qcs,
        mqcs: s2_out.mqcs,
        stats: outcome.stats,
        thread_stats: outcome.thread_stats,
        s2: S2Stats {
            backend: s2_out.backend.to_string(),
            sets_streamed,
            sets_retained,
            timed_out: s2_out.timed_out || feed_truncated || deadline_expired,
            decision,
            merge_decision,
        },
        s1_time,
        s2_time,
    }
}

/// Runs the full MQCE pipeline (S1 + streaming S2) with the given
/// configuration.
#[deprecated(note = "use `mqce_core::Session`: `Session::open(g.clone()).config(*config).run()`")]
pub fn enumerate_mqcs(g: &Graph, config: &MqceConfig) -> MqceResult {
    enumerate_mqcs_inner(g, config)
}

/// Owning-path pipeline body shared by [`Session`](crate::session::Session)
/// and the deprecated free-function wrappers.
pub(crate) fn enumerate_mqcs_inner(g: &Graph, config: &MqceConfig) -> MqceResult {
    let deadline = config.time_limit.map(|limit| Instant::now() + limit);
    let mut engine = config.s2_backend.new_engine_with_model(config.s2_model);
    let s1_start = Instant::now();
    let (outcome, fed_inline) = solve_s1_streaming(g, config, deadline, Some(engine.as_mut()));
    let s1_time = s1_start.elapsed();
    // The grace slice is granted exactly once, when post-S1 S2 work starts:
    // the feed (whole-graph algorithms), then the compaction share it.
    let s2_start = Instant::now();
    let s2_dl = s2_deadline(deadline, config.time_limit);
    let mut feed_truncated = false;
    if !fed_inline {
        feed_truncated = !feed_sets(engine.as_mut(), &outcome.outputs, s2_dl);
    }
    finalize(
        outcome,
        engine,
        feed_truncated,
        s2_dl,
        s1_time,
        s2_start,
        false,
    )
}

/// Which parallel DC driver [`enumerate_mqcs_parallel_with`] dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ParallelScheduler {
    /// The work-stealing scheduler with cooperative intra-subproblem
    /// splitting (the default).
    #[default]
    WorkStealing,
    /// The PR-3 shared-atomic-index loop, kept as the baseline the `threads`
    /// bench profile measures the scheduler against.
    SharedIndex,
}

/// Multi-threaded variant of [`enumerate_mqcs`]: the divide-and-conquer
/// subproblems are distributed over `num_threads` OS threads by a
/// work-stealing scheduler (the parallel implementation the paper lists as
/// future work), each worker streaming everything it runs — whole
/// subproblems and stolen split tasks alike — into its own maximality
/// engine; the per-thread engines are merged before the final compaction.
/// For algorithms without a DC decomposition this falls back to the
/// sequential solver.
#[deprecated(
    note = "use `mqce_core::Session`: `Session::open(g.clone()).config(*config).threads(n).run()`"
)]
pub fn enumerate_mqcs_parallel(g: &Graph, config: &MqceConfig, num_threads: usize) -> MqceResult {
    enumerate_mqcs_parallel_with_inner(g, config, num_threads, ParallelScheduler::WorkStealing)
}

/// [`enumerate_mqcs_parallel`] with an explicit scheduler choice; only the
/// bench harness should need anything but the default.
#[deprecated(note = "use `mqce_core::Session` with `.threads(n).scheduler(s)`")]
pub fn enumerate_mqcs_parallel_with(
    g: &Graph,
    config: &MqceConfig,
    num_threads: usize,
    scheduler: ParallelScheduler,
) -> MqceResult {
    enumerate_mqcs_parallel_with_inner(g, config, num_threads, scheduler)
}

/// Parallel owning-path pipeline body shared by
/// [`Session`](crate::session::Session) and the deprecated wrappers.
pub(crate) fn enumerate_mqcs_parallel_with_inner(
    g: &Graph,
    config: &MqceConfig,
    num_threads: usize,
    scheduler: ParallelScheduler,
) -> MqceResult {
    let Some((inner, dc)) = dc_setup(config) else {
        return enumerate_mqcs_inner(g, config);
    };
    let deadline = config.time_limit.map(|limit| Instant::now() + limit);
    let s1_start = Instant::now();
    let factory = || config.s2_backend.new_engine_with_model(config.s2_model);
    let driver = match scheduler {
        ParallelScheduler::WorkStealing => run_dc_parallel_streaming,
        ParallelScheduler::SharedIndex => run_dc_parallel_streaming_shared_index,
    };
    let factory_ref: EngineFactory<'_> = &factory;
    let (outcome, mut engines) = driver(
        g,
        config.params,
        inner,
        dc,
        num_threads,
        deadline,
        Some(factory_ref),
    );
    let s1_time = s1_start.elapsed();
    // Merge the per-thread engines: drain each into the first. Re-adding
    // re-probes, so sets retained by one worker but dominated by another
    // worker's results are dropped here. The merge is S2 work: it runs
    // under the same single graced deadline as the final compaction.
    let s2_start = Instant::now();
    let s2_dl = s2_deadline(deadline, config.time_limit);
    let mut engine = if engines.is_empty() {
        config.s2_backend.new_engine_with_model(config.s2_model)
    } else {
        engines.remove(0)
    };
    let mut feed_truncated = false;
    for mut other in engines {
        if !feed_sets(engine.as_mut(), &other.drain(), s2_dl) {
            feed_truncated = true;
        }
    }
    finalize(
        outcome,
        engine,
        feed_truncated,
        s2_dl,
        s1_time,
        s2_start,
        true,
    )
}

/// Re-entrant variant of [`enumerate_mqcs`] over shared read-only state: the
/// core reduction and vertex ordering come from the decomposition cached in
/// the [`PreparedGraph`], so a long-lived process (the `mqce serve` daemon)
/// answers each request without re-deriving per-graph state. The maximal
/// family returned is identical to [`enumerate_mqcs`] on the same graph and
/// configuration. Algorithms without a DC decomposition fall through to the
/// whole-graph solver (which takes no per-run derived state anyway).
#[deprecated(
    note = "use `mqce_core::Session`: `Session::open_prepared(prepared).config(*config).run()`"
)]
pub fn enumerate_mqcs_shared(prepared: &PreparedGraph, config: &MqceConfig) -> MqceResult {
    enumerate_mqcs_shared_inner(prepared, config)
}

/// Shared-path pipeline body used by [`Session`](crate::session::Session),
/// the incremental seed, and the deprecated wrapper.
pub(crate) fn enumerate_mqcs_shared_inner(
    prepared: &PreparedGraph,
    config: &MqceConfig,
) -> MqceResult {
    let Some((inner, dc)) = dc_setup(config) else {
        return enumerate_mqcs_inner(prepared.graph(), config);
    };
    let deadline = config.time_limit.map(|limit| Instant::now() + limit);
    let mut engine = config.s2_backend.new_engine_with_model(config.s2_model);
    let s1_start = Instant::now();
    let plan = prepare_plan_shared(prepared, config.params, dc);
    let outcome = run_dc_streaming_plan(
        &plan,
        config.params,
        inner,
        dc,
        deadline,
        Some(engine.as_mut()),
    );
    let s1_time = s1_start.elapsed();
    let s2_start = Instant::now();
    let s2_dl = s2_deadline(deadline, config.time_limit);
    finalize(outcome, engine, false, s2_dl, s1_time, s2_start, false)
}

/// Multi-threaded variant of [`enumerate_mqcs_shared`]: the work-stealing
/// scheduler runs over a plan derived from the cached decomposition, and the
/// per-thread engines are merged exactly as in [`enumerate_mqcs_parallel`].
#[deprecated(note = "use `mqce_core::Session` with `.threads(n)`")]
pub fn enumerate_mqcs_shared_parallel(
    prepared: &PreparedGraph,
    config: &MqceConfig,
    num_threads: usize,
) -> MqceResult {
    enumerate_mqcs_shared_parallel_inner(prepared, config, num_threads)
}

/// Parallel shared-path pipeline body used by
/// [`Session`](crate::session::Session), the incremental seed, and the
/// deprecated wrapper.
pub(crate) fn enumerate_mqcs_shared_parallel_inner(
    prepared: &PreparedGraph,
    config: &MqceConfig,
    num_threads: usize,
) -> MqceResult {
    if num_threads <= 1 {
        return enumerate_mqcs_shared_inner(prepared, config);
    }
    let Some((inner, dc)) = dc_setup(config) else {
        return enumerate_mqcs_inner(prepared.graph(), config);
    };
    let deadline = config.time_limit.map(|limit| Instant::now() + limit);
    let s1_start = Instant::now();
    let factory = || config.s2_backend.new_engine_with_model(config.s2_model);
    let factory_ref: EngineFactory<'_> = &factory;
    let plan = prepare_plan_shared(prepared, config.params, dc);
    let (outcome, mut engines) = run_dc_parallel_streaming_plan(
        &plan,
        config.params,
        inner,
        dc,
        num_threads,
        deadline,
        Some(factory_ref),
    );
    let s1_time = s1_start.elapsed();
    let s2_start = Instant::now();
    let s2_dl = s2_deadline(deadline, config.time_limit);
    let mut engine = if engines.is_empty() {
        config.s2_backend.new_engine_with_model(config.s2_model)
    } else {
        engines.remove(0)
    };
    let mut feed_truncated = false;
    for mut other in engines {
        if !feed_sets(engine.as_mut(), &other.drain(), s2_dl) {
            feed_truncated = true;
        }
    }
    finalize(
        outcome,
        engine,
        feed_truncated,
        s2_dl,
        s1_time,
        s2_start,
        true,
    )
}

/// Convenience wrapper: enumerate the maximal γ-quasi-cliques of size ≥ θ
/// using the paper's default algorithm (DCFastQC with Hybrid-SE branching).
pub fn enumerate_mqcs_default(
    g: &Graph,
    gamma: f64,
    theta: usize,
) -> Result<MqceResult, crate::config::ParamError> {
    let config = MqceConfig::new(gamma, theta)?;
    Ok(enumerate_mqcs_inner(g, &config))
}

/// Parameters bundle re-exported for callers that only run S1.
pub fn params(gamma: f64, theta: usize) -> Result<MqceParams, crate::config::ParamError> {
    MqceParams::new(gamma, theta)
}

#[cfg(test)]
#[allow(deprecated)] // the tests double as coverage for the deprecated wrappers
mod tests {
    use super::*;
    use crate::config::BranchingStrategy;
    use mqce_graph::generators::{planted_quasi_cliques, PlantedGroup};

    #[test]
    fn all_algorithms_agree_on_paper_graph() {
        let g = Graph::paper_figure1();
        for &gamma in &[0.5, 0.6, 0.9, 1.0] {
            for theta in 2..=3 {
                let reference = enumerate_mqcs(
                    &g,
                    &MqceConfig::new(gamma, theta)
                        .unwrap()
                        .with_algorithm(Algorithm::Naive),
                )
                .mqcs;
                for algo in [
                    Algorithm::DcFastQc,
                    Algorithm::FastQc,
                    Algorithm::BasicDcFastQc,
                    Algorithm::QuickPlus,
                    Algorithm::QuickPlusRaw,
                ] {
                    let result = enumerate_mqcs(
                        &g,
                        &MqceConfig::new(gamma, theta).unwrap().with_algorithm(algo),
                    );
                    assert_eq!(
                        result.mqcs, reference,
                        "algorithm {algo:?} disagrees at gamma={gamma} theta={theta}"
                    );
                    assert!(!result.timed_out());
                }
            }
        }
    }

    #[test]
    fn planted_groups_are_recovered() {
        // Two planted cliques of size 10 and 8 in a sparse background: with
        // γ = 0.9, θ = 7 the planted groups must appear inside the MQC list.
        let g = planted_quasi_cliques(
            80,
            0.02,
            &[
                PlantedGroup {
                    size: 10,
                    density: 1.0,
                },
                PlantedGroup {
                    size: 8,
                    density: 1.0,
                },
            ],
            77,
        );
        let result = enumerate_mqcs_default(&g, 0.9, 7).unwrap();
        let group1: Vec<VertexId> = (0..10).collect();
        let group2: Vec<VertexId> = (10..18).collect();
        let covers = |planted: &Vec<VertexId>| {
            result
                .mqcs
                .iter()
                .any(|mqc| planted.iter().all(|v| mqc.contains(v)))
        };
        assert!(covers(&group1), "planted 10-clique not recovered");
        assert!(covers(&group2), "planted 8-clique not recovered");
        assert!(result.s1_time >= Duration::ZERO);
        assert_eq!(result.stats.outputs_rejected, 0);
    }

    #[test]
    fn qcs_superset_of_mqcs() {
        let g = Graph::paper_figure1();
        let result = enumerate_mqcs_default(&g, 0.6, 3).unwrap();
        for mqc in &result.mqcs {
            assert!(result.qcs.contains(mqc));
        }
        assert!(result.qcs.len() >= result.mqcs.len());
    }

    #[test]
    fn size_stats() {
        let g = Graph::complete(5);
        let result = enumerate_mqcs_default(&g, 0.9, 2).unwrap();
        assert_eq!(result.mqc_size_stats(), Some((5, 5, 5.0)));
        let empty = enumerate_mqcs_default(&g, 0.9, 6).unwrap();
        assert_eq!(empty.mqc_size_stats(), None);
    }

    #[test]
    fn parallel_pipeline_matches_sequential() {
        use mqce_graph::generators::{planted_quasi_cliques, PlantedGroup};
        let g = planted_quasi_cliques(
            100,
            0.02,
            &[
                PlantedGroup {
                    size: 10,
                    density: 0.95,
                },
                PlantedGroup {
                    size: 8,
                    density: 1.0,
                },
            ],
            55,
        );
        for algo in [Algorithm::DcFastQc, Algorithm::QuickPlus, Algorithm::FastQc] {
            let config = MqceConfig::new(0.9, 6).unwrap().with_algorithm(algo);
            let sequential = enumerate_mqcs(&g, &config);
            let parallel = enumerate_mqcs_parallel(&g, &config, 4);
            assert_eq!(parallel.mqcs, sequential.mqcs, "{algo:?}");
        }
    }

    #[test]
    fn time_limit_is_respected() {
        use mqce_graph::generators::erdos_renyi_gnm;
        let g = erdos_renyi_gnm(300, 6000, 5);
        let config = MqceConfig::new(0.5, 3)
            .unwrap()
            .with_algorithm(Algorithm::QuickPlusRaw)
            .with_time_limit(Duration::from_millis(50));
        let start = Instant::now();
        let result = enumerate_mqcs(&g, &config);
        // Either the search finished quickly or it was cut off close to the
        // limit; in no case may it run for many seconds.
        assert!(start.elapsed() < Duration::from_secs(20));
        let _ = result.timed_out();
    }

    #[test]
    fn s2_backends_agree_and_report_stats() {
        use crate::config::S2Backend;
        let g = Graph::paper_figure1();
        let reference = enumerate_mqcs_default(&g, 0.6, 3).unwrap().mqcs;
        for backend in [
            S2Backend::Auto,
            S2Backend::Inverted,
            S2Backend::Bitset,
            S2Backend::Extremal,
        ] {
            let result = enumerate_mqcs(
                &g,
                &MqceConfig::new(0.6, 3).unwrap().with_s2_backend(backend),
            );
            assert_eq!(result.mqcs, reference, "{backend:?}");
            assert!(!result.s2.timed_out);
            assert!(!result.s2.backend.is_empty());
            assert_eq!(result.s2.sets_streamed, result.stats.outputs);
            assert!(result.s2.sets_retained as usize >= result.mqcs.len());
            // Auto resolves to a concrete backend at finish time.
            if backend != S2Backend::Auto {
                assert_eq!(result.s2.backend, backend.name());
            } else {
                assert_ne!(result.s2.backend, "auto");
            }
        }
    }

    #[test]
    fn parallel_merge_agrees_across_s2_backends() {
        use crate::config::S2Backend;
        use mqce_graph::generators::{community_graph, CommunityGraphParams};
        let g = community_graph(
            CommunityGraphParams {
                n: 100,
                num_communities: 7,
                p_intra: 0.9,
                inter_degree: 1.5,
            },
            909,
        );
        let reference = enumerate_mqcs(&g, &MqceConfig::new(0.85, 5).unwrap()).mqcs;
        for backend in [S2Backend::Inverted, S2Backend::Bitset, S2Backend::Extremal] {
            let config = MqceConfig::new(0.85, 5).unwrap().with_s2_backend(backend);
            let parallel = enumerate_mqcs_parallel(&g, &config, 4);
            assert_eq!(parallel.mqcs, reference, "{backend:?}");
            assert!(!parallel.s2.timed_out);
        }
    }

    #[test]
    fn zero_time_limit_returns_immediately_and_is_flagged() {
        // Regression: `s2_deadline` used to clamp the grace slice up to
        // S2_MIN_GRACE even for a zero budget, so `--time-limit 0` burned
        // 100ms of S2 work and reported `s2_timed_out = false` — an empty
        // answer indistinguishable from "this graph has no MQCs". A zero
        // budget must return promptly with the best-effort flag set.
        use mqce_graph::generators::{community_graph, CommunityGraphParams};
        let g = community_graph(
            CommunityGraphParams {
                n: 200,
                num_communities: 10,
                p_intra: 0.9,
                inter_degree: 2.0,
            },
            7,
        );
        for algo in [Algorithm::DcFastQc, Algorithm::FastQc] {
            let config = MqceConfig::new(0.85, 4)
                .unwrap()
                .with_algorithm(algo)
                .with_time_limit(Duration::ZERO);
            let start = Instant::now();
            let result = enumerate_mqcs(&g, &config);
            let elapsed = start.elapsed();
            assert!(result.s2_timed_out(), "{algo:?}: zero budget not flagged");
            assert!(result.timed_out(), "{algo:?}");
            assert!(result.mqcs.is_empty(), "{algo:?}");
            // Must not burn the 100ms grace slice; leave headroom for the
            // (budget-independent) plan preparation on slow CI machines.
            assert!(
                elapsed < S2_MIN_GRACE,
                "{algo:?}: zero budget took {elapsed:?}"
            );
        }
    }

    #[test]
    fn shared_pipeline_matches_owning_pipeline() {
        use mqce_graph::generators::{community_graph, CommunityGraphParams};
        let g = community_graph(
            CommunityGraphParams {
                n: 120,
                num_communities: 8,
                p_intra: 0.9,
                inter_degree: 1.5,
            },
            4242,
        );
        let prepared = PreparedGraph::new(g.clone());
        for algo in [
            Algorithm::DcFastQc,
            Algorithm::BasicDcFastQc,
            Algorithm::QuickPlus,
            Algorithm::FastQc,
        ] {
            let config = MqceConfig::new(0.85, 5).unwrap().with_algorithm(algo);
            let owning = enumerate_mqcs(&g, &config);
            let shared = enumerate_mqcs_shared(&prepared, &config);
            assert_eq!(shared.mqcs, owning.mqcs, "{algo:?} shared != owning");
            let shared_par = enumerate_mqcs_shared_parallel(&prepared, &config, 4);
            assert_eq!(shared_par.mqcs, owning.mqcs, "{algo:?} shared parallel");
        }
    }

    #[test]
    fn shared_pipeline_handles_empty_core() {
        // theta high enough that the core reduction empties the graph.
        let prepared = PreparedGraph::new(Graph::path(10));
        let config = MqceConfig::new(0.9, 5).unwrap();
        let result = enumerate_mqcs_shared(&prepared, &config);
        assert!(result.mqcs.is_empty());
        assert!(!result.timed_out());
    }

    #[test]
    fn branching_strategies_all_exact_on_community_graph() {
        use mqce_graph::generators::{community_graph, CommunityGraphParams};
        let g = community_graph(
            CommunityGraphParams {
                n: 60,
                num_communities: 5,
                p_intra: 0.85,
                inter_degree: 1.0,
            },
            2024,
        );
        let reference = enumerate_mqcs(
            &g,
            &MqceConfig::new(0.8, 5)
                .unwrap()
                .with_algorithm(Algorithm::DcFastQc),
        )
        .mqcs;
        for branching in [BranchingStrategy::SymSe, BranchingStrategy::Se] {
            let result = enumerate_mqcs(
                &g,
                &MqceConfig::new(0.8, 5)
                    .unwrap()
                    .with_algorithm(Algorithm::DcFastQc)
                    .with_branching(branching),
            );
            assert_eq!(result.mqcs, reference, "branching {branching:?} disagrees");
        }
    }
}
