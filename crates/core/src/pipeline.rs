//! End-to-end MQCE pipeline: MQCE-S1 (branch-and-bound enumeration) followed
//! by MQCE-S2 (set-trie maximality filtering).
//!
//! This is the high-level API most users want: give it a graph and the
//! parameters, get back exactly the maximal γ-quasi-cliques of size ≥ θ.

use std::time::{Duration, Instant};

use mqce_graph::{Graph, VertexId};
use mqce_settrie::filter_maximal;

use crate::branch::SearchOutcome;
use crate::config::{Algorithm, MqceConfig, MqceParams};
use crate::dc::{run_dc, DcConfig, InnerAlgorithm};
use crate::fastqc::fastqc_whole_graph;
use crate::naive;
use crate::quickplus::quickplus_whole_graph;
use crate::stats::SearchStats;

/// Result of an end-to-end MQCE run.
#[derive(Clone, Debug, Default)]
pub struct MqceResult {
    /// The MQCE-S1 output: a set of quasi-cliques containing every maximal QC
    /// of size ≥ θ (possibly with non-maximal members). Sorted vertex sets.
    pub qcs: Vec<Vec<VertexId>>,
    /// The MQCE-S2 output: exactly the maximal quasi-cliques of size ≥ θ,
    /// sorted lexicographically.
    pub mqcs: Vec<Vec<VertexId>>,
    /// Statistics of the S1 search.
    pub stats: SearchStats,
    /// Wall-clock time spent in MQCE-S1.
    pub s1_time: Duration,
    /// Wall-clock time spent in MQCE-S2 (set-trie filtering).
    pub s2_time: Duration,
}

impl MqceResult {
    /// Whether the run hit its time limit (the MQC list may be incomplete).
    pub fn timed_out(&self) -> bool {
        self.stats.timed_out
    }

    /// Sizes of the maximal quasi-cliques: `(min, max, mean)` — the
    /// `|H_min| / |H_max| / |H_avg|` columns of Table 1. Returns `None` when
    /// no MQC was found.
    pub fn mqc_size_stats(&self) -> Option<(usize, usize, f64)> {
        if self.mqcs.is_empty() {
            return None;
        }
        let min = self.mqcs.iter().map(Vec::len).min().unwrap();
        let max = self.mqcs.iter().map(Vec::len).max().unwrap();
        let mean = self.mqcs.iter().map(Vec::len).sum::<usize>() as f64 / self.mqcs.len() as f64;
        Some((min, max, mean))
    }
}

/// Runs only MQCE-S1 with the configured algorithm, returning the raw set of
/// quasi-cliques (global vertex ids) and the search statistics.
pub fn solve_s1(g: &Graph, config: &MqceConfig) -> SearchOutcome {
    let deadline = config.time_limit.map(|limit| Instant::now() + limit);
    let params = config.params;
    match config.algorithm {
        Algorithm::DcFastQc => run_dc(
            g,
            params,
            InnerAlgorithm::FastQc(config.branching),
            DcConfig::paper_default().with_max_round(config.max_round),
            deadline,
        ),
        Algorithm::BasicDcFastQc => run_dc(
            g,
            params,
            InnerAlgorithm::FastQc(config.branching),
            DcConfig::basic(),
            deadline,
        ),
        Algorithm::FastQc => fastqc_whole_graph(g, params, config.branching, deadline),
        Algorithm::QuickPlus => run_dc(
            g,
            params,
            InnerAlgorithm::QuickPlus,
            DcConfig::basic(),
            deadline,
        ),
        Algorithm::QuickPlusRaw => quickplus_whole_graph(g, params, deadline),
        Algorithm::Naive => {
            let outputs = naive::all_maximal_quasi_cliques(g, params);
            SearchOutcome {
                stats: SearchStats {
                    outputs: outputs.len() as u64,
                    ..Default::default()
                },
                outputs,
            }
        }
    }
}

/// Runs the full MQCE pipeline (S1 + S2) with the given configuration.
pub fn enumerate_mqcs(g: &Graph, config: &MqceConfig) -> MqceResult {
    let s1_start = Instant::now();
    let outcome = solve_s1(g, config);
    let s1_time = s1_start.elapsed();

    let s2_start = Instant::now();
    let mqcs = filter_maximal(&outcome.outputs);
    let s2_time = s2_start.elapsed();

    let mut qcs = outcome.outputs;
    qcs.sort();
    qcs.dedup();
    MqceResult {
        qcs,
        mqcs,
        stats: outcome.stats,
        s1_time,
        s2_time,
    }
}

/// Multi-threaded variant of [`enumerate_mqcs`]: the divide-and-conquer
/// subproblems are distributed over `num_threads` OS threads (the parallel
/// implementation the paper lists as future work). For algorithms without a
/// DC decomposition this falls back to the sequential solver.
pub fn enumerate_mqcs_parallel(g: &Graph, config: &MqceConfig, num_threads: usize) -> MqceResult {
    let deadline = config.time_limit.map(|limit| Instant::now() + limit);
    let params = config.params;
    let s1_start = Instant::now();
    let outcome = match config.algorithm {
        Algorithm::DcFastQc => crate::dc::run_dc_parallel(
            g,
            params,
            InnerAlgorithm::FastQc(config.branching),
            DcConfig::paper_default().with_max_round(config.max_round),
            num_threads,
            deadline,
        ),
        Algorithm::BasicDcFastQc => crate::dc::run_dc_parallel(
            g,
            params,
            InnerAlgorithm::FastQc(config.branching),
            DcConfig::basic(),
            num_threads,
            deadline,
        ),
        Algorithm::QuickPlus => crate::dc::run_dc_parallel(
            g,
            params,
            InnerAlgorithm::QuickPlus,
            DcConfig::basic(),
            num_threads,
            deadline,
        ),
        _ => solve_s1(g, config),
    };
    let s1_time = s1_start.elapsed();
    let s2_start = Instant::now();
    let mqcs = filter_maximal(&outcome.outputs);
    let s2_time = s2_start.elapsed();
    let mut qcs = outcome.outputs;
    qcs.sort();
    qcs.dedup();
    MqceResult {
        qcs,
        mqcs,
        stats: outcome.stats,
        s1_time,
        s2_time,
    }
}

/// Convenience wrapper: enumerate the maximal γ-quasi-cliques of size ≥ θ
/// using the paper's default algorithm (DCFastQC with Hybrid-SE branching).
pub fn enumerate_mqcs_default(g: &Graph, gamma: f64, theta: usize) -> Result<MqceResult, crate::config::ParamError> {
    let config = MqceConfig::new(gamma, theta)?;
    Ok(enumerate_mqcs(g, &config))
}

/// Parameters bundle re-exported for callers that only run S1.
pub fn params(gamma: f64, theta: usize) -> Result<MqceParams, crate::config::ParamError> {
    MqceParams::new(gamma, theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BranchingStrategy;
    use mqce_graph::generators::{planted_quasi_cliques, PlantedGroup};

    #[test]
    fn all_algorithms_agree_on_paper_graph() {
        let g = Graph::paper_figure1();
        for &gamma in &[0.5, 0.6, 0.9, 1.0] {
            for theta in 2..=3 {
                let reference = enumerate_mqcs(
                    &g,
                    &MqceConfig::new(gamma, theta)
                        .unwrap()
                        .with_algorithm(Algorithm::Naive),
                )
                .mqcs;
                for algo in [
                    Algorithm::DcFastQc,
                    Algorithm::FastQc,
                    Algorithm::BasicDcFastQc,
                    Algorithm::QuickPlus,
                    Algorithm::QuickPlusRaw,
                ] {
                    let result = enumerate_mqcs(
                        &g,
                        &MqceConfig::new(gamma, theta).unwrap().with_algorithm(algo),
                    );
                    assert_eq!(
                        result.mqcs, reference,
                        "algorithm {algo:?} disagrees at gamma={gamma} theta={theta}"
                    );
                    assert!(!result.timed_out());
                }
            }
        }
    }

    #[test]
    fn planted_groups_are_recovered() {
        // Two planted cliques of size 10 and 8 in a sparse background: with
        // γ = 0.9, θ = 7 the planted groups must appear inside the MQC list.
        let g = planted_quasi_cliques(
            80,
            0.02,
            &[
                PlantedGroup { size: 10, density: 1.0 },
                PlantedGroup { size: 8, density: 1.0 },
            ],
            77,
        );
        let result = enumerate_mqcs_default(&g, 0.9, 7).unwrap();
        let group1: Vec<VertexId> = (0..10).collect();
        let group2: Vec<VertexId> = (10..18).collect();
        let covers = |planted: &Vec<VertexId>| {
            result.mqcs.iter().any(|mqc| {
                planted.iter().all(|v| mqc.contains(v))
            })
        };
        assert!(covers(&group1), "planted 10-clique not recovered");
        assert!(covers(&group2), "planted 8-clique not recovered");
        assert!(result.s1_time >= Duration::ZERO);
        assert_eq!(result.stats.outputs_rejected, 0);
    }

    #[test]
    fn qcs_superset_of_mqcs() {
        let g = Graph::paper_figure1();
        let result = enumerate_mqcs_default(&g, 0.6, 3).unwrap();
        for mqc in &result.mqcs {
            assert!(result.qcs.contains(mqc));
        }
        assert!(result.qcs.len() >= result.mqcs.len());
    }

    #[test]
    fn size_stats() {
        let g = Graph::complete(5);
        let result = enumerate_mqcs_default(&g, 0.9, 2).unwrap();
        assert_eq!(result.mqc_size_stats(), Some((5, 5, 5.0)));
        let empty = enumerate_mqcs_default(&g, 0.9, 6).unwrap();
        assert_eq!(empty.mqc_size_stats(), None);
    }

    #[test]
    fn parallel_pipeline_matches_sequential() {
        use mqce_graph::generators::{planted_quasi_cliques, PlantedGroup};
        let g = planted_quasi_cliques(
            100,
            0.02,
            &[
                PlantedGroup { size: 10, density: 0.95 },
                PlantedGroup { size: 8, density: 1.0 },
            ],
            55,
        );
        for algo in [Algorithm::DcFastQc, Algorithm::QuickPlus, Algorithm::FastQc] {
            let config = MqceConfig::new(0.9, 6).unwrap().with_algorithm(algo);
            let sequential = enumerate_mqcs(&g, &config);
            let parallel = enumerate_mqcs_parallel(&g, &config, 4);
            assert_eq!(parallel.mqcs, sequential.mqcs, "{algo:?}");
        }
    }

    #[test]
    fn time_limit_is_respected() {
        use mqce_graph::generators::erdos_renyi_gnm;
        let g = erdos_renyi_gnm(300, 6000, 5);
        let config = MqceConfig::new(0.5, 3)
            .unwrap()
            .with_algorithm(Algorithm::QuickPlusRaw)
            .with_time_limit(Duration::from_millis(50));
        let start = Instant::now();
        let result = enumerate_mqcs(&g, &config);
        // Either the search finished quickly or it was cut off close to the
        // limit; in no case may it run for many seconds.
        assert!(start.elapsed() < Duration::from_secs(20));
        let _ = result.timed_out();
    }

    #[test]
    fn branching_strategies_all_exact_on_community_graph() {
        use mqce_graph::generators::{community_graph, CommunityGraphParams};
        let g = community_graph(
            CommunityGraphParams {
                n: 60,
                num_communities: 5,
                p_intra: 0.85,
                inter_degree: 1.0,
            },
            2024,
        );
        let reference = enumerate_mqcs(
            &g,
            &MqceConfig::new(0.8, 5).unwrap().with_algorithm(Algorithm::DcFastQc),
        )
        .mqcs;
        for branching in [BranchingStrategy::SymSe, BranchingStrategy::Se] {
            let result = enumerate_mqcs(
                &g,
                &MqceConfig::new(0.8, 5)
                    .unwrap()
                    .with_algorithm(Algorithm::DcFastQc)
                    .with_branching(branching),
            );
            assert_eq!(result.mqcs, reference, "branching {branching:?} disagrees");
        }
    }
}
