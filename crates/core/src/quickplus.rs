//! The Quick+ baseline (Algorithm 1 of the paper).
//!
//! Quick+ is the state-of-the-art algorithm the paper compares against
//! (Liu & Wong's Quick with the improved pruning rules and boundary-case
//! fixes of Guo et al. / Khalil et al. [19, 24]). It uses plain
//! set-enumeration (SE) branching and prunes with *Type I* rules (removing
//! candidates) and *Type II* rules (terminating branches). The paper
//! deliberately leaves the rule list to \[24\]; this implementation contains the
//! core degree- and bound-based subset of those rules (see `DESIGN.md` §3),
//! which keeps the baseline correct (verified against the exhaustive oracle)
//! and preserves its defining characteristics: SE branching and no worst-case
//! guarantee better than `O*(2^n)`.
//!
//! Unlike FastQC, Quick+ does **not** apply the necessary-maximality filter to
//! its outputs, so it reports more non-maximal quasi-cliques (this is the
//! `#{Quick+}` vs `#{DCFastQC}` comparison of Table 1).

use std::time::Instant;

use mqce_graph::bitset::AdjacencyMatrix;
use mqce_graph::{Graph, VertexId};

use crate::bounds::{branch_bounds, candidate_feasible};
use crate::branch::{DegSource, SearchCtx, SearchOutcome, SearchScratch};
use crate::config::MqceParams;
use crate::quasiclique::{required_degree, tau};
use crate::scheduler::{SplitRequest, SplitSink};
use crate::stats::SearchStats;

/// Runs Quick+ on `g` starting from the branch `(s_init, cand, implicit D)`.
pub fn run_quickplus(
    g: &Graph,
    s_init: &[VertexId],
    cand: &[VertexId],
    params: MqceParams,
    deadline: Option<Instant>,
) -> SearchOutcome {
    run_quickplus_with_kernel(g, None, s_init, cand, params, deadline)
}

/// [`run_quickplus`] with an optionally pre-built bitset adjacency kernel
/// over `g` (see [`run_fastqc_with_kernel`](crate::fastqc::run_fastqc_with_kernel)).
pub fn run_quickplus_with_kernel(
    g: &Graph,
    kernel: Option<&AdjacencyMatrix>,
    s_init: &[VertexId],
    cand: &[VertexId],
    params: MqceParams,
    deadline: Option<Instant>,
) -> SearchOutcome {
    run_quickplus_inner(g, kernel, s_init, cand, params, deadline, None)
}

/// [`run_quickplus_with_kernel`] with a split sink, materialising its
/// outputs: while SE-branching at shallow depths the searcher polls
/// `splitter` and donates untaken sibling branches to hungry workers. Test
/// support — the scheduler itself threads a [`SearchScratch`] through
/// [`run_quickplus_in`] instead.
#[cfg(test)]
pub(crate) fn run_quickplus_split(
    g: &Graph,
    kernel: Option<&AdjacencyMatrix>,
    s_init: &[VertexId],
    cand: &[VertexId],
    params: MqceParams,
    deadline: Option<Instant>,
    splitter: &dyn SplitSink,
) -> SearchOutcome {
    run_quickplus_inner(g, kernel, s_init, cand, params, deadline, Some(splitter))
}

fn run_quickplus_inner(
    g: &Graph,
    kernel: Option<&AdjacencyMatrix>,
    s_init: &[VertexId],
    cand: &[VertexId],
    params: MqceParams,
    deadline: Option<Instant>,
    splitter: Option<&dyn SplitSink>,
) -> SearchOutcome {
    let mut bufs = SearchScratch::new();
    let stats = run_quickplus_in(
        g, kernel, s_init, cand, params, deadline, splitter, &mut bufs,
    );
    SearchOutcome {
        outputs: bufs.sets.into_vecs(),
        stats,
        thread_stats: Vec::new(),
    }
}

/// The allocation-free driver entry point: runs Quick+ using the caller's
/// reusable [`SearchScratch`], leaving the emitted family behind in
/// `bufs.sets` (local ids, packed). Returns the search statistics.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_quickplus_in(
    g: &Graph,
    kernel: Option<&AdjacencyMatrix>,
    s_init: &[VertexId],
    cand: &[VertexId],
    params: MqceParams,
    deadline: Option<Instant>,
    splitter: Option<&dyn SplitSink>,
    bufs: &mut SearchScratch,
) -> SearchStats {
    let mut ctx = SearchCtx::new_with_kernel(g, kernel, params, s_init, cand, deadline, bufs);
    if let Some(splitter) = splitter {
        ctx = ctx.with_splitter(splitter);
    }
    let mut root = ctx.take_buf();
    root.extend_from_slice(cand);
    let mut searcher = QuickPlus { ctx: &mut ctx };
    searcher.recurse(root);
    ctx.finish()
}

/// Convenience wrapper: run Quick+ over the whole graph.
pub fn quickplus_whole_graph(
    g: &Graph,
    params: MqceParams,
    deadline: Option<Instant>,
) -> SearchOutcome {
    let all: Vec<VertexId> = g.vertices().collect();
    run_quickplus(g, &[], &all, params, deadline)
}

struct QuickPlus<'a, 'g> {
    ctx: &'a mut SearchCtx<'g>,
}

impl<'a, 'g> QuickPlus<'a, 'g> {
    /// `Quick-Rec(S, C, D)`: returns `true` iff a quasi-clique was found under
    /// this branch (so the parent knows whether to consider `G[S]`).
    fn recurse(&mut self, cand: Vec<VertexId>) -> bool {
        let result = if self.ctx.enter_branch() {
            self.branch_body(&cand)
        } else {
            false
        };
        self.ctx.leave_branch();
        self.ctx.put_buf(cand);
        result
    }

    fn branch_body(&mut self, cand: &[VertexId]) -> bool {
        // Termination (lines 3-6): no candidates left.
        if cand.is_empty() {
            return self.output_partial_set();
        }

        // SE branching (Equation 1): branch B_i includes v_i and excludes
        // v_1..v_{i-1}.
        let order = cand;
        let mut any_found = false;
        let mut donated = false;
        let mut excluded = self.ctx.take_buf();
        let mut removed = self.ctx.take_buf();
        for (i, &vi) in order.iter().enumerate() {
            // Donate the untaken SE branches B_{i+1}.. (include v_k, exclude
            // v_1..v_{k-1}, implicit in the (s_init, cand) pair) when a
            // worker is hungry, then finish only the current branch here.
            let rest = order.len() - i - 1;
            if rest > 0 && self.ctx.should_split(rest) {
                let s0 = self.ctx.s_vertices().to_vec();
                let mut tasks = Vec::with_capacity(rest);
                for k in i + 1..order.len() {
                    let mut s = s0.clone();
                    s.push(order[k]);
                    tasks.push(SplitRequest {
                        s_init: s,
                        cand: order[k + 1..].to_vec(),
                    });
                }
                self.ctx.donate(tasks);
                donated = true;
            }
            self.ctx.push_s(vi);
            let mut child_cand = self.ctx.take_buf();
            child_cand.extend_from_slice(&order[i + 1..]);

            // Type I pruning on C_i and Type II checks on S_i.
            removed.clear();
            let type2 = self.prune(&mut child_cand, &mut removed);
            if !type2 {
                any_found |= self.recurse(child_cand);
            } else {
                self.ctx.stats.pruned_by_size += 1;
                self.ctx.put_buf(child_cand);
            }
            for &v in removed.iter().rev() {
                self.ctx.restore_c(v);
            }
            self.ctx.pop_s(vi);
            if self.ctx.aborted {
                break;
            }
            if donated {
                break;
            }
            self.ctx.remove_c(vi);
            excluded.push(vi);
        }
        let aborted = self.ctx.aborted;
        for &v in excluded.iter().rev() {
            self.ctx.restore_c(v);
        }
        self.ctx.put_buf(excluded);
        self.ctx.put_buf(removed);
        if aborted {
            return any_found;
        }

        // Additional step (lines 12-15): if no sub-branch found a QC, the
        // partial set itself may be one (non-hereditary property).
        if any_found {
            return true;
        }
        self.output_partial_set()
    }

    /// Emits `G[S]` if it is a large QC. Returns `true` iff `G[S]` is a QC
    /// (regardless of θ), per lines 4-5 / 13-14 of Algorithm 1. Quick+ does
    /// not apply the necessary-maximality filter.
    fn output_partial_set(&mut self) -> bool {
        if self.ctx.s_len() == 0 {
            return false;
        }
        let mut s = self.ctx.take_buf();
        s.extend_from_slice(self.ctx.s_vertices());
        let result = if self.ctx.is_qc(&s) {
            self.ctx.emit(&s, DegSource::PartialSet, false);
            true
        } else {
            false
        };
        self.ctx.put_buf(s);
        result
    }

    /// Applies Type I pruning rules to `cand` (removing vertices, recorded in
    /// `removed` for undo) and then checks the Type II rules on `S`.
    /// Returns `true` if a Type II rule fires (the branch must be skipped).
    fn prune(&mut self, cand: &mut Vec<VertexId>, removed: &mut Vec<VertexId>) -> bool {
        let gamma = self.ctx.gamma;
        let theta = self.ctx.theta;
        let min_req = required_degree(gamma, theta);
        loop {
            let s_len = self.ctx.s_len();
            let total = s_len + cand.len();
            // Type II (a): not enough vertices left for a large QC.
            if total < theta {
                return true;
            }
            // τ(N) bounds the disconnections of any vertex in a QC under the
            // branch (Equation 7 instantiated at the largest possible size).
            let tau_n = tau(gamma, total as f64);
            // Type II (b): a vertex of S already has too many disconnections
            // within S, or cannot reach the θ-degree requirement at all.
            for &v in self.ctx.s_vertices() {
                if self.ctx.disconnections_s(v) as i64 > tau_n {
                    return true;
                }
                if self.ctx.deg_sc(v) < min_req {
                    return true;
                }
            }
            // Type II (c): upper bound on the size of any QC under the branch
            // derived from the minimum degree within S (Lemma 2).
            if let Some(dmin) = self.ctx.d_min() {
                let size_bound = (dmin as f64 / gamma + 1.0).floor() as usize;
                if size_bound.min(total) < theta {
                    return true;
                }
            }
            // Type II (d): the upper/lower bounds on the number of addable
            // candidates (the U_min / L_max rules of Quick). `upper` caps how
            // many candidates any QC under the branch can still absorb;
            // `lower` is how many the most deficient member of S still needs.
            let bounds = match branch_bounds(
                gamma,
                s_len,
                self.ctx
                    .s_vertices()
                    .iter()
                    .map(|&v| {
                        let ind = self.ctx.deg_s(v);
                        (ind, self.ctx.deg_sc(v) - ind)
                    })
                    .collect::<Vec<_>>(),
                cand.len(),
            ) {
                Some(b) => b,
                None => return true,
            };
            if s_len + bounds.upper < theta || bounds.lower > bounds.upper {
                return true;
            }
            let t_max = if s_len == 0 { cand.len() } else { bounds.upper };

            // Type I rules: remove candidates that cannot belong to any large
            // QC under the branch.
            let mut to_remove = self.ctx.take_buf();
            for &v in cand.iter() {
                // (1) Degree too small to ever satisfy the θ requirement.
                let rule_degree = self.ctx.deg_sc(v) < min_req;
                // (2) Too many non-neighbours within S already:
                //     δ̄(v, S∪{v}) > τ(N).
                let disconnections = s_len + 1 - self.ctx.deg_s(v);
                let rule_disconnections = disconnections as i64 > tau_n;
                // (3) Bound-based rule: no admissible number of additions
                //     t ≤ U_min lets v reach its own degree requirement in a
                //     QC of size ≥ θ.
                let ind_s = self.ctx.deg_s(v);
                let ext_c = self.ctx.deg_sc(v) - ind_s;
                let rule_bounds = !candidate_feasible(gamma, theta, s_len, ind_s, ext_c, t_max);
                if rule_degree || rule_disconnections || rule_bounds {
                    to_remove.push(v);
                }
            }
            if to_remove.is_empty() {
                self.ctx.put_buf(to_remove);
                return false;
            }
            self.ctx.stats.candidates_refined += to_remove.len() as u64;
            for &v in &to_remove {
                self.ctx.remove_c(v);
                removed.push(v);
            }
            cand.retain(|v| !to_remove.contains(v));
            self.ctx.put_buf(to_remove);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MqceParams;
    use crate::naive;
    use mqce_settrie::filter_maximal;

    fn params(gamma: f64, theta: usize) -> MqceParams {
        MqceParams::new(gamma, theta).unwrap()
    }

    fn check_against_oracle(g: &Graph, gamma: f64, theta: usize) {
        let p = params(gamma, theta);
        let outcome = quickplus_whole_graph(g, p, None);
        assert_eq!(outcome.stats.outputs_rejected, 0);
        for h in &outcome.outputs {
            assert!(h.len() >= theta);
            assert!(crate::quasiclique::is_quasi_clique(g, h, gamma));
        }
        let filtered = filter_maximal(&outcome.outputs);
        let expected = naive::all_maximal_quasi_cliques(g, p);
        assert_eq!(
            filtered,
            expected,
            "Quick+ mismatch for gamma={gamma} theta={theta} on {} vertices",
            g.num_vertices()
        );
    }

    #[test]
    fn complete_and_paper_graphs() {
        check_against_oracle(&Graph::complete(6), 0.9, 3);
        let g = Graph::paper_figure1();
        for &gamma in &[0.5, 0.6, 0.7, 0.9, 1.0] {
            check_against_oracle(&g, gamma, 2);
            check_against_oracle(&g, gamma, 3);
        }
    }

    #[test]
    fn random_graphs_match_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for case in 0..25 {
            let n = rng.gen_range(4..10);
            let p = rng.gen_range(0.25..0.85);
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(p) {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges);
            let gamma = [0.5, 0.6, 0.75, 0.9, 1.0][case % 5];
            let theta = 2 + (case % 2);
            check_against_oracle(&g, gamma, theta);
        }
    }

    #[test]
    fn quickplus_reports_at_least_as_many_outputs_as_fastqc() {
        // Quick+ lacks the necessary-maximality filter, so its S1 output is a
        // superset in count (Table 1 shape: #{Quick+} ≥ #{DCFastQC}).
        use crate::config::BranchingStrategy;
        use crate::fastqc::fastqc_whole_graph;
        let g = Graph::paper_figure1();
        let p = params(0.6, 3);
        let quick = quickplus_whole_graph(&g, p, None);
        let fast = fastqc_whole_graph(&g, p, BranchingStrategy::HybridSe, None);
        assert!(quick.stats.outputs >= fast.stats.outputs);
        // And both reduce to the same maximal set.
        assert_eq!(
            filter_maximal(&quick.outputs),
            filter_maximal(&fast.outputs)
        );
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(4);
        let outcome = quickplus_whole_graph(&g, params(0.9, 2), None);
        assert!(outcome.outputs.is_empty());
    }

    #[test]
    fn dc_style_invocation() {
        let g = Graph::complete(5);
        let outcome = run_quickplus(&g, &[0], &[1, 2, 3, 4], params(0.9, 2), None);
        let filtered = filter_maximal(&outcome.outputs);
        assert_eq!(filtered, vec![vec![0, 1, 2, 3, 4]]);
    }
}
