//! Work-stealing scheduler for the parallel divide-and-conquer driver.
//!
//! The PR-3 parallel driver handed out whole per-vertex subproblems through
//! a shared atomic index, which wastes cores on skewed subproblem families:
//! one heavy subproblem (the planted-community shape) pins a worker for the
//! whole run while the others drain the cheap tail and go idle. This module
//! replaces it with a classic work-stealing design à la Chase–Lev, adapted
//! to the vendored-only constraints (no `crossbeam`): per-worker deques with
//! a `Mutex`-backed queue behind a lock-free atomic-length fast path, plus
//! **cooperative intra-subproblem splitting** so even a single giant
//! subproblem parallelises:
//!
//! * **Seeding** — subproblems enter the deques in descending estimated
//!   cost, using the two-hop-pruned candidate-set size `|Γ²(v_i) ∩
//!   later-ranked|` from the DC plan as the estimate, so heavy subproblems
//!   start as early as possible (longest-job-first keeps the makespan tail
//!   short).
//! * **Stealing** — a worker pops from the front of its own deque (heaviest
//!   seed first) and steals from the back of a victim's.
//! * **Splitting** — busy searchers poll the scheduler's hungry-worker
//!   count at shallow branching frames (see
//!   [`SearchCtx`](crate::branch::SearchCtx)); when a worker is hungry, the
//!   searcher packages its untaken sibling branches as self-contained
//!   [`SplitTask`]s — a shared subgraph handle plus the branch's partial
//!   set and candidate list (exclusions are implicit: a vertex in neither
//!   is excluded) — and pushes them onto its own deque for thieves to take.
//!   Split tasks run in a fresh search context and can themselves split
//!   further, so one dense community keeps every worker fed.
//!
//! Splitting is *output-sound*: a stolen branch reproduces exactly the
//! outputs the donor's recursion would have produced from the same
//! `(S, C, D)` state, and the only divergence from the sequential run is
//! that the donor no longer learns whether a donated branch found a
//! quasi-clique, so the non-hereditary "additional step" may emit a few
//! extra *valid* (but dominated) quasi-cliques. The streaming MQCE-S2
//! engine drops those on arrival or at compaction, so the final maximal
//! family is identical to the sequential driver's.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mqce_graph::bitset::AdjacencyMatrix;
use mqce_graph::{Graph, InducedSubgraph, VertexId};
use mqce_settrie::{MaximalityEngine, SetArena};

use crate::branch::{SearchOutcome, SearchScratch};
use crate::config::MqceParams;
use crate::dc::{build_subproblem_in, DcConfig, DcPlan, DcScratch, EngineFactory, InnerAlgorithm};
use crate::fastqc::run_fastqc_in;
use crate::quickplus::run_quickplus_in;
use crate::stats::{SearchStats, ThreadStats};

/// Idle spins (yields) before the hungry wait loop starts sleeping.
const IDLE_SPINS_BEFORE_SLEEP: u32 = 64;

/// Sleep interval of the hungry wait loop once spinning gave up.
const IDLE_SLEEP: Duration = Duration::from_micros(50);

/// One untaken branch of a running search, expressed in the subproblem's
/// local vertex ids. The exclusion set is implicit: any vertex of the
/// subgraph in neither `s_init` nor `cand` is excluded, which is exactly the
/// `(S, C, D)` convention of [`SearchCtx`](crate::branch::SearchCtx), so the
/// request rebuilds the donor's branch state verbatim.
pub(crate) struct SplitRequest {
    /// The branch's partial set `S`.
    pub s_init: Vec<VertexId>,
    /// The branch's candidate set `C`.
    pub cand: Vec<VertexId>,
}

/// The donation hook a searcher polls while branching. Implemented by the
/// scheduler's per-subproblem sink; the searcher only sees this trait so the
/// sequential drivers pay nothing.
pub(crate) trait SplitSink {
    /// Whether a hungry worker exists and `rest` untaken sibling branches
    /// are enough to be worth packaging (the `--steal-granularity` knob).
    fn want_split(&self, rest: usize) -> bool;

    /// Donates untaken branches of the current subproblem; they become
    /// stealable [`SplitTask`]s.
    fn donate(&self, branches: Vec<SplitRequest>);
}

/// The shared, immutable context of one DC subproblem: the induced subgraph
/// (local ids `0..n`), its optional bitset kernel, and the composed
/// local → original-graph id map. Split tasks hold this behind an [`Arc`] so
/// a stolen branch is self-contained wherever it runs.
pub(crate) struct SubShared {
    /// The pruned subproblem graph over local ids.
    pub graph: Graph,
    /// Optional packed adjacency kernel over the local ids.
    pub kernel: Option<AdjacencyMatrix>,
    /// `to_orig[local]` = vertex id in the *original* input graph
    /// (subgraph-local → reduced-graph → original, pre-composed).
    pub to_orig: Vec<VertexId>,
}

/// A stolen slice of one subproblem's search tree, run to completion by
/// whichever worker takes it.
pub(crate) struct SplitTask {
    /// Shared subproblem context.
    pub shared: Arc<SubShared>,
    /// Partial set of the donated branch (local ids).
    pub s_init: Vec<VertexId>,
    /// Candidate set of the donated branch (local ids).
    pub cand: Vec<VertexId>,
}

/// A unit of schedulable work.
enum Task {
    /// A whole per-vertex subproblem (index into the plan's ordering).
    Root(usize),
    /// A donated slice of a running subproblem's search tree.
    Split(SplitTask),
}

/// One worker's deque. The owner pops from the front (its seeds are stored
/// heaviest-first) and thieves steal from the back; both go through the
/// mutex, but the atomic length lets every reader skip empty deques without
/// touching the lock — the fast path that matters when most deques are
/// drained and workers scan for leftovers.
struct WorkerDeque {
    queue: Mutex<VecDeque<Task>>,
    len: AtomicUsize,
}

impl WorkerDeque {
    fn new() -> Self {
        WorkerDeque {
            queue: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    fn push_back(&self, task: Task) {
        let mut q = self.queue.lock().expect("deque poisoned");
        q.push_back(task);
        self.len.store(q.len(), Ordering::Release);
    }

    fn push_front(&self, task: Task) {
        let mut q = self.queue.lock().expect("deque poisoned");
        q.push_front(task);
        self.len.store(q.len(), Ordering::Release);
    }

    fn pop_front(&self) -> Option<Task> {
        if self.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut q = self.queue.lock().expect("deque poisoned");
        let task = q.pop_front();
        self.len.store(q.len(), Ordering::Release);
        task
    }

    fn pop_back(&self) -> Option<Task> {
        if self.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut q = self.queue.lock().expect("deque poisoned");
        let task = q.pop_back();
        self.len.store(q.len(), Ordering::Release);
        task
    }
}

/// The shared scheduler state of one parallel DC run.
struct Scheduler {
    deques: Vec<WorkerDeque>,
    /// Tasks pushed but not yet finished. Workers may exit when this hits 0;
    /// it is incremented *before* a donated task becomes visible so the
    /// count never under-reports.
    outstanding: AtomicUsize,
    /// Tasks currently sitting in deques (outstanding minus running). Kept
    /// so donation is demand-bounded: once the queues already hold enough
    /// work to feed every hungry worker, searchers stop donating instead of
    /// shredding their trees into far more tasks than there are thieves.
    queued: AtomicUsize,
    /// Number of workers currently failing to find work. Searchers poll this
    /// (through [`SplitSink::want_split`]) to decide when to donate.
    hungry: AtomicUsize,
    /// Minimum donatable-branch count before a split happens; 0 disables
    /// intra-subproblem splitting.
    granularity: usize,
}

impl Scheduler {
    fn new(num_threads: usize, granularity: usize) -> Self {
        Scheduler {
            deques: (0..num_threads).map(|_| WorkerDeque::new()).collect(),
            outstanding: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            hungry: AtomicUsize::new(0),
            granularity,
        }
    }

    /// Pops the worker's own deque, falling back to stealing from the other
    /// workers (scanning from the next worker around the ring). Returns the
    /// task and whether it was stolen.
    fn find_task(&self, worker: usize) -> Option<(Task, bool)> {
        if let Some(task) = self.deques[worker].pop_front() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some((task, false));
        }
        let n = self.deques.len();
        for k in 1..n {
            if let Some(task) = self.deques[(worker + k) % n].pop_back() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some((task, true));
            }
        }
        None
    }

    fn donate(&self, worker: usize, shared: &Arc<SubShared>, branches: Vec<SplitRequest>) {
        self.outstanding.fetch_add(branches.len(), Ordering::SeqCst);
        self.queued.fetch_add(branches.len(), Ordering::SeqCst);
        for req in branches {
            self.deques[worker].push_front(Task::Split(SplitTask {
                shared: Arc::clone(shared),
                s_init: req.s_init,
                cand: req.cand,
            }));
        }
    }

    fn work_remains(&self) -> bool {
        self.outstanding.load(Ordering::SeqCst) > 0
    }
}

/// The per-subproblem [`SplitSink`] a worker hands to its searcher.
struct SubSink<'a> {
    sched: &'a Scheduler,
    shared: Arc<SubShared>,
    worker: usize,
}

impl SplitSink for SubSink<'_> {
    fn want_split(&self, rest: usize) -> bool {
        if self.sched.granularity == 0 || rest < self.sched.granularity {
            return false;
        }
        // Donate only while demand outstrips the queued supply: hungry
        // workers scan every deque, so any queued task satisfies one of
        // them, and donating beyond that just shreds the donor's tree into
        // more context-rebuild overhead than there are thieves.
        let hungry = self.sched.hungry.load(Ordering::Relaxed);
        hungry > 0 && self.sched.queued.load(Ordering::Relaxed) < hungry
    }

    fn donate(&self, branches: Vec<SplitRequest>) {
        self.sched.donate(self.worker, &self.shared, branches);
    }
}

/// One anchor's cost estimate: the size of the two-hop-pruned candidate set
/// `|Γ²(v_i) ∩ later-ranked|` (what `build_subproblem` will materialise).
/// `tag` must be unique per call within one `stamp` array's lifetime so the
/// pass allocates nothing per vertex.
fn two_hop_estimate(plan: &DcPlan, stamp: &mut [u32], tag: u32, vi: mqce_graph::VertexId) -> usize {
    let rg = &plan.reduced.graph;
    let my_rank = plan.rank[vi as usize];
    stamp[vi as usize] = tag;
    let mut count = 1usize;
    for &u in rg.neighbors(vi) {
        if stamp[u as usize] != tag {
            stamp[u as usize] = tag;
            if plan.rank[u as usize] >= my_rank {
                count += 1;
            }
        }
    }
    for &u in rg.neighbors(vi) {
        for &w in rg.neighbors(u) {
            if stamp[w as usize] != tag {
                stamp[w as usize] = tag;
                if plan.rank[w as usize] >= my_rank {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Per-subproblem cost estimates used to seed the deques (the sequential
/// pass, kept as the `num_threads == 1` case and the differential reference).
/// The shard planner reuses it to cost-balance its contiguous rank ranges.
pub(crate) fn subproblem_estimates(plan: &DcPlan) -> Vec<usize> {
    let mut stamp: Vec<u32> = vec![u32::MAX; plan.reduced.graph.num_vertices()];
    plan.ordering
        .iter()
        .enumerate()
        .map(|(i, &vi)| two_hop_estimate(plan, &mut stamp, i as u32, vi))
        .collect()
}

/// Parallel variant of [`subproblem_estimates`]: the ordering is split into
/// one contiguous chunk per worker and each chunk runs on its own scoped
/// thread, reusing the epoch-stamped array of that worker's [`DcScratch`]
/// (the same array the subproblem builds will use). On very large graphs
/// this pass used to be a single-threaded serial section before the workers
/// even started.
///
/// Returns the estimates plus each worker's wall-clock milliseconds, which
/// the caller folds into the matching worker's [`ThreadStats`] busy time so
/// the per-thread accounting covers the whole parallel region.
fn subproblem_estimates_parallel(
    plan: &DcPlan,
    num_threads: usize,
    scratches: &mut [DcScratch],
) -> (Vec<usize>, Vec<f64>) {
    let n = plan.ordering.len();
    if num_threads <= 1 || n < 2 {
        let start = Instant::now();
        let estimates = subproblem_estimates(plan);
        return (estimates, vec![start.elapsed().as_secs_f64() * 1e3]);
    }
    let chunk_len = n.div_ceil(num_threads);
    let num_vertices = plan.reduced.graph.num_vertices();
    let results: Vec<(usize, Vec<usize>, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = plan
            .ordering
            .chunks(chunk_len)
            .enumerate()
            .zip(scratches.iter_mut())
            .map(|((k, chunk), scratch)| {
                let offset = k * chunk_len;
                scope.spawn(move || {
                    let start = Instant::now();
                    let estimates: Vec<usize> = chunk
                        .iter()
                        .map(|&vi| {
                            let (stamp, tag) = scratch.sub.stamp_epoch(num_vertices);
                            two_hop_estimate(plan, stamp, tag, vi)
                        })
                        .collect();
                    (offset, estimates, start.elapsed().as_secs_f64() * 1e3)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("estimate thread panicked"))
            .collect()
    });
    let mut estimates = vec![0usize; n];
    let mut millis = vec![0.0f64; num_threads];
    for (worker, (offset, chunk_estimates, elapsed)) in results.into_iter().enumerate() {
        estimates[offset..offset + chunk_estimates.len()].copy_from_slice(&chunk_estimates);
        millis[worker] = elapsed;
    }
    (estimates, millis)
}

/// Everything one worker accumulated over the run. Mapped outputs are packed
/// into a flat arena and boxed only once, at the final merge.
struct WorkerResult {
    raw: SetArena,
    stats: SearchStats,
    engine: Option<Box<dyn MaximalityEngine>>,
    thread_stats: ThreadStats,
}

/// Runs the prepared DC plan on `num_threads` workers with work stealing and
/// cooperative intra-subproblem splitting. Returns the merged outcome (with
/// per-thread counters) and the per-worker maximality engines.
pub(crate) fn run_dc_work_stealing(
    plan: &DcPlan,
    params: MqceParams,
    inner: InnerAlgorithm,
    dc: DcConfig,
    num_threads: usize,
    deadline: Option<Instant>,
    engine_factory: Option<EngineFactory<'_>>,
) -> (SearchOutcome, Vec<Box<dyn MaximalityEngine>>) {
    let sched = Scheduler::new(num_threads, params.steal_granularity);
    // One reusable scratch per worker, threaded through the whole run: the
    // estimate pass below shares its stamp array, then each worker owns one
    // scratch for every subproblem and stolen split task it executes.
    let mut scratches: Vec<DcScratch> = (0..num_threads).map(|_| DcScratch::default()).collect();
    // The cost-estimate pass parallelises over the same worker count; its
    // per-chunk wall-clock is folded into the matching worker's busy time
    // below so ThreadStats covers the whole parallel region.
    let (estimates, estimate_millis) =
        subproblem_estimates_parallel(plan, num_threads, &mut scratches);
    let mut seeds: Vec<usize> = (0..plan.ordering.len()).collect();
    // Descending estimated cost; ties broken by ordering position so the
    // seeding is deterministic.
    seeds.sort_by(|&a, &b| estimates[b].cmp(&estimates[a]).then(a.cmp(&b)));
    sched.outstanding.store(seeds.len(), Ordering::SeqCst);
    sched.queued.store(seeds.len(), Ordering::SeqCst);
    // Round-robin over the workers keeps each deque individually descending,
    // so owners pop their heaviest remaining seed first.
    for (k, &idx) in seeds.iter().enumerate() {
        sched.deques[k % num_threads].push_back(Task::Root(idx));
    }

    let sched_ref = &sched;
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = scratches
            .into_iter()
            .enumerate()
            .map(|(id, scratch)| {
                scope.spawn(move || {
                    worker_loop(
                        sched_ref,
                        id,
                        plan,
                        params,
                        inner,
                        dc,
                        deadline,
                        engine_factory,
                        scratch,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    let mut stats = SearchStats::default();
    let mut outputs = Vec::new();
    let mut engines = Vec::new();
    let mut thread_stats = Vec::new();
    for (worker, mut result) in results.into_iter().enumerate() {
        result.thread_stats.busy_millis += estimate_millis.get(worker).copied().unwrap_or(0.0);
        stats.merge(&result.stats);
        outputs.extend(result.raw.into_vecs());
        engines.extend(result.engine);
        thread_stats.push(result.thread_stats);
    }
    (
        SearchOutcome {
            outputs,
            stats,
            thread_stats,
        },
        engines,
    )
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    sched: &Scheduler,
    id: usize,
    plan: &DcPlan,
    params: MqceParams,
    inner: InnerAlgorithm,
    dc: DcConfig,
    deadline: Option<Instant>,
    engine_factory: Option<EngineFactory<'_>>,
    mut scratch: DcScratch,
) -> WorkerResult {
    let mut result = WorkerResult {
        raw: SetArena::new(),
        stats: SearchStats::default(),
        engine: engine_factory.map(|f| f()),
        thread_stats: ThreadStats {
            thread: id,
            ..Default::default()
        },
    };
    loop {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            if sched.work_remains() {
                result.stats.timed_out = true;
            }
            break;
        }
        match sched.find_task(id) {
            Some((task, stolen)) => {
                if stolen {
                    result.thread_stats.steals += 1;
                    result.stats.tasks_stolen += 1;
                }
                let start = Instant::now();
                run_task(
                    sched,
                    id,
                    task,
                    plan,
                    params,
                    inner,
                    dc,
                    deadline,
                    &mut scratch,
                    &mut result,
                );
                sched.outstanding.fetch_sub(1, Ordering::SeqCst);
                result.thread_stats.busy_millis += start.elapsed().as_secs_f64() * 1e3;
            }
            None => {
                if !sched.work_remains() {
                    break;
                }
                // Hungry: advertise it (searchers poll this to donate) and
                // wait for work to appear or the run to end.
                let start = Instant::now();
                sched.hungry.fetch_add(1, Ordering::SeqCst);
                let mut spins = 0u32;
                loop {
                    if !sched.work_remains()
                        || sched
                            .deques
                            .iter()
                            .any(|d| d.len.load(Ordering::Acquire) > 0)
                        || deadline.is_some_and(|d| Instant::now() >= d)
                    {
                        break;
                    }
                    spins += 1;
                    if spins < IDLE_SPINS_BEFORE_SLEEP {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(IDLE_SLEEP);
                    }
                }
                sched.hungry.fetch_sub(1, Ordering::SeqCst);
                result.thread_stats.idle_millis += start.elapsed().as_secs_f64() * 1e3;
            }
        }
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn run_task(
    sched: &Scheduler,
    id: usize,
    task: Task,
    plan: &DcPlan,
    params: MqceParams,
    inner: InnerAlgorithm,
    dc: DcConfig,
    deadline: Option<Instant>,
    scratch: &mut DcScratch,
    result: &mut WorkerResult,
) {
    match task {
        Task::Root(idx) => {
            let vi = plan.ordering[idx];
            result.thread_stats.subproblems += 1;
            let Some((sub, local_vi)) =
                build_subproblem_in(plan, vi, params, dc, &mut result.stats, scratch)
            else {
                return;
            };
            // Pre-compose local → original in place (both id maps are sorted
            // ascending, so the composition stays sorted) so split tasks
            // never need the plan.
            let InducedSubgraph {
                graph,
                to_global,
                adjacency,
            } = sub;
            let mut to_orig = to_global;
            for r in to_orig.iter_mut() {
                *r = plan.reduced.to_global[*r as usize];
            }
            let shared = Arc::new(SubShared {
                graph,
                kernel: adjacency,
                to_orig,
            });
            {
                let DcScratch {
                    ref mut search,
                    ref cand,
                    ..
                } = *scratch;
                execute_branch(
                    sched,
                    id,
                    &shared,
                    &[local_vi],
                    cand,
                    params,
                    inner,
                    deadline,
                    search,
                    result,
                );
            }
            // If no outstanding split task still holds the subproblem, take
            // its buffers back so the next build reuses them.
            if let Ok(sh) = Arc::try_unwrap(shared) {
                scratch.sub.recycle_graph(sh.graph, sh.to_orig);
            }
        }
        Task::Split(split) => {
            result.thread_stats.splits += 1;
            result.stats.split_executed += 1;
            execute_branch(
                sched,
                id,
                &split.shared,
                &split.s_init,
                &split.cand,
                params,
                inner,
                deadline,
                &mut scratch.search,
                result,
            );
        }
    }
}

/// Runs the configured searcher on one branch of a subproblem (the whole
/// subproblem when `s_init = [v_i]`) with the worker's reusable search
/// scratch, maps the outputs to original-graph ids into the worker's flat
/// arena, and streams them into the worker's engine.
#[allow(clippy::too_many_arguments)]
fn execute_branch(
    sched: &Scheduler,
    id: usize,
    shared: &Arc<SubShared>,
    s_init: &[VertexId],
    cand: &[VertexId],
    params: MqceParams,
    inner: InnerAlgorithm,
    deadline: Option<Instant>,
    search: &mut SearchScratch,
    result: &mut WorkerResult,
) {
    let sink = SubSink {
        sched,
        shared: Arc::clone(shared),
        worker: id,
    };
    let kernel = shared.kernel.as_ref();
    // Containment boundary: a panicking branch fails alone. `AssertUnwindSafe`
    // is sound because on panic everything the closure mutated is discarded or
    // already consistent: the search scratch is replaced wholesale below, the
    // worker arena and engine are untouched until the searcher returns, and
    // any branches donated through the sink before the panic are self-contained
    // tasks already counted in `outstanding` (they run independently of this
    // branch's fate). `worker_loop` still decrements `outstanding` after this
    // returns, so containment never hangs the barrier.
    let anchor = s_init.first().map(|&l| shared.to_orig[l as usize]);
    let searched = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(a) = anchor {
            if params.fail_anchor == Some(a) {
                panic!("injected fault: searcher panic at anchor {a}");
            }
        }
        match inner {
            InnerAlgorithm::FastQc(branching) => run_fastqc_in(
                &shared.graph,
                kernel,
                s_init,
                cand,
                params,
                branching,
                deadline,
                Some(&sink),
                search,
            ),
            InnerAlgorithm::QuickPlus => run_quickplus_in(
                &shared.graph,
                kernel,
                s_init,
                cand,
                params,
                deadline,
                Some(&sink),
                search,
            ),
        }
    }));
    let stats = match searched {
        Ok(stats) => stats,
        Err(_) => {
            result.stats.subproblem_panics += 1;
            result.stats.last_panicked_anchor = anchor;
            *search = SearchScratch::default();
            return;
        }
    };
    result.stats.merge(&stats);
    for i in 0..search.sets.len() {
        result.raw.begin();
        for &l in search.sets.get(i) {
            result.raw.push_elem(shared.to_orig[l as usize]);
        }
        let set = result.raw.commit_sorted();
        if let Some(engine) = result.engine.as_deref_mut() {
            engine.add(set);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BranchingStrategy, MqceParams};
    use crate::fastqc::run_fastqc_split;
    use crate::naive;
    use crate::quickplus::run_quickplus_split;
    use mqce_settrie::filter_maximal;
    use std::cell::{Cell, RefCell};

    /// A sink that accepts every offered split: the searcher donates its
    /// untaken branches at the first opportunity of every shallow frame, so
    /// the test exercises the branch-packaging arithmetic of all branching
    /// strategies deterministically (no scheduling races involved).
    struct GreedySink {
        queue: RefCell<Vec<SplitRequest>>,
        donations: Cell<usize>,
    }

    impl GreedySink {
        fn new() -> Self {
            GreedySink {
                queue: RefCell::new(Vec::new()),
                donations: Cell::new(0),
            }
        }
    }

    impl SplitSink for GreedySink {
        fn want_split(&self, _rest: usize) -> bool {
            true
        }

        fn donate(&self, branches: Vec<SplitRequest>) {
            self.donations.set(self.donations.get() + branches.len());
            self.queue.borrow_mut().extend(branches);
        }
    }

    /// Runs a whole-graph search under greedy splitting and then drains the
    /// donated-task queue to completion (tasks may re-donate), returning the
    /// union of all outputs.
    fn run_with_greedy_splits(
        g: &Graph,
        params: MqceParams,
        branching: Option<BranchingStrategy>,
    ) -> (Vec<Vec<VertexId>>, usize) {
        let sink = GreedySink::new();
        let all: Vec<VertexId> = g.vertices().collect();
        let mut outputs = match branching {
            Some(b) => run_fastqc_split(g, None, &[], &all, params, b, None, &sink).outputs,
            None => run_quickplus_split(g, None, &[], &all, params, None, &sink).outputs,
        };
        loop {
            let task = sink.queue.borrow_mut().pop();
            let Some(task) = task else { break };
            let outcome = match branching {
                Some(b) => {
                    run_fastqc_split(g, None, &task.s_init, &task.cand, params, b, None, &sink)
                }
                None => run_quickplus_split(g, None, &task.s_init, &task.cand, params, None, &sink),
            };
            outputs.extend(outcome.outputs);
        }
        (outputs, sink.donations.get())
    }

    #[test]
    fn greedy_splitting_preserves_the_maximal_family() {
        let graphs = vec![
            Graph::paper_figure1(),
            Graph::complete(7),
            mqce_graph::generators::erdos_renyi_gnm(14, 50, 11),
        ];
        let strategies = [
            Some(BranchingStrategy::HybridSe),
            Some(BranchingStrategy::SymSe),
            Some(BranchingStrategy::Se),
            None, // Quick+
        ];
        let mut donations_by_strategy = [0usize; 4];
        for g in &graphs {
            for &gamma in &[0.5, 0.6, 0.9] {
                for theta in 2..=3 {
                    let params = MqceParams::new(gamma, theta).unwrap();
                    let expected = naive::all_maximal_quasi_cliques(g, params);
                    for (k, &branching) in strategies.iter().enumerate() {
                        let (outputs, donations) = run_with_greedy_splits(g, params, branching);
                        assert_eq!(
                            filter_maximal(&outputs),
                            expected,
                            "greedy splitting broke {branching:?} at gamma={gamma} theta={theta} \
                             on {} vertices",
                            g.num_vertices()
                        );
                        donations_by_strategy[k] += donations;
                    }
                }
            }
        }
        // Some (graph, γ, θ) combinations terminate without ever branching,
        // but over the whole grid every strategy must have donated work.
        for (k, &branching) in strategies.iter().enumerate() {
            assert!(
                donations_by_strategy[k] > 0,
                "{branching:?} never donated despite an always-hungry sink"
            );
        }
    }

    /// [`run_with_greedy_splits`] with one [`SearchScratch`] reused across
    /// the root search and every drained split task — exactly the lifetime a
    /// scheduler worker gives its scratch — instead of a fresh scratch per
    /// call. Returns the union of all outputs.
    fn run_with_greedy_splits_reused_scratch(
        g: &Graph,
        params: MqceParams,
        branching: Option<BranchingStrategy>,
    ) -> (Vec<Vec<VertexId>>, usize) {
        let sink = GreedySink::new();
        let all: Vec<VertexId> = g.vertices().collect();
        let mut scratch = SearchScratch::default();
        let mut outputs: Vec<Vec<VertexId>> = Vec::new();
        let run = |s_init: &[VertexId], cand: &[VertexId], scratch: &mut SearchScratch| {
            match branching {
                Some(b) => {
                    run_fastqc_in(g, None, s_init, cand, params, b, None, Some(&sink), scratch);
                }
                None => {
                    run_quickplus_in(g, None, s_init, cand, params, None, Some(&sink), scratch);
                }
            }
            scratch.sets.to_vecs()
        };
        outputs.extend(run(&[], &all, &mut scratch));
        loop {
            let task = sink.queue.borrow_mut().pop();
            let Some(task) = task else { break };
            outputs.extend(run(&task.s_init, &task.cand, &mut scratch));
        }
        (outputs, sink.donations.get())
    }

    #[test]
    fn forced_splits_with_reused_scratch_match_fresh_scratch() {
        // Differential half of the greedy-split test: under identical forced
        // splitting, a worker-lifetime scratch (reused across the root run
        // and every donated task) must reproduce the fresh-scratch raw
        // stream exactly. A buffer leaking state across a split boundary
        // would desynchronise the two runs.
        let g = mqce_graph::generators::erdos_renyi_gnm(14, 50, 11);
        let mut total_donations = 0usize;
        for &gamma in &[0.5, 0.6, 0.9] {
            for theta in 2..=3 {
                let params = MqceParams::new(gamma, theta).unwrap();
                for branching in [
                    Some(BranchingStrategy::HybridSe),
                    Some(BranchingStrategy::Se),
                    None,
                ] {
                    let (fresh, _) = run_with_greedy_splits(&g, params, branching);
                    let (reused, donations) =
                        run_with_greedy_splits_reused_scratch(&g, params, branching);
                    assert_eq!(
                        reused, fresh,
                        "reused scratch diverged for {branching:?} gamma={gamma} theta={theta}"
                    );
                    total_donations += donations;
                }
            }
        }
        // The differential is only meaningful if splits actually happened.
        assert!(total_donations > 0, "the greedy sink never forced a split");
    }

    #[test]
    fn parallel_estimates_match_sequential() {
        use crate::dc::DcConfig;
        for (n, m, seed) in [(40usize, 160usize, 3u64), (120, 900, 8), (7, 10, 1)] {
            let g = mqce_graph::generators::erdos_renyi_gnm(n, m, seed);
            let params = MqceParams::new(0.9, 3).unwrap();
            let plan = crate::dc::prepare_plan(&g, params, DcConfig::paper_default());
            let sequential = subproblem_estimates(&plan);
            for threads in [1usize, 2, 3, 8, 64] {
                let mut scratches: Vec<DcScratch> =
                    (0..threads).map(|_| DcScratch::default()).collect();
                let (parallel, millis) =
                    subproblem_estimates_parallel(&plan, threads, &mut scratches);
                assert_eq!(parallel, sequential, "threads={threads} n={n}");
                // One timing slot per worker (a single slot when the
                // sequential path was taken), all finite and non-negative.
                assert!(millis.len() <= threads.max(1));
                assert!(millis.iter().all(|ms| ms.is_finite() && *ms >= 0.0));
            }
        }
    }

    #[test]
    fn estimates_match_subproblem_sizes() {
        use crate::dc::DcConfig;
        let g = mqce_graph::generators::erdos_renyi_gnm(40, 160, 3);
        let params = MqceParams::new(0.9, 3).unwrap();
        let dc = DcConfig::paper_default();
        let plan = crate::dc::prepare_plan(&g, params, dc);
        let estimates = subproblem_estimates(&plan);
        let mut scratch = DcScratch::default();
        for (i, &vi) in plan.ordering.iter().enumerate() {
            let mut stats = SearchStats::default();
            let before = stats.dc_vertices_before_pruning;
            let _ = crate::dc::build_subproblem_in(&plan, vi, params, dc, &mut stats, &mut scratch);
            assert_eq!(
                estimates[i] as u64,
                stats.dc_vertices_before_pruning - before,
                "estimate mismatch at anchor {vi}"
            );
        }
    }

    #[test]
    fn work_stealing_contains_injected_searcher_panics() {
        use crate::dc::DcConfig;
        let g = mqce_graph::generators::erdos_renyi_gnm(20, 95, 11);
        let dc = DcConfig::paper_default();
        let mut params = MqceParams::new(0.85, 3).unwrap();
        let plan = crate::dc::prepare_plan(&g, params, dc);

        // Find an anchor whose subproblem actually reaches the searcher.
        let mut scratch = DcScratch::default();
        let mut probe_stats = SearchStats::default();
        let anchor = plan
            .ordering
            .iter()
            .find_map(|&vi| {
                crate::dc::build_subproblem_in(
                    &plan,
                    vi,
                    params,
                    dc,
                    &mut probe_stats,
                    &mut scratch,
                )
                .map(|(sub, _)| {
                    scratch.sub.recycle(sub);
                    plan.reduced.to_global[vi as usize]
                })
            })
            .expect("no executing subproblem");
        params.fail_anchor = Some(anchor);

        // The run must complete (no hung barrier), contain the panic(s) —
        // donated splits of the poisoned subproblem share its anchor and may
        // re-panic on other workers — and keep every other subproblem's
        // outputs intact.
        let (outcome, _) =
            run_dc_work_stealing(&plan, params, InnerAlgorithm::QuickPlus, dc, 3, None, None);
        assert!(outcome.stats.subproblem_panics >= 1);
        assert_eq!(outcome.stats.last_panicked_anchor, Some(anchor));
        assert!(!outcome.stats.timed_out);

        let expected = naive::all_maximal_quasi_cliques(&g, params);
        for h in &outcome.outputs {
            assert!(
                expected.iter().any(|e| h.iter().all(|v| e.contains(v))),
                "contained run produced a set outside the true family: {h:?}"
            );
        }
        let filtered = filter_maximal(&outcome.outputs);
        for e in expected.iter().filter(|e| !e.contains(&anchor)) {
            assert!(
                filtered.contains(e),
                "maximal QC {e:?} (not involving the panicked anchor) was lost"
            );
        }
    }
}
