//! Shared branch-and-bound search state.
//!
//! Both searchers (FastQC and the Quick+ baseline) operate on a branch
//! `B = (S, C, D)`:
//!
//! * `S` — the partial set: vertices contained in every vertex set covered by
//!   the branch;
//! * `C` — the candidate set: vertices that may still be added to `S`;
//! * `D` — the exclusion set: vertices that may not appear (represented only
//!   implicitly: a vertex that is in neither `S` nor `C` is excluded).
//!
//! The state is maintained incrementally with an undo discipline instead of
//! cloning per branch: moving a vertex between `C` and `S`, or removing it
//! from `C`, updates two degree arrays (`δ(·,S)` and `δ(·,S∪C)`) in `O(d)`
//! time, exactly as the paper's complexity analysis assumes (Section 4.1).
//!
//! In addition to the degree arrays, the context optionally carries a packed
//! bitset adjacency kernel ([`AdjacencyMatrix`]). When present (dense
//! subproblems below the adaptive threshold, see
//! [`AdjacencyBackend`](crate::config::AdjacencyBackend)), edge tests become
//! `O(1)` word loads, the Rule-1 adjacency counting becomes a popcount over a
//! critical-vertex mask, and the QC predicate evaluated at every emission
//! point runs word-parallel instead of via per-vertex binary searches.

use std::borrow::Cow;
use std::time::Instant;

use mqce_graph::bitset::{AdjacencyMatrix, BitSet};
use mqce_graph::{Graph, VertexId};
use mqce_settrie::SetArena;

use crate::config::{AdjacencyBackend, MqceParams};
use crate::quasiclique::{is_quasi_clique_in, no_single_vertex_extension_in, tau, QcScratch, EPS};
use crate::scheduler::{SplitRequest, SplitSink};
use crate::stats::{SearchStats, ThreadStats};

/// How often (in explored branches) the wall-clock deadline is polled.
const TIME_CHECK_INTERVAL: u64 = 1024;

/// Frames deeper than this never donate their untaken sibling branches:
/// near-leaf subtrees are too small to amortise the fixed cost of rebuilding
/// a search context, so only the shallow, coarse-grained frontier is split.
const MAX_SPLIT_DEPTH: u64 = 4;

/// Result of one branch-and-bound search invocation.
#[derive(Clone, Debug, Default)]
pub struct SearchOutcome {
    /// Quasi-cliques emitted by the search (local vertex ids, each sorted).
    pub outputs: Vec<Vec<VertexId>>,
    /// Search statistics.
    pub stats: SearchStats,
    /// Per-worker counters (work-stealing parallel driver only; empty for
    /// sequential runs).
    pub thread_stats: Vec<ThreadStats>,
}

/// Reusable per-worker search buffers.
///
/// Every array the search state needs is sized by the (local) subproblem
/// graph, so a worker that solves many subproblems in sequence can reset
/// these buffers in O(|H|) instead of re-allocating them: one
/// `SearchScratch` lives for the worker's whole run and is threaded into
/// [`SearchCtx::new_with_kernel`] per subproblem. Stolen split tasks reuse
/// the thief's scratch, not a new allocation.
pub(crate) struct SearchScratch {
    /// Vertex membership flags.
    in_s: Vec<bool>,
    in_c: Vec<bool>,
    /// The partial set `S`, as a stack (push/pop order).
    s: Vec<VertexId>,
    /// `deg_s[v] = δ(v, S)` for every vertex of the (local) graph.
    deg_s: Vec<u32>,
    /// `deg_sc[v] = δ(v, S ∪ C)` for every vertex of the (local) graph.
    deg_sc: Vec<u32>,
    /// Scratch buffer for per-candidate counting passes.
    counts: Vec<u32>,
    /// Degree recomputation buffer for [`DegSource::Recompute`].
    recompute_degs: Vec<u32>,
    /// Reusable mask for the kernel path of
    /// [`SearchCtx::count_adjacency_to`]; re-dimensioned (not re-allocated)
    /// per subproblem so the per-branch refinement never hits the allocator.
    critical_mask: BitSet,
    /// Free-list of per-frame vertex buffers (see [`SearchCtx::take_buf`]);
    /// stabilises at roughly `max_depth × buffer-kinds` entries, after which
    /// branching is allocation-free.
    pool: Vec<Vec<VertexId>>,
    /// Scratch for the per-emission quasi-clique predicates
    /// ([`SearchCtx::is_qc`], [`SearchCtx::no_extension`]), so the membership
    /// masks and BFS state they need are reused across branches.
    qc: QcScratch,
    /// Emitted quasi-cliques (local ids, each sorted), packed back-to-back.
    /// Owned by the scratch so the driver can stream them by slice and defer
    /// per-set boxing to the end of the run.
    pub(crate) sets: SetArena,
}

impl Default for SearchScratch {
    fn default() -> Self {
        SearchScratch {
            in_s: Vec::new(),
            in_c: Vec::new(),
            s: Vec::new(),
            deg_s: Vec::new(),
            deg_sc: Vec::new(),
            counts: Vec::new(),
            recompute_degs: Vec::new(),
            critical_mask: BitSet::new(0),
            pool: Vec::new(),
            qc: QcScratch::default(),
            sets: SetArena::new(),
        }
    }
}

impl SearchScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Re-dimensions every buffer for an `n`-vertex (local) graph and
    /// empties the emitted-set arena. O(n) and allocation-free once the
    /// buffers have grown to the largest subproblem seen.
    fn reset(&mut self, n: usize, kernel_n: Option<usize>) {
        self.in_s.clear();
        self.in_s.resize(n, false);
        self.in_c.clear();
        self.in_c.resize(n, false);
        self.s.clear();
        self.deg_s.clear();
        self.deg_s.resize(n, 0);
        self.deg_sc.clear();
        self.deg_sc.resize(n, 0);
        self.counts.clear();
        self.counts.resize(n, 0);
        if let Some(k) = kernel_n {
            self.critical_mask.reset(k);
        }
        self.sets.clear();
    }
}

/// Mutable search state shared by the branch-and-bound algorithms.
pub(crate) struct SearchCtx<'g> {
    pub(crate) g: &'g Graph,
    /// Optional packed adjacency kernel: borrowed from the DC subproblem's
    /// [`InducedSubgraph`](mqce_graph::InducedSubgraph) when one was built
    /// there, or owned when the context built it for a whole-graph search.
    kernel: Option<Cow<'g, AdjacencyMatrix>>,
    pub(crate) gamma: f64,
    pub(crate) theta: usize,
    /// Worker-owned buffers; reset per subproblem, reused across them.
    bufs: &'g mut SearchScratch,
    pub(crate) stats: SearchStats,
    deadline: Option<Instant>,
    pub(crate) aborted: bool,
    depth: u64,
    /// Cooperative work-donation hook of the work-stealing parallel driver;
    /// `None` for sequential searches (the poll then compiles to a branch on
    /// a constant).
    splitter: Option<&'g dyn SplitSink>,
}

impl<'g> SearchCtx<'g> {
    /// Creates a context over `g` with the branch `(s_init, cand, implicit D)`.
    ///
    /// `s_init` and `cand` must be disjoint; vertices in neither are treated
    /// as excluded.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn new(
        g: &'g Graph,
        params: MqceParams,
        s_init: &[VertexId],
        cand: &[VertexId],
        deadline: Option<Instant>,
        bufs: &'g mut SearchScratch,
    ) -> Self {
        Self::new_with_kernel(g, None, params, s_init, cand, deadline, bufs)
    }

    /// [`SearchCtx::new`] with an optionally pre-built adjacency kernel
    /// (typically the one the DC driver attached to the subproblem's induced
    /// subgraph). When none is supplied, the backend policy in `params`
    /// decides whether the context builds its own.
    ///
    /// `bufs` is reset for this subproblem (clearing any previously emitted
    /// sets) and reused; after warmup, context construction performs no heap
    /// allocation beyond an optional owned kernel.
    pub(crate) fn new_with_kernel(
        g: &'g Graph,
        kernel: Option<&'g AdjacencyMatrix>,
        params: MqceParams,
        s_init: &[VertexId],
        cand: &[VertexId],
        deadline: Option<Instant>,
        bufs: &'g mut SearchScratch,
    ) -> Self {
        let n = g.num_vertices();
        let kernel: Option<Cow<'g, AdjacencyMatrix>> = match params.backend {
            AdjacencyBackend::Slice => None,
            AdjacencyBackend::Auto => kernel.map(Cow::Borrowed).or_else(|| {
                AdjacencyMatrix::adaptive_for(n, g.num_edges())
                    .then(|| Cow::Owned(AdjacencyMatrix::from_graph(g)))
            }),
            AdjacencyBackend::Bitset => kernel.map(Cow::Borrowed).or_else(|| {
                AdjacencyMatrix::recommended_for(n)
                    .then(|| Cow::Owned(AdjacencyMatrix::from_graph(g)))
            }),
        };
        bufs.reset(n, kernel.as_deref().map(|m| m.num_vertices()));
        let ctx = SearchCtx {
            g,
            kernel,
            gamma: params.gamma,
            theta: params.theta,
            bufs,
            stats: SearchStats::default(),
            deadline,
            aborted: false,
            depth: 0,
            splitter: None,
        };
        for &v in cand {
            debug_assert!(!ctx.bufs.in_c[v as usize], "duplicate candidate {v}");
            ctx.bufs.in_c[v as usize] = true;
        }
        for &v in s_init {
            debug_assert!(!ctx.bufs.in_c[v as usize], "vertex {v} in both S and C");
            debug_assert!(!ctx.bufs.in_s[v as usize], "duplicate S vertex {v}");
            ctx.bufs.in_s[v as usize] = true;
            ctx.bufs.s.push(v);
        }
        for &v in s_init.iter().chain(cand.iter()) {
            let in_s = ctx.bufs.in_s[v as usize];
            for &u in g.neighbors(v) {
                ctx.bufs.deg_sc[u as usize] += 1;
                if in_s {
                    ctx.bufs.deg_s[u as usize] += 1;
                }
            }
        }
        ctx
    }

    /// Attaches the work-donation hook of the work-stealing driver.
    pub(crate) fn with_splitter(mut self, splitter: &'g dyn SplitSink) -> Self {
        self.splitter = Some(splitter);
        self
    }

    /// Consumes the context, producing the final statistics. The emitted
    /// family stays behind in the scratch's [`SearchScratch::sets`] arena for
    /// the caller to stream or materialise.
    pub(crate) fn finish(self) -> SearchStats {
        let mut stats = self.stats;
        stats.timed_out = self.aborted;
        stats
    }

    /// Takes a cleared vertex buffer from the frame pool (allocation-free
    /// once the pool has warmed up); return it with
    /// [`put_buf`](Self::put_buf) when the frame unwinds.
    #[inline]
    pub(crate) fn take_buf(&mut self) -> Vec<VertexId> {
        self.bufs.pool.pop().unwrap_or_default()
    }

    /// Returns a frame buffer to the pool for reuse.
    #[inline]
    pub(crate) fn put_buf(&mut self, mut buf: Vec<VertexId>) {
        buf.clear();
        self.bufs.pool.push(buf);
    }

    // ---- branch bookkeeping -------------------------------------------------

    /// Current size of the partial set `S`.
    #[inline]
    pub(crate) fn s_len(&self) -> usize {
        self.bufs.s.len()
    }

    /// Current partial set (unsorted, in insertion order).
    #[inline]
    pub(crate) fn s_vertices(&self) -> &[VertexId] {
        &self.bufs.s
    }

    /// `δ(v, S)`.
    #[inline]
    pub(crate) fn deg_s(&self, v: VertexId) -> usize {
        self.bufs.deg_s[v as usize] as usize
    }

    /// `δ(v, S ∪ C)`.
    #[inline]
    pub(crate) fn deg_sc(&self, v: VertexId) -> usize {
        self.bufs.deg_sc[v as usize] as usize
    }

    /// Whether `v` is currently in `C`.
    #[inline]
    pub(crate) fn in_c(&self, v: VertexId) -> bool {
        self.bufs.in_c[v as usize]
    }

    /// Adjacency test dispatching to the bitset kernel when available
    /// (`O(1)` word load) and to the CSR binary search otherwise.
    #[inline]
    pub(crate) fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        match self.kernel.as_deref() {
            Some(m) => m.has_edge(u, v),
            None => self.g.has_edge(u, v),
        }
    }

    /// The γ-QC predicate on `h`, kernel-accelerated when available. Runs on
    /// the reusable [`QcScratch`] so warm calls never allocate.
    #[inline]
    pub(crate) fn is_qc(&mut self, h: &[VertexId]) -> bool {
        let adj = self.kernel.as_deref();
        is_quasi_clique_in(self.g, adj, h, self.gamma, &mut self.bufs.qc)
    }

    /// Moves a candidate vertex into `S`.
    pub(crate) fn push_s(&mut self, v: VertexId) {
        debug_assert!(self.bufs.in_c[v as usize], "push_s: {v} is not a candidate");
        self.bufs.in_c[v as usize] = false;
        self.bufs.in_s[v as usize] = true;
        self.bufs.s.push(v);
        for &u in self.g.neighbors(v) {
            self.bufs.deg_s[u as usize] += 1;
        }
    }

    /// Reverses [`push_s`](Self::push_s) (the vertex returns to `C`).
    pub(crate) fn pop_s(&mut self, v: VertexId) {
        debug_assert_eq!(self.bufs.s.last(), Some(&v), "pop_s out of order");
        self.bufs.s.pop();
        self.bufs.in_s[v as usize] = false;
        self.bufs.in_c[v as usize] = true;
        for &u in self.g.neighbors(v) {
            self.bufs.deg_s[u as usize] -= 1;
        }
    }

    /// Removes a candidate vertex from `C` (moving it to the implicit
    /// exclusion set).
    pub(crate) fn remove_c(&mut self, v: VertexId) {
        debug_assert!(
            self.bufs.in_c[v as usize],
            "remove_c: {v} is not a candidate"
        );
        self.bufs.in_c[v as usize] = false;
        for &u in self.g.neighbors(v) {
            self.bufs.deg_sc[u as usize] -= 1;
        }
    }

    /// Reverses [`remove_c`](Self::remove_c).
    pub(crate) fn restore_c(&mut self, v: VertexId) {
        debug_assert!(!self.bufs.in_c[v as usize] && !self.bufs.in_s[v as usize]);
        self.bufs.in_c[v as usize] = true;
        for &u in self.g.neighbors(v) {
            self.bufs.deg_sc[u as usize] += 1;
        }
    }

    /// Enters a recursive call: counts the branch, tracks depth, and polls the
    /// deadline. Returns `false` if the search must abort.
    pub(crate) fn enter_branch(&mut self) -> bool {
        self.stats.branches += 1;
        self.depth += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.depth);
        if self.aborted {
            return false;
        }
        if let Some(deadline) = self.deadline {
            if self.stats.branches.is_multiple_of(TIME_CHECK_INTERVAL) && Instant::now() >= deadline
            {
                self.aborted = true;
                return false;
            }
        }
        true
    }

    /// Leaves a recursive call.
    pub(crate) fn leave_branch(&mut self) {
        self.depth -= 1;
    }

    /// Whether the current frame should donate its `rest` untaken sibling
    /// branches to hungry workers. Only shallow frames qualify (see
    /// [`MAX_SPLIT_DEPTH`]); the final word — is anyone hungry, and is the
    /// batch coarse enough — belongs to the scheduler's sink.
    #[inline]
    pub(crate) fn should_split(&self, rest: usize) -> bool {
        match self.splitter {
            Some(sink) if self.depth <= MAX_SPLIT_DEPTH && !self.aborted => sink.want_split(rest),
            _ => false,
        }
    }

    /// Donates self-contained branch descriptions to the scheduler. The
    /// caller must stop exploring those branches itself — they now belong to
    /// whichever worker steals them.
    pub(crate) fn donate(&mut self, branches: Vec<SplitRequest>) {
        if let Some(sink) = self.splitter {
            self.stats.split_donated += branches.len() as u64;
            sink.donate(branches);
        }
    }

    // ---- derived quantities -------------------------------------------------

    /// Number of non-neighbours of `v` within `S` (counting `v` itself if
    /// `v ∈ S`): `δ̄(v, S) = |S| − δ(v, S)`.
    #[inline]
    pub(crate) fn disconnections_s(&self, v: VertexId) -> usize {
        self.bufs.s.len() - self.deg_s(v)
    }

    /// `Δ(S)` — the maximum number of disconnections of a vertex within
    /// `G[S]`.
    pub(crate) fn delta_s(&self) -> usize {
        self.bufs
            .s
            .iter()
            .map(|&v| self.disconnections_s(v))
            .max()
            .unwrap_or(0)
    }

    /// `d_min(B) = min_{v∈S} δ(v, S∪C)`; `None` when `S` is empty.
    pub(crate) fn d_min(&self) -> Option<usize> {
        self.bufs.s.iter().map(|&v| self.deg_sc(v)).min()
    }

    /// `σ(B)` — the upper bound on the size of any QC under the branch
    /// (Equation 10). `cand_len` is the current `|C|`.
    pub(crate) fn sigma(&self, cand_len: usize) -> f64 {
        let total = (self.bufs.s.len() + cand_len) as f64;
        match self.d_min() {
            None => total,
            Some(dmin) => total.min(dmin as f64 / self.gamma + 1.0),
        }
    }

    /// `τ(σ(B))` for the current branch.
    pub(crate) fn tau_sigma(&self, cand_len: usize) -> i64 {
        tau(self.gamma, self.sigma(cand_len))
    }

    /// Whether `σ(B) < |S|`, i.e. region `R'2` is empty and the branch can be
    /// pruned outright.
    pub(crate) fn sigma_below_s(&self, cand_len: usize) -> bool {
        self.sigma(cand_len) + EPS < self.bufs.s.len() as f64
    }

    /// `Δ(S ∪ C)` for the current branch, where `cand` is the current
    /// candidate list.
    pub(crate) fn delta_sc(&self, cand: &[VertexId]) -> usize {
        let total = self.bufs.s.len() + cand.len();
        self.bufs
            .s
            .iter()
            .chain(cand.iter())
            .map(|&v| total - self.deg_sc(v))
            .max()
            .unwrap_or(0)
    }

    // ---- refinement helpers -------------------------------------------------

    /// Computes, for each candidate in `cand`, how many of the `critical`
    /// vertices it is adjacent to; the result is written into the scratch
    /// buffer and returned as a closure-friendly vector indexed by vertex id.
    ///
    /// Used by Refinement Rule 1: with `Δ(S) ≤ τ`, `Δ(S∪{v}) > τ` holds iff
    /// `δ̄(v, S∪{v}) > τ` or `v` misses some vertex `u ∈ S` with
    /// `δ̄(u,S) = τ`; the latter set is `critical`.
    pub(crate) fn count_adjacency_to(&mut self, critical: &[VertexId], cand: &[VertexId]) {
        if !critical.is_empty() {
            if let Some(m) = self.kernel.as_deref() {
                // Word-parallel path: one popcount over the critical-vertex
                // mask per candidate, `O(|C| · n/64)` instead of
                // `O(Σ_{u ∈ critical} d(u))`.
                let mask = &mut self.bufs.critical_mask;
                mask.clear();
                for &u in critical {
                    mask.insert(u);
                }
                for &v in cand {
                    self.bufs.counts[v as usize] =
                        m.degree_in_mask(v, &self.bufs.critical_mask) as u32;
                }
                return;
            }
        }
        for &v in cand {
            self.bufs.counts[v as usize] = 0;
        }
        for &u in critical {
            for &w in self.g.neighbors(u) {
                // Only counts for candidates; other entries are ignored.
                self.bufs.counts[w as usize] = self.bufs.counts[w as usize].wrapping_add(1);
            }
        }
    }

    /// Reads the counter produced by
    /// [`count_adjacency_to`](Self::count_adjacency_to).
    #[inline]
    pub(crate) fn adjacency_count(&self, v: VertexId) -> u32 {
        self.bufs.counts[v as usize]
    }

    // ---- output -------------------------------------------------------------

    /// Emits the vertex set `h` as a quasi-clique output.
    ///
    /// * Verifies the QC predicate (a violation indicates a bug and is counted
    ///   in `outputs_rejected` instead of silently corrupting the S1 output —
    ///   a non-QC in the output could eliminate a true MQC during filtering).
    /// * If `check_maximality` is set, applies the necessary condition of
    ///   maximality (no single-vertex extension is a QC) used by FastQC;
    ///   `deg_source` tells the context where `δ(·, h)` can be read from.
    ///
    /// Returns `true` if the set was actually emitted.
    pub(crate) fn emit(
        &mut self,
        h: &[VertexId],
        deg_source: DegSource,
        check_maximality: bool,
    ) -> bool {
        if h.len() < self.theta {
            return false;
        }
        if !self.is_qc(h) {
            self.stats.outputs_rejected += 1;
            debug_assert!(false, "attempted to emit a non-quasi-clique: {h:?}");
            return false;
        }
        if check_maximality && !self.no_extension(h, deg_source) {
            self.stats.outputs_suppressed_by_maximality += 1;
            return false;
        }
        self.bufs.sets.begin();
        for &v in h {
            self.bufs.sets.push_elem(v);
        }
        self.bufs.sets.commit_sorted();
        self.stats.outputs += 1;
        true
    }

    /// The necessary condition of maximality: no single vertex extends `h`
    /// to a larger quasi-clique. `deg_source` tells the context where
    /// `δ(·, h)` can be read from; [`DegSource::Recompute`] fills a reusable
    /// scratch buffer instead of allocating.
    pub(crate) fn no_extension(&mut self, h: &[VertexId], deg_source: DegSource) -> bool {
        if matches!(deg_source, DegSource::Recompute) {
            self.bufs.recompute_degs.clear();
            self.bufs.recompute_degs.resize(self.g.num_vertices(), 0);
            for &v in h {
                for &u in self.g.neighbors(v) {
                    self.bufs.recompute_degs[u as usize] += 1;
                }
            }
        }
        let degs: &[u32] = match deg_source {
            DegSource::PartialSet => &self.bufs.deg_s,
            DegSource::PartialAndCandidates => &self.bufs.deg_sc,
            DegSource::Recompute => &self.bufs.recompute_degs,
        };
        no_single_vertex_extension_in(
            self.g,
            self.kernel.as_deref(),
            h,
            degs,
            self.g.vertices(),
            self.gamma,
            &mut self.bufs.qc,
        )
    }
}

/// Where [`SearchCtx::emit`] reads `δ(·, h)` from when checking the necessary
/// condition of maximality.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) enum DegSource {
    /// `h == S`: use the maintained `δ(·, S)` array.
    PartialSet,
    /// `h == S ∪ C`: use the maintained `δ(·, S∪C)` array.
    PartialAndCandidates,
    /// Recompute `δ(·, h)` from scratch (used by the Quick+ baseline).
    Recompute,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(gamma: f64, theta: usize) -> MqceParams {
        MqceParams::new(gamma, theta).unwrap()
    }

    #[test]
    fn degree_arrays_initialised_correctly() {
        let mut bufs = SearchScratch::default();
        let g = Graph::paper_figure1();
        let cand: Vec<VertexId> = (1..9).collect();
        let ctx = SearchCtx::new(&g, params(0.9, 2), &[0], &cand, None, &mut bufs);
        for v in g.vertices() {
            assert_eq!(ctx.deg_sc(v), g.degree(v), "deg_sc mismatch at {v}");
            assert_eq!(
                ctx.deg_s(v),
                usize::from(g.has_edge(v, 0)),
                "deg_s mismatch at {v}"
            );
        }
        assert_eq!(ctx.s_len(), 1);
    }

    #[test]
    fn push_pop_and_remove_are_inverses() {
        let mut bufs = SearchScratch::default();
        let g = Graph::complete(6);
        let cand: Vec<VertexId> = (0..6).collect();
        let mut ctx = SearchCtx::new(&g, params(0.9, 2), &[], &cand, None, &mut bufs);
        let before_s: Vec<u32> = (0..6).map(|v| ctx.deg_s(v) as u32).collect();
        let before_sc: Vec<u32> = (0..6).map(|v| ctx.deg_sc(v) as u32).collect();

        ctx.push_s(2);
        assert!(!ctx.in_c(2));
        assert_eq!(ctx.deg_s(0), 1);
        ctx.remove_c(4);
        assert!(!ctx.in_c(4));
        assert_eq!(ctx.deg_sc(0), 4);
        ctx.restore_c(4);
        ctx.pop_s(2);

        let after_s: Vec<u32> = (0..6).map(|v| ctx.deg_s(v) as u32).collect();
        let after_sc: Vec<u32> = (0..6).map(|v| ctx.deg_sc(v) as u32).collect();
        assert_eq!(before_s, after_s);
        assert_eq!(before_sc, after_sc);
        assert!(ctx.in_c(2) && ctx.in_c(4));
    }

    #[test]
    fn delta_and_sigma() {
        let mut bufs = SearchScratch::default();
        let g = Graph::paper_figure1();
        // Branch with S = {v1, v3, v4} = {0, 2, 3} and C = the rest, as in the
        // Section 4.2 walk-through (numbers differ because the figure's exact
        // edge set is reconstructed, but the definitions are exercised).
        let s = [0u32, 2, 3];
        let cand: Vec<VertexId> = vec![1, 4, 5, 6, 7, 8];
        let ctx = SearchCtx::new(&g, params(0.7, 2), &s, &cand, None, &mut bufs);
        // Δ(S): v1 is non-adjacent to v4 and itself → 2.
        assert_eq!(ctx.delta_s(), 2);
        assert_eq!(ctx.disconnections_s(0), 2);
        // d_min = min degree of S members in the full graph.
        let expect_dmin = s.iter().map(|&v| g.degree(v)).min().unwrap();
        assert_eq!(ctx.d_min(), Some(expect_dmin));
        let sigma = ctx.sigma(cand.len());
        assert!(sigma <= 9.0 + 1e-9);
        assert!((sigma - (expect_dmin as f64 / 0.7 + 1.0).min(9.0)).abs() < 1e-9);
    }

    #[test]
    fn delta_sc_matches_bruteforce() {
        let mut bufs = SearchScratch::default();
        let g = Graph::paper_figure1();
        let cand: Vec<VertexId> = (0..9).collect();
        let ctx = SearchCtx::new(&g, params(0.9, 2), &[], &cand, None, &mut bufs);
        let brute = crate::quasiclique::max_disconnections(&g, &cand);
        assert_eq!(ctx.delta_sc(&cand), brute);
    }

    #[test]
    fn emit_checks_qc_and_size() {
        let mut bufs = SearchScratch::default();
        let g = Graph::complete(4);
        let cand: Vec<VertexId> = (0..4).collect();
        let mut ctx = SearchCtx::new(&g, params(0.9, 3), &[], &cand, None, &mut bufs);
        assert!(
            !ctx.emit(&[0, 1], DegSource::Recompute, false),
            "below theta"
        );
        assert!(ctx.emit(&[0, 1, 2, 3], DegSource::Recompute, false));
        assert_eq!(ctx.stats.outputs, 1);
        assert_eq!(ctx.stats.outputs_rejected, 0);
    }

    #[test]
    fn emit_maximality_filter() {
        let mut bufs = SearchScratch::default();
        let g = Graph::complete(5);
        let cand: Vec<VertexId> = (0..5).collect();
        let mut ctx = SearchCtx::new(&g, params(0.9, 3), &[], &cand, None, &mut bufs);
        // {0,1,2,3} extends to the full clique → suppressed.
        assert!(!ctx.emit(&[0, 1, 2, 3], DegSource::Recompute, true));
        assert_eq!(ctx.stats.outputs_suppressed_by_maximality, 1);
        assert!(ctx.emit(&[0, 1, 2, 3, 4], DegSource::Recompute, true));
    }

    #[test]
    fn sigma_below_s_detects_empty_region() {
        let mut bufs = SearchScratch::default();
        // Star: centre 0 with 5 leaves; S = two leaves (non-adjacent).
        let g = Graph::star(6);
        let ctx = SearchCtx::new(&g, params(0.9, 2), &[1, 2], &[0, 3, 4, 5], None, &mut bufs);
        // d_min = 1 (each leaf sees only the centre), σ = 1/0.9 + 1 ≈ 2.11 ≥ 2,
        // so the region is not empty yet...
        assert!(!ctx.sigma_below_s(4));
        // ...but with a third leaf in S, σ ≈ 2.11 < 3.
        let ctx = SearchCtx::new(&g, params(0.9, 2), &[1, 2, 3], &[0, 4, 5], None, &mut bufs);
        assert!(ctx.sigma_below_s(3));
    }

    #[test]
    fn enter_branch_counts_and_aborts_on_deadline() {
        let mut bufs = SearchScratch::default();
        let g = Graph::complete(3);
        let cand: Vec<VertexId> = (0..3).collect();
        let deadline = Some(Instant::now() - std::time::Duration::from_millis(1));
        let mut ctx = SearchCtx::new(&g, params(0.9, 2), &[], &cand, deadline, &mut bufs);
        // The deadline is polled every TIME_CHECK_INTERVAL branches.
        let mut aborted = false;
        for _ in 0..(TIME_CHECK_INTERVAL + 1) {
            if !ctx.enter_branch() {
                aborted = true;
                break;
            }
            ctx.leave_branch();
        }
        assert!(aborted);
        assert!(ctx.finish().timed_out);
    }
}
