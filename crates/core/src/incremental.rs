//! Incremental enumeration under edge updates: dirty-set DC re-runs.
//!
//! The divide-and-conquer decomposition makes each per-vertex subproblem a
//! function of the edges within distance 2 of its anchor. An update batch
//! therefore invalidates a small, computable set of subproblems — the
//! anchors inside the batch's closed two-hop closure (under the old *or* the
//! new graph) — and every other subproblem would extract a byte-identical
//! subgraph and re-derive exactly what it derived before.
//!
//! [`IncrementalSession`] exploits this. It owns the [`PreparedGraph`] and
//! the current maximal family, and on [`IncrementalSession::update`]:
//!
//! 1. applies the [`GraphDelta`] via the slack-aware CSR rebuild and
//!    maintains the core decomposition (changed-vertex report included);
//! 2. computes the dirty two-hop closure with the epoch-stamped scratch
//!    walk — no per-update allocation beyond the closure itself;
//! 3. keeps a **session-stable total order**: the degeneracy ordering
//!    computed at session start, with vertices the updates add appended at
//!    the end. Any total order is sound for the DC drivers (Property 2
//!    anchors each maximal QC at its lowest-ranked member under whatever
//!    order is in force), and a stable order means a retained set's anchor
//!    never silently moves between updates;
//! 4. retires the sets whose anchor is dirty and re-runs exactly the dirty
//!    anchors through the existing streaming DC subproblem solver (shared
//!    atomic index over the dirty list for multi-threaded sessions);
//! 5. merges the fresh streams with only the **frontier** of the retained
//!    family — retained sets that contain at least one dirty vertex —
//!    through one fresh [`MaximalityEngine`], restoring exact global
//!    maximality. Every fresh set contains its dirty anchor, so a retained
//!    set that could dominate one must contain that dirty vertex too;
//!    retained sets disjoint from the closure can never interact with the
//!    fresh stream and bypass the engine entirely, which keeps the
//!    per-update merge cost proportional to the *local* family, not the
//!    whole one.
//!
//! Why retiring only dirty-anchored sets is exact: let `H` be maximal in the
//! new graph with clean anchor `v` (its lowest-ranked member). Every member
//! of `H` is within distance 2 of `v` inside `H` (diameter ≤ 2 for
//! γ ≥ 0.5), so an updated edge incident to any member would put `v` in the
//! dirty closure — hence `H`'s induced subgraph is untouched, `H` was a
//! quasi-clique before, and any strict quasi-clique superset inside `v`'s
//! ball was untouched too, so `H` was already maximal and is in the retained
//! family. Conversely a new-graph maximal set with a *dirty* anchor is
//! emitted by that anchor's re-run (its members survive the core reduction:
//! every member of a θ-sized γ-quasi-clique has degree ≥ ⌈γ(θ−1)⌉ within
//! it). The engine merge then removes anything the update demoted from
//! maximal. The differential harness checks this equivalence against full
//! recompute on random schedules across the γ×θ grid at 1/2/4 threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mqce_graph::delta::{dirty_two_hop_closure, update_core_decomposition, GraphDelta};
use mqce_graph::subgraph::InducedSubgraph;
use mqce_graph::{Graph, SubproblemScratch, VertexId};
use mqce_settrie::{MaximalityEngine, SetArena};

use crate::config::MqceConfig;
use crate::dc::{solve_subproblem_streaming, DcPlan, DcScratch};
use crate::pipeline::{dc_setup, feed_sets};
use crate::prepared::PreparedGraph;
use crate::quasiclique::required_degree;
use crate::session::Session;
use crate::stats::SearchStats;

/// What a single [`IncrementalSession::update`] did, with the counters the
/// bench harness and the serve daemon report.
#[derive(Clone, Debug, Default)]
pub struct UpdateOutcome {
    /// Canonical edge updates in the applied batch (inserts + deletes).
    pub updates_applied: u64,
    /// Subproblems re-run (anchors in the dirty closure that survived the
    /// core reduction).
    pub dirty_subproblems: u64,
    /// Sets retired from the previous family by anchor provenance.
    pub retired: u64,
    /// Sets of the previous family carried over unchanged.
    pub retained: u64,
    /// Vertices whose core number changed (from the maintenance report).
    pub core_changed: u64,
    /// The dirty two-hop closure, sorted ascending — the vertices whose
    /// per-vertex query answers may have changed. The serve daemon keeps
    /// cached `query` results whose vertices all fall outside this set.
    pub dirty: Vec<VertexId>,
    /// Search statistics aggregated over the re-run subproblems.
    pub stats: SearchStats,
    /// Whether the session fell back to a full recompute (algorithms
    /// without a DC decomposition have no per-anchor dirty set).
    pub full_recompute: bool,
}

/// A long-lived enumeration session that maintains the maximal family under
/// edge-update batches by re-running only the dirtied DC subproblems. See
/// the module docs for the invariants and the exactness argument.
pub struct IncrementalSession {
    prepared: Arc<PreparedGraph>,
    config: MqceConfig,
    threads: usize,
    /// Session-stable total order over global vertex ids: the degeneracy
    /// ordering at session start, new vertices appended as updates grow the
    /// graph. Never reshuffled, so anchor provenance survives updates.
    ordering: Vec<VertexId>,
    /// `rank[v]` = position of global vertex `v` in `ordering`.
    rank: Vec<usize>,
    /// The current maximal family (sorted sets, lexicographic order — the
    /// same canonical form the batch pipeline returns).
    family: Vec<Vec<VertexId>>,
    /// Epoch-stamped scratch shared by the dirty walk and the partition.
    scratch: SubproblemScratch,
}

/// Merges two lexicographically sorted families into one sorted family.
/// Shared with the shard coordinator, which splices shard-interior sets
/// around its frontier merge exactly as the incremental update does.
pub(crate) fn merge_canonical(a: Vec<Vec<VertexId>>, b: Vec<Vec<VertexId>>) -> Vec<Vec<VertexId>> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut a = a.into_iter().peekable();
    let mut b = b.into_iter().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => {
                if x <= y {
                    out.push(a.next().unwrap());
                } else {
                    out.push(b.next().unwrap());
                }
            }
            (Some(_), None) => out.push(a.next().unwrap()),
            (None, Some(_)) => out.push(b.next().unwrap()),
            (None, None) => break,
        }
    }
    out
}

impl IncrementalSession {
    /// Opens a session: prepares the graph, runs the full pipeline once to
    /// seed the family, and freezes the session ordering. `threads` is used
    /// for the seed run and for every subsequent dirty re-run.
    pub fn new(graph: Graph, config: MqceConfig, threads: usize) -> Self {
        Self::from_prepared(Arc::new(PreparedGraph::new(graph)), config, threads)
    }

    /// [`IncrementalSession::new`] over an already-prepared graph; used by
    /// [`Session::update`](crate::session::Session::update) so the batch
    /// session and its incremental state share one decomposition.
    pub(crate) fn from_prepared(
        prepared: Arc<PreparedGraph>,
        config: MqceConfig,
        threads: usize,
    ) -> Self {
        let ordering = prepared.cores().ordering.clone();
        let mut rank = vec![0usize; ordering.len()];
        for (i, &v) in ordering.iter().enumerate() {
            rank[v as usize] = i;
        }
        let threads = threads.max(1);
        let family = Session::open_prepared(prepared.clone())
            .config(config)
            .threads(threads)
            .run()
            .mqcs;
        IncrementalSession {
            prepared,
            config,
            threads,
            ordering,
            rank,
            family,
            scratch: SubproblemScratch::new(),
        }
    }

    /// The prepared graph the session currently holds.
    pub fn prepared(&self) -> &PreparedGraph {
        &self.prepared
    }

    /// Shared handle to the prepared graph, for re-syncing an outer
    /// [`Session`](crate::session::Session) after an update.
    pub(crate) fn prepared_arc(&self) -> Arc<PreparedGraph> {
        self.prepared.clone()
    }

    /// The current maximal family (exactly what a fresh full run on the
    /// current graph returns).
    pub fn family(&self) -> &[Vec<VertexId>] {
        &self.family
    }

    /// The session's configuration.
    pub fn config(&self) -> &MqceConfig {
        &self.config
    }

    /// Applies an update batch and restores the family to exactly the
    /// maximal family of the updated graph, re-running only the dirtied
    /// subproblems. Updates always run to completion (the session ignores
    /// `config.time_limit`, which only bounds the seeding run).
    pub fn update(&mut self, delta: &GraphDelta) -> UpdateOutcome {
        if delta.is_empty() {
            return UpdateOutcome {
                retained: self.family.len() as u64,
                ..UpdateOutcome::default()
            };
        }
        let old_graph = self.prepared.graph();
        let new_graph = delta.apply(old_graph);
        let dirty = dirty_two_hop_closure(old_graph, &new_graph, delta, &mut self.scratch);
        let core_update = update_core_decomposition(self.prepared.cores(), &new_graph);

        // Grow the session ordering: vertices the batch added rank after
        // everything that existed before, so no retained anchor moves.
        let n = new_graph.num_vertices();
        for v in self.rank.len() as VertexId..n as VertexId {
            self.rank.push(self.ordering.len());
            self.ordering.push(v);
        }

        let prepared = Arc::new(PreparedGraph::with_cores(new_graph, core_update.cores));
        let Some((inner, dc)) = dc_setup(&self.config) else {
            // No DC decomposition, no per-anchor dirty set: full recompute.
            self.prepared = prepared;
            self.family = Session::open_prepared(self.prepared.clone())
                .config(self.config)
                .threads(self.threads)
                .run()
                .mqcs;
            return UpdateOutcome {
                updates_applied: delta.len() as u64,
                core_changed: core_update.changed.len() as u64,
                dirty,
                full_recompute: true,
                ..UpdateOutcome::default()
            };
        };

        // The dirty plan: core reduction over the updated graph, processing
        // order = the session ordering restricted to the survivors (sound
        // like any total order; stable so provenance is meaningful).
        let core_k = required_degree(self.config.params.gamma, self.config.params.theta);
        let reduced = InducedSubgraph::new(prepared.graph(), &prepared.k_core_vertices(core_k));
        let plan_ordering: Vec<VertexId> = self
            .ordering
            .iter()
            .filter_map(|&v| reduced.local(v))
            .collect();
        let mut plan_rank = vec![0usize; reduced.graph.num_vertices()];
        for (i, &v) in plan_ordering.iter().enumerate() {
            plan_rank[v as usize] = i;
        }
        let plan = DcPlan {
            reduced,
            ordering: plan_ordering,
            rank: plan_rank,
        };

        // Partition the family by anchor provenance and collect the dirty
        // anchors that survived the core reduction, in plan order. One
        // stamped epoch serves both membership tests.
        let (stamp, tag) = self.scratch.stamp_epoch(n);
        for &v in &dirty {
            stamp[v as usize] = tag;
        }
        // Clean-anchored sets are retained; among them, only the *frontier*
        // (sets touching the dirty closure) can dominate a fresh emission —
        // every fresh set contains its dirty anchor, so any superset does
        // too — and retained sets themselves are never dominated (a strict
        // quasi-clique superset would have put their anchor in the
        // closure). Untouched sets therefore skip the engine merge.
        let old_family = std::mem::take(&mut self.family);
        let mut untouched: Vec<Vec<VertexId>> = Vec::with_capacity(old_family.len());
        let mut frontier: Vec<Vec<VertexId>> = Vec::new();
        let mut retired = 0u64;
        for set in old_family {
            let anchor = *set
                .iter()
                .min_by_key(|&&v| self.rank[v as usize])
                .expect("maximal sets are non-empty");
            if stamp[anchor as usize] == tag {
                retired += 1;
            } else if set.iter().any(|&v| stamp[v as usize] == tag) {
                frontier.push(set);
            } else {
                untouched.push(set);
            }
        }
        let dirty_locals: Vec<VertexId> = plan
            .ordering
            .iter()
            .copied()
            .filter(|&l| stamp[plan.reduced.to_global[l as usize] as usize] == tag)
            .collect();
        let retained_count = (untouched.len() + frontier.len()) as u64;

        // Re-run the dirty subproblems, streaming into fresh engines, then
        // merge the frontier sets through the same engine: the drain/add
        // merge is exact over frontier ∪ fresh, and the untouched sets are
        // spliced back in afterwards.
        let params = self.config.params;
        let s2_backend = self.config.s2_backend;
        let s2_model = self.config.s2_model;
        let mut engine = s2_backend.new_engine_with_model(s2_model);
        feed_sets(engine.as_mut(), &frontier, None);
        let mut stats = SearchStats::default();
        if self.threads == 1 || dirty_locals.len() <= 1 {
            let mut scratch = DcScratch::default();
            let mut raw = SetArena::new();
            let mut engine_ref: Option<&mut dyn MaximalityEngine> = Some(engine.as_mut());
            for &vi in &dirty_locals {
                solve_subproblem_streaming(
                    &plan,
                    vi,
                    params,
                    inner,
                    dc,
                    None,
                    &mut scratch,
                    &mut stats,
                    &mut raw,
                    &mut engine_ref,
                );
            }
        } else {
            let next = AtomicUsize::new(0);
            let plan_ref = &plan;
            let locals_ref = &dirty_locals;
            let next_ref = &next;
            let results: Vec<(SearchStats, Box<dyn MaximalityEngine>)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..self.threads)
                        .map(|_| {
                            scope.spawn(move || {
                                let mut stats = SearchStats::default();
                                let mut worker_engine = s2_backend.new_engine_with_model(s2_model);
                                let mut scratch = DcScratch::default();
                                let mut raw = SetArena::new();
                                let mut engine_ref: Option<&mut dyn MaximalityEngine> =
                                    Some(worker_engine.as_mut());
                                loop {
                                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                                    if i >= locals_ref.len() {
                                        break;
                                    }
                                    solve_subproblem_streaming(
                                        plan_ref,
                                        locals_ref[i],
                                        params,
                                        inner,
                                        dc,
                                        None,
                                        &mut scratch,
                                        &mut stats,
                                        &mut raw,
                                        &mut engine_ref,
                                    );
                                }
                                (stats, worker_engine)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("incremental worker panicked"))
                        .collect()
                });
            for (sub_stats, mut worker_engine) in results {
                stats.merge(&sub_stats);
                feed_sets(engine.as_mut(), &worker_engine.drain(), None);
            }
        }
        let outcome = engine.finish();
        // Both halves are in canonical order: `untouched` is a subsequence
        // of the old canonical family, `finish` returns canonical order.
        self.family = merge_canonical(untouched, outcome.mqcs);
        self.prepared = prepared;
        UpdateOutcome {
            updates_applied: delta.len() as u64,
            dirty_subproblems: dirty_locals.len() as u64,
            retired,
            retained: retained_count,
            core_changed: core_update.changed.len() as u64,
            dirty,
            stats,
            full_recompute: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::enumerate_mqcs_inner as enumerate_mqcs;
    use mqce_graph::generators::{community_graph, CommunityGraphParams};

    /// Incremental family after each batch must equal a fresh full run on
    /// the mutated graph.
    fn check_schedule(g: Graph, config: MqceConfig, threads: usize, schedule: &[GraphDelta]) {
        let mut session = IncrementalSession::new(g.clone(), config, threads);
        let mut current = g;
        for (step, delta) in schedule.iter().enumerate() {
            let outcome = session.update(delta);
            current = delta.apply(&current);
            assert_eq!(
                session.prepared().fingerprint(),
                current.fingerprint(),
                "step {step}: graph drifted"
            );
            let fresh = enumerate_mqcs(&current, &config);
            assert_eq!(
                session.family(),
                &fresh.mqcs[..],
                "step {step} (threads={threads}): incremental family != full recompute \
                 (dirty={}, retired={}, retained={})",
                outcome.dirty_subproblems,
                outcome.retired,
                outcome.retained,
            );
        }
    }

    #[test]
    fn incremental_matches_full_on_paper_graph() {
        let g = Graph::paper_figure1();
        let schedule = vec![
            GraphDelta::new(vec![(0, 6)], vec![]),
            GraphDelta::new(vec![(3, 8)], vec![(1, 5)]),
            GraphDelta::new(vec![], vec![(0, 6), (3, 8)]),
        ];
        for threads in [1, 2] {
            check_schedule(
                g.clone(),
                MqceConfig::new(0.6, 3).unwrap(),
                threads,
                &schedule,
            );
        }
    }

    #[test]
    fn incremental_matches_full_on_community_graph() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let g = community_graph(
            CommunityGraphParams {
                n: 90,
                num_communities: 6,
                p_intra: 0.9,
                inter_degree: 1.5,
            },
            21,
        );
        let mut rng = StdRng::seed_from_u64(77);
        let n = g.num_vertices() as u32;
        let mut current = g.clone();
        let mut schedule = Vec::new();
        for _ in 0..4 {
            let mut inserts = Vec::new();
            let mut deletes = Vec::new();
            for _ in 0..5 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u == v {
                    continue;
                }
                if current.has_edge(u, v) {
                    deletes.push((u, v));
                } else {
                    inserts.push((u, v));
                }
            }
            let delta = GraphDelta::new(inserts, deletes);
            current = delta.apply(&current);
            schedule.push(delta);
        }
        check_schedule(g, MqceConfig::new(0.85, 5).unwrap(), 2, &schedule);
    }

    #[test]
    fn vertex_growth_and_empty_batches_are_handled() {
        let g = Graph::paper_figure1();
        let config = MqceConfig::new(0.9, 3).unwrap();
        let mut session = IncrementalSession::new(g.clone(), config, 1);
        let before = session.family().to_vec();
        let noop = session.update(&GraphDelta::default());
        assert_eq!(noop.updates_applied, 0);
        assert_eq!(session.family(), &before[..]);
        // Grow the graph: attach a triangle on two new vertices.
        let delta = GraphDelta::new(vec![(8, 9), (8, 10), (9, 10)], vec![]);
        session.update(&delta);
        let fresh = enumerate_mqcs(&delta.apply(&g), &config);
        assert_eq!(session.family(), &fresh.mqcs[..]);
    }
}
