//! Independent verification of enumeration results.
//!
//! The branch-and-bound searchers are intricate (incremental degree arrays,
//! undo stacks, three branching strategies, DC decomposition); this module
//! re-checks their *outputs* against the problem definition using only the
//! plain graph API, so that the experiment harness and the integration tests
//! can certify results without trusting the search internals.
//!
//! Three levels are provided, in increasing cost:
//!
//! 1. [`verify_s1_output`] — every emitted set is a quasi-clique of size ≥ θ
//!    (what MQCE-S1 promises).
//! 2. [`verify_mqc_set`] — additionally, no reported MQC is contained in
//!    another, and none admits a single-vertex extension (a necessary
//!    condition for maximality that is cheap to check on graphs of any size).
//! 3. [`verify_exact_against_oracle`] — full equality with the exhaustive
//!    oracle (tiny graphs only).

use mqce_graph::bitset::AdjacencyMatrix;
use mqce_graph::{Graph, VertexId};

use crate::config::MqceParams;
use crate::naive;
use crate::quasiclique::{is_quasi_clique, is_quasi_clique_with, required_degree};

/// A single verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The set is not a γ-quasi-clique.
    NotAQuasiClique {
        /// The offending vertex set.
        set: Vec<VertexId>,
    },
    /// The set has fewer than θ vertices.
    TooSmall {
        /// The offending vertex set.
        set: Vec<VertexId>,
        /// The configured size threshold.
        theta: usize,
    },
    /// The set contains a vertex id outside the graph.
    VertexOutOfRange {
        /// The offending vertex set.
        set: Vec<VertexId>,
        /// The out-of-range vertex.
        vertex: VertexId,
    },
    /// The set contains a duplicate vertex.
    DuplicateVertex {
        /// The offending vertex set.
        set: Vec<VertexId>,
    },
    /// One reported MQC is a subset of another reported MQC.
    ContainedInAnother {
        /// The non-maximal set.
        subset: Vec<VertexId>,
        /// A reported superset of it.
        superset: Vec<VertexId>,
    },
    /// A reported MQC can be extended by a single vertex and stay a QC, so it
    /// cannot be maximal.
    SingleVertexExtension {
        /// The non-maximal set.
        set: Vec<VertexId>,
        /// A vertex whose addition keeps the set a quasi-clique.
        extension: VertexId,
    },
    /// The result set differs from the oracle.
    OracleMismatch {
        /// MQCs the oracle found but the result is missing.
        missing: Vec<Vec<VertexId>>,
        /// Sets the result reports but the oracle does not.
        spurious: Vec<Vec<VertexId>>,
    },
}

/// Outcome of a verification pass.
#[derive(Clone, Debug, Default)]
pub struct VerificationReport {
    /// All violations found (empty means the result verified cleanly).
    pub violations: Vec<Violation>,
    /// Number of sets checked.
    pub checked: usize,
}

impl VerificationReport {
    /// Whether the result passed every check.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_ok() {
            write!(f, "ok ({} sets checked)", self.checked)
        } else {
            write!(
                f,
                "{} violation(s) in {} sets; first: {:?}",
                self.violations.len(),
                self.checked,
                self.violations[0]
            )
        }
    }
}

/// Checks vertex-id range and duplicates. Returns `false` if the set is
/// malformed (in which case the quasi-clique predicate must not be evaluated
/// on it).
fn check_well_formed(g: &Graph, set: &[VertexId], report: &mut Vec<Violation>) -> bool {
    for &v in set {
        if (v as usize) >= g.num_vertices() {
            report.push(Violation::VertexOutOfRange {
                set: set.to_vec(),
                vertex: v,
            });
            return false;
        }
    }
    let mut sorted = set.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != set.len() {
        report.push(Violation::DuplicateVertex { set: set.to_vec() });
        return false;
    }
    true
}

/// Checks the MQCE-S1 contract: every emitted set is a γ-quasi-clique with at
/// least θ vertices (non-maximal members are allowed).
pub fn verify_s1_output(
    g: &Graph,
    outputs: &[Vec<VertexId>],
    params: MqceParams,
) -> VerificationReport {
    let mut violations = Vec::new();
    for set in outputs {
        if !check_well_formed(g, set, &mut violations) {
            continue;
        }
        if set.len() < params.theta {
            violations.push(Violation::TooSmall {
                set: set.clone(),
                theta: params.theta,
            });
        }
        if !is_quasi_clique(g, set, params.gamma) {
            violations.push(Violation::NotAQuasiClique { set: set.clone() });
        }
    }
    VerificationReport {
        violations,
        checked: outputs.len(),
    }
}

/// Returns a vertex whose addition to `set` keeps it a γ-quasi-clique, if one
/// exists. Only vertices adjacent to at least one member are tried (adding a
/// disconnected vertex can never produce a connected QC).
pub fn find_single_vertex_extension(g: &Graph, set: &[VertexId], gamma: f64) -> Option<VertexId> {
    find_single_vertex_extension_with(g, None, set, gamma)
}

/// [`find_single_vertex_extension`] with an optional bitset kernel for the
/// degree screens and the QC predicate — callers that verify many sets (e.g.
/// [`verify_mqc_set`]) build the matrix once and reuse it across all of them.
pub fn find_single_vertex_extension_with(
    g: &Graph,
    adj: Option<&AdjacencyMatrix>,
    set: &[VertexId],
    gamma: f64,
) -> Option<VertexId> {
    if set.is_empty() {
        return None;
    }
    let mut in_set = vec![false; g.num_vertices()];
    for &v in set {
        in_set[v as usize] = true;
    }
    let mut candidates: Vec<VertexId> = Vec::new();
    for &v in set {
        for &u in g.neighbors(v) {
            if !in_set[u as usize] && !candidates.contains(&u) {
                candidates.push(u);
            }
        }
    }
    let req = required_degree(gamma, set.len() + 1);
    let mut extended = Vec::with_capacity(set.len() + 1);
    for w in candidates {
        // Quick degree screen before the full predicate.
        let deg = match adj {
            Some(m) => m.degree_in(w, set),
            None => g.degree_in(w, set),
        };
        if deg < req {
            continue;
        }
        extended.clear();
        extended.extend_from_slice(set);
        extended.push(w);
        if is_quasi_clique_with(g, adj, &extended, gamma) {
            return Some(w);
        }
    }
    None
}

/// Checks a reported *maximal* QC set: the S1 contract plus pairwise
/// non-containment plus the absence of single-vertex extensions.
///
/// Passing this does not prove maximality (that is NP-hard), but every real
/// maximality bug observed in practice — a forgotten output, a branch pruned
/// too aggressively, a DC subproblem that drops its anchor vertex — shows up
/// as either a containment between reported sets or a one-vertex extension.
pub fn verify_mqc_set(g: &Graph, mqcs: &[Vec<VertexId>], params: MqceParams) -> VerificationReport {
    let mut report = verify_s1_output(g, mqcs, params);
    // Pairwise containment via the set-trie used by the production filter
    // would be circular; use a direct quadratic check instead.
    for (i, a) in mqcs.iter().enumerate() {
        for (j, b) in mqcs.iter().enumerate() {
            if i != j && a.len() < b.len() && a.iter().all(|v| b.contains(v)) {
                report.violations.push(Violation::ContainedInAnother {
                    subset: a.clone(),
                    superset: b.clone(),
                });
            }
        }
    }
    // Build the bitset kernel once and reuse it for every extension check.
    let adj = (AdjacencyMatrix::adaptive_for(g.num_vertices(), g.num_edges()) && !mqcs.is_empty())
        .then(|| AdjacencyMatrix::from_graph(g));
    for set in mqcs {
        if set.iter().any(|&v| (v as usize) >= g.num_vertices()) {
            continue;
        }
        if let Some(extension) =
            find_single_vertex_extension_with(g, adj.as_ref(), set, params.gamma)
        {
            report.violations.push(Violation::SingleVertexExtension {
                set: set.clone(),
                extension,
            });
        }
    }
    report
}

/// Compares a reported MQC set against the exhaustive oracle. Exponential in
/// the graph size — tiny graphs only (the oracle asserts this itself).
pub fn verify_exact_against_oracle(
    g: &Graph,
    mqcs: &[Vec<VertexId>],
    params: MqceParams,
) -> VerificationReport {
    let mut report = verify_mqc_set(g, mqcs, params);
    let mut expected = naive::all_maximal_quasi_cliques(g, params);
    expected.sort();
    let mut got: Vec<Vec<VertexId>> = mqcs.to_vec();
    for set in got.iter_mut() {
        set.sort_unstable();
    }
    got.sort();
    got.dedup();
    if got != expected {
        let missing: Vec<_> = expected
            .iter()
            .filter(|m| !got.contains(m))
            .cloned()
            .collect();
        let spurious: Vec<_> = got
            .iter()
            .filter(|m| !expected.contains(m))
            .cloned()
            .collect();
        report
            .violations
            .push(Violation::OracleMismatch { missing, spurious });
    }
    report.checked = report.checked.max(expected.len());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MqceParams;
    use crate::pipeline::enumerate_mqcs_default;

    fn params(gamma: f64, theta: usize) -> MqceParams {
        MqceParams::new(gamma, theta).unwrap()
    }

    #[test]
    fn clean_result_verifies() {
        let g = Graph::paper_figure1();
        let result = enumerate_mqcs_default(&g, 0.6, 3).unwrap();
        let report = verify_mqc_set(&g, &result.mqcs, params(0.6, 3));
        assert!(report.is_ok(), "{report}");
        assert!(verify_exact_against_oracle(&g, &result.mqcs, params(0.6, 3)).is_ok());
        assert!(report.to_string().contains("ok"));
    }

    #[test]
    fn detects_non_quasi_clique() {
        let g = Graph::path(5);
        let bogus = vec![vec![0u32, 1, 2, 3]];
        let report = verify_s1_output(&g, &bogus, params(0.9, 2));
        assert!(!report.is_ok());
        assert!(matches!(
            report.violations[0],
            Violation::NotAQuasiClique { .. }
        ));
    }

    #[test]
    fn detects_size_and_id_problems() {
        let g = Graph::complete(4);
        let outputs = vec![vec![0u32, 1], vec![0, 9], vec![1, 1, 2]];
        let report = verify_s1_output(&g, &outputs, params(0.9, 3));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::TooSmall { .. })));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::VertexOutOfRange { vertex: 9, .. })));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateVertex { .. })));
    }

    #[test]
    fn detects_containment_and_extension() {
        let g = Graph::complete(5);
        // {0,1,2} is contained in {0,1,2,3} and both extend to the 5-clique.
        let sets = vec![vec![0u32, 1, 2], vec![0, 1, 2, 3]];
        let report = verify_mqc_set(&g, &sets, params(1.0, 2));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ContainedInAnother { .. })));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::SingleVertexExtension { .. })));
    }

    #[test]
    fn single_vertex_extension_finder() {
        let g = Graph::complete(4);
        assert!(find_single_vertex_extension(&g, &[0, 1, 2], 1.0).is_some());
        assert!(find_single_vertex_extension(&g, &[0, 1, 2, 3], 1.0).is_none());
        assert!(find_single_vertex_extension(&g, &[], 0.9).is_none());
        // Star: the hub plus one leaf is a 0.5-QC of size 2; adding another
        // leaf gives a path of 3 which is still a 0.5-QC, so an extension
        // exists. With γ=1 no extension exists.
        let star = Graph::star(5);
        assert!(find_single_vertex_extension(&star, &[0, 1], 0.5).is_some());
        assert!(find_single_vertex_extension(&star, &[0, 1], 1.0).is_none());
    }

    #[test]
    fn oracle_mismatch_is_reported() {
        let g = Graph::complete(4);
        // Claim a wrong MQC set (missing the 4-clique, spurious triangle is
        // also non-maximal).
        let wrong = vec![vec![0u32, 1, 2]];
        let report = verify_exact_against_oracle(&g, &wrong, params(0.9, 3));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::OracleMismatch { .. })));
    }
}
