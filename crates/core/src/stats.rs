//! Search statistics collected by the branch-and-bound searchers and the
//! divide-and-conquer driver. These power both the tests (e.g. "Hybrid-SE
//! explores no more branches than SE") and the ablation experiments.

/// Counters describing one MQCE-S1 run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of branch-and-bound nodes (recursive calls) explored.
    pub branches: u64,
    /// Branches pruned because the necessary condition C1&2 failed
    /// (`Δ(S) > τ(σ(B))` or `σ(B) < |S|`), including failures detected while
    /// progressively refining.
    pub pruned_by_condition: u64,
    /// Branches terminated by the size-based condition T2.
    pub pruned_by_size: u64,
    /// Branches terminated by T1 (`G[S∪C]` is itself a quasi-clique).
    pub t1_terminations: u64,
    /// Candidate vertices removed by the refinement rules (Rules 1 and 2) or
    /// the Quick+ Type I rules.
    pub candidates_refined: u64,
    /// Quasi-cliques emitted by the searcher (the MQCE-S1 output size).
    pub outputs: u64,
    /// Candidate outputs suppressed by the necessary-maximality check.
    pub outputs_suppressed_by_maximality: u64,
    /// Candidate outputs rejected because they failed the final quasi-clique
    /// verification. Always 0 unless there is a bug; tests assert on it.
    pub outputs_rejected: u64,
    /// Maximum recursion depth reached.
    pub max_depth: u64,
    /// Number of divide-and-conquer subproblems (0 when DC is not used).
    pub dc_subproblems: u64,
    /// Total number of vertices over all DC subgraphs before pruning.
    pub dc_vertices_before_pruning: u64,
    /// Total number of vertices over all DC subgraphs after pruning
    /// (what the search actually runs on).
    pub dc_vertices_after_pruning: u64,
    /// Branches donated by busy searchers as self-contained split tasks for
    /// hungry workers (work-stealing parallel driver only).
    pub split_donated: u64,
    /// Donated split tasks executed by workers.
    pub split_executed: u64,
    /// Tasks (whole subproblems or split tasks) taken from another worker's
    /// deque.
    pub tasks_stolen: u64,
    /// Subproblem or split-task searches that panicked and were contained
    /// by the DC drivers' `catch_unwind` boundary. The panicked branch's
    /// outputs are discarded (the family may be missing its quasi-cliques);
    /// every other subproblem completes normally. Always 0 unless there is
    /// a bug or a fault was injected.
    pub subproblem_panics: u64,
    /// Original-graph anchor vertex of the most recently contained panic.
    pub last_panicked_anchor: Option<mqce_graph::VertexId>,
    /// Whether the run stopped early because the time limit was hit.
    pub timed_out: bool,
}

impl SearchStats {
    /// Merges the counters of another run into this one (used by the DC
    /// driver to aggregate per-subproblem stats).
    pub fn merge(&mut self, other: &SearchStats) {
        self.branches += other.branches;
        self.pruned_by_condition += other.pruned_by_condition;
        self.pruned_by_size += other.pruned_by_size;
        self.t1_terminations += other.t1_terminations;
        self.candidates_refined += other.candidates_refined;
        self.outputs += other.outputs;
        self.outputs_suppressed_by_maximality += other.outputs_suppressed_by_maximality;
        self.outputs_rejected += other.outputs_rejected;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.dc_subproblems += other.dc_subproblems;
        self.dc_vertices_before_pruning += other.dc_vertices_before_pruning;
        self.dc_vertices_after_pruning += other.dc_vertices_after_pruning;
        self.split_donated += other.split_donated;
        self.split_executed += other.split_executed;
        self.tasks_stolen += other.tasks_stolen;
        self.subproblem_panics += other.subproblem_panics;
        self.last_panicked_anchor = other.last_panicked_anchor.or(self.last_panicked_anchor);
        self.timed_out |= other.timed_out;
    }
}

/// Per-worker counters of one work-stealing parallel run: what each thread
/// actually did, powering the per-thread efficiency rows of the `threads`
/// bench profile and the `BENCH_mqce.json` records.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ThreadStats {
    /// Worker index (`0..num_threads`).
    pub thread: usize,
    /// Whole per-vertex subproblems this worker ran.
    pub subproblems: u64,
    /// Donated split tasks (slices of another search's tree) this worker ran.
    pub splits: u64,
    /// Tasks this worker stole from another worker's deque.
    pub steals: u64,
    /// Wall-clock milliseconds spent executing tasks.
    pub busy_millis: f64,
    /// Wall-clock milliseconds spent hungry (looking for work).
    pub idle_millis: f64,
}

impl ThreadStats {
    /// Fraction of this worker's wall-clock spent executing tasks.
    pub fn busy_fraction(&self) -> f64 {
        let total = self.busy_millis + self.idle_millis;
        if total <= 0.0 {
            1.0
        } else {
            self.busy_millis / total
        }
    }
}

/// Counters describing the MQCE-S2 maximality-engine stage of one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct S2Stats {
    /// The backend that performed the final compaction (`inverted` /
    /// `bitset` / `extremal`; `Auto` resolves to its committed choice).
    pub backend: String,
    /// Sets fed into the engine (the raw S1 output count).
    pub sets_streamed: u64,
    /// Sets retained after on-arrival deduplication and domination checks
    /// (an upper bound on the final MQC count).
    pub sets_retained: u64,
    /// Whether S2 stopped at its deadline. The MQC list is then a *sound
    /// partial* result: still an antichain (every returned set is maximal
    /// with respect to the returned collection), but incomplete.
    pub timed_out: bool,
    /// The auto dispatcher's decision record (observed stream shape plus
    /// per-backend predicted costs) for the **per-subproblem streaming
    /// phase**, for auditing mispredictions against measured times. `None`
    /// when a concrete backend was requested, or when the final compaction
    /// ran on a merge engine (see [`S2Stats::merge_decision`]).
    pub decision: Option<mqce_settrie::S2Decision>,
    /// The auto dispatcher's decision record for the **merge phase** — the
    /// engine that combined per-thread, incremental-frontier, or per-shard
    /// families before the final compaction. Kept separate from
    /// [`S2Stats::decision`] so a merge-phase backend choice never
    /// overwrites (or is mistaken for) a per-subproblem one when auditing
    /// coordinator-side merges.
    pub merge_decision: Option<mqce_settrie::S2Decision>,
}

impl std::fmt::Display for S2Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "backend={} streamed={} retained={}",
            if self.backend.is_empty() {
                "?"
            } else {
                &self.backend
            },
            self.sets_streamed,
            self.sets_retained
        )?;
        for (label, decision) in [
            ("model", &self.decision),
            ("merge_model", &self.merge_decision),
        ] {
            if let Some(d) = decision {
                if d.modeled {
                    write!(
                        f,
                        " {label}[inv/bs/ex]={:.1}/{:.1}/{:.1}ms",
                        d.predicted_millis[0], d.predicted_millis[1], d.predicted_millis[2]
                    )?;
                } else {
                    write!(f, " {label}=small-family-fallback")?;
                }
            }
        }
        if self.timed_out {
            write!(f, " TIMED_OUT")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "branches={} pruned_cond={} pruned_size={} t1={} refined={} outputs={} depth={}",
            self.branches,
            self.pruned_by_condition,
            self.pruned_by_size,
            self.t1_terminations,
            self.candidates_refined,
            self.outputs,
            self.max_depth
        )?;
        if self.dc_subproblems > 0 {
            write!(
                f,
                " dc_subproblems={} dc_vertices={}→{}",
                self.dc_subproblems,
                self.dc_vertices_before_pruning,
                self.dc_vertices_after_pruning
            )?;
        }
        if self.split_donated + self.split_executed + self.tasks_stolen > 0 {
            write!(
                f,
                " donated={} splits_run={} stolen={}",
                self.split_donated, self.split_executed, self.tasks_stolen
            )?;
        }
        if self.subproblem_panics > 0 {
            write!(f, " contained_panics={}", self.subproblem_panics)?;
            if let Some(anchor) = self.last_panicked_anchor {
                write!(f, "(last_anchor={anchor})")?;
            }
        }
        if self.timed_out {
            write!(f, " TIMED_OUT")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SearchStats {
            branches: 10,
            outputs: 2,
            max_depth: 3,
            ..Default::default()
        };
        let b = SearchStats {
            branches: 5,
            outputs: 1,
            max_depth: 7,
            timed_out: true,
            dc_subproblems: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.branches, 15);
        assert_eq!(a.outputs, 3);
        assert_eq!(a.max_depth, 7);
        assert_eq!(a.dc_subproblems, 2);
        assert!(a.timed_out);
    }

    #[test]
    fn s2_stats_display() {
        let mut s2 = S2Stats {
            backend: "bitset".to_string(),
            sets_streamed: 100,
            sets_retained: 40,
            timed_out: false,
            decision: None,
            merge_decision: None,
        };
        let text = s2.to_string();
        assert!(text.contains("backend=bitset"));
        assert!(text.contains("streamed=100"));
        assert!(!text.contains("TIMED_OUT"));
        assert!(!text.contains("model"));
        s2.timed_out = true;
        assert!(s2.to_string().contains("TIMED_OUT"));
        assert!(S2Stats::default().to_string().contains("backend=?"));
        // A modeled decision surfaces the per-backend predictions.
        s2.decision = Some(mqce_settrie::S2CostModel::checked_in().decide(10_000, 100, 150_000));
        assert!(s2.to_string().contains("model[inv/bs/ex]="));
        // The small-family fallback is labelled as such.
        s2.decision = Some(mqce_settrie::S2CostModel::checked_in().decide(10, 5, 30));
        assert!(s2.to_string().contains("model=small-family-fallback"));
        // A merge-phase decision is labelled separately from the streaming one.
        s2.decision = None;
        s2.merge_decision =
            Some(mqce_settrie::S2CostModel::checked_in().decide(10_000, 100, 150_000));
        let text = s2.to_string();
        assert!(text.contains("merge_model[inv/bs/ex]="));
        assert!(!text.contains(" model[inv/bs/ex]="));
    }

    #[test]
    fn thread_stats_busy_fraction() {
        let t = ThreadStats {
            thread: 1,
            busy_millis: 75.0,
            idle_millis: 25.0,
            ..Default::default()
        };
        assert!((t.busy_fraction() - 0.75).abs() < 1e-12);
        // A thread that recorded no time counts as fully busy, not NaN.
        assert_eq!(ThreadStats::default().busy_fraction(), 1.0);
    }

    #[test]
    fn display_mentions_steal_counters_only_when_present() {
        let quiet = SearchStats::default();
        assert!(!quiet.to_string().contains("donated="));
        let busy = SearchStats {
            split_donated: 3,
            split_executed: 2,
            tasks_stolen: 5,
            ..Default::default()
        };
        let text = busy.to_string();
        assert!(text.contains("donated=3"));
        assert!(text.contains("splits_run=2"));
        assert!(text.contains("stolen=5"));
    }

    #[test]
    fn display_mentions_key_counters() {
        let s = SearchStats {
            branches: 42,
            dc_subproblems: 3,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("branches=42"));
        assert!(text.contains("dc_subproblems=3"));
        assert!(!text.contains("TIMED_OUT"));
    }
}
