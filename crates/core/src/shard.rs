//! Multi-process sharded enumeration: anchor-range planning, per-shard
//! execution, and the exact cross-shard frontier merge.
//!
//! The divide-and-conquer decomposition makes every per-vertex subproblem a
//! pure function of its anchor's two-hop-closed slice, so the anchor list
//! can be partitioned into contiguous rank ranges ("shards") and each shard
//! executed in a separate process against a self-contained graph slice:
//!
//! 1. [`plan_shards`] partitions the plan ordering into `num_shards`
//!    contiguous rank ranges, cost-balanced with the scheduler's two-hop
//!    estimates, and extracts for each range the subgraph induced by the
//!    union of its anchors' **closed two-hop balls** (unfiltered by rank:
//!    a worker re-derives each ball inside the slice, and two-hop paths may
//!    route through earlier-ranked intermediates). Within the slice, every
//!    anchor's ball — and therefore its whole subproblem — is reproduced
//!    byte-for-byte, because all intermediate vertices of any 2-path from
//!    an anchor lie inside that anchor's ball.
//! 2. [`run_shard`] (also the body of the `mqce shard-worker` process) runs
//!    the existing streaming DC drivers over a plan whose ordering is just
//!    the shard's anchors and whose rank array carries the *global* session
//!    ranks (ranks are only ever compared, never indexed, so any monotone
//!    values are sound). The shard's engine output is the maximal family of
//!    the shard's own emissions.
//! 3. [`merge_shard_families`] restores exact global maximality through a
//!    single [`MaximalityEngine`](mqce_settrie::MaximalityEngine) restricted
//!    to the **cross-shard frontier** — the same argument as the incremental
//!    merge. A set with anchor `a` is frontier iff `a`'s closed two-hop
//!    ball leaves the shard's rank range. If `T ⊋ S` with anchors `b`, `a`,
//!    then `b, a ∈ T` and `G[T]` has diameter ≤ 2 (γ ≥ ½), so each anchor
//!    lies in the other's ball; if the two sets come from different shards
//!    both are frontier, and if from the same shard the shard's local
//!    engine already resolved them. Interior sets can therefore neither
//!    dominate nor be dominated across shards and are spliced back in with
//!    the canonical merge — the final family is byte-identical to a
//!    single-process run (asserted differentially in the test suite).

use std::time::Instant;

use mqce_graph::slice::GraphSlice;
use mqce_graph::subgraph::InducedSubgraph;
use mqce_graph::{SubproblemScratch, VertexId};
use mqce_settrie::S2Decision;

use crate::config::MqceConfig;
use crate::dc::{prepare_plan_shared, run_dc_parallel_streaming_plan, DcPlan, EngineFactory};
use crate::incremental::merge_canonical;
use crate::pipeline::{dc_setup, feed_sets};
use crate::prepared::PreparedGraph;
use crate::scheduler::subproblem_estimates;
use crate::stats::SearchStats;

/// One shard of the anchor list: a contiguous rank range plus the
/// self-contained graph slice its subproblems run on.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// Shard index (`0..num_shards`).
    pub index: usize,
    /// The union of the shard anchors' closed two-hop balls, induced and
    /// relabelled; `slice.to_global` maps to original-graph ids.
    pub slice: GraphSlice,
    /// The shard's anchors as slice-local ids, in session rank order.
    pub anchors: Vec<VertexId>,
    /// Per slice-local vertex: its global session rank (compared, never
    /// indexed, by the DC drivers).
    pub rank: Vec<usize>,
    /// Sum of the two-hop cost estimates of the shard's anchors.
    pub estimated_cost: usize,
}

/// The coordinator's shard decomposition: the shards to dispatch plus the
/// global lookup tables the frontier merge classifies returned sets with.
pub struct ShardPlan {
    /// The shards, in rank order.
    pub shards: Vec<ShardSpec>,
    /// Per original-graph vertex: its session rank, `usize::MAX` for
    /// vertices the core reduction removed (they appear in no emitted set).
    pub rank_of: Vec<usize>,
    /// Per original-graph vertex: whether, as an anchor, its closed two-hop
    /// ball crosses its shard's rank boundary — sets anchored there must go
    /// through the coordinator's frontier engine.
    pub frontier: Vec<bool>,
}

impl ShardPlan {
    /// Session rank of an original-graph vertex (`usize::MAX` if it was
    /// removed by the core reduction).
    pub fn rank_of(&self, v: VertexId) -> usize {
        self.rank_of.get(v as usize).copied().unwrap_or(usize::MAX)
    }

    /// The anchor (minimum-rank member) of an emitted set.
    pub fn anchor_of(&self, set: &[VertexId]) -> Option<VertexId> {
        set.iter().copied().min_by_key(|&v| self.rank_of(v))
    }
}

/// What one shard's execution returned: the maximal family of the shard's
/// own emissions, in canonical (lexicographic) order over original ids.
#[derive(Clone, Debug, Default)]
pub struct ShardFamily {
    /// The shard-local maximal family.
    pub mqcs: Vec<Vec<VertexId>>,
    /// Aggregated S1 statistics of the shard's subproblems.
    pub stats: SearchStats,
    /// Whether the shard hit a deadline (its family may be incomplete).
    pub timed_out: bool,
}

/// The coordinator-side merge result.
pub struct MergedShards {
    /// The exact global maximal family (canonical order).
    pub mqcs: Vec<Vec<VertexId>>,
    /// The merge engine's dispatch audit (recorded separately from
    /// per-subproblem decisions; see [`S2Stats::merge_decision`](crate::stats::S2Stats::merge_decision)).
    pub merge_decision: Option<S2Decision>,
    /// The backend that performed the frontier compaction.
    pub backend: String,
}

/// An end-to-end sharded run (the in-process driver used by the
/// differential tests and the `shards` bench profile; the CLI coordinator
/// runs the same plan/execute/merge steps with worker processes).
pub struct ShardOutcome {
    /// The exact global maximal family (canonical order).
    pub mqcs: Vec<Vec<VertexId>>,
    /// Number of shards executed.
    pub shards: usize,
    /// Per-shard wall-clock milliseconds.
    pub shard_millis: Vec<f64>,
    /// Wall-clock milliseconds of the coordinator's frontier merge.
    pub merge_millis: f64,
    /// Whether any shard was cut short (deadline, contained panic, or — in
    /// the multi-process coordinator — a lost worker): the family is then a
    /// sound partial result rather than the exact one.
    pub best_effort: bool,
    /// S1 statistics aggregated over all shards.
    pub stats: SearchStats,
    /// The merge engine's dispatch audit.
    pub merge_decision: Option<S2Decision>,
}

/// Partitions the anchor list into `num_shards` cost-balanced contiguous
/// rank ranges and extracts each range's two-hop-closed slice. Returns
/// `None` for algorithms without a DC decomposition (nothing to shard —
/// callers fall back to a single-process run).
pub fn plan_shards(
    prepared: &PreparedGraph,
    config: &MqceConfig,
    num_shards: usize,
) -> Option<ShardPlan> {
    let (_inner, dc) = dc_setup(config)?;
    let plan = prepare_plan_shared(prepared, config.params, dc);
    let n_orig = prepared.graph().num_vertices();
    let mut rank_of = vec![usize::MAX; n_orig];
    for (local, &orig) in plan.reduced.to_global.iter().enumerate() {
        rank_of[orig as usize] = plan.rank[local];
    }
    let mut shard_plan = ShardPlan {
        shards: Vec::new(),
        rank_of,
        frontier: vec![false; n_orig],
    };
    let total_anchors = plan.ordering.len();
    if total_anchors == 0 {
        return Some(shard_plan);
    }

    // Cost-balanced contiguous cuts over the estimate prefix: each shard
    // takes anchors until it reaches its share of the remaining cost,
    // always leaving at least one anchor per remaining shard.
    let estimates = subproblem_estimates(&plan);
    let num_shards = num_shards.max(1).min(total_anchors);
    let mut remaining_cost: usize = estimates.iter().sum();
    let mut scratch = SubproblemScratch::new();
    let mut ball: Vec<VertexId> = Vec::new();
    let rg = &plan.reduced.graph;
    let mut in_slice = vec![false; rg.num_vertices()];
    let mut pos = 0usize;
    for index in 0..num_shards {
        let shards_left = num_shards - index;
        let target = remaining_cost.div_ceil(shards_left);
        let max_end = total_anchors - (shards_left - 1);
        let mut end = pos;
        let mut acc = 0usize;
        while end < max_end && (end == pos || acc < target) {
            acc += estimates[end];
            end += 1;
        }
        remaining_cost = remaining_cost.saturating_sub(acc);

        // Slice membership: the union of the closed two-hop balls of the
        // range's anchors (unfiltered by rank — see the module docs).
        // The same walk computes each anchor's frontier flag.
        let mut members: Vec<VertexId> = Vec::new();
        for &vv in &plan.ordering[pos..end] {
            scratch.two_hop_into(rg, vv, &mut ball);
            let mut crosses = false;
            for &u in &ball {
                let r = plan.rank[u as usize];
                if r < pos || r >= end {
                    crosses = true;
                }
                if !in_slice[u as usize] {
                    in_slice[u as usize] = true;
                    members.push(u);
                }
            }
            if crosses {
                shard_plan.frontier[plan.reduced.to_global[vv as usize] as usize] = true;
            }
        }
        for &u in &members {
            in_slice[u as usize] = false;
        }
        members.sort_unstable();
        let sub = InducedSubgraph::new(rg, &members);
        // Compose the id maps: slice-local → reduced-local → original.
        // Both maps are sorted ascending, so the composition is monotone.
        let slice_to_global: Vec<VertexId> = sub
            .to_global
            .iter()
            .map(|&r| plan.reduced.to_global[r as usize])
            .collect();
        let shard_rank: Vec<usize> = sub
            .to_global
            .iter()
            .map(|&r| plan.rank[r as usize])
            .collect();
        let anchors: Vec<VertexId> = plan.ordering[pos..end]
            .iter()
            .map(|&vv| sub.local(vv).expect("anchor is in its own two-hop ball"))
            .collect();
        shard_plan.shards.push(ShardSpec {
            index,
            slice: GraphSlice::from_parts(sub.graph, slice_to_global),
            anchors,
            rank: shard_rank,
            estimated_cost: acc,
        });
        pos = end;
    }
    debug_assert_eq!(pos, total_anchors);
    Some(shard_plan)
}

/// Executes one shard: runs the existing streaming DC drivers over the
/// slice with the shard's anchors as the plan ordering, merges the
/// per-thread engines, and returns the shard-local maximal family over
/// original-graph ids. This is exactly what a `mqce shard-worker` process
/// does with a decoded [`GraphSlice`].
pub fn run_shard(
    slice: &GraphSlice,
    anchors: &[VertexId],
    rank: &[usize],
    config: &MqceConfig,
    threads: usize,
) -> ShardFamily {
    let Some((inner, dc)) = dc_setup(config) else {
        return ShardFamily::default();
    };
    let deadline = config.time_limit.map(|limit| Instant::now() + limit);
    let plan = DcPlan {
        reduced: InducedSubgraph {
            graph: slice.graph.clone(),
            to_global: slice.to_global.clone(),
            adjacency: None,
        },
        ordering: anchors.to_vec(),
        rank: rank.to_vec(),
    };
    let factory = || config.s2_backend.new_engine_with_model(config.s2_model);
    let factory_ref: EngineFactory<'_> = &factory;
    let (outcome, mut engines) = run_dc_parallel_streaming_plan(
        &plan,
        config.params,
        inner,
        dc,
        threads.max(1),
        deadline,
        Some(factory_ref),
    );
    let mut engine = if engines.is_empty() {
        config.s2_backend.new_engine_with_model(config.s2_model)
    } else {
        engines.remove(0)
    };
    let mut feed_truncated = false;
    for mut other in engines {
        if !feed_sets(engine.as_mut(), &other.drain(), deadline) {
            feed_truncated = true;
        }
    }
    let s2_out = engine.finish();
    ShardFamily {
        mqcs: s2_out.mqcs,
        timed_out: outcome.stats.timed_out || s2_out.timed_out || feed_truncated,
        stats: outcome.stats,
    }
}

/// Merges per-shard maximal families into the exact global family: frontier
/// sets go through one maximality engine, interior sets are spliced back in
/// with the canonical merge (see the module docs for why this is exact).
pub fn merge_shard_families(
    plan: &ShardPlan,
    families: Vec<Vec<Vec<VertexId>>>,
    config: &MqceConfig,
) -> MergedShards {
    let mut engine = config.s2_backend.new_engine_with_model(config.s2_model);
    let mut interior: Vec<Vec<Vec<VertexId>>> = Vec::with_capacity(families.len());
    for family in families {
        let mut keep = Vec::with_capacity(family.len());
        for set in family {
            let anchor = plan.anchor_of(&set).expect("maximal sets are non-empty");
            if plan.frontier.get(anchor as usize).copied().unwrap_or(true) {
                engine.add(&set);
            } else {
                keep.push(set);
            }
        }
        interior.push(keep);
    }
    let s2_out = engine.finish();
    let mut merged = s2_out.mqcs;
    for keep in interior {
        merged = merge_canonical(merged, keep);
    }
    MergedShards {
        mqcs: merged,
        merge_decision: s2_out.decision,
        backend: s2_out.backend.to_string(),
    }
}

/// Plans, executes, and merges a sharded run in-process: the differential
/// reference for the multi-process coordinator, and the driver behind the
/// `shards` bench profile. Returns `None` when the configured algorithm has
/// no DC decomposition.
pub fn run_sharded(
    prepared: &PreparedGraph,
    config: &MqceConfig,
    num_shards: usize,
    threads_per_shard: usize,
) -> Option<ShardOutcome> {
    let plan = plan_shards(prepared, config, num_shards)?;
    let mut shard_millis = Vec::with_capacity(plan.shards.len());
    let mut families = Vec::with_capacity(plan.shards.len());
    let mut stats = SearchStats::default();
    let mut best_effort = false;
    for spec in &plan.shards {
        let start = Instant::now();
        let family = run_shard(
            &spec.slice,
            &spec.anchors,
            &spec.rank,
            config,
            threads_per_shard,
        );
        shard_millis.push(start.elapsed().as_secs_f64() * 1e3);
        stats.merge(&family.stats);
        best_effort |= family.timed_out || family.stats.subproblem_panics > 0;
        families.push(family.mqcs);
    }
    let merge_start = Instant::now();
    let merged = merge_shard_families(&plan, families, config);
    let merge_millis = merge_start.elapsed().as_secs_f64() * 1e3;
    Some(ShardOutcome {
        mqcs: merged.mqcs,
        shards: plan.shards.len(),
        shard_millis,
        merge_millis,
        best_effort,
        stats,
        merge_decision: merged.merge_decision,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use mqce_graph::generators::{community_graph, CommunityGraphParams};
    use mqce_graph::Graph;

    fn test_graph() -> Graph {
        community_graph(
            CommunityGraphParams {
                n: 120,
                num_communities: 8,
                p_intra: 0.9,
                inter_degree: 1.5,
            },
            4242,
        )
    }

    #[test]
    fn shards_cover_every_anchor_exactly_once() {
        let prepared = PreparedGraph::new(test_graph());
        let config = MqceConfig::new(0.85, 5).unwrap();
        for num_shards in [1, 2, 3, 4, 7] {
            let plan = plan_shards(&prepared, &config, num_shards).unwrap();
            assert!(!plan.shards.is_empty());
            assert!(plan.shards.len() <= num_shards);
            let mut seen_ranks: Vec<usize> = Vec::new();
            for spec in &plan.shards {
                assert!(!spec.anchors.is_empty());
                assert!(spec.estimated_cost > 0);
                for &a in &spec.anchors {
                    seen_ranks.push(spec.rank[a as usize]);
                }
                // Slice ids map to original ids and the rank table matches.
                for (local, &orig) in spec.slice.to_global.iter().enumerate() {
                    assert_eq!(plan.rank_of(orig), spec.rank[local]);
                }
            }
            seen_ranks.sort_unstable();
            let expected: Vec<usize> = (0..seen_ranks.len()).collect();
            assert_eq!(seen_ranks, expected, "anchor ranks not a partition");
        }
    }

    #[test]
    fn sharded_run_matches_single_process() {
        let g = test_graph();
        let prepared = PreparedGraph::new(g.clone());
        let config = MqceConfig::new(0.85, 5).unwrap();
        let reference = Session::open(g).config(config).run();
        for num_shards in [1, 2, 4] {
            let outcome = run_sharded(&prepared, &config, num_shards, 1).unwrap();
            assert_eq!(outcome.mqcs, reference.mqcs, "{num_shards} shards");
            assert!(!outcome.best_effort);
            assert_eq!(outcome.shard_millis.len(), outcome.shards);
        }
    }

    #[test]
    fn sharding_without_dc_is_declined() {
        let prepared = PreparedGraph::new(Graph::paper_figure1());
        let config = MqceConfig::new(0.6, 3)
            .unwrap()
            .with_algorithm(crate::config::Algorithm::FastQc);
        assert!(plan_shards(&prepared, &config, 3).is_none());
        assert!(run_sharded(&prepared, &config, 3, 1).is_none());
    }
}
