//! Divide-and-conquer frameworks (Section 5, Algorithm 3).
//!
//! `DCFastQC` divides the graph into one subproblem per vertex: under the
//! degeneracy ordering `⟨v_1, …, v_n⟩`, subproblem `i` searches the subgraph
//! induced by `V_i = Γ²(v_i) − {v_1..v_{i−1}}` for quasi-cliques that contain
//! `v_i` and exclude all earlier vertices. Property 2 (diameter ≤ 2 for
//! γ ≥ 0.5) guarantees every maximal QC is found in exactly one subproblem.
//!
//! Before searching, each subgraph is shrunk by:
//! * the global `⌈γ(θ−1)⌉`-core reduction (line 1 of Algorithm 3),
//! * `MAX_ROUND` rounds of **one-hop** and **two-hop** pruning (Section 5).
//!
//! The *basic* DC framework of [19, 24] (`BDCFastQC` in Figure 12) is also
//! provided: it splits on the input order and applies only the one-hop rule.

use std::time::Instant;

use mqce_graph::bitset::{AdjacencyMatrix, BitSet};
use mqce_graph::core_decomp::{core_decomposition, k_core_vertices};
use mqce_graph::subgraph::InducedSubgraph;
use mqce_graph::{Graph, SubproblemScratch, VertexId};
use mqce_settrie::{MaximalityEngine, SetArena};

use crate::branch::{SearchOutcome, SearchScratch};
use crate::config::{AdjacencyBackend, BranchingStrategy, MqceParams};
use crate::fastqc::run_fastqc_in;
use crate::quasiclique::{required_degree, tau};
use crate::quickplus::run_quickplus_in;
use crate::stats::SearchStats;

/// Which branch-and-bound searcher the DC driver invokes per subproblem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InnerAlgorithm {
    /// FastQC (Algorithm 2) with the given branching strategy.
    FastQc(BranchingStrategy),
    /// The Quick+ baseline (Algorithm 1).
    QuickPlus,
}

/// Configuration of the divide-and-conquer driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DcConfig {
    /// Process vertices in degeneracy order (paper's DC) or input order
    /// (basic DC of [19, 24]).
    pub degeneracy_order: bool,
    /// Apply the two-hop pruning rule in addition to the one-hop rule.
    pub two_hop_pruning: bool,
    /// Number of pruning rounds per subgraph (`MAX_ROUND`).
    pub max_round: usize,
    /// Reduce the input graph to its `⌈γ(θ−1)⌉`-core first.
    pub core_reduction: bool,
}

impl DcConfig {
    /// The paper's DC framework (Algorithm 3) with the default `MAX_ROUND = 2`.
    pub fn paper_default() -> Self {
        DcConfig {
            degeneracy_order: true,
            two_hop_pruning: true,
            max_round: 2,
            core_reduction: true,
        }
    }

    /// The basic DC framework of [19, 24]: input order, one-hop pruning only.
    pub fn basic() -> Self {
        DcConfig {
            degeneracy_order: false,
            two_hop_pruning: false,
            max_round: 1,
            core_reduction: true,
        }
    }

    /// Sets `MAX_ROUND`.
    pub fn with_max_round(mut self, max_round: usize) -> Self {
        self.max_round = max_round;
        self
    }
}

/// The prepared decomposition: core-reduced graph, vertex ordering and ranks.
pub(crate) struct DcPlan {
    /// The ⌈γ(θ−1)⌉-core of the input (or the whole graph), with id mapping.
    pub(crate) reduced: InducedSubgraph,
    /// Vertices of the reduced graph in processing order.
    pub(crate) ordering: Vec<VertexId>,
    /// `rank[v]` = position of `v` in `ordering`.
    pub(crate) rank: Vec<usize>,
}

/// Lines 1-2 of Algorithm 3: core reduction and vertex ordering.
pub(crate) fn prepare_plan(g: &Graph, params: MqceParams, dc: DcConfig) -> DcPlan {
    let core_k = required_degree(params.gamma, params.theta);
    let reduced: InducedSubgraph = if dc.core_reduction {
        let keep = k_core_vertices(g, core_k);
        InducedSubgraph::new(g, &keep)
    } else {
        let all: Vec<VertexId> = g.vertices().collect();
        InducedSubgraph::new(g, &all)
    };
    let ordering: Vec<VertexId> = if dc.degeneracy_order {
        core_decomposition(&reduced.graph).ordering
    } else {
        reduced.graph.vertices().collect()
    };
    let mut rank = vec![0usize; reduced.graph.num_vertices()];
    for (i, &v) in ordering.iter().enumerate() {
        rank[v as usize] = i;
    }
    DcPlan {
        reduced,
        ordering,
        rank,
    }
}

/// [`prepare_plan`] against cached shared state: the core reduction is a
/// filter over the prepared core numbers and the processing order is the
/// cached global degeneracy ordering restricted to the surviving vertices —
/// no per-request core decomposition. Any total order is sound for the DC
/// drivers (Property 2 assigns each maximal QC to its lowest-ranked member
/// under whatever order is in force), and the restriction of a degeneracy
/// ordering keeps the forward-degree bound, so the plan quality matches the
/// owning path.
pub(crate) fn prepare_plan_shared(
    prepared: &crate::prepared::PreparedGraph,
    params: MqceParams,
    dc: DcConfig,
) -> DcPlan {
    let g = prepared.graph();
    let core_k = required_degree(params.gamma, params.theta);
    let reduced: InducedSubgraph = if dc.core_reduction {
        InducedSubgraph::new(g, &prepared.k_core_vertices(core_k))
    } else {
        let all: Vec<VertexId> = g.vertices().collect();
        InducedSubgraph::new(g, &all)
    };
    let ordering: Vec<VertexId> = if dc.degeneracy_order {
        prepared
            .cores()
            .ordering
            .iter()
            .filter_map(|&v| reduced.local(v))
            .collect()
    } else {
        reduced.graph.vertices().collect()
    };
    let mut rank = vec![0usize; reduced.graph.num_vertices()];
    for (i, &v) in ordering.iter().enumerate() {
        rank[v as usize] = i;
    }
    DcPlan {
        reduced,
        ordering,
        rank,
    }
}

/// Per-worker reusable state for the DC drivers: subgraph-extraction scratch,
/// the inner searcher's frame/degree buffers, pruning masks and the candidate
/// list. One instance per worker thread; every buffer is allocated on first
/// use and then reused for the worker's whole run, making the per-subproblem
/// hot path allocation-free in steady state.
#[derive(Default)]
pub(crate) struct DcScratch {
    /// Epoch-stamped extraction buffers (two-hop walk + local CSR).
    pub(crate) sub: SubproblemScratch,
    /// Two-hop ball of the current anchor (reduced-graph ids).
    pub(crate) ball: Vec<VertexId>,
    /// The inner searcher's reusable buffers (incl. its output arena).
    pub(crate) search: SearchScratch,
    /// Pruning-round masks and degree snapshots.
    pub(crate) prune: PruneScratch,
    /// Pruned candidate list of the current subproblem (local ids).
    pub(crate) cand: Vec<VertexId>,
}

/// Reusable buffers for [`prune_subgraph_in`].
pub(crate) struct PruneScratch {
    /// Surviving-vertex mask after the last pruning run.
    alive: Vec<bool>,
    /// Per-round degree snapshot.
    degree: Vec<usize>,
    /// Per-round anchor-adjacency snapshot.
    anchor_adj: Vec<bool>,
    /// Word-parallel mirror of `alive` while a bitset kernel is in use.
    alive_mask: BitSet,
}

impl Default for PruneScratch {
    fn default() -> Self {
        PruneScratch {
            alive: Vec::new(),
            degree: Vec::new(),
            anchor_adj: Vec::new(),
            alive_mask: BitSet::new(0),
        }
    }
}

/// Lines 4-6 of Algorithm 3 for a single anchor vertex `vi`: build `G_i` into
/// the worker's reusable buffers and prune it. On success the pruned
/// candidate set is left in `scratch.cand` (local ids, anchor excluded).
/// Returns `None` (with `stats` still updated) when the subproblem cannot
/// hold a quasi-clique of size ≥ θ. After warmup this performs no heap
/// allocation beyond the optional bitset kernel.
pub(crate) fn build_subproblem_in(
    plan: &DcPlan,
    vi: VertexId,
    params: MqceParams,
    dc: DcConfig,
    stats: &mut SearchStats,
    scratch: &mut DcScratch,
) -> Option<(InducedSubgraph, VertexId)> {
    let rg = &plan.reduced.graph;
    // V_i = Γ²(v_i) − {v_1..v_{i−1}} (closed 2-hop ball, later-ranked only).
    let my_rank = plan.rank[vi as usize];
    scratch.sub.two_hop_into(rg, vi, &mut scratch.ball);
    scratch.ball.retain(|&u| plan.rank[u as usize] >= my_rank);
    stats.dc_subproblems += 1;
    stats.dc_vertices_before_pruning += scratch.ball.len() as u64;
    if scratch.ball.len() < params.theta {
        stats.dc_vertices_after_pruning += scratch.ball.len() as u64;
        return None;
    }

    // Attach the bitset kernel for dense subproblems: the subgraph is
    // relabelled to 0..n, so the matrix rows are dense and are shared by the
    // pruning rounds, the searcher and its emission checks.
    let sub = InducedSubgraph::new_in(rg, &scratch.ball, &mut scratch.sub);
    let sub = match params.backend {
        AdjacencyBackend::Slice => sub,
        AdjacencyBackend::Auto => sub.with_adjacency(false),
        AdjacencyBackend::Bitset => sub.with_adjacency(true),
    };
    let local_vi = sub
        .local(vi)
        .expect("anchor vertex is always in its own 2-hop ball");

    // ---- lines 5-6: MAX_ROUND rounds of one-hop / two-hop pruning ----
    prune_subgraph_in(
        &sub.graph,
        sub.adjacency.as_ref(),
        local_vi,
        params,
        dc,
        &mut scratch.prune,
    );
    let alive = &scratch.prune.alive;
    scratch.cand.clear();
    scratch.cand.extend(
        (0..sub.graph.num_vertices() as VertexId).filter(|&u| u != local_vi && alive[u as usize]),
    );
    stats.dc_vertices_after_pruning += 1 + scratch.cand.len() as u64;
    if 1 + scratch.cand.len() < params.theta {
        scratch.sub.recycle(sub);
        return None;
    }
    Some((sub, local_vi))
}

/// Lines 4-8 of Algorithm 3 for a single anchor vertex `vi`: build and prune
/// `G_i` in the worker's scratch, run the inner searcher with `S = {v_i}`,
/// map each output back to the original graph's vertex ids, append it to the
/// worker's `raw` arena, and stream it into the maximality engine (when one
/// is attached).
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_subproblem_streaming<'e>(
    plan: &DcPlan,
    vi: VertexId,
    params: MqceParams,
    inner: InnerAlgorithm,
    dc: DcConfig,
    deadline: Option<Instant>,
    scratch: &mut DcScratch,
    stats: &mut SearchStats,
    raw: &mut SetArena,
    s2: &mut Option<&mut (dyn MaximalityEngine + 'e)>,
) {
    let Some((sub, local_vi)) = build_subproblem_in(plan, vi, params, dc, stats, scratch) else {
        return;
    };

    // ---- lines 7-8: run the searcher with S = {v_i} ----
    //
    // The searcher runs inside a containment boundary: a panicking
    // subproblem (a bug, or an injected fault) fails alone instead of
    // tearing down the whole enumeration — the serve daemon answers many
    // requests from one process and must outlive any single bad subproblem.
    // `AssertUnwindSafe` is sound because everything the closure mutates is
    // discarded wholesale on panic: the search scratch is replaced with a
    // fresh one and the subproblem's outputs are never extracted (`raw` and
    // the engine are only touched after the searcher returns), so no torn
    // state is observable after the catch.
    let anchor = plan.reduced.to_global[vi as usize];
    let searched = {
        let DcScratch {
            ref mut search,
            ref cand,
            ..
        } = *scratch;
        let kernel = sub.adjacency.as_ref();
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if params.fail_anchor == Some(anchor) {
                panic!("injected fault: searcher panic at anchor {anchor}");
            }
            match inner {
                InnerAlgorithm::FastQc(branching) => run_fastqc_in(
                    &sub.graph,
                    kernel,
                    &[local_vi],
                    cand,
                    params,
                    branching,
                    deadline,
                    None,
                    search,
                ),
                InnerAlgorithm::QuickPlus => run_quickplus_in(
                    &sub.graph,
                    kernel,
                    &[local_vi],
                    cand,
                    params,
                    deadline,
                    None,
                    search,
                ),
            }
        }))
    };
    let sub_stats = match searched {
        Ok(sub_stats) => sub_stats,
        Err(_) => {
            stats.subproblem_panics += 1;
            stats.last_panicked_anchor = Some(anchor);
            // The scratch may hold a half-built search frame; discard it
            // rather than reuse it (the buffers are rebuilt on first use).
            scratch.search = SearchScratch::default();
            return;
        }
    };
    stats.merge(&sub_stats);
    // Map local → reduced → original ids. Both id maps are sorted ascending,
    // so the composition is monotone and each mapped set stays sorted.
    for i in 0..scratch.search.sets.len() {
        raw.begin();
        for &l in scratch.search.sets.get(i) {
            let r = sub.to_global[l as usize];
            raw.push_elem(plan.reduced.to_global[r as usize]);
        }
        let set = raw.commit_sorted();
        if let Some(engine) = s2.as_deref_mut() {
            engine.add(set);
        }
    }
    scratch.sub.recycle(sub);
}

/// Runs the divide-and-conquer enumeration and returns the MQCE-S1 output
/// (global vertex ids) plus aggregated statistics.
pub fn run_dc(
    g: &Graph,
    params: MqceParams,
    inner: InnerAlgorithm,
    dc: DcConfig,
    deadline: Option<Instant>,
) -> SearchOutcome {
    run_dc_streaming(g, params, inner, dc, deadline, None)
}

/// [`run_dc`] with streaming MQCE-S2: each subproblem's outputs are fed into
/// the maximality engine as the subproblem completes, so duplicate and
/// dominated quasi-cliques are dropped on arrival and the filtering cost is
/// amortised across the whole run instead of paid in one post-hoc pass.
pub fn run_dc_streaming(
    g: &Graph,
    params: MqceParams,
    inner: InnerAlgorithm,
    dc: DcConfig,
    deadline: Option<Instant>,
    s2: Option<&mut dyn MaximalityEngine>,
) -> SearchOutcome {
    let plan = prepare_plan(g, params, dc);
    run_dc_streaming_plan(&plan, params, inner, dc, deadline, s2)
}

/// [`run_dc_streaming`] over an already-prepared [`DcPlan`] — the re-entrant
/// body the shared-state pipeline entry points call with plans derived from
/// cached decompositions.
pub(crate) fn run_dc_streaming_plan(
    plan: &DcPlan,
    params: MqceParams,
    inner: InnerAlgorithm,
    dc: DcConfig,
    deadline: Option<Instant>,
    mut s2: Option<&mut dyn MaximalityEngine>,
) -> SearchOutcome {
    let mut stats = SearchStats::default();
    if plan.reduced.graph.num_vertices() == 0 {
        return SearchOutcome {
            outputs: Vec::new(),
            stats,
            thread_stats: Vec::new(),
        };
    }
    let mut scratch = DcScratch::default();
    let mut raw = SetArena::new();
    for &vi in &plan.ordering {
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                stats.timed_out = true;
                break;
            }
        }
        solve_subproblem_streaming(
            plan,
            vi,
            params,
            inner,
            dc,
            deadline,
            &mut scratch,
            &mut stats,
            &mut raw,
            &mut s2,
        );
        if stats.timed_out {
            break;
        }
    }
    SearchOutcome {
        outputs: raw.into_vecs(),
        stats,
        thread_stats: Vec::new(),
    }
}

/// Multi-threaded variant of [`run_dc`]: the per-vertex subproblems are
/// distributed over `num_threads` OS threads by a work-stealing scheduler
/// (per-worker deques seeded in descending estimated cost), and busy
/// searchers cooperatively split untaken branches of their own search trees
/// off to hungry workers, so even one giant subproblem parallelises. This is
/// the "efficient parallel implementation" the paper lists as future work;
/// the maximal-QC family is identical to the sequential driver's (the raw S1
/// stream may contain a few extra dominated quasi-cliques from split points,
/// which MQCE-S2 removes).
pub fn run_dc_parallel(
    g: &Graph,
    params: MqceParams,
    inner: InnerAlgorithm,
    dc: DcConfig,
    num_threads: usize,
    deadline: Option<Instant>,
) -> SearchOutcome {
    run_dc_parallel_streaming(g, params, inner, dc, num_threads, deadline, None).0
}

/// A closure producing fresh per-thread maximality engines.
pub type EngineFactory<'a> = &'a (dyn Fn() -> Box<dyn MaximalityEngine> + Sync);

/// [`run_dc_parallel`] with streaming MQCE-S2: when an engine factory is
/// supplied, every worker thread streams the outputs of everything it runs —
/// whole subproblems and stolen split tasks alike — into its own engine, and
/// the per-thread engines are returned for the caller to merge (drain each
/// into one and [`MaximalityEngine::add`] the sets back).
pub fn run_dc_parallel_streaming(
    g: &Graph,
    params: MqceParams,
    inner: InnerAlgorithm,
    dc: DcConfig,
    num_threads: usize,
    deadline: Option<Instant>,
    engine_factory: Option<EngineFactory<'_>>,
) -> (SearchOutcome, Vec<Box<dyn MaximalityEngine>>) {
    let num_threads = num_threads.max(1);
    if num_threads == 1 {
        return match engine_factory {
            None => (
                run_dc_streaming(g, params, inner, dc, deadline, None),
                Vec::new(),
            ),
            Some(factory) => {
                let mut engine = factory();
                let outcome =
                    run_dc_streaming(g, params, inner, dc, deadline, Some(engine.as_mut()));
                (outcome, vec![engine])
            }
        };
    }
    let plan = prepare_plan(g, params, dc);
    run_dc_parallel_streaming_plan(
        &plan,
        params,
        inner,
        dc,
        num_threads,
        deadline,
        engine_factory,
    )
}

/// [`run_dc_parallel_streaming`] over an already-prepared [`DcPlan`]; used
/// by the shared-state pipeline entry points. Falls back to the sequential
/// plan driver for one thread.
pub(crate) fn run_dc_parallel_streaming_plan(
    plan: &DcPlan,
    params: MqceParams,
    inner: InnerAlgorithm,
    dc: DcConfig,
    num_threads: usize,
    deadline: Option<Instant>,
    engine_factory: Option<EngineFactory<'_>>,
) -> (SearchOutcome, Vec<Box<dyn MaximalityEngine>>) {
    let num_threads = num_threads.max(1);
    if num_threads == 1 {
        return match engine_factory {
            None => (
                run_dc_streaming_plan(plan, params, inner, dc, deadline, None),
                Vec::new(),
            ),
            Some(factory) => {
                let mut engine = factory();
                let outcome =
                    run_dc_streaming_plan(plan, params, inner, dc, deadline, Some(engine.as_mut()));
                (outcome, vec![engine])
            }
        };
    }
    if plan.reduced.graph.num_vertices() == 0 {
        return (SearchOutcome::default(), Vec::new());
    }
    crate::scheduler::run_dc_work_stealing(
        plan,
        params,
        inner,
        dc,
        num_threads,
        deadline,
        engine_factory,
    )
}

/// The PR-3 parallel driver: whole subproblems handed out through one shared
/// atomic index, no stealing and no splitting. Kept as the baseline the
/// `threads` bench profile compares the work-stealing scheduler against — on
/// skewed subproblem families this driver idles every worker but the one
/// holding the heavy subproblem.
pub fn run_dc_parallel_streaming_shared_index(
    g: &Graph,
    params: MqceParams,
    inner: InnerAlgorithm,
    dc: DcConfig,
    num_threads: usize,
    deadline: Option<Instant>,
    engine_factory: Option<EngineFactory<'_>>,
) -> (SearchOutcome, Vec<Box<dyn MaximalityEngine>>) {
    let num_threads = num_threads.max(1);
    if num_threads == 1 {
        return run_dc_parallel_streaming(g, params, inner, dc, 1, deadline, engine_factory);
    }
    let plan = prepare_plan(g, params, dc);
    if plan.reduced.graph.num_vertices() == 0 {
        return (SearchOutcome::default(), Vec::new());
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let plan_ref = &plan;
    let next_ref = &next;
    type WorkerResult = (
        Vec<Vec<VertexId>>,
        SearchStats,
        Option<Box<dyn MaximalityEngine>>,
    );
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..num_threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut stats = SearchStats::default();
                    let mut engine = engine_factory.map(|f| f());
                    let mut scratch = DcScratch::default();
                    let mut raw = SetArena::new();
                    let mut engine_ref: Option<&mut dyn MaximalityEngine> = engine.as_deref_mut();
                    loop {
                        let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= plan_ref.ordering.len() {
                            break;
                        }
                        if let Some(deadline) = deadline {
                            if Instant::now() >= deadline {
                                stats.timed_out = true;
                                break;
                            }
                        }
                        let vi = plan_ref.ordering[i];
                        solve_subproblem_streaming(
                            plan_ref,
                            vi,
                            params,
                            inner,
                            dc,
                            deadline,
                            &mut scratch,
                            &mut stats,
                            &mut raw,
                            &mut engine_ref,
                        );
                    }
                    (raw.into_vecs(), stats, engine)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let mut stats = SearchStats::default();
    let mut outputs = Vec::new();
    let mut engines = Vec::new();
    for (sub_outputs, sub_stats, engine) in results {
        stats.merge(&sub_stats);
        outputs.extend(sub_outputs);
        engines.extend(engine);
    }
    (
        SearchOutcome {
            outputs,
            stats,
            thread_stats: Vec::new(),
        },
        engines,
    )
}

/// Applies `MAX_ROUND` rounds of one-hop and (optionally) two-hop pruning on
/// the subgraph; `anchor` (the local id of `v_i`) is never removed. The
/// surviving-vertex mask is left in `scratch.alive`. When a bitset kernel is
/// supplied, the degree and common-neighbour counts run word-parallel over an
/// alive-vertex mask. All working buffers live in `scratch` and are reused
/// across subproblems.
fn prune_subgraph_in(
    sub: &Graph,
    adj: Option<&AdjacencyMatrix>,
    anchor: VertexId,
    params: MqceParams,
    dc: DcConfig,
    scratch: &mut PruneScratch,
) {
    let n = sub.num_vertices();
    scratch.alive.clear();
    scratch.alive.resize(n, true);
    scratch.degree.clear();
    scratch.degree.resize(n, 0);
    let min_deg = required_degree(params.gamma, params.theta);
    // f(θ) = θ − τ(θ) − τ(θ+1) (common-neighbour requirement of the two-hop rule).
    let f_theta = params.theta as i64
        - tau(params.gamma, params.theta as f64)
        - tau(params.gamma, params.theta as f64 + 1.0);
    // Alive mask mirrored alongside `alive` while the kernel is in use.
    let use_mask = adj.is_some();
    if use_mask {
        scratch.alive_mask.reset_full(n);
    }

    for _ in 0..dc.max_round.max(1) {
        let mut changed = false;

        // One-hop pruning: δ(u, V_i) < ⌈γ(θ−1)⌉. Degrees are snapshotted
        // before any removal so the rule is evaluated against the round's
        // starting set, matching the slice path.
        for v in 0..n as VertexId {
            if !scratch.alive[v as usize] {
                continue;
            }
            scratch.degree[v as usize] = match adj {
                Some(m) => m.degree_in_mask(v, &scratch.alive_mask),
                None => sub
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| scratch.alive[u as usize])
                    .count(),
            };
        }
        for v in 0..n as VertexId {
            if v != anchor && scratch.alive[v as usize] && scratch.degree[v as usize] < min_deg {
                scratch.alive[v as usize] = false;
                if use_mask {
                    scratch.alive_mask.remove(v);
                }
                changed = true;
            }
        }

        // Two-hop pruning: common-neighbour counts with the anchor.
        if dc.two_hop_pruning && f_theta > 0 {
            scratch.anchor_adj.clear();
            scratch.anchor_adj.resize(n, false);
            for &u in sub.neighbors(anchor) {
                if scratch.alive[u as usize] {
                    scratch.anchor_adj[u as usize] = true;
                }
            }
            for v in 0..n as VertexId {
                if v == anchor || !scratch.alive[v as usize] {
                    continue;
                }
                let common = match adj {
                    // `row(anchor)` is not filtered by liveness, but the AND
                    // with the live alive mask subsumes the `anchor_adj`
                    // snapshot (liveness only decreases within a round).
                    Some(m) => m.common_neighbors_in_mask(v, anchor, &scratch.alive_mask) as i64,
                    None => sub
                        .neighbors(v)
                        .iter()
                        .filter(|&&u| scratch.alive[u as usize] && scratch.anchor_adj[u as usize])
                        .count() as i64,
                };
                let threshold = if scratch.anchor_adj[v as usize] {
                    f_theta
                } else {
                    f_theta + 2
                };
                if common < threshold {
                    scratch.alive[v as usize] = false;
                    if use_mask {
                        scratch.alive_mask.remove(v);
                    }
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use mqce_settrie::filter_maximal;

    fn params(gamma: f64, theta: usize) -> MqceParams {
        MqceParams::new(gamma, theta).unwrap()
    }

    fn check_dc_against_oracle(g: &Graph, gamma: f64, theta: usize, dc: DcConfig) {
        let p = params(gamma, theta);
        let outcome = run_dc(
            g,
            p,
            InnerAlgorithm::FastQc(BranchingStrategy::HybridSe),
            dc,
            None,
        );
        assert_eq!(outcome.stats.outputs_rejected, 0);
        for h in &outcome.outputs {
            assert!(crate::quasiclique::is_quasi_clique(g, h, gamma));
            assert!(h.len() >= theta);
        }
        let filtered = filter_maximal(&outcome.outputs);
        let expected = naive::all_maximal_quasi_cliques(g, p);
        assert_eq!(
            filtered,
            expected,
            "DC mismatch gamma={gamma} theta={theta} dc={dc:?} (n={}, m={})",
            g.num_vertices(),
            g.num_edges()
        );
    }

    #[test]
    fn paper_graph_all_settings() {
        let g = Graph::paper_figure1();
        for &gamma in &[0.5, 0.6, 0.7, 0.9, 1.0] {
            for theta in 2..=4 {
                check_dc_against_oracle(&g, gamma, theta, DcConfig::paper_default());
                check_dc_against_oracle(&g, gamma, theta, DcConfig::basic());
            }
        }
    }

    #[test]
    fn random_graphs_dc_matches_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4242);
        for case in 0..30 {
            let n = rng.gen_range(5..12);
            let p = rng.gen_range(0.2..0.85);
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(p) {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges);
            let gamma = [0.5, 0.6, 0.75, 0.9, 0.96, 1.0][case % 6];
            let theta = 2 + case % 3;
            check_dc_against_oracle(&g, gamma, theta, DcConfig::paper_default());
        }
    }

    #[test]
    fn dc_with_quickplus_inner_matches_oracle() {
        let g = Graph::paper_figure1();
        for &gamma in &[0.6, 0.9] {
            let p = params(gamma, 3);
            let outcome = run_dc(&g, p, InnerAlgorithm::QuickPlus, DcConfig::basic(), None);
            let filtered = filter_maximal(&outcome.outputs);
            assert_eq!(filtered, naive::all_maximal_quasi_cliques(&g, p));
        }
    }

    #[test]
    fn core_reduction_shrinks_search() {
        // A 6-clique with a long pendant path: the path is outside the
        // ⌈0.9·5⌉-core and must be discarded before any subproblem is built.
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        for v in 6..20u32 {
            edges.push((v - 1, v));
        }
        let g = Graph::from_edges(20, &edges);
        let p = params(0.9, 6);
        let outcome = run_dc(
            &g,
            p,
            InnerAlgorithm::FastQc(BranchingStrategy::HybridSe),
            DcConfig::paper_default(),
            None,
        );
        assert_eq!(outcome.stats.dc_subproblems, 6);
        assert_eq!(
            filter_maximal(&outcome.outputs),
            vec![vec![0, 1, 2, 3, 4, 5]]
        );
    }

    #[test]
    fn max_round_zero_behaves_like_one() {
        let g = Graph::paper_figure1();
        let p = params(0.6, 3);
        let dc0 = DcConfig::paper_default().with_max_round(0);
        let outcome = run_dc(
            &g,
            p,
            InnerAlgorithm::FastQc(BranchingStrategy::HybridSe),
            dc0,
            None,
        );
        assert_eq!(
            filter_maximal(&outcome.outputs),
            naive::all_maximal_quasi_cliques(&g, p)
        );
    }

    #[test]
    fn two_hop_pruning_reduces_subproblem_size() {
        // Larger graph: planted dense group + sparse background. The paper's
        // DC (two-hop pruning) must not keep more vertices than the basic DC.
        use mqce_graph::generators::{planted_quasi_cliques, PlantedGroup};
        let g = planted_quasi_cliques(
            60,
            0.05,
            &[PlantedGroup {
                size: 10,
                density: 1.0,
            }],
            3,
        );
        let p = params(0.9, 8);
        let paper = run_dc(
            &g,
            p,
            InnerAlgorithm::FastQc(BranchingStrategy::HybridSe),
            DcConfig::paper_default(),
            None,
        );
        let basic = run_dc(
            &g,
            p,
            InnerAlgorithm::FastQc(BranchingStrategy::HybridSe),
            DcConfig::basic(),
            None,
        );
        assert!(paper.stats.dc_vertices_after_pruning <= basic.stats.dc_vertices_after_pruning);
        assert_eq!(
            filter_maximal(&paper.outputs),
            filter_maximal(&basic.outputs)
        );
    }

    #[test]
    fn parallel_dc_matches_sequential() {
        use mqce_graph::generators::{community_graph, CommunityGraphParams};
        let g = community_graph(
            CommunityGraphParams {
                n: 120,
                num_communities: 8,
                p_intra: 0.9,
                inter_degree: 1.5,
            },
            2025,
        );
        let p = params(0.85, 5);
        let sequential = run_dc(
            &g,
            p,
            InnerAlgorithm::FastQc(BranchingStrategy::HybridSe),
            DcConfig::paper_default(),
            None,
        );
        for threads in [1, 2, 4] {
            let parallel = run_dc_parallel(
                &g,
                p,
                InnerAlgorithm::FastQc(BranchingStrategy::HybridSe),
                DcConfig::paper_default(),
                threads,
                None,
            );
            assert_eq!(
                filter_maximal(&parallel.outputs),
                filter_maximal(&sequential.outputs),
                "parallel ({threads} threads) differs from sequential"
            );
            assert_eq!(
                parallel.stats.dc_subproblems,
                sequential.stats.dc_subproblems
            );
        }
    }

    #[test]
    fn scratch_reuse_across_grid_matches_fresh_runs() {
        // Differential test for the allocation-free hot path: one DcScratch
        // and one SetArena reused across an entire γ×θ grid must produce
        // exactly the outputs (families, order, and branch counts) of fresh
        // per-run state, and of fresh per-*subproblem* state — stale stamps,
        // recycled CSR buffers, or a dirty arena would all show up here.
        use mqce_graph::generators::{community_graph, CommunityGraphParams};
        let g = community_graph(
            CommunityGraphParams {
                n: 90,
                num_communities: 6,
                p_intra: 0.9,
                inter_degree: 1.5,
            },
            13,
        );
        let dc = DcConfig::paper_default();
        let inner = InnerAlgorithm::FastQc(BranchingStrategy::HybridSe);
        let mut reused = DcScratch::default();
        let mut raw = SetArena::new();
        for &gamma in &[0.7, 0.85, 0.95] {
            for theta in [3usize, 4, 6] {
                let p = params(gamma, theta);
                let fresh = run_dc(&g, p, inner, dc, None);
                let plan = prepare_plan(&g, p, dc);

                // (a) one scratch reused across the whole grid;
                raw.clear();
                let mut stats = SearchStats::default();
                let mut no_s2: Option<&mut dyn MaximalityEngine> = None;
                for &vi in &plan.ordering {
                    solve_subproblem_streaming(
                        &plan,
                        vi,
                        p,
                        inner,
                        dc,
                        None,
                        &mut reused,
                        &mut stats,
                        &mut raw,
                        &mut no_s2,
                    );
                }
                assert_eq!(raw.to_vecs(), fresh.outputs, "gamma={gamma} theta={theta}");
                assert_eq!(stats.branches, fresh.stats.branches);
                assert_eq!(stats.dc_subproblems, fresh.stats.dc_subproblems);

                // (b) a brand-new scratch per subproblem.
                raw.clear();
                let mut stats = SearchStats::default();
                for &vi in &plan.ordering {
                    let mut per_sub = DcScratch::default();
                    solve_subproblem_streaming(
                        &plan,
                        vi,
                        p,
                        inner,
                        dc,
                        None,
                        &mut per_sub,
                        &mut stats,
                        &mut raw,
                        &mut no_s2,
                    );
                }
                assert_eq!(raw.to_vecs(), fresh.outputs, "gamma={gamma} theta={theta}");
                assert_eq!(stats.branches, fresh.stats.branches);
            }
        }
    }

    #[test]
    fn parallel_grid_matches_sequential_across_settings() {
        // The γ×θ grid of the differential above, re-run through the
        // work-stealing driver at 1/2/4 workers: worker-owned scratches (one
        // per thread, reused across whole subproblems *and* stolen split
        // tasks) must leave the maximal family and the subproblem count
        // untouched at every setting.
        use mqce_graph::generators::{community_graph, CommunityGraphParams};
        let g = community_graph(
            CommunityGraphParams {
                n: 90,
                num_communities: 6,
                p_intra: 0.9,
                inter_degree: 1.5,
            },
            13,
        );
        let dc = DcConfig::paper_default();
        let inner = InnerAlgorithm::FastQc(BranchingStrategy::HybridSe);
        for &gamma in &[0.8, 0.95] {
            for theta in [3usize, 5] {
                let p = params(gamma, theta);
                let sequential = run_dc(&g, p, inner, dc, None);
                let expected = filter_maximal(&sequential.outputs);
                for threads in [1usize, 2, 4] {
                    let parallel = run_dc_parallel(&g, p, inner, dc, threads, None);
                    assert_eq!(
                        filter_maximal(&parallel.outputs),
                        expected,
                        "gamma={gamma} theta={theta} threads={threads}"
                    );
                    assert_eq!(
                        parallel.stats.dc_subproblems,
                        sequential.stats.dc_subproblems
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_dc_on_tiny_graphs_matches_oracle() {
        let g = Graph::paper_figure1();
        let p = params(0.6, 3);
        let outcome = run_dc_parallel(
            &g,
            p,
            InnerAlgorithm::FastQc(BranchingStrategy::HybridSe),
            DcConfig::paper_default(),
            3,
            None,
        );
        assert_eq!(
            filter_maximal(&outcome.outputs),
            naive::all_maximal_quasi_cliques(&g, p)
        );
    }

    #[test]
    fn empty_graph_and_high_theta() {
        let g = Graph::empty(10);
        let outcome = run_dc(
            &g,
            params(0.9, 2),
            InnerAlgorithm::FastQc(BranchingStrategy::HybridSe),
            DcConfig::paper_default(),
            None,
        );
        assert!(outcome.outputs.is_empty());
        let g2 = Graph::complete(4);
        let outcome2 = run_dc(
            &g2,
            params(0.9, 10),
            InnerAlgorithm::FastQc(BranchingStrategy::HybridSe),
            DcConfig::paper_default(),
            None,
        );
        assert!(outcome2.outputs.is_empty());
    }

    /// Finds an anchor (original-graph id) whose subproblem actually reaches
    /// the searcher, so an injected fault at that anchor is guaranteed to
    /// exercise the containment boundary.
    fn first_executing_anchor(g: &Graph, p: MqceParams, dc: DcConfig) -> VertexId {
        let plan = prepare_plan(g, p, dc);
        let mut stats = SearchStats::default();
        let mut scratch = DcScratch::default();
        for &vi in &plan.ordering {
            if let Some((sub, _)) = build_subproblem_in(&plan, vi, p, dc, &mut stats, &mut scratch)
            {
                scratch.sub.recycle(sub);
                return plan.reduced.to_global[vi as usize];
            }
        }
        panic!("no executing subproblem on the test graph");
    }

    #[test]
    fn injected_searcher_panic_is_contained_to_its_subproblem() {
        let g = Graph::paper_figure1();
        let dc = DcConfig::paper_default();
        let mut p = params(0.6, 3);
        let anchor = first_executing_anchor(&g, p, dc);
        p.fail_anchor = Some(anchor);

        let outcome = run_dc(
            &g,
            p,
            InnerAlgorithm::FastQc(BranchingStrategy::HybridSe),
            dc,
            None,
        );
        assert_eq!(outcome.stats.subproblem_panics, 1);
        assert_eq!(outcome.stats.last_panicked_anchor, Some(anchor));
        assert!(!outcome.stats.timed_out);
        assert!(outcome.stats.to_string().contains("contained_panics=1"));

        // Every output is still a valid quasi-clique, and the family is
        // complete except (at most) for sets the panicked anchor was
        // responsible for discovering.
        let expected = naive::all_maximal_quasi_cliques(&g, p);
        for h in &outcome.outputs {
            assert!(crate::quasiclique::is_quasi_clique(&g, h, p.gamma));
            assert!(
                expected.iter().any(|e| h.iter().all(|v| e.contains(v))),
                "contained run produced a set outside the true family: {h:?}"
            );
        }
        let filtered = filter_maximal(&outcome.outputs);
        for e in expected.iter().filter(|e| !e.contains(&anchor)) {
            assert!(
                filtered.contains(e),
                "maximal QC {e:?} (not involving the panicked anchor) was lost"
            );
        }
    }
}
