//! Quasi-clique primitives: the γ-quasi-clique predicate, the τ function and
//! the quantities (`Δ`, `σ`) that define the paper's SD-space necessary
//! condition.
//!
//! ## Numerical conventions
//!
//! `γ` is a user-supplied `f64`, so quantities like `⌈γ·(|H|−1)⌉` and
//! `⌊(1−γ)x+γ⌋` are evaluated with a tiny epsilon chosen so that rounding
//! errors can only make the *pruning weaker* (never unsound) and the *QC
//! predicate exact* for the rational values of γ used in practice
//! (0.5, 0.51, 0.6, …, 0.99, 1.0).

use mqce_graph::bitset::{AdjacencyMatrix, BitSet};
use mqce_graph::{Graph, VertexId};
use std::collections::VecDeque;

/// Epsilon used to absorb floating-point noise in threshold computations.
pub(crate) const EPS: f64 = 1e-9;

/// Reusable scratch for the quasi-clique predicates.
///
/// [`is_quasi_clique_in`] and [`no_single_vertex_extension_in`] are called on
/// every emission attempt of the branch-and-bound search — up to once per
/// explored branch — so their working state (membership masks, BFS frontiers,
/// the `h ∪ {w}` candidate buffer) lives here instead of being allocated per
/// call. Buffers are re-dimensioned, never re-allocated once warm; one
/// `QcScratch` serves subgraphs of any size in sequence.
pub struct QcScratch {
    /// Membership mask of `h` (kernel path).
    mask: BitSet,
    /// BFS visited set (kernel path).
    visited: BitSet,
    /// BFS stack (kernel path).
    stack: Vec<VertexId>,
    /// Membership flags of `h` (slice path).
    in_set: Vec<bool>,
    /// BFS visited flags (slice path).
    seen: Vec<bool>,
    /// BFS queue (slice path).
    queue: VecDeque<VertexId>,
    /// Vertices of `h` that rely on the new vertex for their degree bound.
    deficient: Vec<VertexId>,
    /// Candidate buffer for `h ∪ {w}`.
    extended: Vec<VertexId>,
}

impl Default for QcScratch {
    fn default() -> Self {
        QcScratch {
            mask: BitSet::new(0),
            visited: BitSet::new(0),
            stack: Vec::new(),
            in_set: Vec::new(),
            seen: Vec::new(),
            queue: VecDeque::new(),
            deficient: Vec::new(),
            extended: Vec::new(),
        }
    }
}

/// The degree every vertex of a quasi-clique with `size` vertices must have:
/// `⌈γ·(size−1)⌉`.
pub fn required_degree(gamma: f64, size: usize) -> usize {
    if size == 0 {
        return 0;
    }
    (gamma * (size as f64 - 1.0) - EPS).ceil().max(0.0) as usize
}

/// The paper's τ function: `τ(x) = ⌊(1−γ)·x + γ⌋` — the maximum number of
/// disconnections (including the vertex itself) any vertex of a γ-QC of size
/// `x` may have. `x` may be fractional (it is evaluated at `σ(B)`).
pub fn tau(gamma: f64, x: f64) -> i64 {
    ((1.0 - gamma) * x + gamma + EPS).floor() as i64
}

/// `Δ(H)`: the maximum number of disconnections of a vertex within `G[H]`,
/// counting the vertex itself, i.e. `max_{v∈H} (|H| − δ(v,H))`.
/// Returns 0 for the empty set.
pub fn max_disconnections(g: &Graph, h: &[VertexId]) -> usize {
    if h.is_empty() {
        return 0;
    }
    h.iter()
        .map(|&v| h.len() - g.degree_in(v, h))
        .max()
        .unwrap_or(0)
}

/// Whether `G[h]` is a γ-quasi-clique (Definition 1): connected, and every
/// vertex adjacent to at least `⌈γ·(|h|−1)⌉` of the others.
///
/// The empty set is not a quasi-clique; a single vertex is.
pub fn is_quasi_clique(g: &Graph, h: &[VertexId], gamma: f64) -> bool {
    is_quasi_clique_with(g, None, h, gamma)
}

/// [`is_quasi_clique`] with an optional bitset kernel: when `adj` is present
/// the degree checks become popcounts over the packed rows and the
/// connectivity check a mask-parallel BFS, turning the `O(|h|² log d)`
/// predicate into `O(|h|²/64)` word operations.
pub fn is_quasi_clique_with(
    g: &Graph,
    adj: Option<&AdjacencyMatrix>,
    h: &[VertexId],
    gamma: f64,
) -> bool {
    is_quasi_clique_in(g, adj, h, gamma, &mut QcScratch::default())
}

/// [`is_quasi_clique_with`] with caller-owned scratch, so the per-call masks
/// and BFS state are reused instead of re-allocated (the form the searcher's
/// emission path uses — see [`QcScratch`]).
pub fn is_quasi_clique_in(
    g: &Graph,
    adj: Option<&AdjacencyMatrix>,
    h: &[VertexId],
    gamma: f64,
    scratch: &mut QcScratch,
) -> bool {
    if h.is_empty() {
        return false;
    }
    if h.len() == 1 {
        return true;
    }
    let req = required_degree(gamma, h.len());
    match adj {
        Some(m) => {
            scratch.mask.reset(m.num_vertices());
            for &v in h {
                scratch.mask.insert(v);
            }
            for &v in h {
                if m.degree_in_mask(v, &scratch.mask) < req {
                    return false;
                }
            }
            m.is_connected_within_in(
                &scratch.mask,
                h[0],
                h.len(),
                &mut scratch.visited,
                &mut scratch.stack,
            )
        }
        None => {
            for &v in h {
                if g.degree_in(v, h) < req {
                    return false;
                }
            }
            mqce_graph::connectivity::is_connected_subset_in(
                g,
                h,
                &mut scratch.in_set,
                &mut scratch.seen,
                &mut scratch.queue,
            )
        }
    }
}

/// Whether `G[h]` is a *maximal* γ-quasi-clique, decided by brute force:
/// `h` is a QC and no superset of `h` (within the whole graph) is a QC.
///
/// Checking maximality exactly is NP-hard in general (the paper cites \[35\]),
/// so this routine enumerates supersets only up to the 2-hop neighbourhood
/// closure and is intended for *small test graphs only* (it is exponential).
pub fn is_maximal_quasi_clique_bruteforce(g: &Graph, h: &[VertexId], gamma: f64) -> bool {
    if !is_quasi_clique(g, h, gamma) {
        return false;
    }
    let mut hset: Vec<VertexId> = h.to_vec();
    hset.sort_unstable();
    hset.dedup();
    let others: Vec<VertexId> = g.vertices().filter(|v| !hset.contains(v)).collect();
    // A superset QC containing h exists iff some subset of `others` can be
    // added. Enumerate subsets of `others` (small graphs only).
    assert!(
        others.len() <= 20,
        "brute-force maximality check is limited to tiny graphs"
    );
    for mask in 1u32..(1u32 << others.len()) {
        let mut cand = hset.clone();
        for (i, &v) in others.iter().enumerate() {
            if mask & (1 << i) != 0 {
                cand.push(v);
            }
        }
        if is_quasi_clique(g, &cand, gamma) {
            return false;
        }
    }
    true
}

/// The *necessary* condition for maximality used by FastQC when emitting an
/// output (Section 4.5, T1): there is no single vertex `w ∉ h` such that
/// `G[h ∪ {w}]` is a quasi-clique. Returns `true` if the condition holds
/// (i.e. no one-vertex extension exists).
///
/// `deg_in_h[v]` must give `δ(v, h)` for every vertex of the graph, and `pool`
/// is the set of vertices to try as extensions (typically `V − h`).
pub fn no_single_vertex_extension(
    g: &Graph,
    h: &[VertexId],
    deg_in_h: &[u32],
    pool: impl IntoIterator<Item = VertexId>,
    gamma: f64,
) -> bool {
    no_single_vertex_extension_with(g, None, h, deg_in_h, pool, gamma)
}

/// [`no_single_vertex_extension`] with an optional bitset kernel for the
/// adjacency tests and the final predicate confirmation.
pub fn no_single_vertex_extension_with(
    g: &Graph,
    adj: Option<&AdjacencyMatrix>,
    h: &[VertexId],
    deg_in_h: &[u32],
    pool: impl IntoIterator<Item = VertexId>,
    gamma: f64,
) -> bool {
    no_single_vertex_extension_in(g, adj, h, deg_in_h, pool, gamma, &mut QcScratch::default())
}

/// [`no_single_vertex_extension_with`] with caller-owned scratch for the
/// deficient-vertex list, the `h ∪ {w}` candidate buffer and the nested
/// predicate state (the form the searcher's emission path uses).
pub fn no_single_vertex_extension_in(
    g: &Graph,
    adj: Option<&AdjacencyMatrix>,
    h: &[VertexId],
    deg_in_h: &[u32],
    pool: impl IntoIterator<Item = VertexId>,
    gamma: f64,
    scratch: &mut QcScratch,
) -> bool {
    if h.is_empty() {
        return true;
    }
    let new_size = h.len() + 1;
    let req = required_degree(gamma, new_size);
    // Vertices of `h` that would rely on the new vertex for their degree
    // requirement. If any vertex cannot reach the requirement even with the
    // new vertex adjacent, no extension exists at all. The list is moved out
    // of the scratch so the nested predicate call below can borrow the
    // scratch mutably.
    let mut deficient = std::mem::take(&mut scratch.deficient);
    deficient.clear();
    for &v in h {
        let d = deg_in_h[v as usize] as usize;
        if d + 1 < req {
            scratch.deficient = deficient;
            return true;
        }
        if d < req {
            deficient.push(v);
        }
    }
    let mut extended = std::mem::take(&mut scratch.extended);
    let mut no_extension = true;
    'outer: for w in pool {
        if h.contains(&w) {
            continue;
        }
        if (deg_in_h[w as usize] as usize) < req {
            continue;
        }
        for &v in &deficient {
            let connected = match adj {
                Some(m) => m.has_edge(v, w),
                None => g.has_edge(v, w),
            };
            if !connected {
                continue 'outer;
            }
        }
        // Degree conditions hold for every vertex of h ∪ {w}; confirm with the
        // exact predicate (connectivity, exact thresholds).
        extended.clear();
        extended.extend_from_slice(h);
        extended.push(w);
        if is_quasi_clique_in(g, adj, &extended, gamma, scratch) {
            no_extension = false;
            break;
        }
    }
    scratch.deficient = deficient;
    scratch.extended = extended;
    no_extension
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_degree_values() {
        assert_eq!(required_degree(0.9, 1), 0);
        assert_eq!(required_degree(0.9, 10), 9); // ⌈0.9·9⌉ = ⌈8.1⌉ = 9
        assert_eq!(required_degree(0.5, 5), 2); // ⌈0.5·4⌉ = 2
        assert_eq!(required_degree(1.0, 6), 5);
        assert_eq!(required_degree(0.6, 4), 2); // ⌈1.8⌉
        assert_eq!(required_degree(0.7, 0), 0);
        // Exact multiples must not be rounded up by the epsilon.
        assert_eq!(required_degree(0.5, 9), 4); // ⌈0.5·8⌉ = 4
    }

    #[test]
    fn tau_values_match_paper_examples() {
        // Section 4.2 example: γ = 0.7, τ(6.71) = ⌊0.3·6.71 + 0.7⌋ = 2,
        // τ(3.85) = ⌊0.3·3.85 + 0.7⌋ = 1.
        assert_eq!(tau(0.7, 4.0 / 0.7 + 1.0), 2);
        assert_eq!(tau(0.7, 2.0 / 0.7 + 1.0), 1);
        // γ = 1 (cliques): τ(x) = 1 for any x ≥ 1 — only the vertex itself.
        assert_eq!(tau(1.0, 10.0), 1);
        // γ = 0.5: τ(10) = ⌊5.5⌋ = 5.
        assert_eq!(tau(0.5, 10.0), 5);
    }

    #[test]
    fn tau_consistent_with_required_degree() {
        // Lemma 1: Δ(H) ≤ τ(|H|) ⇔ every vertex has δ(v,H) ≥ ⌈γ(|H|−1)⌉,
        // i.e. |H| − required_degree(γ,|H|) == τ(γ,|H|).
        for &gamma in &[
            0.5, 0.51, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 0.96, 0.99, 1.0,
        ] {
            for size in 1..60usize {
                assert_eq!(
                    size as i64 - required_degree(gamma, size) as i64,
                    tau(gamma, size as f64),
                    "gamma={gamma} size={size}"
                );
            }
        }
    }

    #[test]
    fn max_disconnections_counts_self() {
        let g = Graph::complete(4);
        // In a clique each vertex is disconnected only from itself.
        assert_eq!(max_disconnections(&g, &[0, 1, 2, 3]), 1);
        let p = Graph::path(4);
        // Endpoint 0 is disconnected from itself, 2 and 3.
        assert_eq!(max_disconnections(&p, &[0, 1, 2, 3]), 3);
        assert_eq!(max_disconnections(&p, &[]), 0);
        assert_eq!(max_disconnections(&p, &[2]), 1);
    }

    #[test]
    fn quasi_clique_predicate() {
        let g = Graph::paper_figure1();
        // Property 1 example: {v1,v3,v4,v5} = {0,2,3,4} is a 0.6-QC …
        assert!(is_quasi_clique(&g, &[0, 2, 3, 4], 0.6));
        // … while its subset {v1,v3,v4} = {0,2,3} is not.
        assert!(!is_quasi_clique(&g, &[0, 2, 3], 0.6));
        // Any single vertex is a QC; the empty set is not.
        assert!(is_quasi_clique(&g, &[7], 0.9));
        assert!(!is_quasi_clique(&g, &[], 0.9));
    }

    #[test]
    fn one_quasi_clique_is_a_clique() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert!(is_quasi_clique(&g, &[0, 1, 2], 1.0));
        assert!(!is_quasi_clique(&g, &[0, 1, 2, 3], 1.0));
    }

    #[test]
    fn disconnected_set_is_not_a_qc_even_with_good_degrees() {
        // Two disjoint triangles: each vertex has 2 of 5 others → fails 0.5
        // anyway, so use a case where degrees pass but connectivity fails:
        // γ = 0.5 on two disjoint edges requires ⌈0.5·3⌉ = 2 — fails. Use two
        // disjoint triangles with γ = 0.5: required ⌈0.5·5⌉ = 3 > 2 — fails.
        // Degree-feasible disconnected examples need γ < 0.5, which the solver
        // rejects; still, the predicate itself must check connectivity:
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        // γ exactly at the boundary where each vertex needs ⌈0.5·3⌉ = 2: fails
        // on degrees, and is also disconnected.
        assert!(!is_quasi_clique(&g, &[0, 1, 2, 3], 0.5));
        // Directly exercise the connectivity arm with a permissive γ given to
        // the raw predicate (the predicate itself does not restrict γ).
        assert!(!is_quasi_clique(&g, &[0, 1, 2, 3], 0.26));
    }

    #[test]
    fn kernel_variants_agree_with_slice() {
        // Exhaustively compare the bitset-kernel predicate against the
        // sorted-slice predicate over every vertex subset of the paper graph.
        let g = Graph::paper_figure1();
        let m = AdjacencyMatrix::from_graph(&g);
        let n = g.num_vertices();
        for &gamma in &[0.5, 0.6, 0.75, 0.9, 1.0] {
            for mask in 0u32..(1 << n) {
                let h: Vec<VertexId> = (0..n as u32).filter(|v| mask & (1 << v) != 0).collect();
                assert_eq!(
                    is_quasi_clique_with(&g, Some(&m), &h, gamma),
                    is_quasi_clique(&g, &h, gamma),
                    "predicate mismatch for {h:?} at gamma={gamma}"
                );
                if !h.is_empty() && h.len() <= 5 {
                    let deg: Vec<u32> = (0..n as u32).map(|v| g.degree_in(v, &h) as u32).collect();
                    assert_eq!(
                        no_single_vertex_extension_with(&g, Some(&m), &h, &deg, 0..n as u32, gamma),
                        no_single_vertex_extension(&g, &h, &deg, 0..n as u32, gamma),
                        "extension mismatch for {h:?} at gamma={gamma}"
                    );
                }
            }
        }
    }

    #[test]
    fn maximality_bruteforce() {
        let g = Graph::complete(5);
        assert!(is_maximal_quasi_clique_bruteforce(
            &g,
            &[0, 1, 2, 3, 4],
            0.9
        ));
        assert!(!is_maximal_quasi_clique_bruteforce(&g, &[0, 1, 2, 3], 0.9));
        // Not a QC at all.
        let p = Graph::path(4);
        assert!(!is_maximal_quasi_clique_bruteforce(&p, &[0, 2], 0.9));
    }

    #[test]
    fn single_vertex_extension_check() {
        let g = Graph::complete(5);
        let h = [0u32, 1, 2, 3];
        let deg: Vec<u32> = (0..5).map(|v| g.degree_in(v, &h) as u32).collect();
        // h can be extended by vertex 4, so the "no extension" condition fails.
        assert!(!no_single_vertex_extension(&g, &h, &deg, 0..5u32, 0.9));
        let full = [0u32, 1, 2, 3, 4];
        let deg_full: Vec<u32> = (0..5).map(|v| g.degree_in(v, &full) as u32).collect();
        assert!(no_single_vertex_extension(
            &g,
            &full,
            &deg_full,
            0..5u32,
            0.9
        ));
    }

    #[test]
    fn extension_check_respects_pool() {
        let g = Graph::complete(5);
        let h = [0u32, 1, 2, 3];
        let deg: Vec<u32> = (0..5).map(|v| g.degree_in(v, &h) as u32).collect();
        // If the pool does not contain vertex 4, no extension is visible.
        assert!(no_single_vertex_extension(&g, &h, &deg, 0..4u32, 0.9));
    }

    #[test]
    fn extension_check_deficient_vertices() {
        // Square 0-1-2-3-0 plus vertex 4 adjacent to all: {0,1,2,3} at γ=0.75
        // needs degree ⌈0.75·3⌉ = 3 with the extension; every vertex has 2 in
        // the square and gains 1 from vertex 4 → extension exists.
        let g = Graph::from_edges(
            5,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (4, 0),
                (4, 1),
                (4, 2),
                (4, 3),
            ],
        );
        let h = [0u32, 1, 2, 3];
        let deg: Vec<u32> = (0..5).map(|v| g.degree_in(v, &h) as u32).collect();
        assert!(!no_single_vertex_extension(&g, &h, &deg, 0..5u32, 0.75));
        // At γ = 1 the extension would need the square to become a clique —
        // impossible with one vertex.
        assert!(no_single_vertex_extension(&g, &h, &deg, 0..5u32, 1.0));
    }
}
