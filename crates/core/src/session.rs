//! The unified, builder-style entry point to the MQCE pipeline.
//!
//! Historically the crate grew five overlapping enumeration entry points
//! (`enumerate_mqcs`, `enumerate_mqcs_parallel[_with]`,
//! `enumerate_mqcs_shared[_parallel]`) plus a separate
//! [`IncrementalSession`] and a standalone query function. [`Session`]
//! collapses them: open a graph once (the decomposition — degeneracy
//! ordering, core numbers, fingerprint — is derived once and shared), then
//! run batch enumerations, per-vertex queries, and edge-update batches
//! against the same state.
//!
//! ```
//! use mqce_core::{MqceParams, Session};
//! use mqce_graph::Graph;
//!
//! let session = Session::open(Graph::paper_figure1())
//!     .params(MqceParams::new(0.6, 3).unwrap())
//!     .threads(2);
//! let result = session.run();
//! assert!(!result.mqcs.is_empty());
//! let q = session.query(&[0]).unwrap();
//! assert!(q.mqcs.iter().all(|m| m.contains(&0)));
//! ```
//!
//! The old free functions survive as thin `#[deprecated]` wrappers so
//! downstream code keeps compiling; everything in-tree (the CLI, the serve
//! daemon, the shard worker, the fuzzer, the bench harness) goes through
//! `Session`.

use std::sync::Arc;

use mqce_graph::delta::GraphDelta;
use mqce_graph::{Graph, VertexId};

use crate::config::{MqceConfig, MqceParams};
use crate::incremental::{IncrementalSession, UpdateOutcome};
use crate::pipeline::{
    enumerate_mqcs_parallel_with_inner, enumerate_mqcs_shared_inner,
    enumerate_mqcs_shared_parallel_inner, MqceResult, ParallelScheduler,
};
use crate::prepared::PreparedGraph;
use crate::query::{find_mqcs_containing, QueryError, QueryResult};

/// A configured enumeration session over one graph.
///
/// Construction is cheap apart from the one-time decomposition performed by
/// [`Session::open`]; the builder methods ([`params`](Session::params),
/// [`config`](Session::config), [`threads`](Session::threads),
/// [`scheduler`](Session::scheduler)) move `self` and can be chained.
/// [`run`](Session::run), [`query`](Session::query) and
/// [`update`](Session::update) then execute against the shared state;
/// `run` and `query` take `&self`, so one session can serve many requests
/// (the `mqce serve` daemon holds one per loaded graph).
pub struct Session {
    prepared: Arc<PreparedGraph>,
    config: MqceConfig,
    threads: usize,
    scheduler: ParallelScheduler,
    /// Lazily created by [`Session::update`]: the dirty-set re-run machinery
    /// plus the maintained maximal family.
    incremental: Option<IncrementalSession>,
}

impl Session {
    /// Parameters a session starts with until [`params`](Session::params) or
    /// [`config`](Session::config) overrides them: γ = 0.9, θ = 2.
    pub fn default_config() -> MqceConfig {
        MqceConfig::new(0.9, 2).expect("default session parameters are valid")
    }

    /// Opens a session on `graph`, deriving the shared decomposition (core
    /// numbers, degeneracy ordering, fingerprint) once.
    pub fn open(graph: Graph) -> Self {
        Self::open_prepared(Arc::new(PreparedGraph::new(graph)))
    }

    /// Opens a session over an already-prepared graph, sharing the cached
    /// decomposition with the caller (the serve daemon keeps the same
    /// [`PreparedGraph`] behind several sessions).
    pub fn open_prepared(prepared: Arc<PreparedGraph>) -> Self {
        Session {
            prepared,
            config: Self::default_config(),
            threads: 1,
            scheduler: ParallelScheduler::default(),
            incremental: None,
        }
    }

    /// Sets the enumeration parameters (γ, θ, adjacency backend, steal
    /// granularity), keeping the rest of the configuration.
    pub fn params(mut self, params: MqceParams) -> Self {
        self.config.params = params;
        self
    }

    /// Replaces the whole configuration (algorithm, branching, S2 backend,
    /// time limit, parameters).
    pub fn config(mut self, config: MqceConfig) -> Self {
        self.config = config;
        self
    }

    /// Number of worker threads for [`run`](Session::run) and
    /// [`update`](Session::update); `0` and `1` both mean sequential.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Selects the parallel scheduler; only the bench harness should need
    /// anything but the default work-stealing one.
    pub fn scheduler(mut self, scheduler: ParallelScheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The prepared graph the session currently enumerates (reflecting any
    /// updates applied through [`update`](Session::update)).
    pub fn prepared(&self) -> &PreparedGraph {
        &self.prepared
    }

    /// Shared handle to the prepared graph.
    pub fn prepared_handle(&self) -> Arc<PreparedGraph> {
        self.prepared.clone()
    }

    /// The session's current configuration.
    pub fn current_config(&self) -> &MqceConfig {
        &self.config
    }

    /// The configured thread count.
    pub fn current_threads(&self) -> usize {
        self.threads
    }

    /// Runs the full pipeline (S1 + streaming S2) and returns the maximal
    /// family plus statistics. Identical output to the deprecated free
    /// functions for the same graph and configuration.
    pub fn run(&self) -> MqceResult {
        match self.scheduler {
            ParallelScheduler::WorkStealing => {
                if self.threads <= 1 {
                    enumerate_mqcs_shared_inner(&self.prepared, &self.config)
                } else {
                    enumerate_mqcs_shared_parallel_inner(&self.prepared, &self.config, self.threads)
                }
            }
            // The shared-index baseline has no plan-based driver; run it on
            // the owning path (same family, it is a bench baseline only).
            ParallelScheduler::SharedIndex => {
                if self.threads <= 1 {
                    enumerate_mqcs_shared_inner(&self.prepared, &self.config)
                } else {
                    enumerate_mqcs_parallel_with_inner(
                        self.prepared.graph(),
                        &self.config,
                        self.threads,
                        ParallelScheduler::SharedIndex,
                    )
                }
            }
        }
    }

    /// Enumerates only the maximal quasi-cliques containing all of `query`
    /// (the per-vertex/query API the serve daemon exposes).
    pub fn query(&self, query: &[VertexId]) -> Result<QueryResult, QueryError> {
        find_mqcs_containing(self.prepared.graph(), query, &self.config)
    }

    /// Applies an edge-update batch, maintaining the maximal family by
    /// re-running only the dirtied DC subproblems (see
    /// [`IncrementalSession`]). The first call seeds the incremental state
    /// with one full run; subsequent [`run`](Session::run)/
    /// [`query`](Session::query) calls observe the updated graph.
    pub fn update(&mut self, delta: &GraphDelta) -> UpdateOutcome {
        if self.incremental.is_none() {
            self.incremental = Some(IncrementalSession::from_prepared(
                self.prepared.clone(),
                self.config,
                self.threads,
            ));
        }
        let inc = self.incremental.as_mut().expect("just seeded");
        let outcome = inc.update(delta);
        self.prepared = inc.prepared_arc();
        outcome
    }

    /// The maximal family maintained by [`update`](Session::update); `None`
    /// until the first update seeds the incremental state.
    pub fn family(&self) -> Option<&[Vec<VertexId>]> {
        self.incremental.as_ref().map(|inc| inc.family())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use crate::pipeline::enumerate_mqcs_inner;
    use mqce_graph::generators::{community_graph, CommunityGraphParams};

    #[test]
    fn session_matches_free_functions() {
        let g = community_graph(
            CommunityGraphParams {
                n: 100,
                num_communities: 7,
                p_intra: 0.9,
                inter_degree: 1.5,
            },
            31,
        );
        for algo in [Algorithm::DcFastQc, Algorithm::QuickPlus, Algorithm::FastQc] {
            let config = MqceConfig::new(0.85, 5).unwrap().with_algorithm(algo);
            let reference = enumerate_mqcs_inner(&g, &config);
            let session = Session::open(g.clone()).config(config);
            assert_eq!(session.run().mqcs, reference.mqcs, "{algo:?} sequential");
            let parallel = session.threads(4);
            assert_eq!(parallel.run().mqcs, reference.mqcs, "{algo:?} parallel");
            let shared_index = parallel.scheduler(ParallelScheduler::SharedIndex);
            assert_eq!(
                shared_index.run().mqcs,
                reference.mqcs,
                "{algo:?} shared-index"
            );
        }
    }

    #[test]
    fn session_query_and_update() {
        let g = Graph::paper_figure1();
        let config = MqceConfig::new(0.6, 3).unwrap();
        let mut session = Session::open(g.clone()).config(config).threads(2);
        let q = session.query(&[0]).unwrap();
        assert!(q.mqcs.iter().all(|m| m.contains(&0)));
        assert!(session.family().is_none());

        let delta = GraphDelta::new(vec![(0, 6)], vec![]);
        let outcome = session.update(&delta);
        assert_eq!(outcome.updates_applied, 1);
        let fresh = enumerate_mqcs_inner(&delta.apply(&g), &config);
        assert_eq!(session.family().unwrap(), &fresh.mqcs[..]);
        // A post-update batch run sees the mutated graph.
        assert_eq!(session.run().mqcs, fresh.mqcs);
    }

    #[test]
    fn default_config_is_valid() {
        let config = Session::default_config();
        assert_eq!(config.params.theta, 2);
        assert!((config.params.gamma - 0.9).abs() < 1e-12);
    }
}
