//! Shared read-only graph state for long-lived serving processes.
//!
//! A CLI invocation pays graph parsing plus derived-state construction on
//! every run. A resident daemon should pay them once: [`PreparedGraph`]
//! bundles the graph with its content fingerprint, its core decomposition
//! (core numbers + global degeneracy ordering) and, when the graph is small
//! enough, a packed adjacency matrix — all immutable, so one instance behind
//! an `Arc` can serve any number of concurrent requests.
//!
//! The re-entrant pipeline entry points
//! ([`crate::pipeline::enumerate_mqcs_shared`] and friends) borrow this
//! state instead of owning it: per-request core reduction becomes a filter
//! over the cached core numbers, and the per-request vertex ordering is the
//! cached global degeneracy ordering restricted to the surviving vertices.
//! Both are sound for the divide-and-conquer drivers — Property 2 assigns
//! every maximal quasi-clique to its lowest-ranked member under *any* total
//! order, and the final maximal family is canonical — so the shared path
//! returns exactly the family the owning path returns.

use mqce_graph::bitset::AdjacencyMatrix;
use mqce_graph::core_decomp::{core_decomposition, CoreDecomposition};
use mqce_graph::{Graph, VertexId};

/// A graph plus the derived read-only state a serving process reuses across
/// requests: content fingerprint, core decomposition and (for graphs within
/// the memory cap) a packed adjacency matrix.
#[derive(Clone, Debug)]
pub struct PreparedGraph {
    graph: Graph,
    fingerprint: u64,
    cores: CoreDecomposition,
    matrix: Option<AdjacencyMatrix>,
}

impl PreparedGraph {
    /// Prepares `graph` for serving: computes the fingerprint and the core
    /// decomposition, and builds the adjacency matrix when the size cap
    /// recommends it.
    pub fn new(graph: Graph) -> Self {
        let fingerprint = graph.fingerprint();
        let cores = core_decomposition(&graph);
        let matrix = AdjacencyMatrix::recommended_for(graph.num_vertices())
            .then(|| AdjacencyMatrix::from_graph(&graph));
        PreparedGraph {
            graph,
            fingerprint,
            cores,
            matrix,
        }
    }

    /// Prepares `graph` reusing an already-computed core decomposition —
    /// the incremental-update path maintains the decomposition itself (see
    /// `mqce_graph::delta::update_core_decomposition`) and must not pay the
    /// peel a second time. `cores` must be the decomposition of `graph`.
    pub fn with_cores(graph: Graph, cores: CoreDecomposition) -> Self {
        debug_assert_eq!(cores.core_numbers.len(), graph.num_vertices());
        let fingerprint = graph.fingerprint();
        let matrix = AdjacencyMatrix::recommended_for(graph.num_vertices())
            .then(|| AdjacencyMatrix::from_graph(&graph));
        PreparedGraph {
            graph,
            fingerprint,
            cores,
            matrix,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// 64-bit content fingerprint of the graph (see [`Graph::fingerprint`]),
    /// computed once at preparation time.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The cached core decomposition (core numbers, global degeneracy
    /// ordering and degeneracy).
    pub fn cores(&self) -> &CoreDecomposition {
        &self.cores
    }

    /// Degeneracy of the graph.
    pub fn degeneracy(&self) -> usize {
        self.cores.degeneracy
    }

    /// The packed adjacency matrix, when the graph was small enough to build
    /// one at preparation time.
    pub fn matrix(&self) -> Option<&AdjacencyMatrix> {
        self.matrix.as_ref()
    }

    /// Adjacency test that prefers the packed matrix when present.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        match &self.matrix {
            Some(m) => m.has_edge(u, v),
            None => self.graph.has_edge(u, v),
        }
    }

    /// Vertices with core number at least `k`, sorted ascending — the
    /// `k`-core filter evaluated against the cached core numbers, with no
    /// per-request decomposition.
    pub fn k_core_vertices(&self, k: usize) -> Vec<VertexId> {
        (0..self.graph.num_vertices() as VertexId)
            .filter(|&v| self.cores.core_numbers[v as usize] >= k)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqce_graph::core_decomp::k_core_vertices;

    #[test]
    fn cached_k_core_matches_direct_computation() {
        let g = Graph::paper_figure1();
        let prepared = PreparedGraph::new(g.clone());
        for k in 0..=5 {
            assert_eq!(prepared.k_core_vertices(k), k_core_vertices(&g, k), "k={k}");
        }
        assert_eq!(prepared.fingerprint(), g.fingerprint());
        assert_eq!(prepared.degeneracy(), core_decomposition(&g).degeneracy);
    }

    #[test]
    fn matrix_built_for_small_graphs_and_agrees() {
        let g = Graph::paper_figure1();
        let prepared = PreparedGraph::new(g.clone());
        assert!(prepared.matrix().is_some());
        for u in 0..9u32 {
            for v in 0..9u32 {
                assert_eq!(prepared.has_edge(u, v), g.has_edge(u, v));
            }
        }
    }
}
