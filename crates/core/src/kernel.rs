//! Kernel-expansion heuristic for finding large γ-quasi-cliques.
//!
//! The related work the paper discusses in Section 7 (Sanei-Mehri et al.,
//! "Mining Largest Maximal Quasi-Cliques") does not enumerate all MQCs;
//! instead it (1) mines *kernels* — quasi-cliques at a stricter threshold
//! `γ' > γ`, which are much faster to find — and (2) greedily expands each
//! kernel into a large γ-quasi-clique. The result is a *heuristic*: it
//! reports large γ-QCs quickly, but unlike [`crate::topk`] it cannot certify
//! that the very largest one was found.
//!
//! This module reimplements that approach on top of the DCFastQC machinery
//! so the trade-off can be measured: kernels come from a full (exact)
//! enumeration at `γ'`, and the expansion adds one vertex at a time, always
//! picking the candidate that keeps the γ-QC predicate satisfiable and
//! maximises the resulting minimum degree.

use std::collections::HashSet;

use mqce_graph::{Graph, VertexId};

use crate::config::{Algorithm, MqceConfig, ParamError};
use crate::pipeline::enumerate_mqcs_inner as enumerate_mqcs;
use crate::quasiclique::is_quasi_clique;
use crate::verify::find_single_vertex_extension;

/// Configuration of the kernel-expansion heuristic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelConfig {
    /// Target density threshold γ of the quasi-cliques to report.
    pub gamma: f64,
    /// Stricter kernel threshold γ′ (must satisfy `gamma ≤ gamma_prime ≤ 1`).
    pub gamma_prime: f64,
    /// Minimum kernel size: only γ′-MQCs with at least this many vertices are
    /// expanded.
    pub min_kernel_size: usize,
    /// How many expanded quasi-cliques to report (largest first).
    pub k: usize,
}

impl KernelConfig {
    /// Creates a configuration, validating the thresholds.
    ///
    /// # Errors
    /// Returns an error if either threshold is outside `[0.5, 1]`, if
    /// `gamma_prime < gamma`, or if `min_kernel_size` is zero.
    pub fn new(
        gamma: f64,
        gamma_prime: f64,
        min_kernel_size: usize,
        k: usize,
    ) -> Result<Self, ParamError> {
        // Reuse the parameter validation for both thresholds.
        crate::config::MqceParams::new(gamma, min_kernel_size.max(1))?;
        crate::config::MqceParams::new(gamma_prime, min_kernel_size.max(1))?;
        if gamma_prime < gamma || min_kernel_size == 0 {
            return Err(ParamError::GammaOutOfRange(gamma_prime));
        }
        Ok(KernelConfig {
            gamma,
            gamma_prime,
            min_kernel_size,
            k,
        })
    }
}

/// Result of a kernel-expansion run.
#[derive(Clone, Debug, Default)]
pub struct KernelExpansionResult {
    /// The expanded γ-quasi-cliques, largest first (ties broken
    /// lexicographically), deduplicated, at most `k` of them. Each admits no
    /// single-vertex extension (a necessary condition for maximality).
    pub qcs: Vec<Vec<VertexId>>,
    /// Number of kernels (γ′-MQCs of size ≥ `min_kernel_size`) that were
    /// expanded.
    pub kernels: usize,
    /// Size of the largest kernel before expansion (0 if none).
    pub largest_kernel: usize,
}

/// Runs the kernel-expansion heuristic.
pub fn expand_kernels(
    g: &Graph,
    config: KernelConfig,
) -> Result<KernelExpansionResult, ParamError> {
    if config.k == 0 || g.num_vertices() == 0 {
        return Ok(KernelExpansionResult::default());
    }
    // Step 1: exact enumeration of the kernels at the stricter threshold.
    let kernel_config = MqceConfig::new(config.gamma_prime, config.min_kernel_size)?
        .with_algorithm(Algorithm::DcFastQc);
    let kernels = enumerate_mqcs(g, &kernel_config).mqcs;
    let largest_kernel = kernels.iter().map(Vec::len).max().unwrap_or(0);

    // Step 2: expand every kernel at the relaxed threshold.
    let mut expanded: Vec<Vec<VertexId>> = Vec::with_capacity(kernels.len());
    for kernel in &kernels {
        expanded.push(expand_one(g, kernel, config.gamma));
    }
    expanded.sort();
    expanded.dedup();
    expanded.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    expanded.truncate(config.k);

    Ok(KernelExpansionResult {
        qcs: expanded,
        kernels: kernels.len(),
        largest_kernel,
    })
}

/// Greedily expands one kernel into a γ-quasi-clique that admits no further
/// single-vertex extension. The kernel itself must be a γ-QC (every γ′-QC
/// with γ′ ≥ γ is); the routine then repeatedly adds the extension vertex
/// that maximises the minimum degree of the grown set.
fn expand_one(g: &Graph, kernel: &[VertexId], gamma: f64) -> Vec<VertexId> {
    let mut current: Vec<VertexId> = kernel.to_vec();
    current.sort_unstable();
    debug_assert!(is_quasi_clique(g, &current, gamma));
    loop {
        // Collect every single-vertex extension and keep the best one.
        let members: HashSet<VertexId> = current.iter().copied().collect();
        let mut candidates: Vec<VertexId> = Vec::new();
        for &v in &current {
            for &u in g.neighbors(v) {
                if !members.contains(&u) && !candidates.contains(&u) {
                    candidates.push(u);
                }
            }
        }
        let mut best: Option<(usize, VertexId)> = None;
        let mut grown = Vec::with_capacity(current.len() + 1);
        for &w in &candidates {
            grown.clear();
            grown.extend_from_slice(&current);
            grown.push(w);
            if !is_quasi_clique(g, &grown, gamma) {
                continue;
            }
            let min_deg = grown
                .iter()
                .map(|&v| g.degree_in(v, &grown))
                .min()
                .unwrap_or(0);
            let key = (min_deg, w);
            if best.is_none_or(|(bd, bw)| key > (bd, bw)) {
                best = Some(key);
            }
        }
        match best {
            Some((_, w)) => {
                current.push(w);
                current.sort_unstable();
            }
            None => break,
        }
    }
    debug_assert!(find_single_vertex_extension(g, &current, gamma).is_none());
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::find_largest_mqcs;
    use mqce_graph::generators::{planted_quasi_cliques, PlantedGroup};

    #[test]
    fn config_validation() {
        assert!(KernelConfig::new(0.7, 0.9, 3, 5).is_ok());
        assert!(
            KernelConfig::new(0.9, 0.7, 3, 5).is_err(),
            "gamma' below gamma"
        );
        assert!(KernelConfig::new(0.3, 0.9, 3, 5).is_err());
        assert!(KernelConfig::new(0.7, 1.2, 3, 5).is_err());
        assert!(KernelConfig::new(0.7, 0.9, 0, 5).is_err());
    }

    #[test]
    fn expansion_grows_kernels_and_stays_a_qc() {
        // A planted 0.85-dense group of 12: kernels mined at γ' = 0.95 are
        // smaller; expansion at γ = 0.7 should recover something close to the
        // full group.
        let g = planted_quasi_cliques(
            60,
            0.02,
            &[PlantedGroup {
                size: 12,
                density: 0.9,
            }],
            5,
        );
        let config = KernelConfig::new(0.7, 0.95, 3, 4).unwrap();
        let result = expand_kernels(&g, config).unwrap();
        assert!(result.kernels > 0, "no kernels found");
        assert!(!result.qcs.is_empty());
        for qc in &result.qcs {
            assert!(is_quasi_clique(&g, qc, 0.7));
            assert!(find_single_vertex_extension(&g, qc, 0.7).is_none());
        }
        // The best expanded QC is at least as large as the largest kernel.
        assert!(result.qcs[0].len() >= result.largest_kernel);
        assert!(
            result.qcs[0].len() >= 10,
            "expansion too small: {}",
            result.qcs[0].len()
        );
    }

    #[test]
    fn heuristic_never_beats_exact_topk() {
        let g = planted_quasi_cliques(
            40,
            0.05,
            &[
                PlantedGroup {
                    size: 9,
                    density: 1.0,
                },
                PlantedGroup {
                    size: 6,
                    density: 1.0,
                },
            ],
            23,
        );
        let gamma = 0.8;
        let exact = find_largest_mqcs(&g, gamma, 1, None).unwrap();
        let heuristic = expand_kernels(&g, KernelConfig::new(gamma, 0.9, 3, 1).unwrap()).unwrap();
        let exact_best = exact.mqcs.first().map(Vec::len).unwrap_or(0);
        let heuristic_best = heuristic.qcs.first().map(Vec::len).unwrap_or(0);
        assert!(heuristic_best <= exact_best);
        // On this easy instance the heuristic should also find the planted group.
        assert!(heuristic_best >= 9);
    }

    #[test]
    fn degenerate_inputs() {
        let g = Graph::complete(5);
        let cfg = KernelConfig::new(0.8, 0.9, 2, 0).unwrap();
        assert!(expand_kernels(&g, cfg).unwrap().qcs.is_empty());
        let empty = Graph::empty(0);
        let cfg = KernelConfig::new(0.8, 0.9, 2, 3).unwrap();
        assert!(expand_kernels(&empty, cfg).unwrap().qcs.is_empty());
    }

    #[test]
    fn clique_is_returned_whole() {
        let g = Graph::complete(7);
        let cfg = KernelConfig::new(0.6, 0.9, 2, 2).unwrap();
        let result = expand_kernels(&g, cfg).unwrap();
        assert_eq!(result.qcs, vec![(0..7).collect::<Vec<_>>()]);
        assert_eq!(result.largest_kernel, 7);
    }
}
