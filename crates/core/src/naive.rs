//! Exhaustive enumeration oracle for differential testing.
//!
//! Enumerates every vertex subset of the graph, keeps the γ-quasi-cliques of
//! size ≥ θ, and filters them down to the maximal ones. Exponential in the
//! number of vertices — only usable on tiny graphs (the implementation caps
//! the graph size to keep accidental misuse from hanging the test suite).

use mqce_graph::{Graph, VertexId};

use crate::config::MqceParams;
use crate::quasiclique::is_quasi_clique;

/// Maximum graph size the oracle accepts.
pub const NAIVE_MAX_VERTICES: usize = 22;

/// Enumerates **all** γ-quasi-cliques with at least θ vertices (not only the
/// maximal ones), as sorted vertex sets in ascending lexicographic order.
///
/// # Panics
/// Panics if the graph has more than [`NAIVE_MAX_VERTICES`] vertices.
pub fn all_quasi_cliques(g: &Graph, params: MqceParams) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    assert!(
        n <= NAIVE_MAX_VERTICES,
        "naive enumeration is limited to {NAIVE_MAX_VERTICES} vertices, got {n}"
    );
    let mut result = Vec::new();
    let mut subset = Vec::new();
    for mask in 1u64..(1u64 << n) {
        if (mask.count_ones() as usize) < params.theta {
            continue;
        }
        subset.clear();
        for v in 0..n {
            if mask & (1 << v) != 0 {
                subset.push(v as VertexId);
            }
        }
        if is_quasi_clique(g, &subset, params.gamma) {
            result.push(subset.clone());
        }
    }
    result.sort();
    result
}

/// Enumerates all **maximal** γ-quasi-cliques with at least θ vertices — the
/// ground-truth answer to the MQCE problem on tiny graphs.
///
/// Maximality is decided against *all* quasi-cliques of the graph (not only
/// the large ones), matching Definition 2 of the paper.
pub fn all_maximal_quasi_cliques(g: &Graph, params: MqceParams) -> Vec<Vec<VertexId>> {
    // Collect every QC regardless of size so that maximality is judged
    // against the full set, then keep the large maximal ones.
    let all = all_quasi_cliques(g, MqceParams { theta: 1, ..params });
    let is_subset = |a: &[VertexId], b: &[VertexId]| -> bool {
        let mut j = 0;
        for &x in a {
            while j < b.len() && b[j] < x {
                j += 1;
            }
            if j >= b.len() || b[j] != x {
                return false;
            }
            j += 1;
        }
        true
    };
    let mut result: Vec<Vec<VertexId>> = Vec::new();
    for (i, h) in all.iter().enumerate() {
        if h.len() < params.theta {
            continue;
        }
        let dominated = all
            .iter()
            .enumerate()
            .any(|(j, other)| i != j && h.len() < other.len() && is_subset(h, other));
        if !dominated {
            result.push(h.clone());
        }
    }
    result.sort();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(gamma: f64, theta: usize) -> MqceParams {
        MqceParams::new(gamma, theta).unwrap()
    }

    #[test]
    fn complete_graph_has_single_mqc() {
        let g = Graph::complete(5);
        let mqcs = all_maximal_quasi_cliques(&g, params(0.9, 2));
        assert_eq!(mqcs, vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn clique_case_gamma_one() {
        // Two triangles sharing vertex 0.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (0, 4)]);
        let mqcs = all_maximal_quasi_cliques(&g, params(1.0, 3));
        assert_eq!(mqcs, vec![vec![0, 1, 2], vec![0, 3, 4]]);
    }

    #[test]
    fn theta_filters_small_mqcs() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
        // The edge {3,4} is a maximal 0.9-QC of size 2; θ = 3 hides it.
        let mqcs = all_maximal_quasi_cliques(&g, params(0.9, 3));
        assert_eq!(mqcs, vec![vec![0, 1, 2]]);
        let mqcs2 = all_maximal_quasi_cliques(&g, params(0.9, 2));
        assert!(mqcs2.contains(&vec![3, 4]));
    }

    #[test]
    fn all_quasi_cliques_counts() {
        let g = Graph::complete(4);
        // Every connected non-empty subset of a clique is a 1.0-QC:
        // 4 singletons + 6 edges + 4 triangles + 1 whole = 15.
        assert_eq!(all_quasi_cliques(&g, params(1.0, 1)).len(), 15);
        assert_eq!(all_quasi_cliques(&g, params(1.0, 3)).len(), 5);
    }

    #[test]
    fn paper_example_qc_is_found() {
        let g = Graph::paper_figure1();
        let qcs = all_quasi_cliques(&g, params(0.6, 4));
        assert!(qcs.contains(&vec![0, 2, 3, 4]));
    }

    #[test]
    fn maximality_is_judged_against_small_qcs_too() {
        // Path 0-1-2 with γ = 0.5 and θ = 3: {0,1,2} needs each vertex to have
        // ⌈0.5·2⌉ = 1 neighbour — satisfied — so it is the unique large MQC.
        let g = Graph::path(3);
        let mqcs = all_maximal_quasi_cliques(&g, params(0.5, 3));
        assert_eq!(mqcs, vec![vec![0, 1, 2]]);
        // With θ = 2, {0,1} is a QC but contained in {0,1,2}: not maximal.
        let mqcs2 = all_maximal_quasi_cliques(&g, params(0.5, 2));
        assert_eq!(mqcs2, vec![vec![0, 1, 2]]);
    }

    #[test]
    #[should_panic(expected = "naive enumeration is limited")]
    fn oracle_rejects_large_graphs() {
        let g = Graph::empty(40);
        all_quasi_cliques(&g, params(0.9, 2));
    }
}
