//! Top-k largest maximal quasi-cliques.
//!
//! A common downstream use of MQC enumeration (and a related-work problem the
//! paper discusses, Sanei-Mehri et al. [34, 35]) is to report only the `k`
//! *largest* maximal γ-quasi-cliques. Rather than enumerating with a small
//! size threshold and sorting, this module starts from an upper bound on the
//! largest possible QC size and lowers the threshold geometrically until `k`
//! maximal QCs have been found — every probe reuses the full DCFastQC
//! machinery, so each round is cheap when the threshold is high.

use mqce_graph::{Graph, VertexId};

use crate::config::{MqceConfig, ParamError};
use crate::pipeline::enumerate_mqcs_inner as enumerate_mqcs;

/// Result of a top-k search.
#[derive(Clone, Debug, Default)]
pub struct TopKResult {
    /// The k largest maximal quasi-cliques found (largest first; ties broken
    /// lexicographically). May contain fewer than `k` entries if the graph has
    /// fewer maximal QCs of size ≥ 2.
    pub mqcs: Vec<Vec<VertexId>>,
    /// The size threshold the final enumeration ran with.
    pub final_theta: usize,
    /// Number of enumeration rounds performed.
    pub rounds: usize,
}

/// Upper bound on the size of any γ-quasi-clique for γ ≥ 0.5: `2ω + 1`, where
/// `ω` is the graph degeneracy (the bound the paper uses in Section 2.2).
pub fn max_qc_size_bound(g: &Graph) -> usize {
    2 * mqce_graph::core_decomp::degeneracy(g) + 1
}

/// Finds the `k` largest maximal γ-quasi-cliques (of size ≥ 2).
///
/// `base` supplies the algorithm/branching/time-limit configuration; its
/// `theta` is ignored (the search manages the threshold itself).
pub fn find_largest_mqcs(
    g: &Graph,
    gamma: f64,
    k: usize,
    base: Option<MqceConfig>,
) -> Result<TopKResult, ParamError> {
    // Validate gamma via the normal constructor.
    let template = match base {
        Some(cfg) => cfg,
        None => MqceConfig::new(gamma, 2)?,
    };
    let _ = MqceConfig::new(gamma, 2)?;
    if k == 0 || g.num_vertices() == 0 {
        return Ok(TopKResult::default());
    }

    let mut theta = max_qc_size_bound(g).max(2);
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let config = MqceConfig {
            params: crate::config::MqceParams::new(gamma, theta)?,
            ..template
        };
        let result = enumerate_mqcs(g, &config);
        let enough = result.mqcs.len() >= k;
        if enough || theta == 2 {
            let mut mqcs = result.mqcs;
            mqcs.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
            mqcs.truncate(k);
            return Ok(TopKResult {
                mqcs,
                final_theta: theta,
                rounds,
            });
        }
        // Lower the threshold geometrically (but never below 2).
        theta = (theta / 2).max(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqce_graph::generators::{planted_quasi_cliques, PlantedGroup};

    #[test]
    fn size_bound_holds_on_examples() {
        let g = Graph::complete(6);
        assert!(max_qc_size_bound(&g) >= 6);
        let p = Graph::path(10);
        assert_eq!(max_qc_size_bound(&p), 3);
    }

    #[test]
    fn finds_planted_groups_in_size_order() {
        let g = planted_quasi_cliques(
            60,
            0.01,
            &[
                PlantedGroup {
                    size: 12,
                    density: 1.0,
                },
                PlantedGroup {
                    size: 8,
                    density: 1.0,
                },
                PlantedGroup {
                    size: 6,
                    density: 1.0,
                },
            ],
            19,
        );
        let top = find_largest_mqcs(&g, 0.9, 2, None).unwrap();
        assert_eq!(top.mqcs.len(), 2);
        assert!(top.mqcs[0].len() >= top.mqcs[1].len());
        assert_eq!(top.mqcs[0], (0..12).collect::<Vec<_>>());
        assert_eq!(top.mqcs[1], (12..20).collect::<Vec<_>>());
    }

    #[test]
    fn k_larger_than_available() {
        let g = Graph::complete(5);
        let top = find_largest_mqcs(&g, 0.9, 10, None).unwrap();
        assert_eq!(top.mqcs.len(), 1);
        assert_eq!(top.mqcs[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_k_and_empty_graph() {
        let g = Graph::complete(4);
        assert!(find_largest_mqcs(&g, 0.9, 0, None).unwrap().mqcs.is_empty());
        let empty = Graph::empty(0);
        assert!(find_largest_mqcs(&empty, 0.9, 3, None)
            .unwrap()
            .mqcs
            .is_empty());
    }

    #[test]
    fn invalid_gamma_is_rejected() {
        let g = Graph::complete(4);
        assert!(find_largest_mqcs(&g, 0.2, 1, None).is_err());
    }

    #[test]
    fn results_match_full_enumeration() {
        let g = Graph::paper_figure1();
        let top = find_largest_mqcs(&g, 0.6, 3, None).unwrap();
        let full = crate::pipeline::enumerate_mqcs_default(&g, 0.6, 2).unwrap();
        let mut by_size = full.mqcs.clone();
        by_size.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
        assert_eq!(top.mqcs, by_size[..3.min(by_size.len())].to_vec());
    }
}
