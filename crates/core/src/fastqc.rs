//! The FastQC branch-and-bound algorithm (Algorithm 2 of the paper).
//!
//! FastQC differs from Quick+ in three ways, all of which are implemented
//! here:
//!
//! 1. **SD-space necessary condition & progressive refinement** (Sections
//!    4.1–4.2): a branch `B = (S, C, D)` can hold a quasi-clique only if
//!    `Δ(S) ≤ τ(σ(B))`; candidates that would violate the condition (Rule 1)
//!    or cannot appear in a large QC (Rule 2) are removed, the bound is
//!    recomputed, and the check repeats until a fixpoint or until the branch
//!    is pruned.
//! 2. **Sym-SE branching** (Section 4.3): sub-branches are ordered so that
//!    their partial sets grow along a pivot's non-neighbours; once the
//!    necessary condition fails for one sub-branch it fails for all later
//!    ones, so only `a + 1` sub-branches are created.
//! 3. **Hybrid-SE branching** (Section 4.4): when the pivot `v̂ ∈ C` is
//!    adjacent to all of `S`, SE branches (excluding `v̂`) and Sym-SE branches
//!    (including `v̂`) are combined, additionally discarding branches that can
//!    only hold non-maximal QCs (Lemma 3).
//!
//! Together these give the `O(n · d · α_k^n)` worst-case bound with
//! `α_k < 2` (Theorem 1).

use std::time::Instant;

use mqce_graph::bitset::AdjacencyMatrix;
use mqce_graph::{Graph, VertexId};

use crate::branch::{DegSource, SearchCtx, SearchOutcome, SearchScratch};
use crate::config::{BranchingStrategy, MqceParams};
use crate::scheduler::{SplitRequest, SplitSink};
use crate::stats::SearchStats;

/// Runs FastQC on `g` starting from the branch `(s_init, cand, implicit D)`.
///
/// * For the whole-graph algorithm, pass `s_init = []` and `cand = all
///   vertices`.
/// * The divide-and-conquer driver passes `s_init = [v_i]` and the pruned
///   2-hop candidate set.
///
/// Returns every quasi-clique emitted (a superset of all maximal QCs of size
/// ≥ θ that are contained in `s_init ∪ cand` and contain `s_init`).
pub fn run_fastqc(
    g: &Graph,
    s_init: &[VertexId],
    cand: &[VertexId],
    params: MqceParams,
    branching: BranchingStrategy,
    deadline: Option<Instant>,
) -> SearchOutcome {
    run_fastqc_with_kernel(g, None, s_init, cand, params, branching, deadline)
}

/// [`run_fastqc`] with an optionally pre-built bitset adjacency kernel over
/// `g` (the DC driver passes the one attached to the subproblem's induced
/// subgraph, avoiding a rebuild). When `kernel` is `None` the backend policy
/// in `params` decides whether one is built internally.
pub fn run_fastqc_with_kernel(
    g: &Graph,
    kernel: Option<&AdjacencyMatrix>,
    s_init: &[VertexId],
    cand: &[VertexId],
    params: MqceParams,
    branching: BranchingStrategy,
    deadline: Option<Instant>,
) -> SearchOutcome {
    run_fastqc_inner(g, kernel, s_init, cand, params, branching, deadline, None)
}

/// [`run_fastqc_with_kernel`] with a split sink, materialising its outputs:
/// while branching at shallow depths the searcher polls `splitter` and, when
/// a worker is hungry, donates its untaken sibling branches as self-contained
/// split tasks instead of exploring them itself. Test support — the scheduler
/// itself threads a [`SearchScratch`] through [`run_fastqc_in`] instead.
#[cfg(test)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_fastqc_split(
    g: &Graph,
    kernel: Option<&AdjacencyMatrix>,
    s_init: &[VertexId],
    cand: &[VertexId],
    params: MqceParams,
    branching: BranchingStrategy,
    deadline: Option<Instant>,
    splitter: &dyn SplitSink,
) -> SearchOutcome {
    run_fastqc_inner(
        g,
        kernel,
        s_init,
        cand,
        params,
        branching,
        deadline,
        Some(splitter),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_fastqc_inner(
    g: &Graph,
    kernel: Option<&AdjacencyMatrix>,
    s_init: &[VertexId],
    cand: &[VertexId],
    params: MqceParams,
    branching: BranchingStrategy,
    deadline: Option<Instant>,
    splitter: Option<&dyn SplitSink>,
) -> SearchOutcome {
    let mut bufs = SearchScratch::new();
    let stats = run_fastqc_in(
        g, kernel, s_init, cand, params, branching, deadline, splitter, &mut bufs,
    );
    SearchOutcome {
        outputs: bufs.sets.into_vecs(),
        stats,
        thread_stats: Vec::new(),
    }
}

/// The allocation-free driver entry point: runs FastQC using the caller's
/// reusable [`SearchScratch`], leaving the emitted family behind in
/// `bufs.sets` (local ids, packed) for the caller to stream or materialise.
/// Returns the search statistics.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_fastqc_in(
    g: &Graph,
    kernel: Option<&AdjacencyMatrix>,
    s_init: &[VertexId],
    cand: &[VertexId],
    params: MqceParams,
    branching: BranchingStrategy,
    deadline: Option<Instant>,
    splitter: Option<&dyn SplitSink>,
    bufs: &mut SearchScratch,
) -> SearchStats {
    let mut ctx = SearchCtx::new_with_kernel(g, kernel, params, s_init, cand, deadline, bufs);
    if let Some(splitter) = splitter {
        ctx = ctx.with_splitter(splitter);
    }
    let mut root = ctx.take_buf();
    root.extend_from_slice(cand);
    let mut searcher = FastQc {
        ctx: &mut ctx,
        branching,
    };
    searcher.recurse(root);
    ctx.finish()
}

struct FastQc<'a, 'g> {
    ctx: &'a mut SearchCtx<'g>,
    branching: BranchingStrategy,
}

/// What the refinement loop decided about the current branch.
enum Refined {
    /// The branch was pruned by the necessary condition.
    Pruned,
    /// The branch survives; `tau` is `τ(σ(B))` for the refined branch.
    Keep { tau: i64 },
}

impl<'a, 'g> FastQc<'a, 'g> {
    /// `FastQC-Rec(S, C, D)`. Returns `true` iff a quasi-clique was found in
    /// this branch (including `G[S]` itself), matching the bookkeeping of
    /// Algorithm 2 that decides whether the parent must consider `G[S]`.
    fn recurse(&mut self, mut cand: Vec<VertexId>) -> bool {
        let result = if self.ctx.enter_branch() {
            self.branch_body(&mut cand)
        } else {
            false
        };
        self.ctx.leave_branch();
        self.ctx.put_buf(cand);
        result
    }

    /// [`recurse`](Self::recurse) on a borrowed candidate list, copying it
    /// into a pooled frame buffer first.
    fn recurse_slice(&mut self, cand: &[VertexId]) -> bool {
        let mut child = self.ctx.take_buf();
        child.extend_from_slice(cand);
        self.recurse(child)
    }

    fn branch_body(&mut self, cand: &mut Vec<VertexId>) -> bool {
        // ---- progressive refinement & necessary condition (lines 3-7) ----
        let mut removed_here = self.ctx.take_buf();
        let refined = self.refine_loop(cand, &mut removed_here);
        let result = match refined {
            Refined::Pruned => {
                self.ctx.stats.pruned_by_condition += 1;
                false
            }
            Refined::Keep { tau } => self.after_refinement(cand, tau),
        };
        // Undo the refinement removals before returning to the caller.
        for &v in removed_here.iter().rev() {
            self.ctx.restore_c(v);
        }
        self.ctx.put_buf(removed_here);
        result
    }

    /// Lines 3-7 of Algorithm 2: repeatedly check the necessary condition and
    /// apply Refinement Rules 1 and 2 until the branch is pruned or no more
    /// candidates can be removed.
    fn refine_loop(&mut self, cand: &mut Vec<VertexId>, removed: &mut Vec<VertexId>) -> Refined {
        let mut critical = self.ctx.take_buf();
        let mut to_remove = self.ctx.take_buf();
        let result = loop {
            // Necessary condition C1&2: Δ(S) ≤ τ(σ(B)) and σ(B) ≥ |S|.
            if self.ctx.sigma_below_s(cand.len()) {
                break Refined::Pruned;
            }
            let tau_sigma = self.ctx.tau_sigma(cand.len());
            let delta_s = self.ctx.delta_s() as i64;
            if delta_s > tau_sigma {
                break Refined::Pruned;
            }
            if cand.is_empty() {
                break Refined::Keep { tau: tau_sigma };
            }

            // Refinement Rule 1: remove v ∈ C with Δ(S ∪ {v}) > τ(σ(B)).
            // Given Δ(S) ≤ τ, the condition is equivalent to
            //   δ̄(v, S∪{v}) > τ   or   ∃ u ∈ S with δ̄(u,S) = τ and (u,v) ∉ E.
            critical.clear();
            critical.extend(
                self.ctx
                    .s_vertices()
                    .iter()
                    .copied()
                    .filter(|&u| self.ctx.disconnections_s(u) as i64 == tau_sigma),
            );
            self.ctx.count_adjacency_to(&critical, cand);
            let s_len = self.ctx.s_len() as i64;
            let theta = self.ctx.theta as i64;
            to_remove.clear();
            for &v in cand.iter() {
                let self_disconnections = s_len + 1 - self.ctx.deg_s(v) as i64;
                let rule1 = self_disconnections > tau_sigma
                    || (self.ctx.adjacency_count(v) as usize) < critical.len();
                // Refinement Rule 2: remove v with δ(v, S∪C) < θ − τ(σ(B)).
                let rule2 = (self.ctx.deg_sc(v) as i64) < theta - tau_sigma;
                if rule1 || rule2 {
                    to_remove.push(v);
                }
            }
            if to_remove.is_empty() {
                break Refined::Keep { tau: tau_sigma };
            }
            self.ctx.stats.candidates_refined += to_remove.len() as u64;
            for &v in &to_remove {
                self.ctx.remove_c(v);
                removed.push(v);
            }
            cand.retain(|v| !to_remove.contains(v));
        };
        self.ctx.put_buf(critical);
        self.ctx.put_buf(to_remove);
        result
    }

    /// Lines 8-25 of Algorithm 2: termination conditions, branching and the
    /// non-hereditary "additional step".
    fn after_refinement(&mut self, cand: &[VertexId], tau_sigma: i64) -> bool {
        // ---- T1: Δ(S ∪ C) ≤ τ(σ(B)) — the branch holds G[S∪C] itself ----
        let delta_sc = self.ctx.delta_sc(cand) as i64;
        if delta_sc <= tau_sigma {
            self.ctx.stats.t1_terminations += 1;
            let mut union = self.ctx.take_buf();
            union.extend_from_slice(self.ctx.s_vertices());
            union.extend_from_slice(cand);
            if union.is_empty() {
                self.ctx.put_buf(union);
                return false;
            }
            self.ctx.emit(&union, DegSource::PartialAndCandidates, true);
            self.ctx.put_buf(union);
            return true;
        }

        // ---- T2: size-based termination ----
        let total = self.ctx.s_len() + cand.len();
        if total < self.ctx.theta {
            self.ctx.stats.pruned_by_size += 1;
            return false;
        }
        let theta = self.ctx.theta as i64;
        if self
            .ctx
            .s_vertices()
            .iter()
            .any(|&v| (self.ctx.deg_sc(v) as i64) < theta - tau_sigma)
        {
            self.ctx.stats.pruned_by_size += 1;
            return false;
        }

        // ---- pivot selection (Section 4.3) ----
        // v̂ = argmax_{v ∈ S∪C} δ̄(v, S∪C); T1 failed, so the max exceeds τ.
        let pivot = self
            .ctx
            .s_vertices()
            .iter()
            .chain(cand.iter())
            .copied()
            .max_by_key(|&v| total - self.ctx.deg_sc(v))
            .expect("S ∪ C is non-empty here");
        let pivot_disconnections_sc = (total - self.ctx.deg_sc(pivot)) as i64;
        debug_assert!(pivot_disconnections_sc > tau_sigma);

        // a = τ(σ(B)) − δ̄(v̂, S);  b = δ̄(v̂, C).
        let a = tau_sigma - self.ctx.disconnections_s(pivot) as i64;
        let pivot_deg_c = self.ctx.deg_sc(pivot) - self.ctx.deg_s(pivot);
        let b = (cand.len() - pivot_deg_c) as i64;
        debug_assert!(a < b, "a = {a} must be smaller than b = {b}");

        let any_found = match self.branching {
            BranchingStrategy::Se => self.branch_se_plain(cand),
            BranchingStrategy::SymSe => self.branch_sym_se(cand, pivot, a),
            BranchingStrategy::HybridSe => {
                let hybrid_applicable = self.ctx.in_c(pivot)
                    && self.ctx.disconnections_s(pivot) == 0
                    && (b == a + 1 || tau_sigma == 1);
                if hybrid_applicable {
                    self.branch_hybrid_se(cand, pivot, a, b)
                } else {
                    self.branch_sym_se(cand, pivot, a)
                }
            }
        };

        if any_found {
            return true;
        }
        // ---- additional step (lines 21-24): consider G[S] itself ----
        self.output_partial_set()
    }

    /// Emits `G[S]` if it is a QC passing the necessary maximality condition;
    /// returns `true` iff `G[S]` is a QC that passes the condition (the value
    /// the parent uses to decide whether to consider its own partial set).
    fn output_partial_set(&mut self) -> bool {
        if self.ctx.s_len() == 0 {
            return false;
        }
        let mut s = self.ctx.take_buf();
        s.extend_from_slice(self.ctx.s_vertices());
        if !self.ctx.is_qc(&s) {
            self.ctx.put_buf(s);
            return false;
        }
        // `emit` re-verifies the predicate and applies the maximality filter;
        // it only refuses QCs that are extendable or below θ. The return value
        // of the *branch* must be true whenever G[S] is a QC that satisfies
        // the necessary maximality condition, regardless of θ — so when the
        // emission was suppressed, distinguish "extendable" (false — some
        // other branch will report the extension) from "below θ" (true — a QC
        // exists here). `h == S`, so the maintained δ(·,S) array serves both
        // checks without a recompute.
        let result = self.ctx.emit(&s, DegSource::PartialSet, true)
            || self.ctx.no_extension(&s, DegSource::PartialSet);
        self.ctx.put_buf(s);
        result
    }

    // ---- branching methods --------------------------------------------------

    /// Sym-SE branching (Equation 13) with the pivot-based ordering of
    /// Section 4.3; only the first `a + 1` sub-branches are created, the rest
    /// are guaranteed to violate the necessary condition.
    fn branch_sym_se(&mut self, cand: &[VertexId], pivot: VertexId, a: i64) -> bool {
        let mut order = self.ctx.take_buf();
        self.pivot_order_into(cand, pivot, &mut order);
        let keep = ((a + 1).max(0) as usize).min(order.len());
        let mut any = false;
        let mut moved_to_s = self.ctx.take_buf();
        for i in 0..keep {
            let vi = order[i];
            // Donate the untaken later branches B_{i+1}..B_keep when a
            // worker is hungry: branch B_j includes v_1..v_{j-1}, excludes
            // v_j and keeps C = order[j+1..], which is self-contained as
            // (S ∪ order[..j], order[j+1..]) — the exclusions are implicit.
            let rest = keep - i - 1;
            if rest > 0 && self.ctx.should_split(rest) {
                let mut s = self.ctx.s_vertices().to_vec();
                s.push(vi);
                let mut tasks = Vec::with_capacity(rest);
                for j in i + 1..keep {
                    tasks.push(SplitRequest {
                        s_init: s.clone(),
                        cand: order[j + 1..].to_vec(),
                    });
                    s.push(order[j]);
                }
                self.ctx.donate(tasks);
                // Run the current branch, then stop: the rest of the frame
                // belongs to the stolen tasks. Whether they find a QC is
                // unknown here, so the caller may redundantly emit G[S];
                // the S2 engine drops it as dominated.
                self.ctx.remove_c(vi);
                any |= self.recurse_slice(&order[i + 1..]);
                self.ctx.restore_c(vi);
                break;
            }
            // Branch B_i: exclude v_i, include v_1..v_{i-1} (already in S).
            self.ctx.remove_c(vi);
            any |= self.recurse_slice(&order[i + 1..]);
            self.ctx.restore_c(vi);
            if self.ctx.aborted {
                break;
            }
            self.ctx.push_s(vi);
            moved_to_s.push(vi);
        }
        for &v in moved_to_s.iter().rev() {
            self.ctx.pop_s(v);
        }
        self.ctx.put_buf(moved_to_s);
        self.ctx.put_buf(order);
        any
    }

    /// Hybrid-SE branching (Equation 18): SE branches `B̃_2..B̃_b` excluding
    /// the pivot, plus Sym-SE branches `B̈_2..B̈_{a+1}` including it.
    fn branch_hybrid_se(&mut self, cand: &[VertexId], pivot: VertexId, a: i64, b: i64) -> bool {
        let mut order = self.ctx.take_buf();
        self.pivot_order_into(cand, pivot, &mut order);
        debug_assert_eq!(order[0], pivot);
        let b = (b.max(1) as usize).min(order.len());
        let a = (a.max(0) as usize).min(order.len().saturating_sub(1));
        let mut any = false;
        let mut donated = false;

        // Part 1 — SE branches that exclude the pivot: B̃_i for i = 2..=b,
        // i.e. include v_i, exclude v_1..v_{i-1}.
        let mut excluded = self.ctx.take_buf();
        self.ctx.remove_c(pivot);
        excluded.push(pivot);
        for (j, &vj) in order.iter().enumerate().take(b).skip(1) {
            // Donate the untaken part-1 branches plus the whole Sym-SE part
            // when a worker is hungry; each branch's exclusion set is
            // implicit in its (s_init, cand) pair.
            let rest = (b - j - 1) + a;
            if rest > 0 && self.ctx.should_split(rest) {
                let s0 = self.ctx.s_vertices().to_vec();
                let mut tasks = Vec::with_capacity(rest);
                // B̃_k for k > j: include v_k, exclude v_1..v_{k-1}.
                for k in j + 1..b {
                    let mut s = s0.clone();
                    s.push(order[k]);
                    tasks.push(SplitRequest {
                        s_init: s,
                        cand: order[k + 1..].to_vec(),
                    });
                }
                // B̈_k: include v_1..v_{k-1} (pivot first), exclude v_k.
                let mut s = s0.clone();
                s.push(pivot);
                for k in 1..=a {
                    tasks.push(SplitRequest {
                        s_init: s.clone(),
                        cand: order[k + 1..].to_vec(),
                    });
                    s.push(order[k]);
                }
                self.ctx.donate(tasks);
                donated = true;
            }
            self.ctx.push_s(vj);
            any |= self.recurse_slice(&order[j + 1..]);
            self.ctx.pop_s(vj);
            if self.ctx.aborted || donated {
                break;
            }
            self.ctx.remove_c(vj);
            excluded.push(vj);
        }
        for &v in excluded.iter().rev() {
            self.ctx.restore_c(v);
        }
        self.ctx.put_buf(excluded);
        if self.ctx.aborted || donated {
            self.ctx.put_buf(order);
            return any;
        }

        // Part 2 — Sym-SE branches that include the pivot: B̈_i for
        // i = 2..=a+1, i.e. include v_1..v_{i-1}, exclude v_i.
        let mut moved_to_s = self.ctx.take_buf();
        moved_to_s.push(pivot);
        self.ctx.push_s(pivot);
        for (j, &vj) in order.iter().enumerate().take(a + 1).skip(1) {
            // Donate the untaken later Sym-SE branches.
            let rest = a - j;
            if rest > 0 && self.ctx.should_split(rest) {
                let mut s = self.ctx.s_vertices().to_vec();
                s.push(vj);
                let mut tasks = Vec::with_capacity(rest);
                for k in j + 1..=a {
                    tasks.push(SplitRequest {
                        s_init: s.clone(),
                        cand: order[k + 1..].to_vec(),
                    });
                    s.push(order[k]);
                }
                self.ctx.donate(tasks);
                self.ctx.remove_c(vj);
                any |= self.recurse_slice(&order[j + 1..]);
                self.ctx.restore_c(vj);
                break;
            }
            self.ctx.remove_c(vj);
            any |= self.recurse_slice(&order[j + 1..]);
            self.ctx.restore_c(vj);
            if self.ctx.aborted {
                break;
            }
            self.ctx.push_s(vj);
            moved_to_s.push(vj);
        }
        for &v in moved_to_s.iter().rev() {
            self.ctx.pop_s(v);
        }
        self.ctx.put_buf(moved_to_s);
        self.ctx.put_buf(order);
        any
    }

    /// Plain SE branching over all candidates (Equation 1) — used only for the
    /// branching-strategy ablation of Figure 11.
    fn branch_se_plain(&mut self, cand: &[VertexId]) -> bool {
        let order = cand;
        let mut any = false;
        let mut excluded = self.ctx.take_buf();
        for (j, &vj) in order.iter().enumerate() {
            // Donate the untaken SE branches B_{j+1}.. (include v_k, exclude
            // v_1..v_{k-1}) when a worker is hungry.
            let rest = order.len() - j - 1;
            if rest > 0 && self.ctx.should_split(rest) {
                let s0 = self.ctx.s_vertices().to_vec();
                let mut tasks = Vec::with_capacity(rest);
                for k in j + 1..order.len() {
                    let mut s = s0.clone();
                    s.push(order[k]);
                    tasks.push(SplitRequest {
                        s_init: s,
                        cand: order[k + 1..].to_vec(),
                    });
                }
                self.ctx.donate(tasks);
                self.ctx.push_s(vj);
                any |= self.recurse_slice(&order[j + 1..]);
                self.ctx.pop_s(vj);
                break;
            }
            self.ctx.push_s(vj);
            any |= self.recurse_slice(&order[j + 1..]);
            self.ctx.pop_s(vj);
            if self.ctx.aborted {
                break;
            }
            self.ctx.remove_c(vj);
            excluded.push(vj);
        }
        for &v in excluded.iter().rev() {
            self.ctx.restore_c(v);
        }
        self.ctx.put_buf(excluded);
        any
    }

    /// The candidate ordering of Equations 15/16: the pivot's non-neighbours
    /// in `C` first (with the pivot itself leading when it is a candidate),
    /// then the pivot's neighbours in `C`.
    fn pivot_order_into(&self, cand: &[VertexId], pivot: VertexId, order: &mut Vec<VertexId>) {
        order.clear();
        if self.ctx.in_c(pivot) {
            order.push(pivot);
        }
        // Two passes over `cand` (non-neighbours, then neighbours) instead of
        // two temporary vectors; edge tests are O(1) on the kernel path.
        for &v in cand {
            if v != pivot && !self.ctx.has_edge(v, pivot) {
                order.push(v);
            }
        }
        for &v in cand {
            if v != pivot && self.ctx.has_edge(v, pivot) {
                order.push(v);
            }
        }
    }
}

/// Convenience wrapper: run FastQC over the whole graph (no initial `S`).
pub fn fastqc_whole_graph(
    g: &Graph,
    params: MqceParams,
    branching: BranchingStrategy,
    deadline: Option<Instant>,
) -> SearchOutcome {
    let all: Vec<VertexId> = g.vertices().collect();
    run_fastqc(g, &[], &all, params, branching, deadline)
}

/// The branching-factor constant `α_k` of Theorem 1: the largest real root of
/// `x^{k+2} − x^{k+1} − 2x^k + 2 = 0` for `k ≥ 2` (and ≈1.445 for `k = 1`,
/// the largest root of `x^3 − x^2 − 2x + 2` restricted to the `k = 1` recur-
/// rence). Exposed so the documentation and experiments can report the
/// theoretical bound alongside measured branch counts.
pub fn alpha_k(k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    // Binary search for the largest root in (1, 2): the polynomial
    // p(x) = x^{k+2} − x^{k+1} − 2x^k + 2 satisfies p(2) = 2 > 0 and is
    // negative just below the root.
    let p = |x: f64| x.powi(k as i32 + 2) - x.powi(k as i32 + 1) - 2.0 * x.powi(k as i32) + 2.0;
    let mut hi = 2.0;
    // The polynomial is positive at 2 and negative somewhere below the largest
    // root; find a sign change by scanning from 2 downwards.
    let mut x = 2.0 - 1e-6;
    while x > 1.0 && p(x) > 0.0 {
        x -= 1e-3;
    }
    if x <= 1.0 {
        return 1.0;
    }
    let mut lo = x;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if p(mid) > 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MqceParams;
    use crate::naive;
    use mqce_settrie::filter_maximal;

    fn params(gamma: f64, theta: usize) -> MqceParams {
        MqceParams::new(gamma, theta).unwrap()
    }

    /// Helper: run FastQC on the whole graph, filter to maximal sets, compare
    /// with the oracle.
    fn check_against_oracle(g: &Graph, gamma: f64, theta: usize, branching: BranchingStrategy) {
        let p = params(gamma, theta);
        let outcome = fastqc_whole_graph(g, p, branching, None);
        assert_eq!(outcome.stats.outputs_rejected, 0);
        // Every output must be a quasi-clique of size >= theta.
        for h in &outcome.outputs {
            assert!(h.len() >= theta);
            assert!(
                crate::quasiclique::is_quasi_clique(g, h, gamma),
                "output {h:?} is not a {gamma}-QC"
            );
        }
        let filtered = filter_maximal(&outcome.outputs);
        let expected = naive::all_maximal_quasi_cliques(g, p);
        assert_eq!(
            filtered, expected,
            "mismatch for gamma={gamma} theta={theta} branching={branching:?} graph with {} vertices / {} edges",
            g.num_vertices(),
            g.num_edges()
        );
    }

    #[test]
    fn complete_graph_single_mqc() {
        let g = Graph::complete(6);
        for branching in [
            BranchingStrategy::HybridSe,
            BranchingStrategy::SymSe,
            BranchingStrategy::Se,
        ] {
            check_against_oracle(&g, 0.9, 3, branching);
        }
    }

    #[test]
    fn paper_figure_graph_various_gamma() {
        let g = Graph::paper_figure1();
        for &gamma in &[0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
            for theta in 2..=4 {
                check_against_oracle(&g, gamma, theta, BranchingStrategy::HybridSe);
            }
        }
    }

    #[test]
    fn small_random_graphs_match_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(20240611);
        for case in 0..40 {
            let n = rng.gen_range(4..11);
            let p = rng.gen_range(0.2..0.9);
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(p) {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges);
            let gamma = [0.5, 0.6, 0.7, 0.9, 1.0][case % 5];
            let theta = 2 + case % 3;
            check_against_oracle(&g, gamma, theta, BranchingStrategy::HybridSe);
        }
    }

    #[test]
    fn sym_se_and_se_are_also_exact() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for case in 0..15 {
            let n = rng.gen_range(5..10);
            let p = rng.gen_range(0.3..0.8);
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(p) {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges);
            let gamma = [0.5, 0.7, 0.9][case % 3];
            check_against_oracle(&g, gamma, 2, BranchingStrategy::SymSe);
            check_against_oracle(&g, gamma, 2, BranchingStrategy::Se);
        }
    }

    #[test]
    fn disconnected_graph_finds_mqcs_in_every_component() {
        // Two disjoint 4-cliques.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v));
                edges.push((u + 4, v + 4));
            }
        }
        let g = Graph::from_edges(8, &edges);
        check_against_oracle(&g, 0.9, 3, BranchingStrategy::HybridSe);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = Graph::empty(5);
        let outcome = fastqc_whole_graph(&g, params(0.9, 2), BranchingStrategy::HybridSe, None);
        assert!(outcome.outputs.is_empty());
        let g0 = Graph::empty(0);
        let outcome0 = fastqc_whole_graph(&g0, params(0.9, 1), BranchingStrategy::HybridSe, None);
        assert!(outcome0.outputs.is_empty());
    }

    #[test]
    fn theta_one_emits_singletons_when_isolated() {
        // An isolated vertex is a maximal QC of size 1.
        let g = Graph::from_edges(3, &[(0, 1)]);
        let p = params(0.9, 1);
        let outcome = fastqc_whole_graph(&g, p, BranchingStrategy::HybridSe, None);
        let filtered = filter_maximal(&outcome.outputs);
        let expected = naive::all_maximal_quasi_cliques(&g, p);
        assert_eq!(filtered, expected);
        assert!(expected.contains(&vec![2]));
    }

    #[test]
    fn branch_counts_ordered_by_strategy() {
        // Hybrid-SE and Sym-SE should not explore more branches than SE on a
        // graph with enough structure (this is the Figure 11 shape).
        let g = Graph::paper_figure1();
        let p = params(0.6, 2);
        let hybrid = fastqc_whole_graph(&g, p, BranchingStrategy::HybridSe, None);
        let sym = fastqc_whole_graph(&g, p, BranchingStrategy::SymSe, None);
        let se = fastqc_whole_graph(&g, p, BranchingStrategy::Se, None);
        assert!(hybrid.stats.branches <= sym.stats.branches);
        assert!(sym.stats.branches <= se.stats.branches);
    }

    #[test]
    fn time_limit_aborts() {
        let g = Graph::complete(18);
        let deadline = Some(Instant::now());
        let outcome = fastqc_whole_graph(&g, params(0.5, 2), BranchingStrategy::Se, deadline);
        // With an already-expired deadline the search gives up early. It may
        // still emit a few outputs but must flag the timeout (unless it
        // happened to finish within the polling interval, which Se on K18
        // at γ=0.5 will not).
        assert!(outcome.stats.timed_out || outcome.stats.branches < 2000);
    }

    #[test]
    fn alpha_k_matches_paper_values() {
        assert!((alpha_k(2) - 1.769).abs() < 2e-3);
        assert!((alpha_k(3) - 1.899).abs() < 2e-3);
        assert!((alpha_k(4) - 1.953).abs() < 2e-3);
        assert!(alpha_k(10) < 2.0);
    }

    #[test]
    fn dc_style_invocation_with_initial_s() {
        // Emulate a DC subproblem: S = {0}, C = the 2-hop ball around 0.
        let g = Graph::complete(5);
        let outcome = run_fastqc(
            &g,
            &[0],
            &[1, 2, 3, 4],
            params(0.9, 2),
            BranchingStrategy::HybridSe,
            None,
        );
        let filtered = filter_maximal(&outcome.outputs);
        assert_eq!(filtered, vec![vec![0, 1, 2, 3, 4]]);
    }
}
