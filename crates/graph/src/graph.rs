//! The core immutable graph representation.

use crate::builder::GraphBuilder;

/// Dense vertex identifier in `0..Graph::num_vertices()`.
pub type VertexId = u32;

/// An undirected, unweighted, simple graph stored in a CSR-like layout.
///
/// Adjacency lists are sorted, enabling `O(log d)` adjacency tests via binary
/// search and linear-time sorted-set intersections. The structure is immutable
/// once built; use [`GraphBuilder`] (or the convenience constructors) to
/// create one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// CSR offsets: neighbours of `v` are `neighbors[offsets[v]..offsets[v+1]]`.
    offsets: Vec<usize>,
    /// Concatenated, per-vertex-sorted adjacency lists.
    neighbors: Vec<VertexId>,
    /// Number of undirected edges.
    num_edges: usize,
}

impl Graph {
    /// Creates an empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
            num_edges: 0,
        }
    }

    /// Builds a graph with `n` vertices from an edge list.
    ///
    /// Self-loops and duplicate edges are ignored. Panics if an endpoint is
    /// `>= n`.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Internal constructor from per-vertex adjacency sets that are already
    /// deduplicated. Used by [`GraphBuilder`].
    pub(crate) fn from_adjacency(mut adj: Vec<Vec<VertexId>>) -> Self {
        let n = adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        for list in adj.iter_mut() {
            list.sort_unstable();
            list.dedup();
            total += list.len();
            offsets.push(total);
        }
        let mut neighbors = Vec::with_capacity(total);
        for list in &adj {
            neighbors.extend_from_slice(list);
        }
        debug_assert_eq!(total % 2, 0, "adjacency must be symmetric");
        Graph {
            offsets,
            neighbors,
            num_edges: total / 2,
        }
    }

    /// Builds a graph directly from finished CSR arrays.
    ///
    /// `offsets` must have length `n + 1` with `offsets[0] == 0`, and each
    /// per-vertex slice of `neighbors` must already be sorted, deduplicated,
    /// and symmetric. Callers that extract subgraphs into reusable buffers
    /// (see `SubproblemScratch`) use this to skip the `Vec<Vec<_>>`
    /// intermediate and the copy `from_adjacency` would pay.
    pub(crate) fn from_csr_parts(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        debug_assert_eq!(neighbors.len() % 2, 0, "adjacency must be symmetric");
        debug_assert!(offsets.windows(2).all(|w| {
            let list = &neighbors[w[0]..w[1]];
            list.windows(2).all(|p| p[0] < p[1])
        }));
        let num_edges = neighbors.len() / 2;
        Graph {
            offsets,
            neighbors,
            num_edges,
        }
    }

    /// Decomposes the graph back into its CSR arrays so scratch owners can
    /// reclaim the buffers (inverse of [`Graph::from_csr_parts`]).
    pub(crate) fn into_csr_parts(self) -> (Vec<usize>, Vec<VertexId>) {
        (self.offsets, self.neighbors)
    }

    /// Borrows the raw CSR arrays (offsets, neighbours) without consuming
    /// the graph; the slice encoder flattens them into its wire format.
    pub(crate) fn csr_parts(&self) -> (&[usize], &[VertexId]) {
        (&self.offsets, &self.neighbors)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Edge density `|E| / |V|` as used in Table 1 of the paper.
    pub fn edge_density(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges as f64 / self.num_vertices() as f64
        }
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Sorted slice of neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Cheap 64-bit content fingerprint (FNV-1a over the CSR arrays).
    ///
    /// Two graphs with the same vertex count and identical sorted adjacency
    /// structure hash equal; any edge or labelling difference changes the
    /// digest with overwhelming probability. Intended as a cache key for
    /// long-lived services, not as a cryptographic commitment.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.num_vertices() as u64);
        mix(self.num_edges as u64);
        for &off in &self.offsets {
            mix(off as u64);
        }
        for &v in &self.neighbors {
            mix(u64::from(v));
        }
        h
    }

    /// Whether the undirected edge `{u, v}` exists. `O(log d)`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        // Search in the shorter adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over all undirected edges, each reported once as `(u, v)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Number of neighbours of `v` inside the vertex set `set` (which need not
    /// be sorted). `O(|set| log d)`.
    pub fn degree_in(&self, v: VertexId, set: &[VertexId]) -> usize {
        set.iter()
            .filter(|&&u| u != v && self.has_edge(u, v))
            .count()
    }

    /// Number of common neighbours of `u` and `v` (sorted-list intersection).
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> usize {
        let (a, b) = (self.neighbors(u), self.neighbors(v));
        let mut i = 0;
        let mut j = 0;
        let mut count = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Returns a complete graph on `n` vertices.
    pub fn complete(n: usize) -> Self {
        let mut b = GraphBuilder::new(n);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// Returns a simple path `0 - 1 - ... - (n-1)`.
    pub fn path(n: usize) -> Self {
        let mut b = GraphBuilder::new(n);
        for v in 1..n as VertexId {
            b.add_edge(v - 1, v);
        }
        b.build()
    }

    /// Returns a cycle on `n` vertices (`n >= 3`), or a path for smaller `n`.
    pub fn cycle(n: usize) -> Self {
        let mut b = GraphBuilder::new(n);
        for v in 1..n as VertexId {
            b.add_edge(v - 1, v);
        }
        if n >= 3 {
            b.add_edge(n as VertexId - 1, 0);
        }
        b.build()
    }

    /// Returns a star with centre `0` and `n - 1` leaves.
    pub fn star(n: usize) -> Self {
        let mut b = GraphBuilder::new(n);
        for v in 1..n as VertexId {
            b.add_edge(0, v);
        }
        b.build()
    }

    /// A 9-vertex example graph in the spirit of the paper's running example
    /// (Figure 1): a dense region on `{v1..v5}` plus a second dense region on
    /// `{v2, v6..v9}` bridged through `v2` and `v3`.
    ///
    /// Vertex `i` of the paper (1-based `v_i`) is vertex `i - 1` here. The
    /// figure's exact edge set is not published machine-readably, so this is a
    /// faithful-in-structure reconstruction; tests only assert properties that
    /// hold for *this* edge set (e.g. the Property 1 example of the paper).
    pub fn paper_figure1() -> Self {
        // 0-based translation of the figure's edges.
        let edges: &[(VertexId, VertexId)] = &[
            (0, 1), // v1-v2
            (0, 2), // v1-v3
            (0, 4), // v1-v5
            (1, 2), // v2-v3
            (1, 3), // v2-v4
            (1, 4), // v2-v5
            (2, 3), // v3-v4
            (2, 4), // v3-v5
            (3, 4), // v4-v5
            (1, 5), // v2-v6
            (1, 6), // v2-v7
            (1, 7), // v2-v8
            (1, 8), // v2-v9
            (5, 6), // v6-v7
            (5, 7), // v6-v8
            (6, 7), // v7-v8
            (6, 8), // v7-v9
            (7, 8), // v8-v9
            (2, 5), // v3-v6
        ];
        Graph::from_edges(9, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.edge_density(), 0.0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn from_edges_dedups_and_ignores_self_loops() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 0), (0, 1), (2, 2), (2, 3)]);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(2, 2));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn degrees_and_neighbors_sorted() {
        let g = Graph::from_edges(5, &[(3, 1), (3, 0), (3, 4), (0, 1)]);
        assert_eq!(g.degree(3), 3);
        assert_eq!(g.neighbors(3), &[0, 1, 4]);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn complete_graph_properties() {
        let g = Graph::complete(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
        for u in 0..6 {
            for v in 0..6 {
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
    }

    #[test]
    fn path_cycle_star() {
        assert_eq!(Graph::path(5).num_edges(), 4);
        assert_eq!(Graph::cycle(5).num_edges(), 5);
        assert_eq!(Graph::cycle(2).num_edges(), 1);
        let s = Graph::star(7);
        assert_eq!(s.num_edges(), 6);
        assert_eq!(s.degree(0), 6);
        assert_eq!(s.degree(3), 1);
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.num_edges());
        for &(u, v) in &edges {
            assert!(u < v);
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn degree_in_subset() {
        let g = Graph::complete(5);
        assert_eq!(g.degree_in(0, &[1, 2, 3]), 3);
        assert_eq!(g.degree_in(0, &[0, 1, 2]), 2); // self is skipped
        let p = Graph::path(5);
        assert_eq!(p.degree_in(2, &[0, 1, 3, 4]), 2);
    }

    #[test]
    fn common_neighbors_counts_intersection() {
        let g = Graph::from_edges(5, &[(0, 2), (0, 3), (1, 2), (1, 3), (1, 4)]);
        assert_eq!(g.common_neighbors(0, 1), 2);
        assert_eq!(g.common_neighbors(0, 4), 0);
        assert_eq!(g.common_neighbors(2, 3), 2);
    }

    #[test]
    fn edge_density_matches_table1_definition() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!((g.edge_density() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn paper_figure1_smoke() {
        let g = Graph::paper_figure1();
        assert_eq!(g.num_vertices(), 9);
        // v2 (index 1) is the hub connecting both dense regions.
        assert_eq!(g.degree(1), 8);
        // {v1,v3,v4,v5} = {0,2,3,4} is a 0.6-QC per the paper's Property 1 example:
        // every vertex there connects at least 2 of the other 3.
        for &v in &[0u32, 2, 3, 4] {
            assert!(g.degree_in(v, &[0, 2, 3, 4]) >= 2);
        }
        // ... while its subgraph {v1,v3,v4} is not (v1 connects only 1 of 2).
        assert_eq!(g.degree_in(0, &[0, 2, 3]), 1);
    }

    #[test]
    fn fingerprint_is_content_addressed() {
        let g1 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let g2 = Graph::from_edges(4, &[(2, 3), (0, 1), (1, 2)]);
        // Same edge set, different construction order: same digest.
        assert_eq!(g1.fingerprint(), g2.fingerprint());
        // Deterministic across calls.
        assert_eq!(g1.fingerprint(), g1.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_structure() {
        let base = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        // One extra edge.
        let extra = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert_ne!(base.fingerprint(), extra.fingerprint());
        // Same edges, one more isolated vertex.
        let wider = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        assert_ne!(base.fingerprint(), wider.fingerprint());
        // Same degree sequence, different wiring.
        let a = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let b = Graph::from_edges(4, &[(0, 2), (1, 3)]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Empty graphs of different sizes differ too.
        assert_ne!(Graph::empty(3).fingerprint(), Graph::empty(4).fingerprint());
    }
}
