//! Reusable per-worker scratch for allocation-free subgraph extraction.
//!
//! The divide-and-conquer driver builds one induced subgraph per vertex —
//! hundreds of thousands of them on SNAP-class inputs. The naive
//! [`InducedSubgraph::new`] pays a `vec![u32::MAX; N]` local-id map
//! (O(whole-graph) work *per subproblem*), a `Vec<Vec<_>>` adjacency, and a
//! second copy inside `Graph::from_adjacency`. [`SubproblemScratch`] removes
//! all of that from the steady state:
//!
//! * an **epoch-stamped local-id map**: one `u32` stamp array allocated once
//!   per worker; an entry is valid only when `stamp[v]` equals the current
//!   epoch, so "clearing" the map is a single epoch bump (O(1)) instead of an
//!   O(N) refill. The epoch wraps safely by zeroing the stamps once every
//!   `u32::MAX` uses.
//! * **reusable CSR buffers**: [`InducedSubgraph::new_in`] fills `offsets` /
//!   `neighbors` directly in a single pass (see below) and the finished
//!   subgraph can be handed back with [`SubproblemScratch::recycle`], so the
//!   buffers ping-pong between the scratch and the live subproblem without
//!   touching the allocator.
//! * a **stamped two-hop walk** ([`SubproblemScratch::two_hop_into`])
//!   replacing the `vec![false; N]` visited map of
//!   [`two_hop_neighborhood`](crate::subgraph::two_hop_neighborhood).
//!
//! Single-pass CSR extraction: the host graph's adjacency lists are sorted by
//! global id and the `to_global` map is sorted ascending, so the global→local
//! relabelling is monotone — mapped local adjacency lists come out already
//! sorted. One sweep appending stamped neighbours in local-vertex order
//! therefore produces a finished CSR; the "two-pass degree-count + fill"
//! shape is only needed when edges arrive unordered (see the edge-list
//! loader).

use crate::graph::{Graph, VertexId};
use crate::subgraph::InducedSubgraph;

/// Reusable buffers for building [`InducedSubgraph`]s without steady-state
/// heap allocation. One instance per worker thread; see the module docs.
#[derive(Debug, Default)]
pub struct SubproblemScratch {
    /// `stamp[v] == epoch` ⇔ `local_id[v]` is valid for the current use.
    stamp: Vec<u32>,
    /// Local id of global vertex `v` under the current epoch.
    local_id: Vec<u32>,
    /// Current validity tag; bumped before every use so `0` never matches.
    epoch: u32,
    /// Reusable CSR offsets buffer (returned via [`Self::recycle`]).
    offsets: Vec<usize>,
    /// Reusable CSR neighbours buffer.
    neighbors: Vec<VertexId>,
    /// Reusable sorted member list.
    to_global: Vec<VertexId>,
}

impl SubproblemScratch {
    /// Creates an empty scratch; buffers grow on first use and are then
    /// reused for the worker's whole run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the stamp arrays cover vertices `0..n`. New entries are
    /// zero-initialised, which can never equal a live epoch (epochs start
    /// at 1), so growth does not invalidate the stamping discipline.
    fn ensure(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.local_id.resize(n, 0);
        }
    }

    /// Starts a new stamped use over a universe of `n` vertices and returns
    /// `(stamp, tag)`: an entry is "marked" for this use iff
    /// `stamp[v] == tag`. Also used directly by the scheduler's two-hop
    /// cost-estimate pass so it shares this array instead of allocating its
    /// own stamp `Vec`.
    pub fn stamp_epoch(&mut self, n: usize) -> (&mut [u32], u32) {
        let tag = self.bump_epoch(n);
        (&mut self.stamp[..], tag)
    }

    /// Bumps the epoch for a universe of `n` vertices and returns the fresh
    /// tag; fields are then addressed directly (borrow-splitting helper).
    fn bump_epoch(&mut self, n: usize) -> u32 {
        self.ensure(n);
        if self.epoch == u32::MAX {
            // Wrap: all outstanding tags become ambiguous, so forget them.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }

    /// Collects the closed 2-hop neighbourhood `{v} ∪ Γ(v) ∪ Γ(Γ(v))` of `v`
    /// into `out` (cleared first; result sorted ascending). Equivalent to
    /// [`two_hop_neighborhood`](crate::subgraph::two_hop_neighborhood) but
    /// reuses the stamp array instead of allocating a visited map.
    pub fn two_hop_into(&mut self, g: &Graph, v: VertexId, out: &mut Vec<VertexId>) {
        let (stamp, tag) = self.stamp_epoch(g.num_vertices());
        out.clear();
        stamp[v as usize] = tag;
        out.push(v);
        for &u in g.neighbors(v) {
            if stamp[u as usize] != tag {
                stamp[u as usize] = tag;
                out.push(u);
            }
        }
        for &u in g.neighbors(v) {
            for &w in g.neighbors(u) {
                if stamp[w as usize] != tag {
                    stamp[w as usize] = tag;
                    out.push(w);
                }
            }
        }
        out.sort_unstable();
    }

    /// Builds the subgraph of `g` induced by `vertices` into this scratch's
    /// buffers (the worker-facing entry point is
    /// [`InducedSubgraph::new_in`]). Duplicates in `vertices` are removed;
    /// order does not matter. After warmup this performs no heap allocation.
    pub(crate) fn extract(&mut self, g: &Graph, vertices: &[VertexId]) -> InducedSubgraph {
        let mut to_global = std::mem::take(&mut self.to_global);
        to_global.clear();
        to_global.extend_from_slice(vertices);
        to_global.sort_unstable();
        to_global.dedup();

        let tag = self.bump_epoch(g.num_vertices());
        for (local, &global) in to_global.iter().enumerate() {
            self.stamp[global as usize] = tag;
            self.local_id[global as usize] = local as u32;
        }

        let mut offsets = std::mem::take(&mut self.offsets);
        let mut neighbors = std::mem::take(&mut self.neighbors);
        offsets.clear();
        neighbors.clear();
        offsets.push(0);
        // Single pass: the global→local map is monotone over g's sorted
        // adjacency lists, so each local list is appended already sorted.
        for &global in &to_global {
            for &nb in g.neighbors(global) {
                if self.stamp[nb as usize] == tag {
                    neighbors.push(self.local_id[nb as usize]);
                }
            }
            offsets.push(neighbors.len());
        }

        InducedSubgraph {
            graph: Graph::from_csr_parts(offsets, neighbors),
            to_global,
            adjacency: None,
        }
    }

    /// Reclaims the CSR and member buffers of a finished subproblem so the
    /// next [`InducedSubgraph::new_in`] call reuses them instead of
    /// allocating. Accepts any subgraph; larger buffers win.
    pub fn recycle(&mut self, sub: InducedSubgraph) {
        let (offsets, neighbors) = sub.graph.into_csr_parts();
        self.recycle_parts(offsets, neighbors, sub.to_global);
    }

    /// Buffer-level variant of [`Self::recycle`] for callers that have
    /// already decomposed the subproblem (e.g. the work-stealing scheduler,
    /// which keeps the graph inside a shared task and reclaims it only once
    /// every stolen branch has finished).
    pub fn recycle_graph(&mut self, graph: Graph, to_global: Vec<VertexId>) {
        let (offsets, neighbors) = graph.into_csr_parts();
        self.recycle_parts(offsets, neighbors, to_global);
    }

    fn recycle_parts(
        &mut self,
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        to_global: Vec<VertexId>,
    ) {
        if offsets.capacity() > self.offsets.capacity() {
            self.offsets = offsets;
        }
        if neighbors.capacity() > self.neighbors.capacity() {
            self.neighbors = neighbors;
        }
        if to_global.capacity() > self.to_global.capacity() {
            self.to_global = to_global;
        }
    }

    /// Forces the epoch close to the wrap point (test support).
    #[cfg(test)]
    pub(crate) fn set_epoch_near_wrap(&mut self) {
        self.epoch = u32::MAX - 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{community_graph, CommunityGraphParams};
    use crate::subgraph::two_hop_neighborhood;

    fn assert_same_subgraph(a: &InducedSubgraph, b: &InducedSubgraph) {
        assert_eq!(a.to_global, b.to_global);
        assert_eq!(a.graph.num_vertices(), b.graph.num_vertices());
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        for v in a.graph.vertices() {
            assert_eq!(a.graph.neighbors(v), b.graph.neighbors(v));
        }
    }

    #[test]
    fn new_in_matches_new_on_varied_shapes() {
        let graphs = vec![
            Graph::complete(9),
            Graph::path(12),
            Graph::cycle(7),
            Graph::star(10),
            Graph::paper_figure1(),
            community_graph(
                CommunityGraphParams {
                    n: 60,
                    num_communities: 5,
                    p_intra: 0.8,
                    inter_degree: 1.5,
                },
                11,
            ),
        ];
        let mut scratch = SubproblemScratch::new();
        for g in &graphs {
            let n = g.num_vertices() as u32;
            let picks: Vec<Vec<u32>> = vec![
                vec![],
                (0..n).collect(),
                (0..n).step_by(2).collect(),
                (0..n.min(5)).rev().collect(),
                vec![0, 0, n - 1, n - 1, n / 2],
            ];
            for vs in picks {
                let fresh = InducedSubgraph::new(g, &vs);
                let scr = InducedSubgraph::new_in(g, &vs, &mut scratch);
                assert_same_subgraph(&fresh, &scr);
                scratch.recycle(scr);
            }
        }
    }

    #[test]
    fn epoch_wrap_resets_stamps() {
        let g = Graph::complete(6);
        let mut scratch = SubproblemScratch::new();
        // Mark everything under an early epoch, then force a wrap and check
        // the stale stamps are not mistaken for live ones.
        let _ = InducedSubgraph::new_in(&g, &[0, 1, 2, 3, 4, 5], &mut scratch);
        scratch.set_epoch_near_wrap();
        for _ in 0..8 {
            let fresh = InducedSubgraph::new(&g, &[1, 3]);
            let scr = InducedSubgraph::new_in(&g, &[1, 3], &mut scratch);
            assert_same_subgraph(&fresh, &scr);
            scratch.recycle(scr);
        }
    }

    #[test]
    fn two_hop_into_matches_allocating_version() {
        let g = community_graph(
            CommunityGraphParams {
                n: 80,
                num_communities: 8,
                p_intra: 0.7,
                inter_degree: 1.0,
            },
            3,
        );
        let mut scratch = SubproblemScratch::new();
        let mut out = Vec::new();
        for v in g.vertices() {
            scratch.two_hop_into(&g, v, &mut out);
            assert_eq!(out, two_hop_neighborhood(&g, v));
        }
    }

    #[test]
    fn recycle_keeps_buffers_warm() {
        let g = Graph::complete(32);
        let vs: Vec<u32> = (0..32).collect();
        let mut scratch = SubproblemScratch::new();
        let sub = InducedSubgraph::new_in(&g, &vs, &mut scratch);
        let ptr = sub.graph.neighbors(0).as_ptr();
        scratch.recycle(sub);
        // Same-size re-extraction reuses the recycled neighbour buffer.
        let sub2 = InducedSubgraph::new_in(&g, &vs, &mut scratch);
        assert_eq!(sub2.graph.neighbors(0).as_ptr(), ptr);
    }
}
