//! Append-only write-ahead log of [`GraphDelta`] batches.
//!
//! The `mqce serve` daemon applies edge updates in memory; without a
//! durability story a crash silently loses every applied delta. This module
//! gives updates a minimal WAL: each batch is serialised as one
//! length-prefixed, checksummed record and `fsync`'d *before* the in-memory
//! apply→swap, so a killed daemon can replay the log on startup and reach
//! the exact pre-crash graph (same fingerprint, hence same maximal family).
//!
//! On-disk format (all integers little-endian):
//!
//! ```text
//! magic  : 8 bytes  b"MQCEWAL1"
//! record : u32 payload_len | u64 fnv1a64(payload) | payload
//! payload: u32 n_inserts | n_inserts × (u32 u, u32 v)
//!          u32 n_deletes | n_deletes × (u32 u, u32 v)
//! ```
//!
//! Recovery is *truncated-tail tolerant*: a crash mid-append leaves a
//! partial or checksum-broken record at the end of the file; [`open`]
//! replays every intact prefix record, truncates the torn tail in place and
//! resumes appending from there. A corrupt *magic* (the file is not a WAL at
//! all) is an error, never silently overwritten.
//!
//! [`open`]: WriteAheadLog::open

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::delta::GraphDelta;

/// File-identifying prefix; bumped if the record format ever changes.
const MAGIC: &[u8; 8] = b"MQCEWAL1";

/// Hard cap on one record's payload (64 MiB). A length prefix beyond this is
/// treated as tail corruption rather than honoured as an allocation request.
const MAX_PAYLOAD: u32 = 64 << 20;

/// FNV-1a 64-bit, the same family as [`Graph::fingerprint`](crate::Graph):
/// tiny, allocation-free and more than strong enough to catch torn writes.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_payload(delta: &GraphDelta) -> Vec<u8> {
    let inserts = delta.inserts();
    let deletes = delta.deletes();
    let mut payload = Vec::with_capacity(8 + 8 * (inserts.len() + deletes.len()));
    let put_edges = |payload: &mut Vec<u8>, edges: &[(u32, u32)]| {
        payload.extend_from_slice(&(edges.len() as u32).to_le_bytes());
        for &(u, v) in edges {
            payload.extend_from_slice(&u.to_le_bytes());
            payload.extend_from_slice(&v.to_le_bytes());
        }
    };
    put_edges(&mut payload, inserts);
    put_edges(&mut payload, deletes);
    payload
}

/// Decodes one payload; `None` on any structural mismatch (wrong count vs
/// length), which recovery treats exactly like a failed checksum.
fn decode_payload(payload: &[u8]) -> Option<GraphDelta> {
    fn take_u32(payload: &[u8], at: &mut usize) -> Option<u32> {
        let bytes = payload.get(*at..*at + 4)?;
        *at += 4;
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    }
    fn take_edges(payload: &[u8], at: &mut usize) -> Option<Vec<(u32, u32)>> {
        let n = take_u32(payload, at)? as usize;
        // The claimed count is bounded by the remaining bytes before any
        // allocation is sized from it.
        let mut edges = Vec::with_capacity(n.min(payload.len() / 8 + 1));
        for _ in 0..n {
            let u = take_u32(payload, at)?;
            let v = take_u32(payload, at)?;
            edges.push((u, v));
        }
        Some(edges)
    }
    let mut at = 0usize;
    let inserts = take_edges(payload, &mut at)?;
    let deletes = take_edges(payload, &mut at)?;
    if at != payload.len() {
        return None;
    }
    Some(GraphDelta::new(inserts, deletes))
}

/// An open write-ahead log: an append handle positioned after the last
/// intact record.
#[derive(Debug)]
pub struct WriteAheadLog {
    file: File,
    /// Bytes of intact log (magic plus whole records); the append position.
    offset: u64,
}

impl WriteAheadLog {
    /// Opens (or creates) the log at `path`, replays every intact record and
    /// truncates any torn tail left by a crash mid-append. Returns the open
    /// log positioned for appending plus the replayed deltas in append
    /// order — apply them to the graph the daemon originally loaded to reach
    /// the exact pre-crash state.
    pub fn open(path: &Path) -> std::io::Result<(WriteAheadLog, Vec<GraphDelta>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.is_empty() {
            file.write_all(MAGIC)?;
            file.sync_data()?;
            return Ok((
                WriteAheadLog {
                    file,
                    offset: MAGIC.len() as u64,
                },
                Vec::new(),
            ));
        }
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{} is not an mqce WAL (bad magic)", path.display()),
            ));
        }

        let mut deltas = Vec::new();
        let mut good = MAGIC.len();
        loop {
            let rest = &bytes[good..];
            if rest.is_empty() {
                break;
            }
            // Partial header, oversized length, short payload or a checksum
            // mismatch all mean the same thing: the tail is torn. Keep the
            // intact prefix and cut the rest.
            let Some(header) = rest.get(..12) else { break };
            let len = u32::from_le_bytes(header[..4].try_into().unwrap());
            let sum = u64::from_le_bytes(header[4..12].try_into().unwrap());
            if len > MAX_PAYLOAD {
                break;
            }
            let Some(payload) = rest.get(12..12 + len as usize) else {
                break;
            };
            if fnv1a64(payload) != sum {
                break;
            }
            let Some(delta) = decode_payload(payload) else {
                break;
            };
            deltas.push(delta);
            good += 12 + len as usize;
        }
        if good < bytes.len() {
            file.set_len(good as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(good as u64))?;
        Ok((
            WriteAheadLog {
                file,
                offset: good as u64,
            },
            deltas,
        ))
    }

    /// Appends one delta as a checksummed record and `fsync`s it. Returns the
    /// log offset *after* the record — the durability watermark reported in
    /// `update` responses. The caller must append **before** applying the
    /// delta in memory, so a crash between the two replays the delta rather
    /// than losing it.
    pub fn append(&mut self, delta: &GraphDelta) -> std::io::Result<u64> {
        let payload = encode_payload(delta);
        let mut record = Vec::with_capacity(12 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        self.file.write_all(&record)?;
        self.file.sync_data()?;
        self.offset += record.len() as u64;
        Ok(self.offset)
    }

    /// Bytes of intact log: the position the next record will be written at.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mqce_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.wal", std::process::id()))
    }

    #[test]
    fn roundtrip_replays_appended_deltas_in_order() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let d1 = GraphDelta::new(vec![(0, 1), (1, 2)], vec![]);
        let d2 = GraphDelta::new(vec![(2, 3)], vec![(0, 1)]);
        {
            let (mut wal, replayed) = WriteAheadLog::open(&path).unwrap();
            assert!(replayed.is_empty());
            let off1 = wal.append(&d1).unwrap();
            let off2 = wal.append(&d2).unwrap();
            assert!(off2 > off1);
            assert_eq!(wal.offset(), off2);
        }
        let (wal, replayed) = WriteAheadLog::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].inserts(), d1.inserts());
        assert_eq!(replayed[0].deletes(), d1.deletes());
        assert_eq!(replayed[1].inserts(), d2.inserts());
        assert_eq!(replayed[1].deletes(), d2.deletes());

        // Replaying onto the base graph reaches the same fingerprint as
        // applying the deltas directly.
        let base = Graph::from_edges(4, &[(0, 3)]);
        let direct = d2.apply(&d1.apply(&base));
        let mut replay = base;
        for d in &replayed {
            replay = d.apply(&replay);
        }
        assert_eq!(replay.fingerprint(), direct.fingerprint());
        // The append position survives reopen.
        assert_eq!(wal.offset(), std::fs::metadata(&path).unwrap().len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_resumes() {
        let path = temp_path("torn_tail");
        let _ = std::fs::remove_file(&path);
        let d1 = GraphDelta::new(vec![(0, 1)], vec![]);
        let d2 = GraphDelta::new(vec![(5, 9)], vec![]);
        let intact_len;
        {
            let (mut wal, _) = WriteAheadLog::open(&path).unwrap();
            intact_len = wal.append(&d1).unwrap();
            wal.append(&d2).unwrap();
        }
        // Simulate a crash mid-append: cut the second record in half.
        let full = std::fs::metadata(&path).unwrap().len();
        let torn = intact_len + (full - intact_len) / 2;
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(torn)
            .unwrap();

        let (mut wal, replayed) = WriteAheadLog::open(&path).unwrap();
        assert_eq!(replayed.len(), 1, "only the intact prefix replays");
        assert_eq!(replayed[0].inserts(), d1.inserts());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact_len);

        // The log keeps working after recovery.
        wal.append(&d2).unwrap();
        let (_, replayed) = WriteAheadLog::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[1].inserts(), d2.inserts());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checksum_cuts_the_log_at_the_bad_record() {
        let path = temp_path("bad_sum");
        let _ = std::fs::remove_file(&path);
        let keep_len;
        {
            let (mut wal, _) = WriteAheadLog::open(&path).unwrap();
            keep_len = wal.append(&GraphDelta::new(vec![(0, 1)], vec![])).unwrap();
            wal.append(&GraphDelta::new(vec![(2, 3)], vec![])).unwrap();
        }
        // Flip one payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let target = keep_len as usize + 12;
        bytes[target] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let (_, replayed) = WriteAheadLog::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep_len);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_non_wal_file_is_rejected_not_overwritten() {
        let path = temp_path("not_a_wal");
        std::fs::write(&path, b"0 1\n1 2\n").unwrap();
        let err = WriteAheadLog::open(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // The file is untouched.
        assert_eq!(std::fs::read(&path).unwrap(), b"0 1\n1 2\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_deltas_and_large_batches_roundtrip() {
        let path = temp_path("shapes");
        let _ = std::fs::remove_file(&path);
        let empty = GraphDelta::new(vec![], vec![]);
        let big_edges: Vec<(u32, u32)> = (0..500u32).map(|i| (i, i + 1)).collect();
        let big = GraphDelta::new(big_edges.clone(), big_edges[..7].to_vec());
        {
            let (mut wal, _) = WriteAheadLog::open(&path).unwrap();
            wal.append(&empty).unwrap();
            wal.append(&big).unwrap();
        }
        let (_, replayed) = WriteAheadLog::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        assert!(replayed[0].is_empty());
        assert_eq!(replayed[1].inserts(), big.inserts());
        assert_eq!(replayed[1].deletes(), big.deletes());
        let _ = std::fs::remove_file(&path);
    }
}
