//! Summary statistics matching the dataset columns of Table 1 of the paper.

use crate::core_decomp::core_decomposition;
use crate::graph::Graph;

/// Dataset-level statistics: the columns `|V|`, `|E|`, `|E|/|V|`, `d`, `ω`
/// of Table 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Edge density `|E| / |V|`.
    pub edge_density: f64,
    /// Maximum degree `d`.
    pub max_degree: usize,
    /// Degeneracy `ω`.
    pub degeneracy: usize,
}

impl GraphStats {
    /// Computes the statistics of a graph (runs a core decomposition).
    pub fn compute(g: &Graph) -> Self {
        let decomp = core_decomposition(g);
        GraphStats {
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
            edge_density: g.edge_density(),
            max_degree: g.max_degree(),
            degeneracy: decomp.degeneracy,
        }
    }
}

/// Number of triangles in the graph (each counted once).
///
/// Uses the standard degree-ordered intersection method, `O(Σ d(v)²)` in the
/// worst case but fast on sparse graphs.
pub fn triangle_count(g: &Graph) -> usize {
    // Orient each edge from the lower-(degree, id) endpoint to the higher one
    // and intersect out-neighbourhoods.
    let n = g.num_vertices();
    let order = |v: crate::VertexId| (g.degree(v), v);
    let mut out: Vec<Vec<crate::VertexId>> = vec![Vec::new(); n];
    for (u, v) in g.edges() {
        if order(u) < order(v) {
            out[u as usize].push(v);
        } else {
            out[v as usize].push(u);
        }
    }
    for list in out.iter_mut() {
        list.sort_unstable();
    }
    let mut triangles = 0usize;
    for u in 0..n {
        let fu = &out[u];
        for &v in fu {
            let fv = &out[v as usize];
            // Sorted intersection of fu and fv.
            let (mut i, mut j) = (0usize, 0usize);
            while i < fu.len() && j < fv.len() {
                match fu[i].cmp(&fv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        triangles += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    triangles
}

/// Global clustering coefficient: `3·#triangles / #wedges` (0 when the graph
/// has no wedge).
pub fn global_clustering_coefficient(g: &Graph) -> f64 {
    let wedges: usize = g
        .vertices()
        .map(|v| {
            let d = g.degree(v);
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        return 0.0;
    }
    3.0 * triangle_count(g) as f64 / wedges as f64
}

/// Degree-distribution summary: `(min, median, max)` degree.
pub fn degree_summary(g: &Graph) -> (usize, usize, usize) {
    if g.num_vertices() == 0 {
        return (0, 0, 0);
    }
    let mut degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    degrees.sort_unstable();
    (
        degrees[0],
        degrees[degrees.len() / 2],
        degrees[degrees.len() - 1],
    )
}

/// Per-vertex local clustering coefficients: `2·tri(v) / (d(v)·(d(v)−1))`,
/// with 0 for vertices of degree < 2.
pub fn local_clustering_coefficients(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    let mut coefficients = vec![0.0; n];
    for v in g.vertices() {
        let neighbors = g.neighbors(v);
        let d = neighbors.len();
        if d < 2 {
            continue;
        }
        let mut links = 0usize;
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                if g.has_edge(a, b) {
                    links += 1;
                }
            }
        }
        coefficients[v as usize] = 2.0 * links as f64 / (d * (d - 1)) as f64;
    }
    coefficients
}

/// Degree histogram: `hist[d]` is the number of vertices of degree `d`
/// (length `max_degree + 1`; empty for the empty graph).
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    if g.num_vertices() == 0 {
        return Vec::new();
    }
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Degree assortativity coefficient (Pearson correlation of the degrees at
/// the two endpoints of each edge). Returns 0 for graphs with fewer than two
/// edges or no degree variance.
pub fn degree_assortativity(g: &Graph) -> f64 {
    let m = g.num_edges();
    if m < 2 {
        return 0.0;
    }
    let (mut sum_xy, mut sum_x, mut sum_x2) = (0.0f64, 0.0f64, 0.0f64);
    for (u, v) in g.edges() {
        let (du, dv) = (g.degree(u) as f64, g.degree(v) as f64);
        sum_xy += du * dv;
        sum_x += 0.5 * (du + dv);
        sum_x2 += 0.5 * (du * du + dv * dv);
    }
    let m = m as f64;
    let numerator = sum_xy / m - (sum_x / m).powi(2);
    let denominator = sum_x2 / m - (sum_x / m).powi(2);
    if denominator.abs() < 1e-12 {
        0.0
    } else {
        numerator / denominator
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} |E|/|V|={:.2} d={} w={}",
            self.num_vertices, self.num_edges, self.edge_density, self.max_degree, self.degeneracy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_complete_graph() {
        let s = GraphStats::compute(&Graph::complete(8));
        assert_eq!(s.num_vertices, 8);
        assert_eq!(s.num_edges, 28);
        assert_eq!(s.max_degree, 7);
        assert_eq!(s.degeneracy, 7);
        assert!((s.edge_density - 3.5).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::compute(&Graph::empty(0));
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.edge_density, 0.0);
    }

    #[test]
    fn triangle_counts() {
        assert_eq!(triangle_count(&Graph::complete(4)), 4);
        assert_eq!(triangle_count(&Graph::complete(6)), 20);
        assert_eq!(triangle_count(&Graph::cycle(5)), 0);
        assert_eq!(triangle_count(&Graph::cycle(3)), 1);
        assert_eq!(triangle_count(&Graph::path(6)), 0);
        assert_eq!(triangle_count(&Graph::empty(0)), 0);
        // Two triangles sharing an edge.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)]);
        assert_eq!(triangle_count(&g), 2);
    }

    #[test]
    fn clustering_coefficient() {
        assert!((global_clustering_coefficient(&Graph::complete(5)) - 1.0).abs() < 1e-12);
        assert_eq!(global_clustering_coefficient(&Graph::star(6)), 0.0);
        assert_eq!(global_clustering_coefficient(&Graph::empty(3)), 0.0);
        let tri_with_tail = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let c = global_clustering_coefficient(&tri_with_tail);
        assert!(c > 0.0 && c < 1.0);
    }

    #[test]
    fn degree_summary_values() {
        assert_eq!(degree_summary(&Graph::star(5)), (1, 1, 4));
        assert_eq!(degree_summary(&Graph::complete(4)), (3, 3, 3));
        assert_eq!(degree_summary(&Graph::empty(0)), (0, 0, 0));
    }

    #[test]
    fn local_clustering_values() {
        let complete = local_clustering_coefficients(&Graph::complete(5));
        assert!(complete.iter().all(|&c| (c - 1.0).abs() < 1e-12));
        let star = local_clustering_coefficients(&Graph::star(5));
        assert!(star.iter().all(|&c| c == 0.0));
        // Triangle with a tail: vertex 2 has degree 3 and one link among its
        // three neighbours (0-1), so coefficient 1/3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let c = local_clustering_coefficients(&g);
        assert!((c[2] - 1.0 / 3.0).abs() < 1e-12);
        assert!((c[0] - 1.0).abs() < 1e-12);
        assert_eq!(c[3], 0.0);
    }

    #[test]
    fn degree_histogram_counts() {
        assert_eq!(degree_histogram(&Graph::star(5)), vec![0, 4, 0, 0, 1]);
        assert_eq!(degree_histogram(&Graph::complete(4)), vec![0, 0, 0, 4]);
        assert!(degree_histogram(&Graph::empty(0)).is_empty());
        assert_eq!(degree_histogram(&Graph::empty(3)), vec![3]);
        // Total always equals |V|.
        let g = Graph::paper_figure1();
        assert_eq!(degree_histogram(&g).iter().sum::<usize>(), g.num_vertices());
    }

    #[test]
    fn assortativity_signs() {
        // A star is maximally disassortative.
        assert!(degree_assortativity(&Graph::star(8)) < -0.9);
        // A regular graph has no degree variance: coefficient 0 by convention.
        assert_eq!(degree_assortativity(&Graph::cycle(6)), 0.0);
        assert_eq!(degree_assortativity(&Graph::complete(5)), 0.0);
        // Tiny graphs.
        assert_eq!(degree_assortativity(&Graph::path(2)), 0.0);
        assert_eq!(degree_assortativity(&Graph::empty(0)), 0.0);
    }

    #[test]
    fn display_is_stable() {
        let s = GraphStats::compute(&Graph::path(3));
        let text = s.to_string();
        assert!(text.contains("|V|=3"));
        assert!(text.contains("w=1"));
    }
}
