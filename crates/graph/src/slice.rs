//! Serialisable graph slices for multi-process sharded enumeration.
//!
//! A [`GraphSlice`] is an induced subgraph plus its local→global vertex-id
//! map, flattened to a single-line ASCII token stream so the shard
//! coordinator can embed it in the newline-JSON worker protocol. The
//! encoding carries the raw CSR arrays (offsets, neighbours) and is
//! checksummed with the same FNV-1a mix as [`Graph::fingerprint`], so a
//! truncated or corrupted payload is rejected instead of silently decoding
//! into a different graph. Decoding validates the CSR invariants for real
//! (sorted rows, symmetry, in-range ids) — a malicious or buggy peer cannot
//! smuggle an inconsistent adjacency structure past the debug-only
//! assertions of the internal constructors.

use crate::graph::{Graph, VertexId};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Magic token leading every encoded slice; bumped if the layout changes.
const MAGIC: &str = "MQSL1";

/// An induced subgraph slice with its local→global id map, extracted by the
/// shard coordinator and shipped to worker processes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphSlice {
    /// The slice graph over local ids `0..n`.
    pub graph: Graph,
    /// `to_global[local]` = the vertex id in the originating graph; strictly
    /// increasing, so global→local lookups are a binary search.
    pub to_global: Vec<VertexId>,
}

/// Why decoding an encoded slice failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SliceDecodeError {
    /// The payload does not start with the expected magic token (wrong or
    /// incompatible encoding).
    BadMagic,
    /// A token was missing or not a number.
    Malformed(&'static str),
    /// The CSR arrays violate an invariant (unsorted row, asymmetric edge,
    /// out-of-range id, non-monotone offsets, non-increasing id map).
    Invalid(&'static str),
    /// The checksum over the decoded arrays does not match the one carried
    /// by the payload (truncation or corruption in transit).
    ChecksumMismatch,
}

impl std::fmt::Display for SliceDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SliceDecodeError::BadMagic => write!(f, "slice payload has wrong magic token"),
            SliceDecodeError::Malformed(what) => write!(f, "malformed slice payload: {what}"),
            SliceDecodeError::Invalid(what) => write!(f, "invalid slice structure: {what}"),
            SliceDecodeError::ChecksumMismatch => write!(f, "slice checksum mismatch"),
        }
    }
}

impl std::error::Error for SliceDecodeError {}

/// FNV-1a over the structural content of a slice (vertex count, edge count,
/// offsets, neighbours, id map).
fn slice_checksum(offsets: &[usize], neighbors: &[VertexId], to_global: &[VertexId]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(FNV_PRIME);
    };
    mix(offsets.len() as u64);
    mix(neighbors.len() as u64);
    mix(to_global.len() as u64);
    for &o in offsets {
        mix(o as u64);
    }
    for &v in neighbors {
        mix(u64::from(v));
    }
    for &v in to_global {
        mix(u64::from(v));
    }
    h
}

impl GraphSlice {
    /// Wraps an already-extracted induced subgraph and its id map.
    ///
    /// `to_global` must be strictly increasing with one entry per slice
    /// vertex — exactly what [`InducedSubgraph`](crate::subgraph::InducedSubgraph)
    /// produces.
    pub fn from_parts(graph: Graph, to_global: Vec<VertexId>) -> Self {
        debug_assert_eq!(graph.num_vertices(), to_global.len());
        debug_assert!(to_global.windows(2).all(|w| w[0] < w[1]));
        GraphSlice { graph, to_global }
    }

    /// Extracts the subgraph of `g` induced by `vertices` (sorted, deduped
    /// internally) together with its id map.
    pub fn induce(g: &Graph, vertices: &[VertexId]) -> Self {
        let sub = crate::subgraph::InducedSubgraph::new(g, vertices);
        GraphSlice {
            graph: sub.graph,
            to_global: sub.to_global,
        }
    }

    /// Number of vertices in the slice.
    pub fn len(&self) -> usize {
        self.to_global.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.to_global.is_empty()
    }

    /// Local id of a global vertex, if it is in the slice.
    pub fn local(&self, global: VertexId) -> Option<VertexId> {
        self.to_global
            .binary_search(&global)
            .ok()
            .map(|i| i as VertexId)
    }

    /// Flattens the slice to a single-line ASCII token stream:
    /// `MQSL1 <n> <m> <offsets…> <neighbors…> <to_global…> <checksum-hex>`.
    /// Contains no newlines, so it embeds directly in a JSON string field of
    /// the newline-delimited worker protocol.
    pub fn encode(&self) -> String {
        let (offsets, neighbors) = self.graph.csr_parts();
        let n = self.to_global.len();
        let m = neighbors.len();
        // Rough capacity: every token ≤ 11 digits plus a separator.
        let mut out = String::with_capacity(16 + 12 * (offsets.len() + m + n));
        out.push_str(MAGIC);
        out.push(' ');
        out.push_str(&n.to_string());
        out.push(' ');
        out.push_str(&m.to_string());
        for &o in offsets {
            out.push(' ');
            out.push_str(&o.to_string());
        }
        for &v in neighbors {
            out.push(' ');
            out.push_str(&v.to_string());
        }
        for &v in &self.to_global {
            out.push(' ');
            out.push_str(&v.to_string());
        }
        out.push(' ');
        out.push_str(&format!(
            "{:016x}",
            slice_checksum(offsets, neighbors, &self.to_global)
        ));
        out
    }

    /// Parses an [`encode`](GraphSlice::encode)d payload back into a slice,
    /// fully validating structure and checksum.
    pub fn decode(text: &str) -> Result<Self, SliceDecodeError> {
        let mut tokens = text.split_ascii_whitespace();
        if tokens.next() != Some(MAGIC) {
            return Err(SliceDecodeError::BadMagic);
        }
        let mut next_usize = |what: &'static str| -> Result<usize, SliceDecodeError> {
            tokens
                .next()
                .and_then(|t| t.parse::<usize>().ok())
                .ok_or(SliceDecodeError::Malformed(what))
        };
        let n = next_usize("vertex count")?;
        let m = next_usize("edge-slot count")?;
        let mut offsets = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            offsets.push(next_usize("offset")?);
        }
        let mut neighbors: Vec<VertexId> = Vec::with_capacity(m);
        for _ in 0..m {
            let v = next_usize("neighbor")?;
            if v >= n {
                return Err(SliceDecodeError::Invalid("neighbor id out of range"));
            }
            neighbors.push(v as VertexId);
        }
        let mut to_global: Vec<VertexId> = Vec::with_capacity(n);
        for _ in 0..n {
            let v = next_usize("global id")?;
            if v > u32::MAX as usize {
                return Err(SliceDecodeError::Invalid("global id overflows u32"));
            }
            to_global.push(v as VertexId);
        }
        let checksum_text = tokens
            .next()
            .ok_or(SliceDecodeError::Malformed("checksum"))?;
        let checksum = u64::from_str_radix(checksum_text, 16)
            .map_err(|_| SliceDecodeError::Malformed("checksum"))?;
        if tokens.next().is_some() {
            return Err(SliceDecodeError::Malformed("trailing tokens"));
        }

        if offsets[0] != 0 || offsets[n] != m {
            return Err(SliceDecodeError::Invalid("offset bounds"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(SliceDecodeError::Invalid("offsets not monotone"));
        }
        if !to_global.windows(2).all(|w| w[0] < w[1]) {
            return Err(SliceDecodeError::Invalid("id map not strictly increasing"));
        }
        for v in 0..n {
            let row = &neighbors[offsets[v]..offsets[v + 1]];
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return Err(SliceDecodeError::Invalid("adjacency row not sorted"));
            }
            if row.iter().any(|&u| u as usize == v) {
                return Err(SliceDecodeError::Invalid("self loop"));
            }
            for &u in row {
                let back = &neighbors[offsets[u as usize]..offsets[u as usize + 1]];
                if back.binary_search(&(v as VertexId)).is_err() {
                    return Err(SliceDecodeError::Invalid("asymmetric edge"));
                }
            }
        }
        if slice_checksum(&offsets, &neighbors, &to_global) != checksum {
            return Err(SliceDecodeError::ChecksumMismatch);
        }
        Ok(GraphSlice {
            graph: Graph::from_csr_parts(offsets, neighbors),
            to_global,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{community_graph, CommunityGraphParams};

    fn sample_slice() -> GraphSlice {
        let g = community_graph(
            CommunityGraphParams {
                n: 60,
                num_communities: 5,
                p_intra: 0.85,
                inter_degree: 1.5,
            },
            11,
        );
        let vertices: Vec<VertexId> = (0..60).filter(|v| v % 3 != 0).collect();
        GraphSlice::induce(&g, &vertices)
    }

    #[test]
    fn round_trip_preserves_csr_and_id_map() {
        let slice = sample_slice();
        let encoded = slice.encode();
        assert!(!encoded.contains('\n'));
        let decoded = GraphSlice::decode(&encoded).unwrap();
        assert_eq!(decoded, slice);
        assert_eq!(
            decoded.graph.fingerprint(),
            slice.graph.fingerprint(),
            "CSR content drifted through the round trip"
        );
        assert_eq!(decoded.to_global, slice.to_global);
        // Adjacency is usable after decode.
        for v in 0..decoded.graph.num_vertices() as VertexId {
            assert_eq!(decoded.graph.neighbors(v), slice.graph.neighbors(v));
        }
    }

    #[test]
    fn empty_slice_round_trips() {
        let slice = GraphSlice::induce(&Graph::from_edges(0, &[]), &[]);
        let decoded = GraphSlice::decode(&slice.encode()).unwrap();
        assert_eq!(decoded, slice);
    }

    #[test]
    fn corruption_is_rejected() {
        let slice = sample_slice();
        let encoded = slice.encode();
        // Flip one digit of the checksum.
        let mut corrupted = encoded.clone();
        let last = corrupted.pop().unwrap();
        corrupted.push(if last == '0' { '1' } else { '0' });
        assert_eq!(
            GraphSlice::decode(&corrupted),
            Err(SliceDecodeError::ChecksumMismatch)
        );
        // Truncation loses tokens.
        let truncated = &encoded[..encoded.len() / 2];
        assert!(GraphSlice::decode(truncated).is_err());
        // Wrong magic.
        assert_eq!(
            GraphSlice::decode("NOPE 0 0 0 0"),
            Err(SliceDecodeError::BadMagic)
        );
        // A payload whose arrays were tampered with (asymmetric edge) fails
        // validation even when the checksum is recomputed to match.
        let offsets = vec![0usize, 1, 1];
        let neighbors = vec![1u32];
        let to_global = vec![4u32, 9];
        let checksum = super::slice_checksum(&offsets, &neighbors, &to_global);
        let forged = format!("MQSL1 2 1 0 1 1 1 4 9 {checksum:016x}");
        assert_eq!(
            GraphSlice::decode(&forged),
            Err(SliceDecodeError::Invalid("asymmetric edge"))
        );
    }
}
