//! Plain-text edge-list parsing and serialisation.
//!
//! The format is the de-facto standard used by SNAP / konect.cc dumps: one
//! `u v` pair per line, `#` or `%` comment lines, arbitrary whitespace.
//! Vertex ids may be sparse; they are compacted to `0..n` on load.
//!
//! The loader streams the text once into a flat, interned edge array and then
//! builds the CSR directly in two passes over that array — count degrees,
//! prefix-sum, fill — followed by an in-place per-vertex sort + dedup that
//! compacts the neighbour pool with a forward write cursor. No intermediate
//! `Vec<Vec<_>>` adjacency is ever materialised, so loading a SNAP-class
//! graph allocates O(1) vectors instead of O(|V|).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::graph::{Graph, VertexId};

/// Errors produced while parsing an edge list.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed as two vertex ids.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
    },
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "I/O error: {e}"),
            EdgeListError::Parse { line, content } => {
                write!(f, "cannot parse line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            EdgeListError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for EdgeListError {
    fn from(e: std::io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Result of loading an edge list: the graph plus the mapping from compacted
/// ids back to the original labels.
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The compacted graph.
    pub graph: Graph,
    /// `labels[v]` is the original id of compacted vertex `v`.
    pub labels: Vec<u64>,
}

/// Parses an edge list from any reader.
pub fn read_edge_list<R: Read>(reader: R) -> Result<LoadedGraph, EdgeListError> {
    let reader = BufReader::new(reader);
    let mut labels: Vec<u64> = Vec::new();
    let mut index: HashMap<u64, VertexId> = HashMap::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let intern = |label: u64, labels: &mut Vec<u64>, index: &mut HashMap<u64, VertexId>| {
        *index.entry(label).or_insert_with(|| {
            labels.push(label);
            (labels.len() - 1) as VertexId
        })
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_err = || EdgeListError::Parse {
            line: lineno + 1,
            content: trimmed.to_string(),
        };
        let a: u64 = parts
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let b: u64 = parts
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let u = intern(a, &mut labels, &mut index);
        let v = intern(b, &mut labels, &mut index);
        if u != v {
            edges.push((u, v));
        }
    }

    // The CSR build (two passes over the flat edge array, then per-vertex
    // sort + dedup with a compacting write cursor) is shared with
    // `GraphDelta` so update batches and file loads canonicalise edges
    // identically.
    let n = labels.len();
    let (offsets, neighbors) = crate::delta::csr_from_edges(n, &edges);
    drop(edges);

    Ok(LoadedGraph {
        graph: Graph::from_csr_parts(offsets, neighbors),
        labels,
    })
}

/// Loads an edge list from a file path.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<LoadedGraph, EdgeListError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Writes the graph as an edge list (`u v` per line, compacted ids).
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Saves the graph as an edge list to a file path.
pub fn save_edge_list<P: AsRef<Path>>(g: &Graph, path: P) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_edge_list() {
        let input = "# comment\n1 2\n2 3\n% other comment\n3 1\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
        assert_eq!(loaded.labels, vec![1, 2, 3]);
    }

    #[test]
    fn sparse_ids_are_compacted() {
        let input = "100 2000\n2000 300000\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_edges(), 2);
        assert_eq!(loaded.labels, vec![100, 2000, 300000]);
    }

    #[test]
    fn self_loops_and_duplicates_dropped() {
        let input = "1 1\n1 2\n2 1\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        let input = "1 2\nnot an edge\n";
        let err = read_edge_list(input.as_bytes()).unwrap_err();
        match err {
            EdgeListError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_endpoint_is_an_error() {
        let input = "1\n";
        assert!(read_edge_list(input.as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_through_text() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4), (0, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(loaded.graph.num_edges(), g.num_edges());
        // Re-check each edge survives (labels are the original compacted ids).
        for (u, v) in g.edges() {
            let lu = loaded.labels.iter().position(|&l| l == u as u64).unwrap() as u32;
            let lv = loaded.labels.iter().position(|&l| l == v as u64).unwrap() as u32;
            assert!(loaded.graph.has_edge(lu, lv));
        }
    }

    #[test]
    fn direct_csr_matches_builder_on_messy_input() {
        // Duplicates (both orientations), self-loops, sparse unordered ids:
        // the two-pass CSR loader must agree with the GraphBuilder path.
        use crate::builder::GraphBuilder;
        let mut text = String::new();
        let mut rng = 0x2545F4914F6CDD1Du64;
        let mut edges: Vec<(u64, u64)> = Vec::new();
        for _ in 0..400 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (rng >> 33) % 37 * 101 + 7;
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (rng >> 33) % 37 * 101 + 7;
            text.push_str(&format!("{a} {b}\n"));
            edges.push((a, b));
        }
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        // Rebuild through the incremental builder using the loader's
        // label-interning order.
        let index: HashMap<u64, VertexId> = loaded
            .labels
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, i as VertexId))
            .collect();
        let mut builder = GraphBuilder::new(loaded.labels.len());
        for (a, b) in edges {
            let (u, v) = (index[&a], index[&b]);
            if u != v {
                builder.add_edge(u, v);
            }
        }
        let expected = builder.build();
        assert_eq!(loaded.graph.num_vertices(), expected.num_vertices());
        assert_eq!(loaded.graph.num_edges(), expected.num_edges());
        for v in expected.vertices() {
            assert_eq!(loaded.graph.neighbors(v), expected.neighbors(v));
        }
    }

    #[test]
    fn file_roundtrip() {
        let g = Graph::cycle(6);
        let dir = std::env::temp_dir().join("mqce_edge_list_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cycle6.txt");
        save_edge_list(&g, &path).unwrap();
        let loaded = load_edge_list(&path).unwrap();
        assert_eq!(loaded.graph.num_edges(), 6);
        std::fs::remove_file(&path).ok();
    }
}
