//! Plain-text edge-list parsing and serialisation.
//!
//! The format is the de-facto standard used by SNAP / konect.cc dumps: one
//! `u v` pair per line, `#` or `%` comment lines, arbitrary whitespace.
//! Vertex ids may be sparse; they are compacted to `0..n` on load.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::graph::{Graph, VertexId};

/// Errors produced while parsing an edge list.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed as two vertex ids.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
    },
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "I/O error: {e}"),
            EdgeListError::Parse { line, content } => {
                write!(f, "cannot parse line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            EdgeListError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for EdgeListError {
    fn from(e: std::io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Result of loading an edge list: the graph plus the mapping from compacted
/// ids back to the original labels.
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The compacted graph.
    pub graph: Graph,
    /// `labels[v]` is the original id of compacted vertex `v`.
    pub labels: Vec<u64>,
}

/// Parses an edge list from any reader.
pub fn read_edge_list<R: Read>(reader: R) -> Result<LoadedGraph, EdgeListError> {
    let reader = BufReader::new(reader);
    let mut labels: Vec<u64> = Vec::new();
    let mut index: HashMap<u64, VertexId> = HashMap::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let intern = |label: u64, labels: &mut Vec<u64>, index: &mut HashMap<u64, VertexId>| {
        *index.entry(label).or_insert_with(|| {
            labels.push(label);
            (labels.len() - 1) as VertexId
        })
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_err = || EdgeListError::Parse {
            line: lineno + 1,
            content: trimmed.to_string(),
        };
        let a: u64 = parts
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let b: u64 = parts
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let u = intern(a, &mut labels, &mut index);
        let v = intern(b, &mut labels, &mut index);
        edges.push((u, v));
    }
    let mut builder = GraphBuilder::new(labels.len());
    for (u, v) in edges {
        if u != v {
            builder.add_edge(u, v);
        }
    }
    Ok(LoadedGraph {
        graph: builder.build(),
        labels,
    })
}

/// Loads an edge list from a file path.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<LoadedGraph, EdgeListError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Writes the graph as an edge list (`u v` per line, compacted ids).
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Saves the graph as an edge list to a file path.
pub fn save_edge_list<P: AsRef<Path>>(g: &Graph, path: P) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_edge_list() {
        let input = "# comment\n1 2\n2 3\n% other comment\n3 1\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
        assert_eq!(loaded.labels, vec![1, 2, 3]);
    }

    #[test]
    fn sparse_ids_are_compacted() {
        let input = "100 2000\n2000 300000\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_edges(), 2);
        assert_eq!(loaded.labels, vec![100, 2000, 300000]);
    }

    #[test]
    fn self_loops_and_duplicates_dropped() {
        let input = "1 1\n1 2\n2 1\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        let input = "1 2\nnot an edge\n";
        let err = read_edge_list(input.as_bytes()).unwrap_err();
        match err {
            EdgeListError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_endpoint_is_an_error() {
        let input = "1\n";
        assert!(read_edge_list(input.as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_through_text() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4), (0, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(loaded.graph.num_edges(), g.num_edges());
        // Re-check each edge survives (labels are the original compacted ids).
        for (u, v) in g.edges() {
            let lu = loaded.labels.iter().position(|&l| l == u as u64).unwrap() as u32;
            let lv = loaded.labels.iter().position(|&l| l == v as u64).unwrap() as u32;
            assert!(loaded.graph.has_edge(lu, lv));
        }
    }

    #[test]
    fn file_roundtrip() {
        let g = Graph::cycle(6);
        let dir = std::env::temp_dir().join("mqce_edge_list_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cycle6.txt");
        save_edge_list(&g, &path).unwrap();
        let loaded = load_edge_list(&path).unwrap();
        assert_eq!(loaded.graph.num_edges(), 6);
        std::fs::remove_file(&path).ok();
    }
}
