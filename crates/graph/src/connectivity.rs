//! Connectivity primitives: BFS reachability, connectedness of vertex
//! subsets, and connected components.

use crate::graph::{Graph, VertexId};

/// Returns `true` if the induced subgraph `G[set]` is connected.
///
/// The empty set and singletons are considered connected (matching the
/// quasi-clique definition, where a single vertex is a trivial QC).
pub fn is_connected_subset(g: &Graph, set: &[VertexId]) -> bool {
    is_connected_subset_in(
        g,
        set,
        &mut Vec::new(),
        &mut Vec::new(),
        &mut std::collections::VecDeque::new(),
    )
}

/// [`is_connected_subset`] with caller-owned scratch buffers, so repeated
/// predicate checks reuse the same allocations. The buffers are resized and
/// cleared here; their previous contents are ignored.
pub fn is_connected_subset_in(
    g: &Graph,
    set: &[VertexId],
    in_set: &mut Vec<bool>,
    visited: &mut Vec<bool>,
    queue: &mut std::collections::VecDeque<VertexId>,
) -> bool {
    if set.len() <= 1 {
        return true;
    }
    in_set.clear();
    in_set.resize(g.num_vertices(), false);
    for &v in set {
        in_set[v as usize] = true;
    }
    visited.clear();
    visited.resize(g.num_vertices(), false);
    queue.clear();
    queue.push_back(set[0]);
    visited[set[0] as usize] = true;
    let mut reached = 1usize;
    while let Some(u) = queue.pop_front() {
        for &w in g.neighbors(u) {
            if in_set[w as usize] && !visited[w as usize] {
                visited[w as usize] = true;
                reached += 1;
                queue.push_back(w);
            }
        }
    }
    reached == set.len()
}

/// Returns `true` if the whole graph is connected (vacuously true for `n <= 1`).
pub fn is_connected(g: &Graph) -> bool {
    let all: Vec<VertexId> = g.vertices().collect();
    is_connected_subset(g, &all)
}

/// Computes the connected components of the graph; each component is a sorted
/// vector of vertex ids, and components are ordered by their smallest vertex.
pub fn connected_components(g: &Graph) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut components = Vec::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = vec![start as VertexId];
        comp[start] = id;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start as VertexId);
        while let Some(u) = queue.pop_front() {
            for &w in g.neighbors(u) {
                if comp[w as usize] == usize::MAX {
                    comp[w as usize] = id;
                    members.push(w);
                    queue.push_back(w);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    components
}

/// Breadth-first distances from `source` (`usize::MAX` for unreachable
/// vertices). Useful for 2-hop neighbourhood checks in tests.
pub fn bfs_distances(g: &Graph, source: VertexId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.num_vertices()];
    dist[source as usize] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &w in g.neighbors(u) {
            if dist[w as usize] == usize::MAX {
                dist[w as usize] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_is_connected() {
        let g = Graph::path(6);
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).len(), 1);
    }

    #[test]
    fn two_components() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        assert!(!is_connected(&g));
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4]);
        assert_eq!(comps[2], vec![5]);
    }

    #[test]
    fn subset_connectivity() {
        let g = Graph::path(6); // 0-1-2-3-4-5
        assert!(is_connected_subset(&g, &[1, 2, 3]));
        assert!(!is_connected_subset(&g, &[0, 2]));
        assert!(is_connected_subset(&g, &[4]));
        assert!(is_connected_subset(&g, &[]));
    }

    #[test]
    fn bfs_distances_on_cycle() {
        let g = Graph::cycle(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
        assert_eq!(d[3], usize::MAX);
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(!is_connected(&Graph::empty(2)));
    }
}
