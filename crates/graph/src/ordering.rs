//! Vertex orderings.
//!
//! The divide-and-conquer framework divides the graph along a total vertex
//! order (Equation 19 in the paper). The paper uses the *degeneracy* ordering
//! because it bounds every 2-hop subproblem by `O(ωd)`; other orderings are
//! provided so the effect of the choice can be measured (the DC-ablation
//! benchmarks) and so callers embedding the library can plug in their own.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::core_decomp::core_decomposition;
use crate::graph::{Graph, VertexId};

/// A total order over the vertices of a graph, used to drive the
/// divide-and-conquer decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VertexOrdering {
    /// Degeneracy (smallest-last) ordering — the paper's choice; every vertex
    /// has at most `ω` neighbours after it.
    #[default]
    Degeneracy,
    /// Vertices by non-decreasing degree.
    DegreeAscending,
    /// Vertices by non-increasing degree.
    DegreeDescending,
    /// The input order `0, 1, …, n−1` (what the basic DC framework of
    /// Guo et al. / Khalil et al. uses).
    Input,
    /// A seeded random permutation (worst-case-ish baseline for ablations).
    Random(u64),
}

impl VertexOrdering {
    /// Computes the ordering as a permutation of the vertex ids.
    pub fn compute(&self, g: &Graph) -> Vec<VertexId> {
        let n = g.num_vertices();
        match self {
            VertexOrdering::Degeneracy => core_decomposition(g).ordering,
            VertexOrdering::DegreeAscending => {
                let mut order: Vec<VertexId> = (0..n as VertexId).collect();
                order.sort_by_key(|&v| (g.degree(v), v));
                order
            }
            VertexOrdering::DegreeDescending => {
                let mut order: Vec<VertexId> = (0..n as VertexId).collect();
                order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
                order
            }
            VertexOrdering::Input => (0..n as VertexId).collect(),
            VertexOrdering::Random(seed) => {
                let mut order: Vec<VertexId> = (0..n as VertexId).collect();
                order.shuffle(&mut StdRng::seed_from_u64(*seed));
                order
            }
        }
    }

    /// Human-readable name used by the experiment harness.
    pub fn name(&self) -> &'static str {
        match self {
            VertexOrdering::Degeneracy => "degeneracy",
            VertexOrdering::DegreeAscending => "degree-asc",
            VertexOrdering::DegreeDescending => "degree-desc",
            VertexOrdering::Input => "input",
            VertexOrdering::Random(_) => "random",
        }
    }
}

/// Inverse permutation: `rank[v]` is the position of vertex `v` in `order`.
///
/// # Panics
/// Panics if `order` is not a permutation of `0..order.len()`.
pub fn ordering_ranks(order: &[VertexId]) -> Vec<usize> {
    let mut rank = vec![usize::MAX; order.len()];
    for (i, &v) in order.iter().enumerate() {
        assert!(
            (v as usize) < order.len() && rank[v as usize] == usize::MAX,
            "ordering is not a permutation"
        );
        rank[v as usize] = i;
    }
    rank
}

/// Maximum number of neighbours any vertex has *after* itself in the given
/// order (the "back degree"). For the degeneracy ordering this equals the
/// graph degeneracy; for other orderings it can be much larger, which is
/// exactly why the DC subproblem bound `O(ωd)` needs the degeneracy order.
pub fn max_forward_degree(g: &Graph, order: &[VertexId]) -> usize {
    let rank = ordering_ranks(order);
    let mut best = 0usize;
    for &v in order {
        let fwd = g
            .neighbors(v)
            .iter()
            .filter(|&&u| rank[u as usize] > rank[v as usize])
            .count();
        best = best.max(fwd);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi_gnm;

    fn is_permutation(order: &[VertexId], n: usize) -> bool {
        if order.len() != n {
            return false;
        }
        let mut seen = vec![false; n];
        for &v in order {
            if (v as usize) >= n || seen[v as usize] {
                return false;
            }
            seen[v as usize] = true;
        }
        true
    }

    #[test]
    fn all_orderings_are_permutations() {
        let g = erdos_renyi_gnm(50, 200, 3);
        for ordering in [
            VertexOrdering::Degeneracy,
            VertexOrdering::DegreeAscending,
            VertexOrdering::DegreeDescending,
            VertexOrdering::Input,
            VertexOrdering::Random(7),
        ] {
            let order = ordering.compute(&g);
            assert!(is_permutation(&order, 50), "{ordering:?}");
        }
    }

    #[test]
    fn degree_orderings_are_sorted() {
        let g = Graph::star(6);
        let asc = VertexOrdering::DegreeAscending.compute(&g);
        assert_eq!(*asc.last().unwrap(), 0, "hub has the largest degree");
        let desc = VertexOrdering::DegreeDescending.compute(&g);
        assert_eq!(desc[0], 0);
    }

    #[test]
    fn degeneracy_ordering_minimises_forward_degree() {
        let g = erdos_renyi_gnm(60, 300, 11);
        let degeneracy = crate::core_decomp::degeneracy(&g);
        let order = VertexOrdering::Degeneracy.compute(&g);
        assert_eq!(max_forward_degree(&g, &order), degeneracy);
        // Any other ordering has at least as large a forward degree.
        for ordering in [
            VertexOrdering::Input,
            VertexOrdering::Random(5),
            VertexOrdering::DegreeDescending,
        ] {
            let order = ordering.compute(&g);
            assert!(max_forward_degree(&g, &order) >= degeneracy, "{ordering:?}");
        }
    }

    #[test]
    fn ranks_are_inverse() {
        let order = vec![2u32, 0, 3, 1];
        let rank = ordering_ranks(&order);
        assert_eq!(rank, vec![1, 3, 0, 2]);
        for (i, &v) in order.iter().enumerate() {
            assert_eq!(rank[v as usize], i);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn ranks_reject_duplicates() {
        ordering_ranks(&[0u32, 0, 1]);
    }

    #[test]
    fn random_ordering_is_deterministic_per_seed() {
        let g = erdos_renyi_gnm(30, 60, 1);
        assert_eq!(
            VertexOrdering::Random(42).compute(&g),
            VertexOrdering::Random(42).compute(&g)
        );
        assert_ne!(
            VertexOrdering::Random(42).compute(&g),
            VertexOrdering::Random(43).compute(&g)
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(VertexOrdering::Degeneracy.name(), "degeneracy");
        assert_eq!(VertexOrdering::Random(1).name(), "random");
    }

    #[test]
    fn empty_graph_orderings() {
        let g = Graph::empty(0);
        for ordering in [VertexOrdering::Degeneracy, VertexOrdering::Input] {
            assert!(ordering.compute(&g).is_empty());
        }
        assert_eq!(max_forward_degree(&g, &[]), 0);
    }
}
