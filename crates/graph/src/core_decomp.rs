//! k-core decomposition, core numbers, degeneracy and degeneracy ordering.
//!
//! The divide-and-conquer framework of the paper (Algorithm 3) first reduces
//! the graph to its `⌈γ·(θ-1)⌉`-core and then processes vertices in the
//! degeneracy ordering, so these primitives are load-bearing for `DCFastQC`.

use crate::graph::{Graph, VertexId};

/// Result of a full core decomposition.
#[derive(Clone, Debug)]
pub struct CoreDecomposition {
    /// `core[v]` is the core number of vertex `v` (the largest `k` such that
    /// `v` belongs to the `k`-core).
    pub core_numbers: Vec<usize>,
    /// Vertices in degeneracy order: each vertex has at most `degeneracy`
    /// neighbours *after* it in this order.
    pub ordering: Vec<VertexId>,
    /// The degeneracy of the graph (maximum core number, 0 for edgeless
    /// graphs).
    pub degeneracy: usize,
}

/// Computes core numbers, the degeneracy ordering and the degeneracy using the
/// linear-time bucket algorithm of Batagelj & Zaversnik (`O(|V| + |E|)`).
pub fn core_decomposition(g: &Graph) -> CoreDecomposition {
    let n = g.num_vertices();
    if n == 0 {
        return CoreDecomposition {
            core_numbers: Vec::new(),
            ordering: Vec::new(),
            degeneracy: 0,
        };
    }
    let max_deg = g.max_degree();
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v as VertexId)).collect();

    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin[d] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    // pos[v] = index of v in vert; vert is the bucket-sorted vertex array.
    let mut pos = vec![0usize; n];
    let mut vert = vec![0 as VertexId; n];
    for v in 0..n {
        pos[v] = bin[degree[v]];
        vert[pos[v]] = v as VertexId;
        bin[degree[v]] += 1;
    }
    // Restore bin to bucket starts.
    for d in (1..=max_deg + 1).rev() {
        bin[d] = bin[d - 1];
    }
    bin[0] = 0;

    let mut core = vec![0usize; n];
    let mut degeneracy = 0usize;
    for i in 0..n {
        let v = vert[i];
        core[v as usize] = degree[v as usize];
        degeneracy = degeneracy.max(degree[v as usize]);
        for &u in g.neighbors(v) {
            let u = u as usize;
            if degree[u] > degree[v as usize] {
                let du = degree[u];
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw];
                if u != w as usize {
                    vert.swap(pu, pw);
                    pos[u] = pw;
                    pos[w as usize] = pu;
                }
                bin[du] += 1;
                degree[u] -= 1;
            }
        }
    }

    CoreDecomposition {
        core_numbers: core,
        ordering: vert,
        degeneracy,
    }
}

/// Degeneracy of the graph (maximum core number).
pub fn degeneracy(g: &Graph) -> usize {
    core_decomposition(g).degeneracy
}

/// Vertices of the `k`-core of `g` (the maximal induced subgraph in which
/// every vertex has degree at least `k`), returned sorted.
///
/// Note that the `k`-core can be disconnected or empty.
pub fn k_core_vertices(g: &Graph, k: usize) -> Vec<VertexId> {
    let decomp = core_decomposition(g);
    let mut vs: Vec<VertexId> = (0..g.num_vertices() as VertexId)
        .filter(|&v| decomp.core_numbers[v as usize] >= k)
        .collect();
    vs.sort_unstable();
    vs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force core numbers by iterative peeling, for cross-checking.
    fn naive_core_numbers(g: &Graph) -> Vec<usize> {
        let n = g.num_vertices();
        let mut core = vec![0usize; n];
        for k in 0..=g.max_degree() {
            // Compute the k-core by repeated removal.
            let mut alive = vec![true; n];
            loop {
                let mut changed = false;
                for v in 0..n {
                    if alive[v] {
                        let d = g
                            .neighbors(v as VertexId)
                            .iter()
                            .filter(|&&u| alive[u as usize])
                            .count();
                        if d < k {
                            alive[v] = false;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            for v in 0..n {
                if alive[v] {
                    core[v] = k;
                }
            }
        }
        core
    }

    #[test]
    fn complete_graph_core() {
        let g = Graph::complete(6);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 5);
        assert!(d.core_numbers.iter().all(|&c| c == 5));
    }

    #[test]
    fn path_degeneracy_is_one() {
        let g = Graph::path(10);
        assert_eq!(degeneracy(&g), 1);
    }

    #[test]
    fn star_degeneracy_is_one() {
        let g = Graph::star(10);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 1);
        assert!(d.core_numbers.iter().all(|&c| c == 1));
    }

    #[test]
    fn empty_and_edgeless() {
        assert_eq!(degeneracy(&Graph::empty(0)), 0);
        assert_eq!(degeneracy(&Graph::empty(5)), 0);
        let d = core_decomposition(&Graph::empty(5));
        assert_eq!(d.ordering.len(), 5);
    }

    #[test]
    fn core_numbers_match_naive_on_mixed_graph() {
        // Clique on {0..3} plus a path 3-4-5-6 and a pendant 7 off 0.
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (0, 7),
            ],
        );
        let fast = core_decomposition(&g).core_numbers;
        let naive = naive_core_numbers(&g);
        assert_eq!(fast, naive);
        assert_eq!(core_decomposition(&g).degeneracy, 3);
    }

    #[test]
    fn degeneracy_ordering_property() {
        // Each vertex has at most `degeneracy` neighbours later in the order.
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
            ],
        );
        let d = core_decomposition(&g);
        let pos: Vec<usize> = {
            let mut p = vec![0usize; g.num_vertices()];
            for (i, &v) in d.ordering.iter().enumerate() {
                p[v as usize] = i;
            }
            p
        };
        for &v in &d.ordering {
            let later = g
                .neighbors(v)
                .iter()
                .filter(|&&u| pos[u as usize] > pos[v as usize])
                .count();
            assert!(later <= d.degeneracy);
        }
        // Ordering is a permutation.
        let mut sorted = d.ordering.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
    }

    /// Max number of neighbours any vertex has after itself in `order`.
    fn max_forward_degree(g: &Graph, order: &[VertexId]) -> usize {
        let mut pos = vec![0usize; g.num_vertices()];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        order
            .iter()
            .map(|&v| {
                g.neighbors(v)
                    .iter()
                    .filter(|&&u| pos[u as usize] > pos[v as usize])
                    .count()
            })
            .max()
            .unwrap_or(0)
    }

    fn assert_is_permutation(order: &[VertexId], n: usize) {
        let mut sorted = order.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n as VertexId).collect::<Vec<_>>());
    }

    #[test]
    fn path_ordering_achieves_degeneracy_one() {
        for n in [2usize, 3, 10, 25] {
            let g = Graph::path(n);
            let d = core_decomposition(&g);
            assert_eq!(d.degeneracy, 1, "path of {n}");
            assert_is_permutation(&d.ordering, n);
            // A degeneracy ordering of a path leaves each vertex ≤ 1
            // forward neighbour.
            assert_eq!(max_forward_degree(&g, &d.ordering), 1);
            assert!(d.core_numbers.iter().all(|&c| c == 1));
        }
    }

    #[test]
    fn clique_ordering_achieves_degeneracy_n_minus_one() {
        for n in [2usize, 4, 7] {
            let g = Graph::complete(n);
            let d = core_decomposition(&g);
            assert_eq!(d.degeneracy, n - 1, "K{n}");
            assert_is_permutation(&d.ordering, n);
            // In a clique the first vertex of any order sees all others
            // forward, so n-1 is both achieved and optimal.
            assert_eq!(max_forward_degree(&g, &d.ordering), n - 1);
        }
    }

    #[test]
    fn disconnected_components_decompose_independently() {
        // K4 on {0..3} ∪ path 4-5-6 ∪ isolated 7.
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (4, 5),
                (5, 6),
            ],
        );
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 3);
        assert_is_permutation(&d.ordering, 8);
        assert_eq!(max_forward_degree(&g, &d.ordering), 3);
        assert_eq!(&d.core_numbers[0..4], &[3, 3, 3, 3]);
        assert_eq!(&d.core_numbers[4..7], &[1, 1, 1]);
        assert_eq!(d.core_numbers[7], 0);
        // k-cores respect component boundaries.
        assert_eq!(k_core_vertices(&g, 3), vec![0, 1, 2, 3]);
        assert_eq!(k_core_vertices(&g, 1), (0..7).collect::<Vec<_>>());
        assert_eq!(k_core_vertices(&g, 0), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn k_core_extraction() {
        // Triangle {0,1,2} plus tail 2-3-4.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        assert_eq!(k_core_vertices(&g, 2), vec![0, 1, 2]);
        assert_eq!(k_core_vertices(&g, 1), vec![0, 1, 2, 3, 4]);
        assert!(k_core_vertices(&g, 3).is_empty());
    }
}
