//! Incremental graph construction.

use crate::graph::{Graph, VertexId};

/// Builder for [`Graph`]: collects undirected edges, removes self-loops and
/// duplicates, then produces the immutable CSR representation.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    adj: Vec<Vec<VertexId>>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices `0..n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices the builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are ignored. Duplicate
    /// insertions are removed when [`build`](Self::build) is called.
    ///
    /// # Panics
    /// Panics if `u` or `v` is not a valid vertex id.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for a graph with {} vertices",
            self.n
        );
        if u == v {
            return;
        }
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
    }

    /// Adds every edge from the iterator.
    pub fn add_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, edges: I) {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
    }

    /// Returns `true` if the edge has already been added (linear scan; meant
    /// for generator-side duplicate avoidance on small adjacency lists).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v || (u as usize) >= self.n || (v as usize) >= self.n {
            return false;
        }
        let (a, b) = if self.adj[u as usize].len() <= self.adj[v as usize].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize].contains(&b)
    }

    /// Finalises the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        Graph::from_adjacency(self.adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_expected_graph() {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (1, 2), (2, 3)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        assert!(b.has_edge(0, 1));
        assert!(b.has_edge(1, 0));
        assert!(!b.has_edge(1, 2));
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn self_loops_ignored() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
    }
}
