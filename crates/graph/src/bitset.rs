//! Word-parallel adjacency kernel for dense subproblems.
//!
//! The branch-and-bound searchers spend a large share of their time on
//! adjacency tests and subset-degree counts inside divide-and-conquer
//! subgraphs, which are small (bounded by `O(ω·d)` vertices) and relabelled
//! to dense ids `0..n`. On that shape a BBMC-style bitset encoding wins big:
//!
//! * [`AdjacencyMatrix`] — one packed `u64` row per vertex: `O(1)` edge
//!   tests, popcount-based `δ(v, H)` in `n/64` word operations, and
//!   mask-parallel connectivity BFS.
//! * [`BitSet`] — a fixed-capacity vertex-set mask supporting the AND /
//!   ANDNOT candidate-set algebra the kernel operates on.
//!
//! The matrix costs `n²/8` bytes, so it is only built below an adaptive
//! size/density threshold (see [`AdjacencyMatrix::adaptive_for`]); all
//! callers keep a sorted-slice fallback for graphs above it.

use crate::graph::{Graph, VertexId};

const WORD_BITS: usize = 64;

/// A fixed-capacity set of vertices packed into `u64` words.
///
/// Capacity is fixed at construction; all binary operations require equal
/// capacities (they panic otherwise, which always indicates mixing masks
/// from different (sub)graphs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    nbits: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set with capacity for vertices `0..n`.
    pub fn new(n: usize) -> Self {
        BitSet {
            nbits: n,
            words: vec![0u64; n.div_ceil(WORD_BITS)],
        }
    }

    /// Creates a set containing every vertex in `0..n`.
    pub fn full(n: usize) -> Self {
        let mut s = BitSet {
            nbits: n,
            words: vec![!0u64; n.div_ceil(WORD_BITS)],
        };
        s.trim_tail();
        s
    }

    /// Creates a set over `0..n` containing exactly `members`.
    pub fn from_members(n: usize, members: &[VertexId]) -> Self {
        let mut s = BitSet::new(n);
        for &v in members {
            s.insert(v);
        }
        s
    }

    /// Zeroes the bits above `nbits` so popcounts stay exact.
    fn trim_tail(&mut self) {
        let tail = self.nbits % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Capacity (the `n` the set was created with).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Adds `v` to the set.
    #[inline]
    pub fn insert(&mut self, v: VertexId) {
        self.words[v as usize / WORD_BITS] |= 1u64 << (v as usize % WORD_BITS);
    }

    /// Removes `v` from the set.
    #[inline]
    pub fn remove(&mut self, v: VertexId) {
        self.words[v as usize / WORD_BITS] &= !(1u64 << (v as usize % WORD_BITS));
    }

    /// Whether `v` is in the set.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        (self.words[v as usize / WORD_BITS] >> (v as usize % WORD_BITS)) & 1 == 1
    }

    /// Number of members (popcount over all words).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Re-dimensions the set for a universe of `0..n` and empties it,
    /// reusing the existing word buffer when it is large enough.
    ///
    /// This is the scratch-reuse counterpart of [`BitSet::new`]: searchers
    /// that process many subgraphs of different sizes call it once per
    /// subproblem instead of allocating a fresh mask.
    pub fn reset(&mut self, n: usize) {
        let words = n.div_ceil(WORD_BITS);
        self.words.clear();
        self.words.resize(words, 0u64);
        self.nbits = n;
    }

    /// Re-dimensions the set for a universe of `0..n` and fills it with
    /// every vertex, reusing the existing word buffer when possible
    /// (the scratch-reuse counterpart of [`BitSet::full`]).
    pub fn reset_full(&mut self, n: usize) {
        let words = n.div_ceil(WORD_BITS);
        self.words.clear();
        self.words.resize(words, !0u64);
        self.nbits = n;
        self.trim_tail();
    }

    /// The raw words of the mask (little-endian bit order within a word).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// In-place intersection: `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.nbits, other.nbits, "BitSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: `self &= !other` (ANDNOT).
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.nbits, other.nbits, "BitSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place union: `self |= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.nbits, other.nbits, "BitSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `|self ∩ other|` without materialising the intersection.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        assert_eq!(self.nbits, other.nbits, "BitSet capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &word)| {
            let base = (i * WORD_BITS) as u32;
            std::iter::successors((word != 0).then_some(word), |w| {
                let next = w & (w - 1);
                (next != 0).then_some(next)
            })
            .map(move |w| base + w.trailing_zeros())
        })
    }

    /// Collects the members into a sorted vector.
    pub fn to_vec(&self) -> Vec<VertexId> {
        self.iter().collect()
    }
}

/// A packed boolean adjacency matrix (symmetric, no self-loops) over dense
/// vertex ids `0..n`, one `u64`-block row per vertex.
#[derive(Clone, Debug)]
pub struct AdjacencyMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl AdjacencyMatrix {
    /// Builds the matrix from a graph. Memory is `n²/8` bytes, so this is
    /// intended for subgraphs of at most a few thousand vertices; see
    /// [`AdjacencyMatrix::recommended_for`] and
    /// [`AdjacencyMatrix::adaptive_for`].
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.num_vertices();
        let words_per_row = n.div_ceil(WORD_BITS);
        let mut bits = vec![0u64; n * words_per_row];
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                let row = u as usize * words_per_row;
                bits[row + (v as usize) / WORD_BITS] |= 1u64 << ((v as usize) % WORD_BITS);
            }
        }
        AdjacencyMatrix {
            n,
            words_per_row,
            bits,
        }
    }

    /// Whether building a matrix for a graph of `n` vertices is a sensible
    /// trade-off memory-wise (≤ 2 MiB of bits).
    pub fn recommended_for(n: usize) -> bool {
        n > 0 && n * n <= 16 * 1024 * 1024
    }

    /// Adaptive build heuristic used by the search stack: build the matrix
    /// when it fits the [`recommended_for`](Self::recommended_for) memory cap
    /// *and* the graph is either small (the `O(n²/64)` row zeroing is
    /// trivial) or dense enough (average degree ≥ 4) for the word-parallel
    /// degree counts to amortise the build. Very sparse large subproblems
    /// prune to almost nothing, so the sorted-slice path stays faster there.
    pub fn adaptive_for(n: usize, num_edges: usize) -> bool {
        Self::recommended_for(n) && (n <= 512 || num_edges >= n * 2)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The packed adjacency row of `u` (`words_per_row` words).
    #[inline]
    pub fn row(&self, u: VertexId) -> &[u64] {
        let start = u as usize * self.words_per_row;
        &self.bits[start..start + self.words_per_row]
    }

    /// O(1) adjacency test.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let row = u as usize * self.words_per_row;
        (self.bits[row + (v as usize) / WORD_BITS] >> ((v as usize) % WORD_BITS)) & 1 == 1
    }

    /// Number of neighbours of `u` among the vertex set `set`.
    pub fn degree_in(&self, u: VertexId, set: &[VertexId]) -> usize {
        set.iter()
            .filter(|&&v| v != u && self.has_edge(u, v))
            .count()
    }

    /// `δ(u, mask)` — popcount of `row(u) & mask`. Since the matrix has no
    /// self-loops, `u`'s own membership in `mask` never counts.
    ///
    /// The popcount loop is batched over 4-word chunks with independent
    /// accumulators: the chunks have no loop-carried dependency, which lets
    /// the compiler autovectorise the AND+popcount body (`vpand` +
    /// `vpopcntq`-class code on AVX-capable targets) instead of chaining
    /// scalar `popcnt` through one accumulator.
    #[inline]
    pub fn degree_in_mask(&self, u: VertexId, mask: &BitSet) -> usize {
        debug_assert_eq!(mask.capacity(), self.n);
        popcount_and2(self.row(u), mask.words())
    }

    /// Number of common neighbours of `u` and `v` within `mask`:
    /// `|Γ(u) ∩ Γ(v) ∩ mask|`. Batched like
    /// [`degree_in_mask`](Self::degree_in_mask).
    pub fn common_neighbors_in_mask(&self, u: VertexId, v: VertexId, mask: &BitSet) -> usize {
        debug_assert_eq!(mask.capacity(), self.n);
        popcount_and3(self.row(u), self.row(v), mask.words())
    }

    /// Whether the subgraph induced by `mask` is connected, starting the BFS
    /// at `start` (which must be in `mask`). `member_count` is `mask.len()`,
    /// passed in because every caller already knows it.
    ///
    /// Each BFS expansion is a word-parallel `row & mask & !visited`, so the
    /// whole check is `O(|mask| · n/64)` word operations.
    pub fn is_connected_within(&self, mask: &BitSet, start: VertexId, member_count: usize) -> bool {
        let mut visited = BitSet::new(self.n);
        let mut stack = Vec::new();
        self.is_connected_within_in(mask, start, member_count, &mut visited, &mut stack)
    }

    /// [`is_connected_within`](Self::is_connected_within) with caller-owned
    /// scratch: `visited` is re-dimensioned (not re-allocated once warm) and
    /// `stack` is cleared here, so predicate-heavy callers can run the BFS
    /// without touching the heap.
    pub fn is_connected_within_in(
        &self,
        mask: &BitSet,
        start: VertexId,
        member_count: usize,
        visited: &mut BitSet,
        stack: &mut Vec<VertexId>,
    ) -> bool {
        debug_assert!(mask.contains(start));
        if member_count <= 1 {
            return true;
        }
        visited.reset(self.n);
        visited.insert(start);
        stack.clear();
        stack.push(start);
        let mut reached = 1usize;
        while let Some(v) = stack.pop() {
            let row = self.row(v);
            for (i, &r) in row.iter().enumerate() {
                let fresh = r & mask.words[i] & !visited.words[i];
                if fresh == 0 {
                    continue;
                }
                visited.words[i] |= fresh;
                reached += fresh.count_ones() as usize;
                let base = (i * WORD_BITS) as u32;
                let mut w = fresh;
                while w != 0 {
                    stack.push(base + w.trailing_zeros());
                    w &= w - 1;
                }
            }
            if reached == member_count {
                return true;
            }
        }
        reached == member_count
    }
}

/// `popcount(a & b)` over equal-length word slices (`b` must be at least as
/// long as `a`), 4-word-chunked with independent accumulators
/// (autovectorisation-friendly form; the ROADMAP SIMD item, kept in stable
/// Rust rather than `std::simd`).
///
/// # Panics
/// Panics when `b` is shorter than `a` — callers always derive both slices
/// from the same graph, so a mismatch means a row and a mask from different
/// (sub)graphs were mixed.
#[inline]
pub fn popcount_and2(a: &[u64], b: &[u64]) -> usize {
    assert!(
        b.len() >= a.len(),
        "popcount_and2: slice length mismatch ({} vs {}); \
         the row and the mask must come from the same (sub)graph",
        a.len(),
        b.len()
    );
    let mut acc = [0u32; 4];
    let (a4, a_tail) = a.split_at(a.len() - a.len() % 4);
    let (b4, b_tail) = b.split_at(a4.len());
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        acc[0] += (ca[0] & cb[0]).count_ones();
        acc[1] += (ca[1] & cb[1]).count_ones();
        acc[2] += (ca[2] & cb[2]).count_ones();
        acc[3] += (ca[3] & cb[3]).count_ones();
    }
    let mut total = acc.iter().map(|&c| c as usize).sum::<usize>();
    for (x, y) in a_tail.iter().zip(b_tail) {
        total += (x & y).count_ones() as usize;
    }
    total
}

/// `popcount(a & b & c)` over equal-length word slices, 4-word-chunked like
/// [`popcount_and2`].
///
/// # Panics
/// Panics when `b` or `c` is shorter than `a` — a length mismatch means rows
/// and masks from different (sub)graphs were mixed.
#[inline]
pub fn popcount_and3(a: &[u64], b: &[u64], c: &[u64]) -> usize {
    assert!(
        b.len() >= a.len() && c.len() >= a.len(),
        "popcount_and3: slice length mismatch ({} vs {} vs {}); \
         the rows and the mask must come from the same (sub)graph",
        a.len(),
        b.len(),
        c.len()
    );
    let mut acc = [0u32; 4];
    let split = a.len() - a.len() % 4;
    let (a4, a_tail) = a.split_at(split);
    let (b4, b_tail) = b.split_at(split);
    let (c4, c_tail) = c.split_at(split);
    for ((ca, cb), cc) in a4
        .chunks_exact(4)
        .zip(b4.chunks_exact(4))
        .zip(c4.chunks_exact(4))
    {
        acc[0] += (ca[0] & cb[0] & cc[0]).count_ones();
        acc[1] += (ca[1] & cb[1] & cc[1]).count_ones();
        acc[2] += (ca[2] & cb[2] & cc[2]).count_ones();
        acc[3] += (ca[3] & cb[3] & cc[3]).count_ones();
    }
    let mut total = acc.iter().map(|&c| c as usize).sum::<usize>();
    for ((x, y), z) in a_tail.iter().zip(b_tail).zip(c_tail) {
        total += (x & y & z).count_ones() as usize;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi_gnm;

    #[test]
    fn matches_graph_adjacency() {
        let g = erdos_renyi_gnm(60, 300, 5);
        let m = AdjacencyMatrix::from_graph(&g);
        assert_eq!(m.num_vertices(), 60);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(m.has_edge(u, v), g.has_edge(u, v), "mismatch at ({u},{v})");
            }
        }
    }

    #[test]
    fn degree_in_matches_graph() {
        let g = erdos_renyi_gnm(40, 200, 9);
        let m = AdjacencyMatrix::from_graph(&g);
        let set: Vec<u32> = (0..40).step_by(3).collect();
        let mask = BitSet::from_members(40, &set);
        for u in g.vertices() {
            assert_eq!(m.degree_in(u, &set), g.degree_in(u, &set));
            // The mask-based count agrees except it never counts u itself,
            // which g.degree_in also skips.
            assert_eq!(m.degree_in_mask(u, &mask), g.degree_in(u, &set));
        }
    }

    #[test]
    fn empty_and_single_vertex() {
        let m = AdjacencyMatrix::from_graph(&Graph::empty(1));
        assert!(!m.has_edge(0, 0));
        let m0 = AdjacencyMatrix::from_graph(&Graph::empty(0));
        assert_eq!(m0.num_vertices(), 0);
    }

    #[test]
    fn recommendation_threshold() {
        assert!(AdjacencyMatrix::recommended_for(100));
        assert!(AdjacencyMatrix::recommended_for(4000));
        assert!(!AdjacencyMatrix::recommended_for(100_000));
        assert!(!AdjacencyMatrix::recommended_for(0));
    }

    #[test]
    fn adaptive_threshold_gates_on_density() {
        // Small graphs are always built, regardless of density.
        assert!(AdjacencyMatrix::adaptive_for(100, 0));
        assert!(AdjacencyMatrix::adaptive_for(512, 1));
        // Larger graphs need average degree >= 4 (m >= 2n).
        assert!(!AdjacencyMatrix::adaptive_for(2000, 100));
        assert!(!AdjacencyMatrix::adaptive_for(2000, 1500)); // avg degree 1.5
        assert!(!AdjacencyMatrix::adaptive_for(2000, 3999));
        assert!(AdjacencyMatrix::adaptive_for(2000, 4000));
        // Memory cap always applies.
        assert!(!AdjacencyMatrix::adaptive_for(100_000, 10_000_000));
        assert!(!AdjacencyMatrix::adaptive_for(0, 0));
    }

    #[test]
    fn word_boundary_vertices() {
        // Vertices 63, 64, 65 cross the u64 word boundary.
        let g = Graph::from_edges(130, &[(63, 64), (64, 65), (0, 129)]);
        let m = AdjacencyMatrix::from_graph(&g);
        assert!(m.has_edge(63, 64));
        assert!(m.has_edge(64, 63));
        assert!(m.has_edge(64, 65));
        assert!(m.has_edge(129, 0));
        assert!(!m.has_edge(63, 65));
    }

    #[test]
    fn bitset_insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        for v in [0u32, 63, 64, 65, 129] {
            s.insert(v);
            assert!(s.contains(v));
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.to_vec(), vec![0, 63, 64, 65, 129]);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 4);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn bitset_full_respects_capacity() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert_eq!(s.capacity(), 70);
        assert!(s.contains(69));
        let exact = BitSet::full(64);
        assert_eq!(exact.len(), 64);
        let empty = BitSet::full(0);
        assert!(empty.is_empty());
    }

    #[test]
    fn bitset_algebra() {
        let a = BitSet::from_members(100, &[1, 2, 3, 70, 99]);
        let b = BitSet::from_members(100, &[2, 3, 4, 99]);
        let mut and = a.clone();
        and.intersect_with(&b);
        assert_eq!(and.to_vec(), vec![2, 3, 99]);
        let mut diff = a.clone();
        diff.subtract(&b);
        assert_eq!(diff.to_vec(), vec![1, 70]);
        let mut or = a.clone();
        or.union_with(&b);
        assert_eq!(or.to_vec(), vec![1, 2, 3, 4, 70, 99]);
        assert_eq!(a.intersection_len(&b), 3);
    }

    #[test]
    fn bitset_iter_empty_words() {
        // Members only in the last word: iteration must skip empty words.
        let s = BitSet::from_members(200, &[190, 199]);
        assert_eq!(s.to_vec(), vec![190, 199]);
        assert_eq!(BitSet::new(200).to_vec(), Vec::<u32>::new());
    }

    #[test]
    fn connectivity_within_mask() {
        // Path 0-1-2-3-4 plus isolated 5.
        let g = Graph::path(6);
        let m = AdjacencyMatrix::from_graph(&g);
        let all = BitSet::from_members(6, &[0, 1, 2, 3, 4]);
        assert!(m.is_connected_within(&all, 0, 5));
        // Removing the middle vertex disconnects the path.
        let split = BitSet::from_members(6, &[0, 1, 3, 4]);
        assert!(!m.is_connected_within(&split, 0, 4));
        // A singleton is connected.
        let single = BitSet::from_members(6, &[5]);
        assert!(m.is_connected_within(&single, 5, 1));
    }

    #[test]
    fn connectivity_matches_bfs_on_random_graphs() {
        use crate::connectivity::is_connected_subset;
        for seed in 0..6 {
            let g = erdos_renyi_gnm(50, 80, seed);
            let m = AdjacencyMatrix::from_graph(&g);
            let subset: Vec<u32> = (0..50u32)
                .filter(|v| !(v * 7 + seed as u32).is_multiple_of(3))
                .collect();
            let mask = BitSet::from_members(50, &subset);
            assert_eq!(
                m.is_connected_within(&mask, subset[0], subset.len()),
                is_connected_subset(&g, &subset),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn chunked_popcounts_match_scalar_reference() {
        // Lengths around the 4-word chunk boundary, including the empty and
        // remainder-only cases, with irregular bit patterns.
        let mut x = 0x243F6A8885A308D3u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for len in 0..=11usize {
            let a: Vec<u64> = (0..len).map(|_| next()).collect();
            let b: Vec<u64> = (0..len).map(|_| next()).collect();
            let c: Vec<u64> = (0..len).map(|_| next()).collect();
            let and2: usize = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x & y).count_ones() as usize)
                .sum();
            let and3: usize = a
                .iter()
                .zip(&b)
                .zip(&c)
                .map(|((x, y), z)| (x & y & z).count_ones() as usize)
                .sum();
            assert_eq!(popcount_and2(&a, &b), and2, "and2 len={len}");
            assert_eq!(popcount_and3(&a, &b, &c), and3, "and3 len={len}");
        }
    }

    #[test]
    #[should_panic(expected = "popcount_and2: slice length mismatch")]
    fn popcount_and2_rejects_short_mask() {
        popcount_and2(&[1, 2, 3], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "popcount_and3: slice length mismatch")]
    fn popcount_and3_rejects_short_mask() {
        popcount_and3(&[1, 2], &[1, 2], &[1]);
    }

    #[test]
    fn degree_in_mask_ignores_self_membership() {
        let g = Graph::complete(10);
        let m = AdjacencyMatrix::from_graph(&g);
        let mask = BitSet::from_members(10, &[0, 1, 2, 3]);
        // Vertex 0 is in the mask but has no self-loop: degree is 3, not 4.
        assert_eq!(m.degree_in_mask(0, &mask), 3);
        assert_eq!(m.degree_in_mask(9, &mask), 4);
    }
}
