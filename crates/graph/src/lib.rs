//! Graph substrate for maximal quasi-clique enumeration.
//!
//! This crate provides everything the enumeration algorithms in `mqce-core`
//! need from a graph library, built from scratch:
//!
//! * [`Graph`] — an immutable, undirected, simple graph in a compact
//!   CSR-like representation with sorted adjacency lists.
//! * [`GraphBuilder`] — incremental construction with duplicate-edge and
//!   self-loop removal.
//! * [`bitset`] — the word-parallel adjacency kernel ([`AdjacencyMatrix`],
//!   [`BitSet`]): packed bit-matrix rows with popcount degree counts, built
//!   for dense subproblems below an adaptive threshold.
//! * [`generators`] — synthetic workload generators (Erdős–Rényi, planted
//!   quasi-cliques, power-law community graphs, grids, …) used to stand in
//!   for the paper's real datasets.
//! * [`core_decomp`] — k-core decomposition, core numbers, degeneracy and the
//!   degeneracy ordering used by the divide-and-conquer framework.
//! * [`subgraph`] — induced subgraphs with local/global vertex-id mappings and
//!   2-hop neighbourhood extraction.
//! * [`scratch`] — reusable per-worker buffers ([`SubproblemScratch`]) for
//!   allocation-free subgraph extraction on the divide-and-conquer hot path.
//! * [`mod@slice`] — checksummed single-line serialisation of induced subgraph
//!   slices ([`GraphSlice`]) for the multi-process shard protocol.
//! * [`connectivity`] — BFS connectivity and connected components.
//! * [`delta`] — normalised edge-update batches ([`GraphDelta`]) with a
//!   slack-aware CSR rebuild, dirty two-hop closures, and incremental
//!   core-decomposition maintenance for the incremental enumeration layer.
//! * [`edge_list`] — plain-text edge-list parsing and serialisation.
//! * [`wal`] — an append-only write-ahead log of [`GraphDelta`] batches
//!   (length-prefixed, checksummed, truncated-tail-tolerant) backing the
//!   serve daemon's crash recovery.
//! * [`stats`] — summary statistics matching the columns of Table 1 of the
//!   paper (|V|, |E|, density, max degree, degeneracy).
//!
//! Vertices are dense `u32` identifiers in `0..n`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
mod builder;
pub mod connectivity;
pub mod core_decomp;
pub mod delta;
pub mod edge_list;
pub mod formats;
pub mod generators;
mod graph;
pub mod ordering;
pub mod scratch;
pub mod slice;
pub mod stats;
pub mod subgraph;
pub mod wal;

pub use bitset::{AdjacencyMatrix, BitSet};
pub use builder::GraphBuilder;
pub use delta::{
    canonicalize_edges, dirty_two_hop_closure, update_core_decomposition, CoreUpdate, GraphDelta,
};
pub use graph::{Graph, VertexId};
pub use scratch::SubproblemScratch;
pub use slice::{GraphSlice, SliceDecodeError};
pub use stats::GraphStats;
pub use subgraph::InducedSubgraph;
pub use wal::WriteAheadLog;
