//! Readers and writers for common graph interchange formats.
//!
//! Besides the plain edge list ([`crate::edge_list`]), two formats show up
//! constantly when exchanging benchmark graphs with other cohesive-subgraph
//! miners (including the reference implementations the paper compares with):
//!
//! * **DIMACS** (`p edge n m` header, `e u v` lines, 1-based ids) — the
//!   format used by the clique/colouring benchmark suites.
//! * **METIS** (header `n m [fmt]`, then one adjacency line per vertex,
//!   1-based ids) — the format used by graph partitioners and by many k-core
//!   and k-plex miners.
//!
//! Both readers ignore weights, drop self loops and duplicate edges, and
//! produce the same compact [`Graph`] representation as the rest of the crate.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::graph::{Graph, VertexId};

/// Errors produced while parsing DIMACS or METIS input.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A structural problem with the input (missing header, bad token, vertex
    /// id out of range, …).
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "I/O error: {e}"),
            FormatError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Io(e) => Some(e),
            FormatError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for FormatError {
    fn from(e: std::io::Error) -> Self {
        FormatError::Io(e)
    }
}

fn parse_error(line: usize, message: impl Into<String>) -> FormatError {
    FormatError::Parse {
        line,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// DIMACS
// ---------------------------------------------------------------------------

/// Parses a graph in DIMACS `.col` / `.clq` format from any reader.
///
/// Recognised lines: `c …` comments, a single `p edge n m` (or `p col n m`)
/// problem line, and `e u v` edge lines with 1-based vertex ids. Edge lines
/// appearing before the problem line are rejected.
pub fn read_dimacs<R: Read>(reader: R) -> Result<Graph, FormatError> {
    let reader = BufReader::new(reader);
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_vertices = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        match parts.next() {
            Some("p") => {
                if builder.is_some() {
                    return Err(parse_error(lineno, "duplicate problem line"));
                }
                let _kind = parts
                    .next()
                    .ok_or_else(|| parse_error(lineno, "problem line missing format"))?;
                let n: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_error(lineno, "problem line missing vertex count"))?;
                let _m: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_error(lineno, "problem line missing edge count"))?;
                declared_vertices = n;
                builder = Some(GraphBuilder::new(n));
            }
            Some("e") => {
                let builder = builder
                    .as_mut()
                    .ok_or_else(|| parse_error(lineno, "edge line before problem line"))?;
                let u: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_error(lineno, "edge line missing first endpoint"))?;
                let v: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_error(lineno, "edge line missing second endpoint"))?;
                if u == 0 || v == 0 || u > declared_vertices || v > declared_vertices {
                    return Err(parse_error(
                        lineno,
                        format!("vertex id out of range 1..={declared_vertices}"),
                    ));
                }
                if u != v {
                    builder.add_edge((u - 1) as VertexId, (v - 1) as VertexId);
                }
            }
            Some(other) => {
                return Err(parse_error(lineno, format!("unknown line type {other:?}")));
            }
            None => unreachable!("empty lines are skipped above"),
        }
    }
    let builder = builder.ok_or_else(|| parse_error(0, "no problem line found"))?;
    Ok(builder.build())
}

/// Loads a DIMACS graph from a file path.
pub fn load_dimacs<P: AsRef<Path>>(path: P) -> Result<Graph, FormatError> {
    let file = std::fs::File::open(path)?;
    read_dimacs(file)
}

/// Writes the graph in DIMACS `.clq` format (1-based ids).
pub fn write_dimacs<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "c generated by mqce-graph")?;
    writeln!(writer, "p edge {} {}", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(writer, "e {} {}", u + 1, v + 1)?;
    }
    Ok(())
}

/// Saves the graph in DIMACS format to a file path.
pub fn save_dimacs<P: AsRef<Path>>(g: &Graph, path: P) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_dimacs(g, std::io::BufWriter::new(file))
}

// ---------------------------------------------------------------------------
// METIS
// ---------------------------------------------------------------------------

/// Parses a graph in METIS adjacency format from any reader.
///
/// The header is `n m [fmt [ncon]]`; only unweighted graphs (`fmt` of `0` or
/// absent) are supported. Each of the following `n` lines lists the 1-based
/// neighbours of one vertex. `%` comment lines are skipped. The reader is
/// tolerant of one-directional listings: an edge is added as soon as either
/// endpoint mentions the other.
pub fn read_metis<R: Read>(reader: R) -> Result<Graph, FormatError> {
    let reader = BufReader::new(reader);
    let mut lines = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim().to_string();
        if trimmed.starts_with('%') {
            continue;
        }
        lines.push((idx + 1, trimmed));
    }
    let (header_lineno, header) = lines
        .first()
        .ok_or_else(|| parse_error(0, "empty METIS input"))?;
    let mut header_parts = header.split_whitespace();
    let n: usize = header_parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| parse_error(*header_lineno, "header missing vertex count"))?;
    let _m: usize = header_parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| parse_error(*header_lineno, "header missing edge count"))?;
    if let Some(fmt) = header_parts.next() {
        if fmt != "0" && fmt != "00" && fmt != "000" {
            return Err(parse_error(
                *header_lineno,
                format!("weighted METIS graphs are not supported (fmt {fmt:?})"),
            ));
        }
    }
    let adjacency_lines = &lines[1..];
    if adjacency_lines.len() < n {
        return Err(parse_error(
            *header_lineno,
            format!(
                "header declares {n} vertices but only {} adjacency lines follow",
                adjacency_lines.len()
            ),
        ));
    }
    let mut builder = GraphBuilder::new(n);
    for (vertex, (lineno, line)) in adjacency_lines.iter().take(n).enumerate() {
        for token in line.split_whitespace() {
            let neighbor: usize = token
                .parse()
                .map_err(|_| parse_error(*lineno, format!("bad neighbour id {token:?}")))?;
            if neighbor == 0 || neighbor > n {
                return Err(parse_error(
                    *lineno,
                    format!("neighbour id {neighbor} out of range 1..={n}"),
                ));
            }
            if neighbor - 1 != vertex {
                builder.add_edge(vertex as VertexId, (neighbor - 1) as VertexId);
            }
        }
    }
    Ok(builder.build())
}

/// Loads a METIS graph from a file path.
pub fn load_metis<P: AsRef<Path>>(path: P) -> Result<Graph, FormatError> {
    let file = std::fs::File::open(path)?;
    read_metis(file)
}

/// Writes the graph in METIS adjacency format (1-based ids, unweighted).
pub fn write_metis<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "{} {}", g.num_vertices(), g.num_edges())?;
    for v in g.vertices() {
        let line: Vec<String> = g.neighbors(v).iter().map(|u| (u + 1).to_string()).collect();
        writeln!(writer, "{}", line.join(" "))?;
    }
    Ok(())
}

/// Saves the graph in METIS format to a file path.
pub fn save_metis<P: AsRef<Path>>(g: &Graph, path: P) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_metis(g, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimacs_basic_parse() {
        let input = "c a comment\np edge 4 3\ne 1 2\ne 2 3\ne 3 4\n";
        let g = read_dimacs(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn dimacs_rejects_edge_before_header() {
        let input = "e 1 2\np edge 3 1\n";
        assert!(read_dimacs(input.as_bytes()).is_err());
    }

    #[test]
    fn dimacs_rejects_out_of_range_ids() {
        let input = "p edge 3 1\ne 1 5\n";
        assert!(read_dimacs(input.as_bytes()).is_err());
        let zero = "p edge 3 1\ne 0 1\n";
        assert!(read_dimacs(zero.as_bytes()).is_err());
    }

    #[test]
    fn dimacs_rejects_duplicate_header_and_unknown_lines() {
        let dup = "p edge 2 1\np edge 2 1\ne 1 2\n";
        assert!(read_dimacs(dup.as_bytes()).is_err());
        let unknown = "p edge 2 1\nx 1 2\n";
        assert!(read_dimacs(unknown.as_bytes()).is_err());
        let empty = "c only comments\n";
        assert!(read_dimacs(empty.as_bytes()).is_err());
    }

    #[test]
    fn dimacs_drops_self_loops_and_duplicates() {
        let input = "p edge 3 4\ne 1 1\ne 1 2\ne 2 1\ne 2 3\n";
        let g = read_dimacs(input.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = Graph::paper_figure1();
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let parsed = read_dimacs(buf.as_slice()).unwrap();
        assert_eq!(parsed.num_vertices(), g.num_vertices());
        assert_eq!(parsed.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(parsed.has_edge(u, v));
        }
    }

    #[test]
    fn metis_basic_parse() {
        // Triangle plus a pendant vertex, symmetric adjacency lists.
        let input = "% comment\n4 4\n2 3\n1 3 4\n1 2\n2\n";
        let g = read_metis(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn metis_tolerates_one_directional_lists() {
        let input = "3 2\n2 3\n\n\n";
        let g = read_metis(input.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn metis_rejects_weighted_and_truncated() {
        let weighted = "3 2 011\n2 1\n1 1\n\n";
        assert!(read_metis(weighted.as_bytes()).is_err());
        let truncated = "4 2\n2\n1\n";
        assert!(read_metis(truncated.as_bytes()).is_err());
        let bad_id = "2 1\n5\n\n";
        assert!(read_metis(bad_id.as_bytes()).is_err());
        assert!(read_metis("".as_bytes()).is_err());
    }

    #[test]
    fn metis_roundtrip() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let parsed = read_metis(buf.as_slice()).unwrap();
        assert_eq!(parsed.num_vertices(), g.num_vertices());
        assert_eq!(parsed.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(parsed.has_edge(u, v));
        }
    }

    #[test]
    fn file_roundtrip_both_formats() {
        let g = Graph::cycle(8);
        let dir = std::env::temp_dir().join("mqce_formats_test");
        std::fs::create_dir_all(&dir).unwrap();
        let dimacs_path = dir.join("cycle8.clq");
        let metis_path = dir.join("cycle8.metis");
        save_dimacs(&g, &dimacs_path).unwrap();
        save_metis(&g, &metis_path).unwrap();
        assert_eq!(load_dimacs(&dimacs_path).unwrap().num_edges(), 8);
        assert_eq!(load_metis(&metis_path).unwrap().num_edges(), 8);
        std::fs::remove_file(&dimacs_path).ok();
        std::fs::remove_file(&metis_path).ok();
    }

    #[test]
    fn error_display_mentions_line() {
        let err = read_dimacs("p edge 2 1\ne 1 9\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"));
        let io_err = FormatError::from(std::io::Error::other("boom"));
        assert!(io_err.to_string().contains("I/O"));
    }
}
