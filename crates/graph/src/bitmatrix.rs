//! Dense adjacency-matrix bitset for small graphs.
//!
//! The branch-and-bound searchers spend a large share of their time on
//! adjacency tests inside divide-and-conquer subgraphs, which are small
//! (bounded by `O(ω·d)` vertices). For those, a packed bit matrix answers
//! `has_edge` in O(1) with a single word load instead of a binary search over
//! the CSR adjacency list.

use crate::graph::{Graph, VertexId};

/// A packed boolean adjacency matrix (symmetric, no self-loops).
#[derive(Clone, Debug)]
pub struct AdjacencyMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl AdjacencyMatrix {
    /// Builds the matrix from a graph. Memory is `n²/8` bytes, so this is
    /// intended for subgraphs of at most a few thousand vertices; see
    /// [`AdjacencyMatrix::recommended_for`].
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.num_vertices();
        let words_per_row = n.div_ceil(64);
        let mut bits = vec![0u64; n * words_per_row];
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                let row = u as usize * words_per_row;
                bits[row + (v as usize) / 64] |= 1u64 << ((v as usize) % 64);
            }
        }
        AdjacencyMatrix {
            n,
            words_per_row,
            bits,
        }
    }

    /// Whether building a matrix for a graph of `n` vertices is a sensible
    /// trade-off (≤ 2 MiB of bits).
    pub fn recommended_for(n: usize) -> bool {
        n > 0 && n * n <= 16 * 1024 * 1024
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// O(1) adjacency test.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let row = u as usize * self.words_per_row;
        (self.bits[row + (v as usize) / 64] >> ((v as usize) % 64)) & 1 == 1
    }

    /// Number of neighbours of `u` among the vertex set `set`.
    pub fn degree_in(&self, u: VertexId, set: &[VertexId]) -> usize {
        set.iter()
            .filter(|&&v| v != u && self.has_edge(u, v))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi_gnm;

    #[test]
    fn matches_graph_adjacency() {
        let g = erdos_renyi_gnm(60, 300, 5);
        let m = AdjacencyMatrix::from_graph(&g);
        assert_eq!(m.num_vertices(), 60);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(m.has_edge(u, v), g.has_edge(u, v), "mismatch at ({u},{v})");
            }
        }
    }

    #[test]
    fn degree_in_matches_graph() {
        let g = erdos_renyi_gnm(40, 200, 9);
        let m = AdjacencyMatrix::from_graph(&g);
        let set: Vec<u32> = (0..40).step_by(3).collect();
        for u in g.vertices() {
            assert_eq!(m.degree_in(u, &set), g.degree_in(u, &set));
        }
    }

    #[test]
    fn empty_and_single_vertex() {
        let m = AdjacencyMatrix::from_graph(&Graph::empty(1));
        assert!(!m.has_edge(0, 0));
        let m0 = AdjacencyMatrix::from_graph(&Graph::empty(0));
        assert_eq!(m0.num_vertices(), 0);
    }

    #[test]
    fn recommendation_threshold() {
        assert!(AdjacencyMatrix::recommended_for(100));
        assert!(AdjacencyMatrix::recommended_for(4000));
        assert!(!AdjacencyMatrix::recommended_for(100_000));
        assert!(!AdjacencyMatrix::recommended_for(0));
    }

    #[test]
    fn word_boundary_vertices() {
        // Vertices 63, 64, 65 cross the u64 word boundary.
        let g = Graph::from_edges(130, &[(63, 64), (64, 65), (0, 129)]);
        let m = AdjacencyMatrix::from_graph(&g);
        assert!(m.has_edge(63, 64));
        assert!(m.has_edge(64, 63));
        assert!(m.has_edge(64, 65));
        assert!(m.has_edge(129, 0));
        assert!(!m.has_edge(63, 65));
    }
}
