//! Synthetic graph generators.
//!
//! The paper evaluates on real konect.cc datasets plus Erdős–Rényi graphs.
//! The real datasets are not redistributable here, so the benchmark suite uses
//! these generators to produce graphs with matching qualitative structure
//! (power-law degree sequences, dense planted communities, sparse road-like
//! lattices); see `DESIGN.md` §5 for the substitution rationale.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::graph::{Graph, VertexId};

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges drawn uniformly.
///
/// If `m` exceeds the number of possible edges the complete graph is returned.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if n < 2 {
        return b.build();
    }
    // For dense requests fall back to sampling from the full edge list.
    if m * 3 > max_edges {
        let mut all: Vec<(VertexId, VertexId)> = Vec::with_capacity(max_edges);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                all.push((u, v));
            }
        }
        all.shuffle(&mut rng);
        b.add_edges(all.into_iter().take(m));
        return b.build();
    }
    let mut added = 0usize;
    while added < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v && !b.has_edge(u, v) {
            b.add_edge(u, v);
            added += 1;
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)`: each edge independently present with probability `p`.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi graph parameterised by *edge density* `|E|/|V|` as in the
/// paper's synthetic experiments (Figure 10): `m = ⌈density · n⌉` edges.
pub fn erdos_renyi_density(n: usize, density: f64, seed: u64) -> Graph {
    let m = (density * n as f64).round().max(0.0) as usize;
    erdos_renyi_gnm(n, m, seed)
}

/// Barabási–Albert style preferential attachment: each new vertex attaches to
/// `m_attach` existing vertices chosen proportionally to degree. Produces the
/// heavy-tailed degree distributions typical of the paper's social-network
/// datasets (Hyves, Flixster, …).
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m_attach = m_attach.max(1);
    let mut b = GraphBuilder::new(n);
    if n == 0 {
        return b.build();
    }
    let seed_size = (m_attach + 1).min(n);
    // Start from a small clique so early attachments have targets.
    for u in 0..seed_size as VertexId {
        for v in (u + 1)..seed_size as VertexId {
            b.add_edge(u, v);
        }
    }
    // Repeated-endpoint list for proportional-to-degree sampling.
    let mut endpoints: Vec<VertexId> = Vec::new();
    for u in 0..seed_size as VertexId {
        for v in (u + 1)..seed_size as VertexId {
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in seed_size..n {
        let v = v as VertexId;
        let mut targets = Vec::with_capacity(m_attach);
        let mut guard = 0;
        while targets.len() < m_attach.min(v as usize) && guard < 100 * m_attach {
            guard += 1;
            let t = if endpoints.is_empty() {
                rng.gen_range(0..v)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Description of one planted dense group.
#[derive(Clone, Copy, Debug)]
pub struct PlantedGroup {
    /// Number of vertices in the group.
    pub size: usize,
    /// Probability of each intra-group edge (e.g. `0.95` plants near-cliques
    /// that are `0.9`-quasi-cliques with high probability).
    pub density: f64,
}

/// Plants dense groups on top of a sparse Erdős–Rényi background.
///
/// The first `sum(sizes)` vertices are partitioned into consecutive groups;
/// the remaining vertices form the background. Background edges are added with
/// probability `background_p` over all vertex pairs (including group members,
/// so groups are embedded, not isolated).
pub fn planted_quasi_cliques(
    n: usize,
    background_p: f64,
    groups: &[PlantedGroup],
    seed: u64,
) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Background.
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen_bool(background_p.clamp(0.0, 1.0)) {
                b.add_edge(u, v);
            }
        }
    }
    // Planted groups.
    let mut start = 0usize;
    for group in groups {
        let end = (start + group.size).min(n);
        for u in start..end {
            for v in (u + 1)..end {
                if rng.gen_bool(group.density.clamp(0.0, 1.0)) {
                    b.add_edge(u as VertexId, v as VertexId);
                }
            }
        }
        start = end;
        if start >= n {
            break;
        }
    }
    b.build()
}

/// Parameters for [`community_graph`].
#[derive(Clone, Copy, Debug)]
pub struct CommunityGraphParams {
    /// Number of vertices.
    pub n: usize,
    /// Number of communities the vertices are partitioned into.
    pub num_communities: usize,
    /// Intra-community edge probability.
    pub p_intra: f64,
    /// Expected number of inter-community edges per vertex.
    pub inter_degree: f64,
}

/// A planted-partition ("LFR-like") community graph: dense communities plus a
/// sparse random background between communities. This is the stand-in used for
/// the paper's collaboration / communication / social datasets, which owe
/// their large maximal quasi-cliques to exactly this kind of community
/// structure.
pub fn community_graph(params: CommunityGraphParams, seed: u64) -> Graph {
    let CommunityGraphParams {
        n,
        num_communities,
        p_intra,
        inter_degree,
    } = params;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if n == 0 {
        return b.build();
    }
    let num_communities = num_communities.max(1).min(n);
    // Heterogeneous but bounded community sizes: each community gets between
    // 0.5× and 1.5× the average size, so no single community degenerates into
    // a huge dense block (which would make the enumeration workload explode
    // far beyond what the corresponding real datasets exhibit).
    let avg = n / num_communities;
    let mut boundaries = vec![0usize];
    let mut cursor = 0usize;
    for i in 0..num_communities {
        let remaining_communities = num_communities - i;
        let remaining_vertices = n - cursor;
        let size = if remaining_communities == 1 || remaining_vertices <= 1 {
            remaining_vertices
        } else {
            // Both bounds are clamped to the vertices that are actually left,
            // so the sampled range is never empty even when earlier
            // communities drew large sizes.
            let lo = (avg / 2).max(1).min(remaining_vertices);
            let hi = (avg + avg / 2).max(lo).min(remaining_vertices);
            rng.gen_range(lo..=hi)
        };
        cursor += size;
        boundaries.push(cursor);
        if cursor >= n {
            break;
        }
    }
    if *boundaries.last().unwrap() < n {
        boundaries.push(n);
    }

    let mut community = vec![0usize; n];
    for (cid, w) in boundaries.windows(2).enumerate() {
        for item in community.iter_mut().take(w[1]).skip(w[0]) {
            *item = cid;
        }
    }

    // Intra-community edges.
    for w in boundaries.windows(2) {
        let (start, end) = (w[0], w[1]);
        for u in start..end {
            for v in (u + 1)..end {
                if rng.gen_bool(p_intra.clamp(0.0, 1.0)) {
                    b.add_edge(u as VertexId, v as VertexId);
                }
            }
        }
    }
    // Inter-community edges: `inter_degree * n / 2` random pairs across
    // communities.
    let inter_edges = ((inter_degree * n as f64) / 2.0).round() as usize;
    let mut attempts = 0usize;
    let mut added = 0usize;
    while added < inter_edges && attempts < inter_edges * 20 {
        attempts += 1;
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u != v && community[u as usize] != community[v as usize] && !b.has_edge(u, v) {
            b.add_edge(u, v);
            added += 1;
        }
    }
    b.build()
}

/// A `rows × cols` grid graph: the stand-in for the paper's road-network
/// dataset (FullUSA), which is extremely sparse and has no dense regions.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// A random graph with a given number of vertices and edges where edges are
/// skewed towards a set of hub vertices — a cheap stand-in for hub-dominated
/// communication graphs (Enron-like) with very high maximum degree.
pub fn hub_graph(n: usize, m: usize, num_hubs: usize, hub_bias: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if n < 2 {
        return b.build();
    }
    let num_hubs = num_hubs.max(1).min(n);
    let max_edges = n * (n - 1) / 2;
    let m = m.min(max_edges);
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < m && attempts < m * 50 {
        attempts += 1;
        let u = if rng.gen_bool(hub_bias.clamp(0.0, 1.0)) {
            rng.gen_range(0..num_hubs) as VertexId
        } else {
            rng.gen_range(0..n) as VertexId
        };
        let v = rng.gen_range(0..n) as VertexId;
        if u != v && !b.has_edge(u, v) {
            b.add_edge(u, v);
            added += 1;
        }
    }
    b.build()
}

/// Watts–Strogatz small-world graph: a ring lattice where every vertex is
/// connected to its `k` nearest neighbours (`k` rounded down to even), with
/// each edge rewired to a uniformly random endpoint with probability `p`.
/// Produces the high-clustering / short-path structure typical of
/// collaboration networks (Ca-GrQC, CondMat).
pub fn watts_strogatz(n: usize, k: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if n < 2 {
        return b.build();
    }
    let half = (k / 2).max(1).min(n.saturating_sub(1) / 2).max(1);
    let p = p.clamp(0.0, 1.0);
    for u in 0..n {
        for offset in 1..=half {
            let v = (u + offset) % n;
            if rng.gen_bool(p) {
                // Rewire: pick a random endpoint distinct from u, avoiding
                // duplicates where possible.
                let mut w = rng.gen_range(0..n);
                let mut tries = 0;
                while (w == u || b.has_edge(u as VertexId, w as VertexId)) && tries < 20 {
                    w = rng.gen_range(0..n);
                    tries += 1;
                }
                if w != u {
                    b.add_edge(u as VertexId, w as VertexId);
                }
            } else if u != v {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

/// Relaxed caveman graph: `num_caves` cliques of `cave_size` vertices each,
/// then every edge is rewired to a random vertex of another cave with
/// probability `p_rewire`. With small `p_rewire` every cave is a large
/// near-clique, so the graph is packed with large maximal quasi-cliques —
/// a stress test for the enumeration (Opsahl / Trec-like output volumes).
pub fn relaxed_caveman(num_caves: usize, cave_size: usize, p_rewire: f64, seed: u64) -> Graph {
    let n = num_caves * cave_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let p_rewire = p_rewire.clamp(0.0, 1.0);
    for cave in 0..num_caves {
        let base = cave * cave_size;
        for i in 0..cave_size {
            for j in (i + 1)..cave_size {
                let u = (base + i) as VertexId;
                let v = (base + j) as VertexId;
                if num_caves > 1 && rng.gen_bool(p_rewire) {
                    // Rewire v's endpoint into a different cave.
                    let mut target_cave = rng.gen_range(0..num_caves);
                    while target_cave == cave {
                        target_cave = rng.gen_range(0..num_caves);
                    }
                    let w = (target_cave * cave_size + rng.gen_range(0..cave_size)) as VertexId;
                    if u != w {
                        b.add_edge(u, w);
                    }
                } else {
                    b.add_edge(u, v);
                }
            }
        }
    }
    b.build()
}

/// Chung–Lu random graph with a power-law expected degree sequence
/// `w_i ∝ (i+1)^(−1/(β−1))`, scaled so the expected average degree is
/// `avg_degree`. Edge `(u,v)` is included with probability
/// `min(1, w_u·w_v / Σw)`. This gives the heavy-tailed degree distributions
/// of the paper's web/social datasets (Trec, Flixster, UK2002) without their
/// size.
pub fn chung_lu_power_law(n: usize, avg_degree: f64, beta: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if n < 2 {
        return b.build();
    }
    let exponent = -1.0 / (beta - 1.0).max(1e-9);
    let mut weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exponent)).collect();
    let sum: f64 = weights.iter().sum();
    let scale = avg_degree.max(0.0) * n as f64 / sum;
    for w in weights.iter_mut() {
        *w *= scale;
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return b.build();
    }
    // For each vertex u, sample its partners with the standard Chung–Lu
    // skipping trick over the weight-sorted suffix (weights are already
    // non-increasing in vertex id).
    for u in 0..n {
        let mut v = u + 1;
        while v < n {
            let p = (weights[u] * weights[v] / total).min(1.0);
            if p <= 0.0 {
                break;
            }
            if p >= 1.0 {
                b.add_edge(u as VertexId, v as VertexId);
                v += 1;
                continue;
            }
            // Geometric skip: jump ahead by the number of rejected partners.
            let r: f64 = rng.gen_range(0.0..1.0);
            let skip = (r.ln() / (1.0 - p).ln()).floor() as usize;
            v += skip;
            if v < n {
                let p_v = (weights[u] * weights[v] / total).min(1.0);
                if rng.gen_bool((p_v / p).min(1.0)) {
                    b.add_edge(u as VertexId, v as VertexId);
                }
                v += 1;
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_decomp::degeneracy;

    #[test]
    fn gnm_has_requested_edges() {
        let g = erdos_renyi_gnm(50, 100, 7);
        assert_eq!(g.num_vertices(), 50);
        assert_eq!(g.num_edges(), 100);
    }

    #[test]
    fn gnm_caps_at_complete() {
        let g = erdos_renyi_gnm(5, 1000, 1);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn gnm_deterministic_for_seed() {
        let a = erdos_renyi_gnm(40, 80, 42);
        let b = erdos_renyi_gnm(40, 80, 42);
        assert_eq!(a, b);
        let c = erdos_renyi_gnm(40, 80, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(erdos_renyi_gnp(10, 0.0, 3).num_edges(), 0);
        assert_eq!(erdos_renyi_gnp(10, 1.0, 3).num_edges(), 45);
    }

    #[test]
    fn density_parameterisation() {
        let g = erdos_renyi_density(200, 5.0, 11);
        assert_eq!(g.num_edges(), 1000);
        assert!((g.edge_density() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn barabasi_albert_shape() {
        let g = barabasi_albert(300, 3, 5);
        assert_eq!(g.num_vertices(), 300);
        assert!(g.num_edges() >= 3 * (300 - 4));
        // Preferential attachment should give a clearly-above-average hub.
        assert!(g.max_degree() > 10);
    }

    #[test]
    fn planted_groups_are_dense() {
        let groups = [
            PlantedGroup {
                size: 12,
                density: 1.0,
            },
            PlantedGroup {
                size: 8,
                density: 1.0,
            },
        ];
        let g = planted_quasi_cliques(100, 0.01, &groups, 9);
        // First group is a clique, so each member sees >= 11 neighbours inside.
        let members: Vec<VertexId> = (0..12).collect();
        for &v in &members {
            assert!(g.degree_in(v, &members) >= 11);
        }
        assert!(degeneracy(&g) >= 11);
    }

    #[test]
    fn community_graph_handles_many_small_communities() {
        // Regression: with many communities relative to n, the random size of
        // earlier communities can exhaust the vertex budget; the size sampler
        // must clamp instead of panicking on an empty range.
        for seed in 0..20 {
            let g = community_graph(
                CommunityGraphParams {
                    n: 1500,
                    num_communities: 1500 / 14,
                    p_intra: 0.92,
                    inter_degree: 1.2,
                },
                seed,
            );
            assert_eq!(g.num_vertices(), 1500);
            assert!(g.num_edges() > 1500);
        }
    }

    #[test]
    fn community_graph_connectivity_of_communities() {
        let g = community_graph(
            CommunityGraphParams {
                n: 120,
                num_communities: 6,
                p_intra: 0.9,
                inter_degree: 1.0,
            },
            13,
        );
        assert_eq!(g.num_vertices(), 120);
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn grid_edge_count() {
        let g = grid(5, 7);
        assert_eq!(g.num_vertices(), 35);
        assert_eq!(g.num_edges(), 5 * 6 + 4 * 7);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(degeneracy(&g), 2);
    }

    #[test]
    fn hub_graph_has_high_max_degree() {
        let g = hub_graph(500, 1500, 5, 0.6, 21);
        assert_eq!(g.num_vertices(), 500);
        assert!(
            g.max_degree() >= 50,
            "max degree {} too small",
            g.max_degree()
        );
    }

    #[test]
    fn watts_strogatz_without_rewiring_is_a_ring_lattice() {
        let g = watts_strogatz(20, 4, 0.0, 1);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 20 * 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn watts_strogatz_rewiring_keeps_edge_budget_close() {
        let g = watts_strogatz(200, 6, 0.2, 7);
        assert_eq!(g.num_vertices(), 200);
        // Rewiring can only drop edges through collisions; stay within 10%.
        assert!(g.num_edges() >= 540, "edges {}", g.num_edges());
        assert!(g.num_edges() <= 600);
        // Deterministic per seed.
        assert_eq!(g, watts_strogatz(200, 6, 0.2, 7));
    }

    #[test]
    fn relaxed_caveman_contains_cliques_when_unrewired() {
        let g = relaxed_caveman(4, 6, 0.0, 3);
        assert_eq!(g.num_vertices(), 24);
        assert_eq!(g.num_edges(), 4 * 15);
        let cave: Vec<VertexId> = (0..6).collect();
        for &v in &cave {
            assert_eq!(g.degree_in(v, &cave), 5);
        }
        assert_eq!(degeneracy(&g), 5);
    }

    #[test]
    fn relaxed_caveman_rewiring_connects_caves() {
        let g = relaxed_caveman(5, 8, 0.15, 9);
        assert_eq!(g.num_vertices(), 40);
        // Some edge must leave the first cave with 15% rewiring over 28 edges.
        let first_cave: Vec<VertexId> = (0..8).collect();
        let crossing = g.edges().filter(|&(u, v)| (u < 8) != (v < 8)).count();
        assert!(
            crossing > 0,
            "no inter-cave edges; first cave {first_cave:?}"
        );
    }

    #[test]
    fn chung_lu_degree_skew_and_scale() {
        let g = chung_lu_power_law(2000, 6.0, 2.5, 17);
        assert_eq!(g.num_vertices(), 2000);
        let avg = 2.0 * g.num_edges() as f64 / 2000.0;
        assert!(avg > 2.0 && avg < 12.0, "average degree {avg}");
        // Vertex 0 has the largest expected weight: clearly a hub.
        assert!(
            g.degree(0) > 5 * (avg as usize + 1),
            "hub degree {}",
            g.degree(0)
        );
        assert_eq!(g, chung_lu_power_law(2000, 6.0, 2.5, 17));
    }

    #[test]
    fn generators_handle_degenerate_sizes() {
        assert_eq!(watts_strogatz(0, 4, 0.1, 1).num_vertices(), 0);
        assert_eq!(watts_strogatz(1, 4, 0.1, 1).num_edges(), 0);
        assert_eq!(relaxed_caveman(0, 5, 0.1, 1).num_vertices(), 0);
        assert_eq!(relaxed_caveman(1, 1, 0.5, 1).num_edges(), 0);
        assert_eq!(chung_lu_power_law(1, 3.0, 2.1, 1).num_edges(), 0);
        assert_eq!(chung_lu_power_law(100, 0.0, 2.5, 1).num_edges(), 0);
    }
}
