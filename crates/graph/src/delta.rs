//! Edge-update batches and incremental graph maintenance.
//!
//! A [`GraphDelta`] is a normalised batch of edge inserts and deletes. The
//! normalisation is exactly the edge-list loader's: self-loops are rejected,
//! both orientations of an edge collapse to one canonical `(min, max)` pair,
//! and duplicates are dropped — so an update batch and a file load agree on
//! what an edge *is* (see [`canonicalize_edges`], which both paths share via
//! the crate-internal `csr_from_edges` builder).
//!
//! [`GraphDelta::apply`] rebuilds the CSR in one slack-aware pass: the new
//! neighbour pool is allocated once with headroom for the inserts, and each
//! vertex's segment is produced by a three-way sorted merge (old neighbours ∪
//! inserted neighbours, minus deleted neighbours). No intermediate adjacency
//! is materialised and the result is canonical by construction, so
//! insert-then-delete round-trips reproduce the original CSR byte for byte
//! (same [`Graph::fingerprint`]).
//!
//! The module also provides the two building blocks the incremental
//! enumeration layer needs: [`dirty_two_hop_closure`] (the vertices whose DC
//! subproblem an update batch can affect, computed with the epoch-stamped
//! scratch walk) and [`update_core_decomposition`] (core numbers and
//! degeneracy ordering maintained across an update, with a changed-vertex
//! report).

use crate::core_decomp::{core_decomposition, CoreDecomposition};
use crate::graph::{Graph, VertexId};
use crate::scratch::SubproblemScratch;

/// Canonicalises a raw undirected edge list the way the edge-list loader
/// does: self-loops are rejected, each edge is oriented `(min, max)`, and the
/// list is sorted and deduplicated. Both orientations of the same edge, and
/// repeated mentions, collapse to one entry.
pub fn canonicalize_edges(edges: &mut Vec<(VertexId, VertexId)>) {
    for e in edges.iter_mut() {
        if e.0 > e.1 {
            *e = (e.1, e.0);
        }
    }
    edges.retain(|&(u, v)| u != v);
    edges.sort_unstable();
    edges.dedup();
}

/// Two-pass CSR construction over a flat undirected edge array: count
/// degrees, prefix-sum into offsets, fill each vertex's segment through a
/// cursor array, then sort + dedup each adjacency list in place with a
/// forward write cursor. Self-loops are skipped. This is the single
/// canonicalisation helper shared by the edge-list loader and the delta
/// rebuild, so file loads and update batches agree on edge semantics.
pub(crate) fn csr_from_edges(
    n: usize,
    edges: &[(VertexId, VertexId)],
) -> (Vec<usize>, Vec<VertexId>) {
    let mut offsets = vec![0usize; n + 1];
    for &(u, v) in edges {
        if u == v {
            continue;
        }
        offsets[u as usize + 1] += 1;
        offsets[v as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut neighbors = vec![0 as VertexId; offsets[n]];
    let mut cursor: Vec<usize> = offsets[..n].to_vec();
    for &(u, v) in edges {
        if u == v {
            continue;
        }
        neighbors[cursor[u as usize]] = v;
        cursor[u as usize] += 1;
        neighbors[cursor[v as usize]] = u;
        cursor[v as usize] += 1;
    }
    drop(cursor);

    // Sort each adjacency list in place and drop duplicate edges, compacting
    // the pool with a forward write cursor. `write` never exceeds the current
    // segment's start, so the reads stay ahead of the writes.
    let mut write = 0usize;
    for v in 0..n {
        let (start, end) = (offsets[v], offsets[v + 1]);
        neighbors[start..end].sort_unstable();
        offsets[v] = write;
        let mut prev = None;
        for i in start..end {
            let nb = neighbors[i];
            if prev != Some(nb) {
                neighbors[write] = nb;
                write += 1;
                prev = Some(nb);
            }
        }
    }
    offsets[n] = write;
    neighbors.truncate(write);
    (offsets, neighbors)
}

/// A normalised batch of edge updates: the inserts and deletes are each
/// canonicalised exactly like a loaded edge list ([`canonicalize_edges`]).
/// An edge named in both lists is deleted: deletes are applied last, so the
/// final edge set is `(E ∪ inserts) ∖ deletes`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphDelta {
    inserts: Vec<(VertexId, VertexId)>,
    deletes: Vec<(VertexId, VertexId)>,
}

impl GraphDelta {
    /// Builds a delta from raw edge lists. Self-loops, duplicates and
    /// reversed orientations are normalised away; inserting an edge that is
    /// already present (or deleting one that is absent) is a no-op at apply
    /// time.
    pub fn new(
        mut inserts: Vec<(VertexId, VertexId)>,
        mut deletes: Vec<(VertexId, VertexId)>,
    ) -> Self {
        canonicalize_edges(&mut inserts);
        canonicalize_edges(&mut deletes);
        GraphDelta { inserts, deletes }
    }

    /// The canonical insert list (`u < v`, sorted, deduplicated).
    pub fn inserts(&self) -> &[(VertexId, VertexId)] {
        &self.inserts
    }

    /// The canonical delete list (`u < v`, sorted, deduplicated).
    pub fn deletes(&self) -> &[(VertexId, VertexId)] {
        &self.deletes
    }

    /// Whether the delta names no edges at all.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Number of edge updates in the batch (inserts plus deletes).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// The inverse batch: applying `self` then `self.inverse()` to a graph
    /// that contained every deleted edge and no inserted edge restores the
    /// original graph byte-identically.
    pub fn inverse(&self) -> GraphDelta {
        GraphDelta {
            inserts: self.deletes.clone(),
            deletes: self.inserts.clone(),
        }
    }

    /// Every endpoint named by the batch, sorted and deduplicated.
    pub fn touched_vertices(&self) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = self
            .inserts
            .iter()
            .chain(self.deletes.iter())
            .flat_map(|&(u, v)| [u, v])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The number of vertices the updated graph needs: endpoints beyond the
    /// current vertex count grow the graph (vertices are never removed).
    pub fn required_vertices(&self, g: &Graph) -> usize {
        self.touched_vertices()
            .last()
            .map(|&v| (v as usize + 1).max(g.num_vertices()))
            .unwrap_or(g.num_vertices())
    }

    /// Applies the batch to `g`, producing the updated graph via a
    /// slack-aware CSR rebuild: the neighbour pool is allocated once with
    /// headroom for the inserts, and each vertex's segment is a three-way
    /// sorted merge of its old neighbours with the inserted ones, skipping
    /// the deleted ones. Inserting a present edge and deleting an absent
    /// edge are no-ops; deletes win over inserts within one batch.
    pub fn apply(&self, g: &Graph) -> Graph {
        let n = self.required_vertices(g);
        let old_n = g.num_vertices();

        // Directed views of the canonical pairs, sorted by (src, dst) so
        // each vertex's additions/removals form one contiguous sorted run.
        let directed = |pairs: &[(VertexId, VertexId)]| -> Vec<(VertexId, VertexId)> {
            let mut out = Vec::with_capacity(pairs.len() * 2);
            for &(u, v) in pairs {
                out.push((u, v));
                out.push((v, u));
            }
            out.sort_unstable();
            out
        };
        let adds = directed(&self.inserts);
        let dels = directed(&self.deletes);

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        // Slack: old pool plus every insert in both directions. Deletes only
        // shrink the result, so this single allocation is never outgrown.
        let mut neighbors: Vec<VertexId> = Vec::with_capacity(g.num_edges() * 2 + adds.len());
        let (mut ai, mut di) = (0usize, 0usize);
        for v in 0..n as VertexId {
            let old: &[VertexId] = if (v as usize) < old_n {
                g.neighbors(v)
            } else {
                &[]
            };
            let add_start = ai;
            while ai < adds.len() && adds[ai].0 == v {
                ai += 1;
            }
            let del_start = di;
            while di < dels.len() && dels[di].0 == v {
                di += 1;
            }
            let add = &adds[add_start..ai];
            let del = &dels[del_start..di];

            // Merge old ∪ add (both sorted, cross-duplicates collapse), then
            // drop anything in del — all three runs walked once.
            let (mut oi, mut aj, mut dj) = (0usize, 0usize, 0usize);
            while oi < old.len() || aj < add.len() {
                let next = match (old.get(oi), add.get(aj)) {
                    (Some(&o), Some(&(_, a))) if o <= a => {
                        if o == a {
                            aj += 1; // insert of an existing edge: no-op
                        }
                        oi += 1;
                        o
                    }
                    (Some(_), Some(&(_, a))) => {
                        aj += 1;
                        a
                    }
                    (Some(&o), None) => {
                        oi += 1;
                        o
                    }
                    (None, Some(&(_, a))) => {
                        aj += 1;
                        a
                    }
                    (None, None) => unreachable!("loop condition holds"),
                };
                while dj < del.len() && del[dj].1 < next {
                    dj += 1;
                }
                if dj < del.len() && del[dj].1 == next {
                    continue; // deleted (deletes win over inserts)
                }
                neighbors.push(next);
            }
            offsets.push(neighbors.len());
        }
        Graph::from_csr_parts(offsets, neighbors)
    }
}

/// The closed two-hop closure of a delta's endpoints, under **both** the old
/// and the new graph: every vertex within distance ≤ 2 of an updated
/// endpoint before or after the batch, sorted ascending.
///
/// This is exactly the set of anchors whose DC subproblem the batch can
/// change: a subproblem's subgraph is determined by the edges within
/// distance 2 of its anchor, so an anchor outside this closure extracts a
/// byte-identical subproblem before and after the update — and, because
/// every maximal quasi-clique has diameter ≤ 2 (Property 2, γ ≥ 0.5), a
/// per-vertex `query` answer for a vertex outside the closure is unchanged
/// too, which is what the serve cache's selective invalidation relies on.
///
/// The walk reuses `scratch`'s epoch-stamped array: one epoch bump, O(1)
/// clear, no allocation beyond the output vector.
pub fn dirty_two_hop_closure(
    old: &Graph,
    new: &Graph,
    delta: &GraphDelta,
    scratch: &mut SubproblemScratch,
) -> Vec<VertexId> {
    let n = old.num_vertices().max(new.num_vertices());
    let (stamp, tag) = scratch.stamp_epoch(n);
    let mut out: Vec<VertexId> = Vec::new();
    for t in delta.touched_vertices() {
        for g in [old, new] {
            if (t as usize) >= g.num_vertices() {
                continue;
            }
            if stamp[t as usize] != tag {
                stamp[t as usize] = tag;
                out.push(t);
            }
            for &u in g.neighbors(t) {
                if stamp[u as usize] != tag {
                    stamp[u as usize] = tag;
                    out.push(u);
                }
                for &w in g.neighbors(u) {
                    if stamp[w as usize] != tag {
                        stamp[w as usize] = tag;
                        out.push(w);
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Result of maintaining a [`CoreDecomposition`] across an update: the
/// decomposition of the new graph plus the changed-vertex report.
#[derive(Clone, Debug)]
pub struct CoreUpdate {
    /// Core numbers, degeneracy ordering and degeneracy of the new graph.
    pub cores: CoreDecomposition,
    /// Vertices whose core number differs from the old decomposition
    /// (including vertices the update added), sorted ascending.
    pub changed: Vec<VertexId>,
}

/// Maintains a core decomposition across an update batch.
///
/// Core numbers can cascade arbitrarily far from an updated edge (deleting
/// one edge of a long chain lowers the whole chain's core number), so the
/// maintenance recomputes the Batagelj–Zaversnik peel — which is already
/// O(V+E), far below the enumeration cost the decomposition feeds — and
/// diffs it against the old decomposition to produce an *exact*
/// changed-vertex report. An empty batch short-circuits to a clone.
pub fn update_core_decomposition(old: &CoreDecomposition, new_graph: &Graph) -> CoreUpdate {
    let cores = core_decomposition(new_graph);
    let changed: Vec<VertexId> = (0..new_graph.num_vertices())
        .filter(|&v| old.core_numbers.get(v).copied() != Some(cores.core_numbers[v]))
        .map(|v| v as VertexId)
        .collect();
    CoreUpdate { cores, changed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{community_graph, CommunityGraphParams};

    #[test]
    fn canonicalisation_rejects_self_loops_and_collapses_orientations() {
        // Duplicates, both orientations, and self-loops: one canonical edge
        // per undirected pair, loops gone.
        let delta = GraphDelta::new(
            vec![(2, 1), (1, 2), (3, 3), (1, 2), (4, 0)],
            vec![(5, 5), (7, 6), (6, 7)],
        );
        assert_eq!(delta.inserts(), &[(0, 4), (1, 2)]);
        assert_eq!(delta.deletes(), &[(6, 7)]);
        assert_eq!(delta.len(), 3);
        assert_eq!(delta.touched_vertices(), vec![0, 1, 2, 4, 6, 7]);
    }

    #[test]
    fn apply_matches_from_edges_rebuild() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]);
        let delta = GraphDelta::new(vec![(0, 2), (1, 5)], vec![(2, 3), (4, 5)]);
        let updated = delta.apply(&g);
        let expected = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (0, 5), (0, 2), (1, 5)]);
        assert_eq!(updated.fingerprint(), expected.fingerprint());
        for v in updated.vertices() {
            assert_eq!(updated.neighbors(v), expected.neighbors(v));
        }
    }

    #[test]
    fn insert_present_and_delete_absent_are_noops() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        let delta = GraphDelta::new(vec![(0, 1)], vec![(2, 3)]);
        let updated = delta.apply(&g);
        assert_eq!(updated.fingerprint(), g.fingerprint());
    }

    #[test]
    fn deletes_win_over_inserts_in_one_batch() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let both = GraphDelta::new(vec![(1, 2)], vec![(1, 2)]);
        assert!(!both.apply(&g).has_edge(1, 2));
        // And a present edge named by both lists ends up deleted.
        let both = GraphDelta::new(vec![(0, 1)], vec![(0, 1)]);
        assert!(!both.apply(&g).has_edge(0, 1));
    }

    #[test]
    fn endpoints_beyond_n_grow_the_graph() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let delta = GraphDelta::new(vec![(2, 6)], vec![]);
        let updated = delta.apply(&g);
        assert_eq!(updated.num_vertices(), 7);
        assert!(updated.has_edge(2, 6));
        assert!(updated.has_edge(0, 1));
        assert_eq!(updated.num_edges(), 2);
    }

    #[test]
    fn insert_then_delete_restores_the_original_csr() {
        let g = community_graph(
            CommunityGraphParams {
                n: 60,
                num_communities: 6,
                p_intra: 0.8,
                inter_degree: 1.0,
            },
            11,
        );
        // Edges among existing vertices that are not already present.
        let mut batch = Vec::new();
        for u in 0..60u32 {
            let v = (u * 17 + 5) % 60;
            if u != v && !g.has_edge(u, v) {
                batch.push((u, v));
            }
        }
        assert!(batch.len() > 10, "test needs a real batch");
        let delta = GraphDelta::new(batch, vec![]);
        let grown = delta.apply(&g);
        assert_ne!(grown.fingerprint(), g.fingerprint());
        let restored = delta.inverse().apply(&grown);
        assert_eq!(restored.fingerprint(), g.fingerprint());
        for v in g.vertices() {
            assert_eq!(restored.neighbors(v), g.neighbors(v));
        }
        // Identical CSR implies identical recomputed degeneracy ordering.
        let a = core_decomposition(&restored);
        let b = core_decomposition(&g);
        assert_eq!(a.ordering, b.ordering);
        assert_eq!(a.core_numbers, b.core_numbers);
    }

    #[test]
    fn dirty_closure_covers_exactly_the_two_hop_balls() {
        // Path 0-1-2-3-4-5-6: updating edge (2,3) must dirty the vertices
        // within distance 2 of 2 or 3 (old or new graph) and nothing else.
        let g = Graph::path(7);
        let delta = GraphDelta::new(vec![], vec![(2, 3)]);
        let new_g = delta.apply(&g);
        let mut scratch = SubproblemScratch::new();
        let dirty = dirty_two_hop_closure(&g, &new_g, &delta, &mut scratch);
        assert_eq!(dirty, vec![0, 1, 2, 3, 4, 5]);
        // A long-range insert dirties both balls, under old and new graph.
        let delta = GraphDelta::new(vec![(0, 6)], vec![]);
        let new_g = delta.apply(&g);
        let dirty = dirty_two_hop_closure(&g, &new_g, &delta, &mut scratch);
        assert_eq!(dirty, vec![0, 1, 2, 4, 5, 6]);
    }

    #[test]
    fn core_update_reports_changed_vertices() {
        let g = Graph::cycle(6); // all core 2
        let old = core_decomposition(&g);
        let delta = GraphDelta::new(vec![], vec![(0, 1)]);
        let new_g = delta.apply(&g);
        let update = update_core_decomposition(&old, &new_g);
        // A broken cycle is a path: every vertex drops from core 2 to 1.
        assert_eq!(update.changed, vec![0, 1, 2, 3, 4, 5]);
        assert!(update.cores.core_numbers.iter().all(|&c| c == 1));
        // No-op delta: nothing changes.
        let noop = update_core_decomposition(&update.cores, &new_g);
        assert!(noop.changed.is_empty());
    }
}
