//! Induced subgraphs with local/global id mappings and 2-hop neighbourhoods.
//!
//! The divide-and-conquer framework constructs, for each vertex `v_i`, the
//! subgraph induced by `Γ²(v_i) − {v_1..v_{i−1}}` and runs the
//! branch-and-bound search on it. The search works in *local* ids
//! (`0..|V_i|`), and the results are mapped back to the original graph.

use crate::bitset::AdjacencyMatrix;
use crate::graph::{Graph, VertexId};
use crate::scratch::SubproblemScratch;

/// An induced subgraph `G[H]` together with the mapping between its local
/// vertex ids (`0..H.len()`) and the original graph's ids.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The subgraph itself, over local ids.
    pub graph: Graph,
    /// `to_global[local] = global` (sorted ascending).
    pub to_global: Vec<VertexId>,
    /// Optional packed adjacency kernel over the local ids; populated by
    /// [`InducedSubgraph::with_adjacency`] for dense subproblems. Local ids
    /// are contiguous, so the matrix rows are dense and cache-friendly.
    pub adjacency: Option<AdjacencyMatrix>,
}

impl InducedSubgraph {
    /// Builds the subgraph of `g` induced by `vertices` (duplicates are
    /// removed; order does not matter).
    pub fn new(g: &Graph, vertices: &[VertexId]) -> Self {
        let mut to_global: Vec<VertexId> = vertices.to_vec();
        to_global.sort_unstable();
        to_global.dedup();
        let mut local_of = vec![u32::MAX; g.num_vertices()];
        for (local, &global) in to_global.iter().enumerate() {
            local_of[global as usize] = local as u32;
        }
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); to_global.len()];
        for (local, &global) in to_global.iter().enumerate() {
            for &nb in g.neighbors(global) {
                let lnb = local_of[nb as usize];
                if lnb != u32::MAX {
                    adj[local].push(lnb);
                }
            }
        }
        InducedSubgraph {
            graph: Graph::from_adjacency(adj),
            to_global,
            adjacency: None,
        }
    }

    /// Builds the subgraph of `g` induced by `vertices` using reusable
    /// per-worker buffers: the scratch's epoch-stamped local-id map replaces
    /// the O(whole-graph) `local_of` refill, and the local CSR is filled
    /// directly into recycled `offsets`/`neighbors` buffers in a single pass
    /// (the monotone global→local map keeps each list sorted), skipping the
    /// `Vec<Vec<_>>` intermediate and the `from_adjacency` copy. After
    /// warmup this performs no heap allocation; hand the subgraph back via
    /// [`SubproblemScratch::recycle`] when done.
    pub fn new_in(g: &Graph, vertices: &[VertexId], scratch: &mut SubproblemScratch) -> Self {
        scratch.extract(g, vertices)
    }

    /// Builds the packed adjacency kernel for the subgraph when the adaptive
    /// size/density threshold recommends it (see
    /// [`AdjacencyMatrix::adaptive_for`]); pass `force` to ignore the density
    /// part of the heuristic and build whenever the memory cap allows.
    pub fn with_adjacency(mut self, force: bool) -> Self {
        let n = self.graph.num_vertices();
        let build = if force {
            AdjacencyMatrix::recommended_for(n)
        } else {
            AdjacencyMatrix::adaptive_for(n, self.graph.num_edges())
        };
        if self.adjacency.is_none() && build {
            self.adjacency = Some(AdjacencyMatrix::from_graph(&self.graph));
        }
        self
    }

    /// Number of vertices in the subgraph.
    pub fn len(&self) -> usize {
        self.to_global.len()
    }

    /// Whether the subgraph is empty.
    pub fn is_empty(&self) -> bool {
        self.to_global.is_empty()
    }

    /// Maps a local vertex id back to the original graph.
    pub fn global(&self, local: VertexId) -> VertexId {
        self.to_global[local as usize]
    }

    /// Maps a global vertex id to the local id, if the vertex is present.
    pub fn local(&self, global: VertexId) -> Option<VertexId> {
        self.to_global
            .binary_search(&global)
            .ok()
            .map(|i| i as VertexId)
    }

    /// Maps a set of local ids back to (sorted) global ids.
    pub fn to_global_set(&self, locals: &[VertexId]) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = locals.iter().map(|&l| self.global(l)).collect();
        out.sort_unstable();
        out
    }
}

/// The closed 2-hop neighbourhood of `v`: `{v} ∪ Γ(v) ∪ Γ(Γ(v))`, sorted.
pub fn two_hop_neighborhood(g: &Graph, v: VertexId) -> Vec<VertexId> {
    let mut mark = vec![false; g.num_vertices()];
    mark[v as usize] = true;
    let mut out = vec![v];
    for &u in g.neighbors(v) {
        if !mark[u as usize] {
            mark[u as usize] = true;
            out.push(u);
        }
    }
    for &u in g.neighbors(v) {
        for &w in g.neighbors(u) {
            if !mark[w as usize] {
                mark[w as usize] = true;
                out.push(w);
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::bfs_distances;

    #[test]
    fn induced_subgraph_of_complete() {
        let g = Graph::complete(6);
        let sub = InducedSubgraph::new(&g, &[1, 3, 5]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.graph.num_edges(), 3);
        assert_eq!(sub.to_global, vec![1, 3, 5]);
        assert_eq!(sub.global(0), 1);
        assert_eq!(sub.local(5), Some(2));
        assert_eq!(sub.local(2), None);
    }

    #[test]
    fn induced_subgraph_preserves_edges_exactly() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]);
        let vs = [1u32, 2, 4, 5];
        let sub = InducedSubgraph::new(&g, &vs);
        for &u in &vs {
            for &v in &vs {
                if u < v {
                    let lu = sub.local(u).unwrap();
                    let lv = sub.local(v).unwrap();
                    assert_eq!(sub.graph.has_edge(lu, lv), g.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn duplicates_are_removed() {
        let g = Graph::path(4);
        let sub = InducedSubgraph::new(&g, &[2, 1, 1, 2]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.graph.num_edges(), 1);
    }

    #[test]
    fn to_global_set_roundtrip() {
        let g = Graph::cycle(8);
        let sub = InducedSubgraph::new(&g, &[7, 0, 1, 4]);
        let locals: Vec<u32> = (0..sub.len() as u32).collect();
        assert_eq!(sub.to_global_set(&locals), vec![0, 1, 4, 7]);
    }

    #[test]
    fn two_hop_matches_bfs() {
        let g = Graph::from_edges(
            9,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (0, 5),
                (5, 6),
                (6, 7),
                (7, 8),
            ],
        );
        for v in 0..9u32 {
            let dist = bfs_distances(&g, v);
            let expect: Vec<u32> = (0..9u32).filter(|&u| dist[u as usize] <= 2).collect();
            assert_eq!(two_hop_neighborhood(&g, v), expect);
        }
    }

    #[test]
    fn two_hop_isolated_vertex() {
        let g = Graph::empty(3);
        assert_eq!(two_hop_neighborhood(&g, 1), vec![1]);
    }

    #[test]
    fn with_adjacency_builds_consistent_matrix() {
        let g = Graph::complete(8);
        let sub = InducedSubgraph::new(&g, &[0, 2, 4, 6, 7]).with_adjacency(false);
        let m = sub.adjacency.as_ref().expect("small dense subgraph builds");
        assert_eq!(m.num_vertices(), sub.len());
        for u in sub.graph.vertices() {
            for v in sub.graph.vertices() {
                assert_eq!(m.has_edge(u, v), sub.graph.has_edge(u, v));
            }
        }
        // Empty subgraph never builds a matrix.
        let empty = InducedSubgraph::new(&g, &[]).with_adjacency(true);
        assert!(empty.adjacency.is_none());
    }

    #[test]
    fn empty_subgraph() {
        let g = Graph::path(3);
        let sub = InducedSubgraph::new(&g, &[]);
        assert!(sub.is_empty());
        assert_eq!(sub.graph.num_vertices(), 0);
    }
}
