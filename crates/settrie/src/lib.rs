//! Set-trie index for subset / superset containment queries.
//!
//! This is the substrate the paper relies on for the second step of maximal
//! quasi-clique enumeration (**MQCE-S2**): given the set `S` of quasi-cliques
//! produced by the branch-and-bound search (which contains every maximal QC
//! plus possibly some non-maximal ones), remove the sets that are contained in
//! another set of `S`. The paper uses the set-trie of Savnik et al. \[37\],
//! which answers `GetAllSubsets` / `ExistsSuperset` queries over a collection
//! of sets of symbols from an ordered alphabet.
//!
//! The trie stores each set as a path of *sorted* elements; a node is flagged
//! when a stored set ends there.
//!
//! ```
//! use mqce_settrie::SetTrie;
//!
//! let mut trie = SetTrie::new();
//! trie.insert(&[1, 2, 3]);
//! trie.insert(&[2, 4]);
//! assert!(trie.contains_subset_of(&[1, 2, 3, 4]));
//! assert!(trie.exists_superset_of(&[1, 3]));
//! assert!(!trie.exists_superset_of(&[4, 5]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod cost_model;
pub mod engine;
mod filter;
mod trie;

pub use arena::SetArena;
pub use cost_model::{fit_log_linear, S2CostModel, S2Decision};
pub use engine::{choose_backend, filter_maximal_with, MaximalityEngine, S2Backend, S2Outcome};
pub use filter::{filter_maximal, filter_maximal_naive};
pub use trie::SetTrie;
