//! Flat arena for streaming families of vertex sets.
//!
//! The S1 searchers emit one candidate quasi-clique per surviving branch.
//! Boxing each set as its own `Vec<u32>` costs an allocation per output and
//! scatters the family across the heap; [`SetArena`] instead packs every set
//! into one contiguous `u32` pool addressed by `(start, len)` spans. The
//! streaming [`MaximalityEngine`](crate::MaximalityEngine) already consumes
//! sets by slice, so the arena feeds it directly and per-set boxing is
//! deferred until the surviving family is materialised at the end of a run.

/// A growable pool of `u32` sets stored back-to-back, each addressed by a
/// `(start, len)` span. Appending a set allocates only when the pool itself
/// grows, so steady-state emission is allocation-free.
#[derive(Clone, Debug, Default)]
pub struct SetArena {
    pool: Vec<u32>,
    spans: Vec<(usize, usize)>,
    /// Start of the currently open (uncommitted) set, if any.
    open: Option<usize>,
}

impl SetArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of committed sets.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the arena holds no committed sets.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total number of pooled elements across all committed sets.
    pub fn pooled_len(&self) -> usize {
        self.open.unwrap_or(self.pool.len())
    }

    /// Removes every set, keeping the pool capacity for reuse.
    pub fn clear(&mut self) {
        self.pool.clear();
        self.spans.clear();
        self.open = None;
    }

    /// The `i`-th committed set, in insertion order.
    pub fn get(&self, i: usize) -> &[u32] {
        let (start, len) = self.spans[i];
        &self.pool[start..start + len]
    }

    /// Iterates the committed sets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.spans
            .iter()
            .map(move |&(start, len)| &self.pool[start..start + len])
    }

    /// Opens a new set at the pool tail. Elements are added with
    /// [`Self::push_elem`] and the set is finished with
    /// [`Self::commit_sorted`]. Re-opening discards an unfinished set.
    pub fn begin(&mut self) {
        if let Some(start) = self.open {
            self.pool.truncate(start);
        }
        self.open = Some(self.pool.len());
    }

    /// Appends one element to the currently open set.
    pub fn push_elem(&mut self, e: u32) {
        debug_assert!(self.open.is_some(), "push_elem without begin");
        self.pool.push(e);
    }

    /// Sorts the open set in place, commits it, and returns the finished
    /// slice.
    pub fn commit_sorted(&mut self) -> &[u32] {
        let start = self.open.take().expect("commit_sorted without begin");
        let tail = &mut self.pool[start..];
        tail.sort_unstable();
        self.spans.push((start, tail.len()));
        &self.pool[start..]
    }

    /// Copies `set` into the arena as one committed set, sorting the copy.
    pub fn push_set(&mut self, set: &[u32]) {
        self.begin();
        self.pool.extend_from_slice(set);
        self.commit_sorted();
    }

    /// Materialises every committed set as its own `Vec`, in insertion
    /// order (one allocation per set, paid once at the end of a run).
    pub fn to_vecs(&self) -> Vec<Vec<u32>> {
        self.iter().map(|s| s.to_vec()).collect()
    }

    /// Consuming variant of [`Self::to_vecs`].
    pub fn into_vecs(self) -> Vec<Vec<u32>> {
        self.to_vecs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut a = SetArena::new();
        a.push_set(&[3, 1, 2]);
        a.push_set(&[]);
        a.push_set(&[9, 9, 7]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(0), &[1, 2, 3]);
        assert_eq!(a.get(1), &[] as &[u32]);
        assert_eq!(a.get(2), &[7, 9, 9]);
        assert_eq!(a.to_vecs(), vec![vec![1, 2, 3], vec![], vec![7, 9, 9]]);
    }

    #[test]
    fn begin_push_commit_matches_push_set() {
        let mut a = SetArena::new();
        a.begin();
        for e in [5u32, 4, 6] {
            a.push_elem(e);
        }
        assert_eq!(a.commit_sorted(), &[4, 5, 6]);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn reopen_discards_unfinished_set() {
        let mut a = SetArena::new();
        a.begin();
        a.push_elem(1);
        a.push_elem(2);
        a.begin(); // abandon the open set
        a.push_elem(7);
        a.commit_sorted();
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(0), &[7]);
        assert_eq!(a.pooled_len(), 1);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut a = SetArena::new();
        for i in 0..100u32 {
            a.push_set(&[i, i + 1, i + 2]);
        }
        let cap = {
            a.clear();
            assert!(a.is_empty());
            a.pool.capacity()
        };
        assert!(cap >= 300);
        a.push_set(&[1]);
        assert_eq!(a.get(0), &[1]);
    }
}
