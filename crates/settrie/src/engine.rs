//! The MQCE-S2 maximality-engine subsystem.
//!
//! PR 2's bitset kernel made MQCE-S1 fast enough that the batch-at-the-end
//! maximality filter became the bottleneck on dense workloads: with ~400k
//! heavily-overlapping quasi-cliques from an INF'd S1 run, the inverted-index
//! probe of [`filter_maximal`](crate::filter_maximal) degrades superlinearly
//! (its probe lists grow with the accepted-set count). This module replaces
//! the single batch filter with a [`MaximalityEngine`] abstraction that
//!
//! * **streams**: sets are fed in as the branch-and-bound search produces
//!   them, so duplicates and dominated sets are dropped on arrival and the
//!   filtering cost is amortised across the whole run;
//! * **parallelises**: per-thread engines can be drained and merged;
//! * **is deadline-aware**: the final compaction honours a wall-clock budget
//!   and returns a *sound* partial result (an antichain — every returned set
//!   is maximal w.r.t. the returned collection) instead of blowing through a
//!   time limit;
//! * **has three interchangeable backends** plus an adaptive dispatcher:
//!
//! | backend | probe structure | wins when |
//! |---|---|---|
//! | [`S2Backend::Inverted`] | element → accepted-set id lists, probe the least-frequent element | small or mildly overlapping families |
//! | [`S2Backend::Bitset`] | element → packed `u64` bitmap over accepted-set slots, word-AND intersection | small universe, heavy overlap (the INF'd-S1 wall shape) |
//! | [`S2Backend::Extremal`] | full Bayardo–Panda: frequency-ordered column reindexing, lexicographically sorted family, prefix-sharing subsumption pass | wide — sparse universes *and* heavily shared prefixes |
//! | [`S2Backend::Auto`] | buffers a prefix, then commits to the backend the measured [`S2CostModel`] predicts fastest | the default |
//!
//! All backends produce exactly the result of
//! [`filter_maximal_naive`](crate::filter_maximal_naive): given a processed
//! prefix of the stream, a set survives iff no strict superset of it was
//! streamed (duplicates collapse to one copy). Domination is
//! order-independent, so the engines can only differ in *time*, never in the
//! final family.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::time::Instant;

use crate::cost_model::{S2CostModel, S2Decision};
use crate::filter::is_sorted_subset;

/// How often (in processed sets) the compaction loops poll the deadline.
const DEADLINE_STRIDE: usize = 128;

/// How many sets the [`AutoEngine`] buffers before committing to a backend.
const AUTO_COMMIT_AT: usize = 4096;

/// The result of finishing a [`MaximalityEngine`].
#[derive(Clone, Debug, Default)]
pub struct S2Outcome {
    /// The maximal sets, sorted lexicographically. When `timed_out` is set
    /// this is a *partial but sound* result: the sets are still pairwise
    /// incomparable (each one is maximal within the returned collection),
    /// but sets whose compaction never ran are missing.
    pub mqcs: Vec<Vec<u32>>,
    /// Whether the compaction stopped early because the deadline passed.
    pub timed_out: bool,
    /// The backend that performed the compaction (`auto` resolves to the
    /// backend it committed to).
    pub backend: &'static str,
    /// The dispatch decision of the auto engine (observed stream shape plus
    /// per-backend cost predictions); `None` when a concrete backend was
    /// requested directly.
    pub decision: Option<S2Decision>,
}

/// A streaming maximality filter (MQCE-S2).
///
/// Feed sets in any order with [`add`](Self::add); call
/// [`finish`](Self::finish) (or the deadline-aware variant) to obtain exactly
/// the maximal sets of everything streamed so far. Engines use *lazy
/// subset elimination*: `add` drops a set that is dominated by (or equal to) a
/// set already retained, but a retained set that is dominated by a *later*
/// arrival is only removed during the final compaction. This keeps `add`
/// cheap — one superset probe — while `finish` restores the exact semantics
/// of [`filter_maximal`](crate::filter_maximal).
pub trait MaximalityEngine: Send {
    /// The backend name (`inverted`, `bitset`, `extremal`, or `auto`).
    fn name(&self) -> &'static str;

    /// Streams one set into the engine. Returns `true` when the set was
    /// retained, `false` when it was recognised on arrival as a duplicate of
    /// — or dominated by — an already retained set.
    fn add(&mut self, set: &[u32]) -> bool;

    /// Number of currently retained candidate sets. This is an upper bound
    /// on the final result size (later arrivals may still dominate earlier
    /// retained sets).
    fn live_len(&self) -> usize;

    /// Removes and returns every retained set, leaving the engine empty.
    /// Used to merge per-thread engines: drain one engine and `add` each set
    /// into another.
    fn drain(&mut self) -> Vec<Vec<u32>>;

    /// Compacts the retained sets to exactly the maximal ones (sorted
    /// lexicographically), consuming the engine.
    fn finish(self: Box<Self>) -> S2Outcome {
        self.finish_with_deadline(None)
    }

    /// Deadline-aware [`finish`](Self::finish): the compaction polls the
    /// deadline every few hundred sets and stops early once it has passed.
    /// The partial result is sound — see [`S2Outcome::mqcs`].
    fn finish_with_deadline(self: Box<Self>, deadline: Option<Instant>) -> S2Outcome;
}

/// Which S2 backend to use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum S2Backend {
    /// Buffer a prefix of the stream, then commit to the backend the
    /// measured cost model ([`S2CostModel`]) predicts fastest for the
    /// observed set count, universe size and mean overlap.
    #[default]
    Auto,
    /// The inverted-index filter behind
    /// [`filter_maximal`](crate::filter_maximal), made incremental.
    Inverted,
    /// Packed per-element bitmaps over accepted-set slots; superset queries
    /// are word-parallel bitmap intersections.
    Bitset,
    /// Full Bayardo–Panda extremal-sets filtering: elements reindexed by
    /// ascending global frequency, sets sorted lexicographically under that
    /// order, and a prefix-sharing subsumption pass in which sets sharing a
    /// prefix reuse each other's superset-probe intersections.
    Extremal,
}

impl S2Backend {
    /// Human-readable backend name (`auto` / `inverted` / `bitset` /
    /// `extremal`).
    pub fn name(&self) -> &'static str {
        match self {
            S2Backend::Auto => "auto",
            S2Backend::Inverted => "inverted",
            S2Backend::Bitset => "bitset",
            S2Backend::Extremal => "extremal",
        }
    }

    /// Creates a fresh engine of this backend; the auto dispatcher consults
    /// the checked-in cost model.
    pub fn new_engine(&self) -> Box<dyn MaximalityEngine> {
        self.new_engine_with_model(S2CostModel::checked_in())
    }

    /// Creates a fresh engine of this backend with an explicit cost model
    /// for the auto dispatcher (concrete backends ignore it).
    pub fn new_engine_with_model(&self, model: S2CostModel) -> Box<dyn MaximalityEngine> {
        match self {
            S2Backend::Auto => Box::new(AutoEngine::new(model)),
            S2Backend::Inverted => Box::new(StreamingEngine::<InvertedProbe>::new()),
            S2Backend::Bitset => Box::new(StreamingEngine::<BitmapProbe>::new()),
            S2Backend::Extremal => Box::new(ExtremalEngine::new()),
        }
    }

    /// All concrete (non-auto) backends, for differential tests and benches.
    pub fn concrete() -> [S2Backend; 3] {
        [S2Backend::Inverted, S2Backend::Bitset, S2Backend::Extremal]
    }
}

/// Runs `sets` through the chosen backend in one batch: the engine equivalent
/// of [`filter_maximal`](crate::filter_maximal).
pub fn filter_maximal_with(sets: &[Vec<u32>], backend: S2Backend) -> Vec<Vec<u32>> {
    let mut engine = backend.new_engine();
    for set in sets {
        engine.add(set);
    }
    engine.finish().mqcs
}

/// Picks the backend [`S2Backend::Auto`] commits to, given the observed
/// stream statistics: retained-set count, distinct-element count (universe)
/// and the total number of element occurrences across the retained sets.
///
/// Since the measured-cost-model rework this is a thin wrapper over the
/// checked-in [`S2CostModel`]: the backend with the lowest predicted
/// compaction cost wins, with an inverted-index fallback for families too
/// small for the fitted surfaces (see
/// [`MODEL_MIN_SETS`](crate::cost_model::MODEL_MIN_SETS)).
pub fn choose_backend(set_count: usize, universe: usize, total_elements: usize) -> S2Backend {
    S2CostModel::checked_in()
        .decide(set_count, universe, total_elements)
        .chosen
}

/// Whether a set is already in canonical form (strictly increasing). The
/// pipeline's S1 outputs always are, so the hot `add` path can hash and
/// probe the borrowed slice directly and only copy on retention.
fn is_canonical(set: &[u32]) -> bool {
    set.windows(2).all(|w| w[0] < w[1])
}

/// The canonical (sorted, deduplicated) form of a set, borrowing when the
/// input already is canonical.
fn canonical(set: &[u32]) -> std::borrow::Cow<'_, [u32]> {
    if is_canonical(set) {
        std::borrow::Cow::Borrowed(set)
    } else {
        let mut v = set.to_vec();
        v.sort_unstable();
        v.dedup();
        std::borrow::Cow::Owned(v)
    }
}

fn set_hash(set: &[u32]) -> u64 {
    let mut h = DefaultHasher::new();
    set.hash(&mut h);
    h.finish()
}

/// Hash-keyed exact-duplicate table shared by the engines' `add` paths:
/// `hash(set) → slots in the backing store with that hash`.
#[derive(Default)]
struct DedupIndex {
    hashes: HashMap<u64, Vec<u32>>,
}

impl DedupIndex {
    /// Canonicalises `set` and probes the table for an exact duplicate among
    /// `store`. Returns `None` for a duplicate, or the canonical form plus
    /// its hash for a new set (the caller decides whether to
    /// [`register`](Self::register) it — the streaming engines may still
    /// drop the set to a domination probe first).
    fn admit<'a>(
        &self,
        set: &'a [u32],
        store: &[Vec<u32>],
    ) -> Option<(std::borrow::Cow<'a, [u32]>, u64)> {
        let set = canonical(set);
        let hash = set_hash(&set);
        if let Some(slots) = self.hashes.get(&hash) {
            if slots.iter().any(|&s| store[s as usize] == *set) {
                return None;
            }
        }
        Some((set, hash))
    }

    /// Records that `store[slot]` holds a set hashing to `hash`.
    fn register(&mut self, hash: u64, slot: usize) {
        self.hashes.entry(hash).or_default().push(slot as u32);
    }

    fn clear(&mut self) {
        self.hashes.clear();
    }
}

// ---------------------------------------------------------------------------
// Probe indices: the pluggable superset-query structure shared by the
// streaming phase and the descending-cardinality compaction.
// ---------------------------------------------------------------------------

/// A growable index over accepted sets answering "is some accepted set a
/// (non-strict) superset of the query?". Elements are arbitrary `u32`s;
/// implementations compress them to dense ids internally.
trait ProbeIndex: Default + Send {
    /// The public backend name of the engine built on this probe.
    const NAME: &'static str;

    /// Whether any indexed set contains every element of `set` (`set` itself
    /// is never indexed at query time). `accepted` is the backing storage the
    /// index's ids point into. Takes `&mut self` so implementations can keep
    /// reusable scratch buffers instead of allocating per probe.
    fn dominated(&mut self, set: &[u32], accepted: &[Vec<u32>]) -> bool;

    /// Indexes `accepted[slot]` (which must equal `set`).
    fn insert(&mut self, set: &[u32], slot: usize);
}

/// Element → list of accepted-set ids, probed at the query's least-frequent
/// element. The incremental twin of [`filter_maximal`](crate::filter_maximal).
#[derive(Default)]
struct InvertedProbe {
    /// Element value → dense element id.
    elem_ids: HashMap<u32, usize>,
    /// `containing[elem_id]` = accepted-set slots containing the element.
    containing: Vec<Vec<u32>>,
}

impl ProbeIndex for InvertedProbe {
    const NAME: &'static str = "inverted";

    fn dominated(&mut self, set: &[u32], accepted: &[Vec<u32>]) -> bool {
        let mut probe: Option<&Vec<u32>> = None;
        for e in set {
            let Some(&id) = self.elem_ids.get(e) else {
                // An element no accepted set contains: nothing can dominate.
                return false;
            };
            let list = &self.containing[id];
            if probe.is_none_or(|p| list.len() < p.len()) {
                probe = Some(list);
            }
        }
        let Some(probe) = probe else {
            // Empty query set: dominated by any accepted set.
            return !accepted.is_empty();
        };
        probe
            .iter()
            .any(|&i| is_sorted_subset(set, &accepted[i as usize]))
    }

    fn insert(&mut self, set: &[u32], slot: usize) {
        for &e in set {
            let next = self.containing.len();
            let id = *self.elem_ids.entry(e).or_insert(next);
            if id == next {
                self.containing.push(Vec::new());
            }
            self.containing[id].push(slot as u32);
        }
    }
}

/// Element → packed `u64` bitmap over accepted-set slots. A query is
/// dominated iff the intersection of its elements' bitmaps is non-empty, so
/// the probe is a word-parallel AND that starts from the least-frequent
/// element's bitmap and keeps only the surviving non-zero words — on the
/// degenerate family shapes where every inverted probe list is tens of
/// thousands of entries long, this replaces per-candidate subset tests with
/// `O(live / 64)` word operations.
#[derive(Default)]
struct BitmapProbe {
    elem_ids: HashMap<u32, usize>,
    /// `bitmaps[elem_id]` = bitmap over accepted slots (lazily grown; words
    /// past the end are implicitly zero).
    bitmaps: Vec<Vec<u64>>,
    /// `nonzero[elem_id]` = indices of the non-zero words of the element's
    /// bitmap. Slots are assigned in increasing order, so this stays sorted
    /// with amortised O(1) appends — and it lets a probe walk only the
    /// occupied words of its rarest element instead of the full bitmap width.
    nonzero: Vec<Vec<u32>>,
    /// `freq[elem_id]` = number of accepted sets containing the element.
    freq: Vec<u32>,
    /// Reusable scratch for the query's element ids, so the hot `add` path
    /// does not allocate per probe.
    query_ids: Vec<usize>,
    /// Reusable scratch for the surviving `(word index, word)` pairs.
    survivors: Vec<(u32, u64)>,
}

impl ProbeIndex for BitmapProbe {
    const NAME: &'static str = "bitset";

    fn dominated(&mut self, set: &[u32], accepted: &[Vec<u32>]) -> bool {
        // Destructure so the scratch buffers borrow disjointly from the
        // read-only index structures.
        let BitmapProbe {
            elem_ids,
            bitmaps,
            nonzero,
            freq,
            query_ids: ids,
            survivors,
        } = self;
        ids.clear();
        for e in set {
            let Some(&id) = elem_ids.get(e) else {
                return false;
            };
            if freq[id] == 0 {
                return false;
            }
            ids.push(id);
        }
        if ids.is_empty() {
            return !accepted.is_empty();
        }
        // Intersect in ascending frequency order so the survivor list
        // collapses as early as possible.
        ids.sort_unstable_by_key(|&id| freq[id]);
        if ids.len() == 1 {
            // A single-element query is dominated by any accepted set
            // containing the element, and freq > 0 was checked above.
            return true;
        }
        // Seed the survivors from the AND of the two rarest bitmaps, walking
        // only the rarest element's non-zero words.
        let (a, b) = (ids[0], ids[1]);
        let bm_a = &bitmaps[a];
        let bm_b = &bitmaps[b];
        survivors.clear();
        for &wi in &nonzero[a] {
            let w = bm_a[wi as usize] & bm_b.get(wi as usize).copied().unwrap_or(0);
            if w != 0 {
                survivors.push((wi, w));
            }
        }
        for &id in &ids[2..] {
            if survivors.is_empty() {
                return false;
            }
            let bm = &bitmaps[id];
            survivors.retain_mut(|(i, w)| {
                *w &= bm.get(*i as usize).copied().unwrap_or(0);
                *w != 0
            });
        }
        !survivors.is_empty()
    }

    fn insert(&mut self, set: &[u32], slot: usize) {
        let (word, bit) = (slot / 64, slot % 64);
        for &e in set {
            let next = self.bitmaps.len();
            let id = *self.elem_ids.entry(e).or_insert(next);
            if id == next {
                self.bitmaps.push(Vec::new());
                self.nonzero.push(Vec::new());
                self.freq.push(0);
            }
            let bm = &mut self.bitmaps[id];
            if bm.len() <= word {
                bm.resize(word + 1, 0);
            }
            if bm[word] == 0 {
                self.nonzero[id].push(word as u32);
            }
            bm[word] |= 1u64 << bit;
            self.freq[id] += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// StreamingEngine: the lazy-elimination engine shared by the inverted and
// bitset backends (they differ only in the probe structure).
// ---------------------------------------------------------------------------

/// Streaming engine with a pluggable probe index.
///
/// `add` keeps a persistent probe index over the retained sets: a new arrival
/// that is a duplicate of — or a subset of — a retained set is dropped
/// immediately (the common case on heavily overlapping S1 streams). Retained
/// sets dominated by *later* arrivals survive until `finish`, which re-runs
/// the probe over the retained family in descending cardinality order with a
/// fresh index, exactly like [`filter_maximal`](crate::filter_maximal).
struct StreamingEngine<P: ProbeIndex> {
    accepted: Vec<Vec<u32>>,
    probe: P,
    /// Exact-duplicate detection over the accepted slots.
    dedup: DedupIndex,
    /// Streaming probes attempted / sets they dropped. The on-arrival probe
    /// is an *optimisation* (the final compaction restores exactness), so
    /// when the observed drop rate shows it almost never fires — the
    /// worst-case family where nothing is dominated — the engine stops
    /// probing and indexing, turning `add` into a cheap dedup-and-buffer.
    probes: u64,
    probe_drops: u64,
    probing: bool,
}

/// Streaming probes before the drop rate is evaluated.
const PROBE_REVIEW_AT: u64 = 4096;

/// Streaming probing is disabled below one drop per this many probes.
const PROBE_MIN_DROP_RATE: u64 = 64;

impl<P: ProbeIndex> StreamingEngine<P> {
    fn new() -> Self {
        StreamingEngine {
            accepted: Vec::new(),
            probe: P::default(),
            dedup: DedupIndex::default(),
            probes: 0,
            probe_drops: 0,
            probing: true,
        }
    }
}

impl<P: ProbeIndex> MaximalityEngine for StreamingEngine<P> {
    fn name(&self) -> &'static str {
        P::NAME
    }

    fn add(&mut self, set: &[u32]) -> bool {
        let Some((set, hash)) = self.dedup.admit(set, &self.accepted) else {
            return false;
        };
        if set.is_empty() {
            // The empty set survives only when nothing else does.
            if !self.accepted.is_empty() {
                return false;
            }
        } else if self.probing {
            self.probes += 1;
            if self.probe.dominated(&set, &self.accepted) {
                self.probe_drops += 1;
                return false;
            }
            if self.probes >= PROBE_REVIEW_AT
                && self.probe_drops * PROBE_MIN_DROP_RATE < self.probes
            {
                // The stream is (so far) domination-free; stop paying for
                // probes and index maintenance. `finish` compacts exactly.
                self.probing = false;
                self.probe = P::default();
            }
        }
        let slot = self.accepted.len();
        if self.probing {
            self.probe.insert(&set, slot);
        }
        self.dedup.register(hash, slot);
        self.accepted.push(set.into_owned());
        true
    }

    fn live_len(&self) -> usize {
        self.accepted.len()
    }

    fn drain(&mut self) -> Vec<Vec<u32>> {
        self.probe = P::default();
        self.dedup.clear();
        self.probes = 0;
        self.probe_drops = 0;
        self.probing = true;
        std::mem::take(&mut self.accepted)
    }

    fn finish_with_deadline(self: Box<Self>, deadline: Option<Instant>) -> S2Outcome {
        let name = self.name();
        let (mqcs, timed_out) = compact_descending::<P>(self.accepted, deadline);
        S2Outcome {
            mqcs,
            timed_out,
            backend: name,
            decision: None,
        }
    }
}

/// Descending-cardinality compaction with a fresh probe index.
///
/// A set can only be strictly contained in a *strictly larger* set, so the
/// sets are processed one size class at a time: the whole class is probed
/// against the index first, then the class's survivors are inserted. This
/// keeps same-size sets — which can never dominate each other — out of each
/// other's probes; on worst-case families where nothing is dominated, the
/// largest class probes an empty index for free.
///
/// Any strict superset of a set is processed before the set is probed, so
/// the accepted collection is an antichain after *every* class (and equal
/// -size survivors are mutually incomparable), which is what makes the
/// early deadline return sound.
fn compact_descending<P: ProbeIndex>(
    mut sets: Vec<Vec<u32>>,
    deadline: Option<Instant>,
) -> (Vec<Vec<u32>>, bool) {
    sets.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    sets.dedup();
    let n = sets.len();
    let mut probe = P::default();
    let mut accepted: Vec<Vec<u32>> = Vec::new();
    let mut timed_out = false;
    let mut processed = 0usize;
    let mut idx = 0usize;
    'classes: while idx < n {
        let class_len = sets[idx].len();
        let mut end = idx;
        while end < n && sets[end].len() == class_len {
            end += 1;
        }
        // Probe phase: the index holds only strictly larger sets.
        let mut kept: Vec<usize> = Vec::new();
        for (j, set) in sets.iter().enumerate().take(end).skip(idx) {
            if processed.is_multiple_of(DEADLINE_STRIDE) {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        timed_out = true;
                        break 'classes;
                    }
                }
            }
            processed += 1;
            if set.is_empty() {
                // The empty class is last; it survives only alone.
                if accepted.is_empty() {
                    kept.push(j);
                }
            } else if !probe.dominated(set, &accepted) {
                kept.push(j);
            }
        }
        // Insert phase: the class's survivors join the index together.
        for j in kept {
            let set = std::mem::take(&mut sets[j]);
            probe.insert(&set, accepted.len());
            accepted.push(set);
        }
        idx = end;
    }
    accepted.sort();
    (accepted, timed_out)
}

// ---------------------------------------------------------------------------
// ExtremalEngine: full Bayardo–Panda extremal-sets filtering.
// ---------------------------------------------------------------------------

/// The full Bayardo–Panda extremal-sets backend.
///
/// `add` only deduplicates and buffers (this is the batch-oriented backend);
/// `finish` runs the complete lexicographic prefix-sharing pass from the
/// extremal-sets literature:
///
/// 1. **Column reorder** — elements are re-indexed by ascending global
///    frequency (ties by value), so every rewritten set leads with its
///    globally rarest element.
/// 2. **Lexicographic sort** — the rewritten sets are sorted
///    lexicographically under that order, which clusters sets sharing rare
///    prefixes next to each other.
/// 3. **Prefix-sharing subsumption** — for each set `S` the pass intersects
///    the occurrence lists of `S`'s elements front to back; `S` is maximal
///    iff the final intersection is `{S}` itself. The per-prefix
///    intersections live on a stack keyed by depth, and consecutive sets
///    reuse every level of their shared prefix — the amortisation that the
///    earlier least-frequent-element-only variant lacked. On small-universe
///    heavy-overlap families (where that variant's probe lists all
///    concentrated under a handful of elements) long shared prefixes make
///    the expensive first intersections almost free.
///
/// The pass answers "is `S` contained in *any* other set" directly (not just
/// "any already-processed set"), so under a deadline the processed prefix
/// yields sets that are maximal in the **full** family: the early return is
/// not merely an antichain but a subset of the true maximal family, matching
/// the guarantee of the descending-order backends.
struct ExtremalEngine {
    sets: Vec<Vec<u32>>,
    dedup: DedupIndex,
}

/// Intersection of two sorted id lists. When one side is much shorter the
/// pass gallops (binary-searches the longer side); otherwise a linear merge.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    if large.len() / 16 >= small.len() {
        for &x in small {
            if large.binary_search(&x).is_ok() {
                out.push(x);
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(small[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    out
}

/// The batch Bayardo–Panda pass: returns the maximal sets of `sets` (sorted
/// lexicographically on the original element values) plus the timed-out
/// flag. See [`ExtremalEngine`] for the algorithm.
fn extremal_filter(mut sets: Vec<Vec<u32>>, deadline: Option<Instant>) -> (Vec<Vec<u32>>, bool) {
    sets.sort();
    sets.dedup();
    let n = sets.len();
    if n <= 1 {
        return (sets, false);
    }

    // Column reorder: dense ids in ascending global-frequency order.
    let mut freq: HashMap<u32, u32> = HashMap::new();
    for set in &sets {
        for &e in set {
            *freq.entry(e).or_insert(0) += 1;
        }
    }
    let mut elems: Vec<u32> = freq.keys().copied().collect();
    elems.sort_unstable_by_key(|e| (freq[e], *e));
    let rank: HashMap<u32, u32> = elems
        .iter()
        .enumerate()
        .map(|(i, &e)| (e, i as u32))
        .collect();

    // Rewrite each set into rank space (rarest element first) and sort the
    // family lexicographically under the new order.
    let mut rewritten: Vec<Vec<u32>> = sets
        .iter()
        .map(|s| {
            let mut v: Vec<u32> = s.iter().map(|e| rank[e]).collect();
            v.sort_unstable();
            v
        })
        .collect();
    rewritten.sort_unstable();
    drop(sets);

    // occ[rank] = positions (in lex order) of the sets containing the
    // element; built in position order, so every list is sorted.
    let mut occ: Vec<Vec<u32>> = vec![Vec::new(); elems.len()];
    for (i, set) in rewritten.iter().enumerate() {
        for &r in set {
            occ[r as usize].push(i as u32);
        }
    }

    // Prefix-sharing subsumption. stack[d] = positions of the sets
    // containing every element of the current set's prefix [0..=d]; a set is
    // maximal iff the deepest level is the singleton {itself}. Consecutive
    // lex-sorted sets share prefixes, so the shared levels are reused
    // verbatim.
    let mut stack: Vec<Vec<u32>> = Vec::new();
    let mut maximal = vec![false; n];
    let mut processed = 0usize;
    let mut timed_out = false;
    for i in 0..n {
        if i.is_multiple_of(DEADLINE_STRIDE) {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    timed_out = true;
                    break;
                }
            }
        }
        let set = &rewritten[i];
        processed = i + 1;
        if set.is_empty() {
            // n > 1: some other (non-empty) set dominates the empty set.
            continue;
        }
        let shared = if i == 0 {
            0
        } else {
            rewritten[i - 1]
                .iter()
                .zip(set.iter())
                .take_while(|(a, b)| a == b)
                .count()
        };
        stack.truncate(shared);
        for d in stack.len()..set.len() {
            let list = &occ[set[d] as usize];
            let next = if d == 0 {
                list.clone()
            } else if stack[d - 1].len() == 1 {
                // Only one set contains this prefix — necessarily set i
                // itself — so every deeper level is the same singleton.
                stack[d - 1].clone()
            } else {
                intersect_sorted(&stack[d - 1], list)
            };
            stack.push(next);
        }
        // The final level holds every set containing all of set i's
        // elements; duplicates are gone, so any second entry is a strict
        // superset.
        maximal[i] = stack[set.len() - 1].len() == 1;
    }

    // Map the survivors back to original element values.
    let mut mqcs: Vec<Vec<u32>> = rewritten
        .into_iter()
        .take(processed)
        .zip(maximal)
        .filter_map(|(set, keep)| {
            keep.then(|| {
                let mut v: Vec<u32> = set.iter().map(|&r| elems[r as usize]).collect();
                v.sort_unstable();
                v
            })
        })
        .collect();
    mqcs.sort();
    (mqcs, timed_out)
}

impl ExtremalEngine {
    fn new() -> Self {
        ExtremalEngine {
            sets: Vec::new(),
            dedup: DedupIndex::default(),
        }
    }
}

impl MaximalityEngine for ExtremalEngine {
    fn name(&self) -> &'static str {
        "extremal"
    }

    fn add(&mut self, set: &[u32]) -> bool {
        let Some((set, hash)) = self.dedup.admit(set, &self.sets) else {
            return false;
        };
        self.dedup.register(hash, self.sets.len());
        self.sets.push(set.into_owned());
        true
    }

    fn live_len(&self) -> usize {
        self.sets.len()
    }

    fn drain(&mut self) -> Vec<Vec<u32>> {
        self.dedup.clear();
        std::mem::take(&mut self.sets)
    }

    fn finish_with_deadline(self: Box<Self>, deadline: Option<Instant>) -> S2Outcome {
        let (mqcs, timed_out) = extremal_filter(self.sets, deadline);
        S2Outcome {
            mqcs,
            timed_out,
            backend: "extremal",
            decision: None,
        }
    }
}

// ---------------------------------------------------------------------------
// AutoEngine: adaptive dispatcher.
// ---------------------------------------------------------------------------

/// The adaptive engine behind [`S2Backend::Auto`]: buffers (and
/// hash-deduplicates) the first [`AUTO_COMMIT_AT`] retained sets while
/// tracking the universe size and total element count, then commits to the
/// backend its [`S2CostModel`] predicts fastest and replays the buffer into
/// it. Streams that finish before the threshold choose at `finish` time.
/// The decision (shape, predictions, choice) is kept and reported on the
/// outcome so callers can audit mispredictions.
struct AutoEngine {
    model: S2CostModel,
    decision: Option<S2Decision>,
    /// Full-stream shape statistics, maintained *across* the commit: the
    /// commit decides from the buffered prefix (the engine cannot see the
    /// future), but the decision reported at finish re-predicts with these
    /// totals so the recorded per-backend costs describe the family the
    /// compaction actually ran on — comparing a 4096-set-prefix prediction
    /// against a full-stream measured time would make the misprediction
    /// audit apples-to-oranges.
    set_count: usize,
    universe: HashSet<u32>,
    total_elements: usize,
    state: AutoState,
}

enum AutoState {
    Buffering {
        sets: Vec<Vec<u32>>,
        dedup: DedupIndex,
    },
    Committed(Box<dyn MaximalityEngine>),
}

impl AutoEngine {
    fn new(model: S2CostModel) -> Self {
        AutoEngine {
            model,
            decision: None,
            set_count: 0,
            universe: HashSet::new(),
            total_elements: 0,
            state: AutoState::Buffering {
                sets: Vec::new(),
                dedup: DedupIndex::default(),
            },
        }
    }

    /// Records one retained set in the full-stream shape statistics.
    fn track(&mut self, set: &[u32]) {
        self.set_count += 1;
        self.total_elements += set.len();
        for &e in set {
            self.universe.insert(e);
        }
    }

    /// Chooses a backend from the statistics observed so far and replays the
    /// buffer into it.
    fn commit(&mut self) -> &mut Box<dyn MaximalityEngine> {
        if let AutoState::Buffering { sets, .. } = &mut self.state {
            let decision =
                self.model
                    .decide(self.set_count, self.universe.len(), self.total_elements);
            let mut engine = decision.chosen.new_engine();
            self.decision = Some(decision);
            for set in sets.drain(..) {
                engine.add(&set);
            }
            self.state = AutoState::Committed(engine);
        }
        match &mut self.state {
            AutoState::Committed(engine) => engine,
            AutoState::Buffering { .. } => unreachable!("commit just transitioned the state"),
        }
    }

    /// The decision as reported on the outcome: the commit-time choice, with
    /// the shape, the per-backend predictions and the `modeled` flag
    /// refreshed to the current stream statistics. Only `chosen` keeps its
    /// commit-time value (the engine genuinely ran the committed backend),
    /// so `predicted_millis` may rank another backend first — that is
    /// exactly the misprediction signal the benches audit. Refreshing
    /// `modeled` too keeps the record self-consistent (zero predictions ⇔
    /// not modeled) even for a drained-then-refilled engine whose current
    /// stream is below the model's range.
    fn final_decision(&self) -> Option<S2Decision> {
        let committed = self.decision?;
        let mut refreshed =
            self.model
                .decide(self.set_count, self.universe.len(), self.total_elements);
        refreshed.chosen = committed.chosen;
        Some(refreshed)
    }
}

impl MaximalityEngine for AutoEngine {
    fn name(&self) -> &'static str {
        match &self.state {
            AutoState::Buffering { .. } => "auto",
            AutoState::Committed(engine) => engine.name(),
        }
    }

    fn add(&mut self, set: &[u32]) -> bool {
        match &mut self.state {
            AutoState::Buffering { sets, dedup } => {
                let Some((set, hash)) = dedup.admit(set, sets) else {
                    return false;
                };
                dedup.register(hash, sets.len());
                self.set_count += 1;
                self.total_elements += set.len();
                for &e in set.iter() {
                    self.universe.insert(e);
                }
                sets.push(set.into_owned());
                if self.set_count >= AUTO_COMMIT_AT {
                    self.commit();
                }
                true
            }
            AutoState::Committed(engine) => {
                let retained = engine.add(set);
                if retained {
                    // The committed engine canonicalised internally; for the
                    // shape statistics the raw slice's length/elements match
                    // the canonical form on the pipeline's sorted streams
                    // and are close enough elsewhere.
                    self.track(set);
                }
                retained
            }
        }
    }

    fn live_len(&self) -> usize {
        match &self.state {
            AutoState::Buffering { sets, .. } => sets.len(),
            AutoState::Committed(engine) => engine.live_len(),
        }
    }

    fn drain(&mut self) -> Vec<Vec<u32>> {
        self.set_count = 0;
        self.universe.clear();
        self.total_elements = 0;
        match &mut self.state {
            AutoState::Buffering { sets, dedup } => {
                dedup.clear();
                std::mem::take(sets)
            }
            AutoState::Committed(engine) => engine.drain(),
        }
    }

    fn finish_with_deadline(mut self: Box<Self>, deadline: Option<Instant>) -> S2Outcome {
        self.commit();
        let decision = self.final_decision();
        match self.state {
            AutoState::Committed(engine) => {
                let mut outcome = engine.finish_with_deadline(deadline);
                outcome.decision = decision;
                outcome
            }
            AutoState::Buffering { .. } => unreachable!("commit just transitioned the state"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{filter_maximal, filter_maximal_naive};

    /// Deterministic pseudo-random overlapping set families.
    fn random_families() -> Vec<Vec<Vec<u32>>> {
        let mut families = Vec::new();
        for family in 0..20u64 {
            let mut sets = Vec::new();
            let mut x = family.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xDEADBEEF;
            let n = 10 + (family % 30) as usize;
            for _ in 0..n {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let len = (x >> 60) as usize % 7;
                let mut s = Vec::new();
                for _ in 0..len {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    s.push((x >> 33) as u32 % 14);
                }
                sets.push(s);
            }
            families.push(sets);
        }
        families
    }

    #[test]
    fn all_backends_match_naive_on_random_families() {
        for sets in random_families() {
            let expected = filter_maximal_naive(&sets);
            for backend in S2Backend::concrete() {
                assert_eq!(
                    filter_maximal_with(&sets, backend),
                    expected,
                    "{} disagrees on {sets:?}",
                    backend.name()
                );
            }
            assert_eq!(filter_maximal_with(&sets, S2Backend::Auto), expected);
        }
    }

    #[test]
    fn streaming_add_drops_duplicates_and_subsets() {
        for backend in [S2Backend::Inverted, S2Backend::Bitset] {
            let mut engine = backend.new_engine();
            assert!(engine.add(&[3, 1, 2]));
            assert!(
                !engine.add(&[1, 2, 3]),
                "{}: duplicate retained",
                backend.name()
            );
            assert!(!engine.add(&[2, 1]), "{}: subset retained", backend.name());
            assert!(
                engine.add(&[1, 2, 3, 4]),
                "{}: superset dropped",
                backend.name()
            );
            assert_eq!(engine.live_len(), 2);
            let out = engine.finish();
            assert_eq!(out.mqcs, vec![vec![1, 2, 3, 4]]);
            assert!(!out.timed_out);
        }
    }

    #[test]
    fn extremal_add_only_deduplicates() {
        let mut engine = S2Backend::Extremal.new_engine();
        assert!(engine.add(&[1, 2, 3]));
        assert!(!engine.add(&[3, 2, 1]));
        assert!(engine.add(&[1, 2])); // buffered; killed at finish
        assert_eq!(engine.finish().mqcs, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn empty_set_semantics_match_filter_maximal() {
        for backend in S2Backend::concrete() {
            let only_empty = vec![Vec::<u32>::new()];
            assert_eq!(
                filter_maximal_with(&only_empty, backend),
                filter_maximal(&only_empty),
                "{}",
                backend.name()
            );
            let mixed = vec![vec![], vec![7], vec![]];
            assert_eq!(
                filter_maximal_with(&mixed, backend),
                filter_maximal(&mixed),
                "{}",
                backend.name()
            );
        }
    }

    #[test]
    fn drain_and_merge_equals_batch() {
        let families = random_families();
        let sets = &families[3];
        let (a_half, b_half) = sets.split_at(sets.len() / 2);
        for backend in S2Backend::concrete() {
            let mut a = backend.new_engine();
            let mut b = backend.new_engine();
            for s in a_half {
                a.add(s);
            }
            for s in b_half {
                b.add(s);
            }
            for s in b.drain() {
                a.add(&s);
            }
            assert_eq!(b.live_len(), 0);
            assert_eq!(
                a.finish().mqcs,
                filter_maximal(sets),
                "{}: merged engines differ from batch",
                backend.name()
            );
        }
    }

    #[test]
    fn expired_deadline_returns_sound_partial_result() {
        let sets: Vec<Vec<u32>> = (0..2000u32)
            .map(|i| {
                (0..6)
                    .map(|j| (i.wrapping_mul(31).wrapping_add(j * 7)) % 40)
                    .collect()
            })
            .collect();
        for backend in S2Backend::concrete() {
            let mut engine = backend.new_engine();
            for s in &sets {
                engine.add(s);
            }
            let out = engine.finish_with_deadline(Some(Instant::now()));
            assert!(out.timed_out, "{}", backend.name());
            // Sound: the partial result is an antichain.
            for (i, a) in out.mqcs.iter().enumerate() {
                for (j, b) in out.mqcs.iter().enumerate() {
                    assert!(
                        i == j || !is_sorted_subset(a, b),
                        "{}: partial result contains {a:?} ⊆ {b:?}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn generous_deadline_never_times_out() {
        let sets = vec![vec![1, 2], vec![2, 3], vec![1, 2, 3]];
        for backend in S2Backend::concrete() {
            let mut engine = backend.new_engine();
            for s in &sets {
                engine.add(s);
            }
            let out = engine
                .finish_with_deadline(Some(Instant::now() + std::time::Duration::from_secs(60)));
            assert!(!out.timed_out);
            assert_eq!(out.mqcs, vec![vec![1, 2, 3]]);
        }
    }

    #[test]
    fn auto_commits_on_dense_overlap_and_records_the_decision() {
        // Small universe, heavy overlap: the INF'd-S1 shape.
        let mut engine = S2Backend::Auto.new_engine();
        assert_eq!(engine.name(), "auto");
        let mut x = 7u64;
        for _ in 0..AUTO_COMMIT_AT + 10 {
            let mut s = Vec::new();
            for _ in 0..12 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s.push((x >> 33) as u32 % 100);
            }
            engine.add(&s);
        }
        // Committed to whatever the model predicts fastest — on this shape
        // the inverted index (whose probe lists all concentrate) never wins.
        let committed = engine.name();
        assert_ne!(committed, "auto");
        assert_ne!(committed, "inverted");
        let out = engine.finish();
        let decision = out.decision.expect("auto records its dispatch decision");
        assert!(decision.modeled);
        assert_eq!(decision.chosen.name(), committed);
        assert!(decision.set_count >= AUTO_COMMIT_AT);
        assert!(decision.universe <= 100);
    }

    #[test]
    fn reported_decision_reflects_the_full_stream_not_the_commit_prefix() {
        // Stream well past the commit point with sets that keep widening the
        // universe; the decision on the outcome must describe the whole
        // family (so the recorded predictions are comparable with the
        // measured full-stream compaction time), while `chosen` stays the
        // backend committed at the prefix.
        let mut engine = S2Backend::Auto.new_engine();
        let n = 3 * AUTO_COMMIT_AT;
        for i in 0..n as u32 {
            // Distinct 8-element sets over an ever-growing universe.
            let s: Vec<u32> = (0..8).map(|j| i * 8 + j).collect();
            engine.add(&s);
        }
        let committed = engine.name().to_string();
        let out = engine.finish();
        let d = out.decision.expect("auto records its decision");
        assert_eq!(d.set_count, n, "decision shape is the full stream");
        assert_eq!(d.total_elements, n * 8);
        assert_eq!(d.universe, n * 8, "all elements are distinct");
        assert_eq!(
            d.chosen.name(),
            committed,
            "chosen stays the committed backend"
        );
        assert!(d.modeled);
    }

    #[test]
    fn drained_auto_engine_reports_a_consistent_decision() {
        // Commit (>= AUTO_COMMIT_AT sets), drain, refill with a tiny stream:
        // the reported decision must describe the *current* stream — below
        // the model's range, so not modeled and all-zero predictions — while
        // `chosen` still names the backend the engine genuinely ran.
        let mut engine = S2Backend::Auto.new_engine();
        for i in 0..(AUTO_COMMIT_AT + 8) as u32 {
            let s: Vec<u32> = (0..6).map(|j| i * 6 + j).collect();
            engine.add(&s);
        }
        let committed = engine.name().to_string();
        assert_ne!(committed, "auto");
        let _ = engine.drain();
        engine.add(&[1, 2, 3]);
        let out = engine.finish();
        let d = out.decision.expect("commit-time choice is still reported");
        assert!(
            !d.modeled,
            "tiny post-drain stream is below the model range"
        );
        assert_eq!(d.predicted_millis, [0.0; 3]);
        assert_eq!(d.set_count, 1);
        assert_eq!(d.chosen.name(), committed);
        assert_eq!(out.mqcs, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn concrete_backends_report_no_decision() {
        for backend in S2Backend::concrete() {
            let mut engine = backend.new_engine();
            engine.add(&[1, 2, 3]);
            assert!(engine.finish().decision.is_none(), "{}", backend.name());
        }
    }

    #[test]
    fn small_auto_streams_fall_back_to_inverted_with_a_decision() {
        let mut engine = S2Backend::Auto.new_engine();
        for i in 0..50u32 {
            engine.add(&[i, i + 1, i + 2]);
        }
        let out = engine.finish();
        assert_eq!(out.backend, "inverted");
        let decision = out.decision.expect("fallback still records the decision");
        assert!(!decision.modeled);
        assert_eq!(decision.chosen, S2Backend::Inverted);
    }

    #[test]
    fn backend_choice_heuristics() {
        // Tiny inputs stay on the inverted index (below the model's range).
        assert_eq!(choose_backend(100, 50, 1000), S2Backend::Inverted);
        assert_eq!(choose_backend(0, 0, 0), S2Backend::Inverted);
        // Dense small-universe overlap — the shape whose probe lists
        // degenerate — must leave the inverted index.
        assert_ne!(choose_backend(400_000, 150, 8_000_000), S2Backend::Inverted);
        // The wrapper and the checked-in model agree by construction.
        let model = S2CostModel::checked_in();
        for &(n, u, m) in &[
            (400_000usize, 150usize, 8_000_000usize),
            (100_000, 50_000, 500_000),
            (5_000, 4_000, 10_000_000),
            (2_000, 64, 30_000),
        ] {
            assert_eq!(choose_backend(n, u, m), model.decide(n, u, m).chosen);
        }
    }

    #[test]
    fn intersect_sorted_handles_both_strategies() {
        // Merge path: comparable lengths.
        assert_eq!(
            intersect_sorted(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]),
            vec![3, 7]
        );
        // Gallop path: one side much shorter than the other.
        let long: Vec<u32> = (0..1000).map(|i| i * 2).collect();
        assert_eq!(intersect_sorted(&[3, 40, 41, 998], &long,), vec![40, 998]);
        assert_eq!(intersect_sorted(&long, &[3, 40, 41, 998]), vec![40, 998]);
        assert_eq!(intersect_sorted(&[], &long), Vec::<u32>::new());
    }

    /// The regime ROADMAP flagged as degenerate for the old extremal
    /// variant: a small universe with heavy overlap, where every
    /// least-frequent-element list concentrates. The prefix-sharing pass
    /// must return exactly the inverted-reference family.
    #[test]
    fn extremal_prefix_sharing_matches_reference_on_heavy_overlap() {
        let mut x = 99u64;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u32
        };
        let family: Vec<Vec<u32>> = (0..4000)
            .map(|_| {
                let len = 8 + (next() % 7) as usize;
                let mut s = Vec::with_capacity(len);
                while s.len() < len {
                    // Skewed toward low ids, like a community core.
                    let e = (next() % 40).min(next() % 40);
                    if !s.contains(&e) {
                        s.push(e);
                    }
                }
                s
            })
            .collect();
        let reference = filter_maximal(&family);
        assert_eq!(filter_maximal_with(&family, S2Backend::Extremal), reference);
        // Plenty of real domination on this shape (subset sets exist), so
        // the pass is exercised beyond the everything-maximal fast case.
        assert!(reference.len() < family.len());
    }

    /// Unlike the pre-rework extremal pass, a deadline-cut run returns a
    /// subset of the *true* maximal family (each processed set is probed
    /// against every set, not just the processed prefix).
    #[test]
    fn extremal_partial_result_is_subset_of_full_family() {
        let sets: Vec<Vec<u32>> = (0..30_000u32)
            .map(|i| {
                (0..8)
                    .map(|j| (i.wrapping_mul(37).wrapping_add(j * 11)) % 60)
                    .collect()
            })
            .collect();
        let full = filter_maximal(&sets);
        for budget_micros in [0u64, 50, 500, 5_000] {
            let mut engine = S2Backend::Extremal.new_engine();
            for s in &sets {
                engine.add(s);
            }
            let deadline = Instant::now() + std::time::Duration::from_micros(budget_micros);
            let out = engine.finish_with_deadline(Some(deadline));
            for set in &out.mqcs {
                assert!(
                    full.binary_search(set).is_ok(),
                    "partial extremal result contains non-maximal {set:?}"
                );
            }
        }
    }

    #[test]
    fn backend_names_are_distinct() {
        let mut names: Vec<&str> = S2Backend::concrete().iter().map(|b| b.name()).collect();
        names.push(S2Backend::Auto.name());
        for backend in S2Backend::concrete() {
            assert_eq!(backend.new_engine().name(), backend.name());
        }
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
