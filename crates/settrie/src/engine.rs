//! The MQCE-S2 maximality-engine subsystem.
//!
//! PR 2's bitset kernel made MQCE-S1 fast enough that the batch-at-the-end
//! maximality filter became the bottleneck on dense workloads: with ~400k
//! heavily-overlapping quasi-cliques from an INF'd S1 run, the inverted-index
//! probe of [`filter_maximal`](crate::filter_maximal) degrades superlinearly
//! (its probe lists grow with the accepted-set count). This module replaces
//! the single batch filter with a [`MaximalityEngine`] abstraction that
//!
//! * **streams**: sets are fed in as the branch-and-bound search produces
//!   them, so duplicates and dominated sets are dropped on arrival and the
//!   filtering cost is amortised across the whole run;
//! * **parallelises**: per-thread engines can be drained and merged;
//! * **is deadline-aware**: the final compaction honours a wall-clock budget
//!   and returns a *sound* partial result (an antichain — every returned set
//!   is maximal w.r.t. the returned collection) instead of blowing through a
//!   time limit;
//! * **has three interchangeable backends** plus an adaptive dispatcher:
//!
//! | backend | probe structure | wins when |
//! |---|---|---|
//! | [`S2Backend::Inverted`] | element → accepted-set id lists, probe the least-frequent element | small or mildly overlapping families |
//! | [`S2Backend::Bitset`] | element → packed `u64` bitmap over accepted-set slots, word-AND intersection | small universe, heavy overlap (the INF'd-S1 wall shape) |
//! | [`S2Backend::Extremal`] | Bayardo–Panda-style: cardinality-ascending scan, each live set indexed once under its least-frequent element, subset-kill | large sparse universes |
//! | [`S2Backend::Auto`] | buffers a prefix, then commits using set count, universe size and mean overlap | the default |
//!
//! All backends produce exactly the result of
//! [`filter_maximal_naive`](crate::filter_maximal_naive): given a processed
//! prefix of the stream, a set survives iff no strict superset of it was
//! streamed (duplicates collapse to one copy). Domination is
//! order-independent, so the engines can only differ in *time*, never in the
//! final family.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::time::Instant;

use crate::filter::is_sorted_subset;

/// How often (in processed sets) the compaction loops poll the deadline.
const DEADLINE_STRIDE: usize = 128;

/// How many sets the [`AutoEngine`] buffers before committing to a backend.
const AUTO_COMMIT_AT: usize = 4096;

/// The result of finishing a [`MaximalityEngine`].
#[derive(Clone, Debug, Default)]
pub struct S2Outcome {
    /// The maximal sets, sorted lexicographically. When `timed_out` is set
    /// this is a *partial but sound* result: the sets are still pairwise
    /// incomparable (each one is maximal within the returned collection),
    /// but sets whose compaction never ran are missing.
    pub mqcs: Vec<Vec<u32>>,
    /// Whether the compaction stopped early because the deadline passed.
    pub timed_out: bool,
    /// The backend that performed the compaction (`auto` resolves to the
    /// backend it committed to).
    pub backend: &'static str,
}

/// A streaming maximality filter (MQCE-S2).
///
/// Feed sets in any order with [`add`](Self::add); call
/// [`finish`](Self::finish) (or the deadline-aware variant) to obtain exactly
/// the maximal sets of everything streamed so far. Engines use *lazy
/// subset elimination*: `add` drops a set that is dominated by (or equal to) a
/// set already retained, but a retained set that is dominated by a *later*
/// arrival is only removed during the final compaction. This keeps `add`
/// cheap — one superset probe — while `finish` restores the exact semantics
/// of [`filter_maximal`](crate::filter_maximal).
pub trait MaximalityEngine: Send {
    /// The backend name (`inverted`, `bitset`, `extremal`, or `auto`).
    fn name(&self) -> &'static str;

    /// Streams one set into the engine. Returns `true` when the set was
    /// retained, `false` when it was recognised on arrival as a duplicate of
    /// — or dominated by — an already retained set.
    fn add(&mut self, set: &[u32]) -> bool;

    /// Number of currently retained candidate sets. This is an upper bound
    /// on the final result size (later arrivals may still dominate earlier
    /// retained sets).
    fn live_len(&self) -> usize;

    /// Removes and returns every retained set, leaving the engine empty.
    /// Used to merge per-thread engines: drain one engine and `add` each set
    /// into another.
    fn drain(&mut self) -> Vec<Vec<u32>>;

    /// Compacts the retained sets to exactly the maximal ones (sorted
    /// lexicographically), consuming the engine.
    fn finish(self: Box<Self>) -> S2Outcome {
        self.finish_with_deadline(None)
    }

    /// Deadline-aware [`finish`](Self::finish): the compaction polls the
    /// deadline every few hundred sets and stops early once it has passed.
    /// The partial result is sound — see [`S2Outcome::mqcs`].
    fn finish_with_deadline(self: Box<Self>, deadline: Option<Instant>) -> S2Outcome;
}

/// Which S2 backend to use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum S2Backend {
    /// Buffer a prefix of the stream, then commit to the backend predicted
    /// fastest from the observed set count, universe size and mean overlap.
    #[default]
    Auto,
    /// The inverted-index filter behind
    /// [`filter_maximal`](crate::filter_maximal), made incremental.
    Inverted,
    /// Packed per-element bitmaps over accepted-set slots; superset queries
    /// are word-parallel bitmap intersections.
    Bitset,
    /// Bayardo–Panda-style extremal-sets filtering: cardinality-ascending
    /// processing, each live set indexed once under its least-frequent
    /// element, subset-kill on arrival of a superset.
    Extremal,
}

impl S2Backend {
    /// Human-readable backend name (`auto` / `inverted` / `bitset` /
    /// `extremal`).
    pub fn name(&self) -> &'static str {
        match self {
            S2Backend::Auto => "auto",
            S2Backend::Inverted => "inverted",
            S2Backend::Bitset => "bitset",
            S2Backend::Extremal => "extremal",
        }
    }

    /// Creates a fresh engine of this backend.
    pub fn new_engine(&self) -> Box<dyn MaximalityEngine> {
        match self {
            S2Backend::Auto => Box::new(AutoEngine::new()),
            S2Backend::Inverted => Box::new(StreamingEngine::<InvertedProbe>::new()),
            S2Backend::Bitset => Box::new(StreamingEngine::<BitmapProbe>::new()),
            S2Backend::Extremal => Box::new(ExtremalEngine::new()),
        }
    }

    /// All concrete (non-auto) backends, for differential tests and benches.
    pub fn concrete() -> [S2Backend; 3] {
        [S2Backend::Inverted, S2Backend::Bitset, S2Backend::Extremal]
    }
}

/// Runs `sets` through the chosen backend in one batch: the engine equivalent
/// of [`filter_maximal`](crate::filter_maximal).
pub fn filter_maximal_with(sets: &[Vec<u32>], backend: S2Backend) -> Vec<Vec<u32>> {
    let mut engine = backend.new_engine();
    for set in sets {
        engine.add(set);
    }
    engine.finish().mqcs
}

/// Picks the backend [`S2Backend::Auto`] commits to, given the observed
/// stream statistics: retained-set count, distinct-element count (universe)
/// and the total number of element occurrences across the retained sets.
///
/// The heuristic mirrors where each probe structure wins:
/// * tiny families: the inverted index has no set-up cost;
/// * small universe *and* high mean overlap (mean element frequency
///   `total / universe`): the word-parallel bitmaps turn the degenerate
///   probe lists of the INF'd-S1 shape into `O(live/64)` word scans, and the
///   `universe × live / 64` words of memory stay modest;
/// * large universe with sets much smaller than it: the extremal-sets
///   single-element indexing keeps probe lists short;
/// * otherwise the inverted index remains the safe default.
pub fn choose_backend(set_count: usize, universe: usize, total_elements: usize) -> S2Backend {
    if set_count < 1024 || universe == 0 {
        return S2Backend::Inverted;
    }
    let mean_overlap = total_elements as f64 / universe as f64;
    if universe <= 2048 && mean_overlap >= 16.0 {
        return S2Backend::Bitset;
    }
    let mean_size = total_elements as f64 / set_count as f64;
    if mean_size * 4.0 <= universe as f64 {
        return S2Backend::Extremal;
    }
    S2Backend::Inverted
}

/// Whether a set is already in canonical form (strictly increasing). The
/// pipeline's S1 outputs always are, so the hot `add` path can hash and
/// probe the borrowed slice directly and only copy on retention.
fn is_canonical(set: &[u32]) -> bool {
    set.windows(2).all(|w| w[0] < w[1])
}

/// The canonical (sorted, deduplicated) form of a set, borrowing when the
/// input already is canonical.
fn canonical(set: &[u32]) -> std::borrow::Cow<'_, [u32]> {
    if is_canonical(set) {
        std::borrow::Cow::Borrowed(set)
    } else {
        let mut v = set.to_vec();
        v.sort_unstable();
        v.dedup();
        std::borrow::Cow::Owned(v)
    }
}

fn set_hash(set: &[u32]) -> u64 {
    let mut h = DefaultHasher::new();
    set.hash(&mut h);
    h.finish()
}

/// Hash-keyed exact-duplicate table shared by the engines' `add` paths:
/// `hash(set) → slots in the backing store with that hash`.
#[derive(Default)]
struct DedupIndex {
    hashes: HashMap<u64, Vec<u32>>,
}

impl DedupIndex {
    /// Canonicalises `set` and probes the table for an exact duplicate among
    /// `store`. Returns `None` for a duplicate, or the canonical form plus
    /// its hash for a new set (the caller decides whether to
    /// [`register`](Self::register) it — the streaming engines may still
    /// drop the set to a domination probe first).
    fn admit<'a>(
        &self,
        set: &'a [u32],
        store: &[Vec<u32>],
    ) -> Option<(std::borrow::Cow<'a, [u32]>, u64)> {
        let set = canonical(set);
        let hash = set_hash(&set);
        if let Some(slots) = self.hashes.get(&hash) {
            if slots.iter().any(|&s| store[s as usize] == *set) {
                return None;
            }
        }
        Some((set, hash))
    }

    /// Records that `store[slot]` holds a set hashing to `hash`.
    fn register(&mut self, hash: u64, slot: usize) {
        self.hashes.entry(hash).or_default().push(slot as u32);
    }

    fn clear(&mut self) {
        self.hashes.clear();
    }
}

// ---------------------------------------------------------------------------
// Probe indices: the pluggable superset-query structure shared by the
// streaming phase and the descending-cardinality compaction.
// ---------------------------------------------------------------------------

/// A growable index over accepted sets answering "is some accepted set a
/// (non-strict) superset of the query?". Elements are arbitrary `u32`s;
/// implementations compress them to dense ids internally.
trait ProbeIndex: Default + Send {
    /// The public backend name of the engine built on this probe.
    const NAME: &'static str;

    /// Whether any indexed set contains every element of `set` (`set` itself
    /// is never indexed at query time). `accepted` is the backing storage the
    /// index's ids point into. Takes `&mut self` so implementations can keep
    /// reusable scratch buffers instead of allocating per probe.
    fn dominated(&mut self, set: &[u32], accepted: &[Vec<u32>]) -> bool;

    /// Indexes `accepted[slot]` (which must equal `set`).
    fn insert(&mut self, set: &[u32], slot: usize);
}

/// Element → list of accepted-set ids, probed at the query's least-frequent
/// element. The incremental twin of [`filter_maximal`](crate::filter_maximal).
#[derive(Default)]
struct InvertedProbe {
    /// Element value → dense element id.
    elem_ids: HashMap<u32, usize>,
    /// `containing[elem_id]` = accepted-set slots containing the element.
    containing: Vec<Vec<u32>>,
}

impl ProbeIndex for InvertedProbe {
    const NAME: &'static str = "inverted";

    fn dominated(&mut self, set: &[u32], accepted: &[Vec<u32>]) -> bool {
        let mut probe: Option<&Vec<u32>> = None;
        for e in set {
            let Some(&id) = self.elem_ids.get(e) else {
                // An element no accepted set contains: nothing can dominate.
                return false;
            };
            let list = &self.containing[id];
            if probe.is_none_or(|p| list.len() < p.len()) {
                probe = Some(list);
            }
        }
        let Some(probe) = probe else {
            // Empty query set: dominated by any accepted set.
            return !accepted.is_empty();
        };
        probe
            .iter()
            .any(|&i| is_sorted_subset(set, &accepted[i as usize]))
    }

    fn insert(&mut self, set: &[u32], slot: usize) {
        for &e in set {
            let next = self.containing.len();
            let id = *self.elem_ids.entry(e).or_insert(next);
            if id == next {
                self.containing.push(Vec::new());
            }
            self.containing[id].push(slot as u32);
        }
    }
}

/// Element → packed `u64` bitmap over accepted-set slots. A query is
/// dominated iff the intersection of its elements' bitmaps is non-empty, so
/// the probe is a word-parallel AND that starts from the least-frequent
/// element's bitmap and keeps only the surviving non-zero words — on the
/// degenerate family shapes where every inverted probe list is tens of
/// thousands of entries long, this replaces per-candidate subset tests with
/// `O(live / 64)` word operations.
#[derive(Default)]
struct BitmapProbe {
    elem_ids: HashMap<u32, usize>,
    /// `bitmaps[elem_id]` = bitmap over accepted slots (lazily grown; words
    /// past the end are implicitly zero).
    bitmaps: Vec<Vec<u64>>,
    /// `nonzero[elem_id]` = indices of the non-zero words of the element's
    /// bitmap. Slots are assigned in increasing order, so this stays sorted
    /// with amortised O(1) appends — and it lets a probe walk only the
    /// occupied words of its rarest element instead of the full bitmap width.
    nonzero: Vec<Vec<u32>>,
    /// `freq[elem_id]` = number of accepted sets containing the element.
    freq: Vec<u32>,
    /// Reusable scratch for the query's element ids, so the hot `add` path
    /// does not allocate per probe.
    query_ids: Vec<usize>,
    /// Reusable scratch for the surviving `(word index, word)` pairs.
    survivors: Vec<(u32, u64)>,
}

impl ProbeIndex for BitmapProbe {
    const NAME: &'static str = "bitset";

    fn dominated(&mut self, set: &[u32], accepted: &[Vec<u32>]) -> bool {
        // Destructure so the scratch buffers borrow disjointly from the
        // read-only index structures.
        let BitmapProbe {
            elem_ids,
            bitmaps,
            nonzero,
            freq,
            query_ids: ids,
            survivors,
        } = self;
        ids.clear();
        for e in set {
            let Some(&id) = elem_ids.get(e) else {
                return false;
            };
            if freq[id] == 0 {
                return false;
            }
            ids.push(id);
        }
        if ids.is_empty() {
            return !accepted.is_empty();
        }
        // Intersect in ascending frequency order so the survivor list
        // collapses as early as possible.
        ids.sort_unstable_by_key(|&id| freq[id]);
        if ids.len() == 1 {
            // A single-element query is dominated by any accepted set
            // containing the element, and freq > 0 was checked above.
            return true;
        }
        // Seed the survivors from the AND of the two rarest bitmaps, walking
        // only the rarest element's non-zero words.
        let (a, b) = (ids[0], ids[1]);
        let bm_a = &bitmaps[a];
        let bm_b = &bitmaps[b];
        survivors.clear();
        for &wi in &nonzero[a] {
            let w = bm_a[wi as usize] & bm_b.get(wi as usize).copied().unwrap_or(0);
            if w != 0 {
                survivors.push((wi, w));
            }
        }
        for &id in &ids[2..] {
            if survivors.is_empty() {
                return false;
            }
            let bm = &bitmaps[id];
            survivors.retain_mut(|(i, w)| {
                *w &= bm.get(*i as usize).copied().unwrap_or(0);
                *w != 0
            });
        }
        !survivors.is_empty()
    }

    fn insert(&mut self, set: &[u32], slot: usize) {
        let (word, bit) = (slot / 64, slot % 64);
        for &e in set {
            let next = self.bitmaps.len();
            let id = *self.elem_ids.entry(e).or_insert(next);
            if id == next {
                self.bitmaps.push(Vec::new());
                self.nonzero.push(Vec::new());
                self.freq.push(0);
            }
            let bm = &mut self.bitmaps[id];
            if bm.len() <= word {
                bm.resize(word + 1, 0);
            }
            if bm[word] == 0 {
                self.nonzero[id].push(word as u32);
            }
            bm[word] |= 1u64 << bit;
            self.freq[id] += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// StreamingEngine: the lazy-elimination engine shared by the inverted and
// bitset backends (they differ only in the probe structure).
// ---------------------------------------------------------------------------

/// Streaming engine with a pluggable probe index.
///
/// `add` keeps a persistent probe index over the retained sets: a new arrival
/// that is a duplicate of — or a subset of — a retained set is dropped
/// immediately (the common case on heavily overlapping S1 streams). Retained
/// sets dominated by *later* arrivals survive until `finish`, which re-runs
/// the probe over the retained family in descending cardinality order with a
/// fresh index, exactly like [`filter_maximal`](crate::filter_maximal).
struct StreamingEngine<P: ProbeIndex> {
    accepted: Vec<Vec<u32>>,
    probe: P,
    /// Exact-duplicate detection over the accepted slots.
    dedup: DedupIndex,
    /// Streaming probes attempted / sets they dropped. The on-arrival probe
    /// is an *optimisation* (the final compaction restores exactness), so
    /// when the observed drop rate shows it almost never fires — the
    /// worst-case family where nothing is dominated — the engine stops
    /// probing and indexing, turning `add` into a cheap dedup-and-buffer.
    probes: u64,
    probe_drops: u64,
    probing: bool,
}

/// Streaming probes before the drop rate is evaluated.
const PROBE_REVIEW_AT: u64 = 4096;

/// Streaming probing is disabled below one drop per this many probes.
const PROBE_MIN_DROP_RATE: u64 = 64;

impl<P: ProbeIndex> StreamingEngine<P> {
    fn new() -> Self {
        StreamingEngine {
            accepted: Vec::new(),
            probe: P::default(),
            dedup: DedupIndex::default(),
            probes: 0,
            probe_drops: 0,
            probing: true,
        }
    }
}

impl<P: ProbeIndex> MaximalityEngine for StreamingEngine<P> {
    fn name(&self) -> &'static str {
        P::NAME
    }

    fn add(&mut self, set: &[u32]) -> bool {
        let Some((set, hash)) = self.dedup.admit(set, &self.accepted) else {
            return false;
        };
        if set.is_empty() {
            // The empty set survives only when nothing else does.
            if !self.accepted.is_empty() {
                return false;
            }
        } else if self.probing {
            self.probes += 1;
            if self.probe.dominated(&set, &self.accepted) {
                self.probe_drops += 1;
                return false;
            }
            if self.probes >= PROBE_REVIEW_AT
                && self.probe_drops * PROBE_MIN_DROP_RATE < self.probes
            {
                // The stream is (so far) domination-free; stop paying for
                // probes and index maintenance. `finish` compacts exactly.
                self.probing = false;
                self.probe = P::default();
            }
        }
        let slot = self.accepted.len();
        if self.probing {
            self.probe.insert(&set, slot);
        }
        self.dedup.register(hash, slot);
        self.accepted.push(set.into_owned());
        true
    }

    fn live_len(&self) -> usize {
        self.accepted.len()
    }

    fn drain(&mut self) -> Vec<Vec<u32>> {
        self.probe = P::default();
        self.dedup.clear();
        self.probes = 0;
        self.probe_drops = 0;
        self.probing = true;
        std::mem::take(&mut self.accepted)
    }

    fn finish_with_deadline(self: Box<Self>, deadline: Option<Instant>) -> S2Outcome {
        let name = self.name();
        let (mqcs, timed_out) = compact_descending::<P>(self.accepted, deadline);
        S2Outcome {
            mqcs,
            timed_out,
            backend: name,
        }
    }
}

/// Descending-cardinality compaction with a fresh probe index.
///
/// A set can only be strictly contained in a *strictly larger* set, so the
/// sets are processed one size class at a time: the whole class is probed
/// against the index first, then the class's survivors are inserted. This
/// keeps same-size sets — which can never dominate each other — out of each
/// other's probes; on worst-case families where nothing is dominated, the
/// largest class probes an empty index for free.
///
/// Any strict superset of a set is processed before the set is probed, so
/// the accepted collection is an antichain after *every* class (and equal
/// -size survivors are mutually incomparable), which is what makes the
/// early deadline return sound.
fn compact_descending<P: ProbeIndex>(
    mut sets: Vec<Vec<u32>>,
    deadline: Option<Instant>,
) -> (Vec<Vec<u32>>, bool) {
    sets.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    sets.dedup();
    let n = sets.len();
    let mut probe = P::default();
    let mut accepted: Vec<Vec<u32>> = Vec::new();
    let mut timed_out = false;
    let mut processed = 0usize;
    let mut idx = 0usize;
    'classes: while idx < n {
        let class_len = sets[idx].len();
        let mut end = idx;
        while end < n && sets[end].len() == class_len {
            end += 1;
        }
        // Probe phase: the index holds only strictly larger sets.
        let mut kept: Vec<usize> = Vec::new();
        for (j, set) in sets.iter().enumerate().take(end).skip(idx) {
            if processed.is_multiple_of(DEADLINE_STRIDE) {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        timed_out = true;
                        break 'classes;
                    }
                }
            }
            processed += 1;
            if set.is_empty() {
                // The empty class is last; it survives only alone.
                if accepted.is_empty() {
                    kept.push(j);
                }
            } else if !probe.dominated(set, &accepted) {
                kept.push(j);
            }
        }
        // Insert phase: the class's survivors join the index together.
        for j in kept {
            let set = std::mem::take(&mut sets[j]);
            probe.insert(&set, accepted.len());
            accepted.push(set);
        }
        idx = end;
    }
    accepted.sort();
    (accepted, timed_out)
}

// ---------------------------------------------------------------------------
// ExtremalEngine: Bayardo–Panda-style extremal-sets filtering.
// ---------------------------------------------------------------------------

/// Bayardo–Panda-style extremal-sets backend.
///
/// `add` only deduplicates and buffers (this is the batch-oriented backend);
/// `finish` runs the extremal-sets pass: compute global element frequencies,
/// process the sets in ascending cardinality order, and for each set *kill*
/// every live strict subset of it. A live set is indexed exactly once —
/// under its least-frequent element — so the candidate lists a query set `S`
/// has to scan (the lists of `S`'s own elements, where any subset of `S` must
/// appear) stay far shorter than the full inverted index, and the
/// frequency-ordered indexing concentrates sets under rare elements that few
/// queries contain. Because processing is cardinality-ascending, the live
/// *processed* sets form an antichain at every step, so the deadline-aware
/// early return is sound — note however that, unlike the descending-order
/// backends, a deadline-cut partial result may retain small sets that an
/// uncut run would have dominated by a larger, not-yet-processed superset
/// (the result is an antichain of the processed prefix, not necessarily a
/// subset of the full maximal family).
struct ExtremalEngine {
    sets: Vec<Vec<u32>>,
    dedup: DedupIndex,
}

impl ExtremalEngine {
    fn new() -> Self {
        ExtremalEngine {
            sets: Vec::new(),
            dedup: DedupIndex::default(),
        }
    }
}

impl MaximalityEngine for ExtremalEngine {
    fn name(&self) -> &'static str {
        "extremal"
    }

    fn add(&mut self, set: &[u32]) -> bool {
        let Some((set, hash)) = self.dedup.admit(set, &self.sets) else {
            return false;
        };
        self.dedup.register(hash, self.sets.len());
        self.sets.push(set.into_owned());
        true
    }

    fn live_len(&self) -> usize {
        self.sets.len()
    }

    fn drain(&mut self) -> Vec<Vec<u32>> {
        self.dedup.clear();
        std::mem::take(&mut self.sets)
    }

    fn finish_with_deadline(self: Box<Self>, deadline: Option<Instant>) -> S2Outcome {
        let mut sets = self.sets;
        // Ascending cardinality: a set is processed before any of its strict
        // supersets, which are the only sets that can kill it.
        sets.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        sets.dedup();

        // Global element frequencies drive both the per-set probe element
        // (least frequent first) and how the index concentrates.
        let mut freq: HashMap<u32, u32> = HashMap::new();
        for set in &sets {
            for &e in set {
                *freq.entry(e).or_insert(0) += 1;
            }
        }
        let least_frequent = |set: &[u32]| -> Option<u32> {
            set.iter().copied().min_by_key(|e| (freq[e], *e))
        };

        // index[element] = live processed sets whose least-frequent element
        // it is. Dead entries are purged lazily while scanning.
        let mut index: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut alive = vec![true; sets.len()];
        let mut processed = 0usize;
        let mut timed_out = false;
        for i in 0..sets.len() {
            if i.is_multiple_of(DEADLINE_STRIDE) {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        timed_out = true;
                        break;
                    }
                }
            }
            // Kill every live strict subset of sets[i]: any such subset is
            // indexed under one of sets[i]'s elements. (Equal-cardinality
            // sets cannot be strict subsets, and duplicates are gone.)
            for &e in &sets[i] {
                let Some(list) = index.get_mut(&e) else {
                    continue;
                };
                list.retain(|&cand| {
                    let cand = cand as usize;
                    if !alive[cand] {
                        return false;
                    }
                    if is_sorted_subset(&sets[cand], &sets[i]) {
                        alive[cand] = false;
                        return false;
                    }
                    true
                });
            }
            if let Some(e) = least_frequent(&sets[i]) {
                index.entry(e).or_default().push(i as u32);
            }
            // The empty set has no probe element; it is alive only while
            // nothing else has been processed, and any non-empty set kills
            // it. (It cannot kill others: it has no strict subsets.)
            if sets[i].is_empty() && sets.len() > 1 {
                alive[i] = false;
            }
            processed = i + 1;
        }
        let mut mqcs: Vec<Vec<u32>> = sets
            .into_iter()
            .take(processed)
            .zip(alive)
            .filter_map(|(set, live)| live.then_some(set))
            .collect();
        mqcs.sort();
        S2Outcome {
            mqcs,
            timed_out,
            backend: "extremal",
        }
    }
}

// ---------------------------------------------------------------------------
// AutoEngine: adaptive dispatcher.
// ---------------------------------------------------------------------------

/// The adaptive engine behind [`S2Backend::Auto`]: buffers (and
/// hash-deduplicates) the first [`AUTO_COMMIT_AT`] retained sets while
/// tracking the universe size and total element count, then commits to the
/// backend [`choose_backend`] predicts fastest and replays the buffer into
/// it. Streams that finish before the threshold choose at `finish` time.
struct AutoEngine {
    state: AutoState,
}

enum AutoState {
    Buffering {
        sets: Vec<Vec<u32>>,
        dedup: DedupIndex,
        universe: HashSet<u32>,
        total_elements: usize,
    },
    Committed(Box<dyn MaximalityEngine>),
}

impl AutoEngine {
    fn new() -> Self {
        AutoEngine {
            state: AutoState::Buffering {
                sets: Vec::new(),
                dedup: DedupIndex::default(),
                universe: HashSet::new(),
                total_elements: 0,
            },
        }
    }

    /// Chooses a backend from the buffered statistics and replays the buffer.
    fn commit(&mut self) -> &mut Box<dyn MaximalityEngine> {
        if let AutoState::Buffering {
            sets,
            universe,
            total_elements,
            ..
        } = &mut self.state
        {
            let backend = choose_backend(sets.len(), universe.len(), *total_elements);
            let mut engine = backend.new_engine();
            for set in sets.drain(..) {
                engine.add(&set);
            }
            self.state = AutoState::Committed(engine);
        }
        match &mut self.state {
            AutoState::Committed(engine) => engine,
            AutoState::Buffering { .. } => unreachable!("commit just transitioned the state"),
        }
    }
}

impl MaximalityEngine for AutoEngine {
    fn name(&self) -> &'static str {
        match &self.state {
            AutoState::Buffering { .. } => "auto",
            AutoState::Committed(engine) => engine.name(),
        }
    }

    fn add(&mut self, set: &[u32]) -> bool {
        match &mut self.state {
            AutoState::Buffering {
                sets,
                dedup,
                universe,
                total_elements,
            } => {
                let Some((set, hash)) = dedup.admit(set, sets) else {
                    return false;
                };
                dedup.register(hash, sets.len());
                for &e in set.iter() {
                    universe.insert(e);
                }
                *total_elements += set.len();
                sets.push(set.into_owned());
                if sets.len() >= AUTO_COMMIT_AT {
                    self.commit();
                }
                true
            }
            AutoState::Committed(engine) => engine.add(set),
        }
    }

    fn live_len(&self) -> usize {
        match &self.state {
            AutoState::Buffering { sets, .. } => sets.len(),
            AutoState::Committed(engine) => engine.live_len(),
        }
    }

    fn drain(&mut self) -> Vec<Vec<u32>> {
        match &mut self.state {
            AutoState::Buffering {
                sets,
                dedup,
                universe,
                total_elements,
            } => {
                dedup.clear();
                universe.clear();
                *total_elements = 0;
                std::mem::take(sets)
            }
            AutoState::Committed(engine) => engine.drain(),
        }
    }

    fn finish_with_deadline(mut self: Box<Self>, deadline: Option<Instant>) -> S2Outcome {
        self.commit();
        match self.state {
            AutoState::Committed(engine) => engine.finish_with_deadline(deadline),
            AutoState::Buffering { .. } => unreachable!("commit just transitioned the state"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{filter_maximal, filter_maximal_naive};

    /// Deterministic pseudo-random overlapping set families.
    fn random_families() -> Vec<Vec<Vec<u32>>> {
        let mut families = Vec::new();
        for family in 0..20u64 {
            let mut sets = Vec::new();
            let mut x = family.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xDEADBEEF;
            let n = 10 + (family % 30) as usize;
            for _ in 0..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let len = (x >> 60) as usize % 7;
                let mut s = Vec::new();
                for _ in 0..len {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    s.push((x >> 33) as u32 % 14);
                }
                sets.push(s);
            }
            families.push(sets);
        }
        families
    }

    #[test]
    fn all_backends_match_naive_on_random_families() {
        for sets in random_families() {
            let expected = filter_maximal_naive(&sets);
            for backend in S2Backend::concrete() {
                assert_eq!(
                    filter_maximal_with(&sets, backend),
                    expected,
                    "{} disagrees on {sets:?}",
                    backend.name()
                );
            }
            assert_eq!(filter_maximal_with(&sets, S2Backend::Auto), expected);
        }
    }

    #[test]
    fn streaming_add_drops_duplicates_and_subsets() {
        for backend in [S2Backend::Inverted, S2Backend::Bitset] {
            let mut engine = backend.new_engine();
            assert!(engine.add(&[3, 1, 2]));
            assert!(!engine.add(&[1, 2, 3]), "{}: duplicate retained", backend.name());
            assert!(!engine.add(&[2, 1]), "{}: subset retained", backend.name());
            assert!(engine.add(&[1, 2, 3, 4]), "{}: superset dropped", backend.name());
            assert_eq!(engine.live_len(), 2);
            let out = engine.finish();
            assert_eq!(out.mqcs, vec![vec![1, 2, 3, 4]]);
            assert!(!out.timed_out);
        }
    }

    #[test]
    fn extremal_add_only_deduplicates() {
        let mut engine = S2Backend::Extremal.new_engine();
        assert!(engine.add(&[1, 2, 3]));
        assert!(!engine.add(&[3, 2, 1]));
        assert!(engine.add(&[1, 2])); // buffered; killed at finish
        assert_eq!(engine.finish().mqcs, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn empty_set_semantics_match_filter_maximal() {
        for backend in S2Backend::concrete() {
            let only_empty = vec![Vec::<u32>::new()];
            assert_eq!(
                filter_maximal_with(&only_empty, backend),
                filter_maximal(&only_empty),
                "{}",
                backend.name()
            );
            let mixed = vec![vec![], vec![7], vec![]];
            assert_eq!(
                filter_maximal_with(&mixed, backend),
                filter_maximal(&mixed),
                "{}",
                backend.name()
            );
        }
    }

    #[test]
    fn drain_and_merge_equals_batch() {
        let families = random_families();
        let sets = &families[3];
        let (a_half, b_half) = sets.split_at(sets.len() / 2);
        for backend in S2Backend::concrete() {
            let mut a = backend.new_engine();
            let mut b = backend.new_engine();
            for s in a_half {
                a.add(s);
            }
            for s in b_half {
                b.add(s);
            }
            for s in b.drain() {
                a.add(&s);
            }
            assert_eq!(b.live_len(), 0);
            assert_eq!(
                a.finish().mqcs,
                filter_maximal(sets),
                "{}: merged engines differ from batch",
                backend.name()
            );
        }
    }

    #[test]
    fn expired_deadline_returns_sound_partial_result() {
        let sets: Vec<Vec<u32>> = (0..2000u32)
            .map(|i| (0..6).map(|j| (i.wrapping_mul(31).wrapping_add(j * 7)) % 40).collect())
            .collect();
        for backend in S2Backend::concrete() {
            let mut engine = backend.new_engine();
            for s in &sets {
                engine.add(s);
            }
            let out = engine.finish_with_deadline(Some(Instant::now()));
            assert!(out.timed_out, "{}", backend.name());
            // Sound: the partial result is an antichain.
            for (i, a) in out.mqcs.iter().enumerate() {
                for (j, b) in out.mqcs.iter().enumerate() {
                    assert!(
                        i == j || !is_sorted_subset(a, b),
                        "{}: partial result contains {a:?} ⊆ {b:?}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn generous_deadline_never_times_out() {
        let sets = vec![vec![1, 2], vec![2, 3], vec![1, 2, 3]];
        for backend in S2Backend::concrete() {
            let mut engine = backend.new_engine();
            for s in &sets {
                engine.add(s);
            }
            let out = engine
                .finish_with_deadline(Some(Instant::now() + std::time::Duration::from_secs(60)));
            assert!(!out.timed_out);
            assert_eq!(out.mqcs, vec![vec![1, 2, 3]]);
        }
    }

    #[test]
    fn auto_commits_to_bitset_on_dense_overlap() {
        // Small universe, heavy overlap: the INF'd-S1 shape.
        let mut engine = S2Backend::Auto.new_engine();
        assert_eq!(engine.name(), "auto");
        let mut x = 7u64;
        for _ in 0..AUTO_COMMIT_AT + 10 {
            let mut s = Vec::new();
            for _ in 0..12 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s.push((x >> 33) as u32 % 100);
            }
            engine.add(&s);
        }
        assert_eq!(engine.name(), "bitset");
    }

    #[test]
    fn backend_choice_heuristics() {
        // Tiny inputs stay on the inverted index.
        assert_eq!(choose_backend(100, 50, 1000), S2Backend::Inverted);
        assert_eq!(choose_backend(0, 0, 0), S2Backend::Inverted);
        // Dense small-universe overlap goes to the bitmaps.
        assert_eq!(choose_backend(400_000, 150, 8_000_000), S2Backend::Bitset);
        // Sparse big-universe families go to extremal sets.
        assert_eq!(choose_backend(100_000, 50_000, 500_000), S2Backend::Extremal);
        // Large universe but sets covering much of it: inverted.
        assert_eq!(choose_backend(5_000, 4_000, 10_000_000), S2Backend::Inverted);
    }

    #[test]
    fn backend_names_are_distinct() {
        let mut names: Vec<&str> = S2Backend::concrete().iter().map(|b| b.name()).collect();
        names.push(S2Backend::Auto.name());
        for backend in S2Backend::concrete() {
            assert_eq!(backend.new_engine().name(), backend.name());
        }
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
