//! Measured cost model behind the [`S2Backend::Auto`] dispatcher.
//!
//! The first streaming-engine iteration dispatched with hand-tuned
//! thresholds (`universe <= 2048 && overlap >= 16 → bitset`, …). Those
//! cliffs were guessed from two recorded workloads and aged badly the moment
//! the extremal backend stopped degenerating: the regime boundaries between
//! three sub-quadratic algorithms are smooth functions of the family shape,
//! not axis-aligned boxes. This module replaces the guesses with a small
//! *measured* model:
//!
//! * each concrete backend gets a log-linear cost surface
//!   `ln(millis) = c₀ + c₁·ln(sets) + c₂·ln(universe) + c₃·ln(overlap)`
//!   (where `overlap = total element occurrences / universe` is the mean
//!   element frequency — the knob that made the old extremal backend
//!   degenerate);
//! * the coefficients are **fitted from timings**, not tuned: the
//!   `experiments s2-calibrate` profile replays a grid of synthetic set
//!   families through every backend, fits each surface by least squares
//!   ([`fit_log_linear`]), and emits the result in the table format of
//!   [`S2CostModel::to_table_string`];
//! * the fitted table is checked in as `s2_cost_model.tsv` next to this file
//!   and parsed once into [`S2CostModel::checked_in`] — the dispatcher
//!   consults the table, so re-calibrating on new hardware is editing one
//!   data file (or passing `--s2-model` on the CLI), not re-tuning code;
//! * every dispatch is recorded as an [`S2Decision`] (observed stream shape
//!   plus the per-backend predictions) and surfaced through `S2Stats`, so
//!   the bench profiles can audit mispredictions against measured times.
//!
//! Families smaller than [`MODEL_MIN_SETS`] skip the model entirely: below
//! the fitted range the asymptotics the surfaces describe are noise next to
//! per-engine set-up cost, and the inverted index is the cheapest to stand
//! up.

use std::sync::OnceLock;

use crate::engine::S2Backend;

/// Families with fewer retained sets than this bypass the model and use the
/// inverted index (set-up cost dominates below the calibrated range).
pub const MODEL_MIN_SETS: usize = 1024;

/// The calibrated table this build ships with (regenerate with
/// `experiments s2-calibrate --emit crates/settrie/src/s2_cost_model.tsv`).
const CHECKED_IN_TABLE: &str = include_str!("s2_cost_model.tsv");

/// One dispatch decision of the auto engine: the observed stream shape, the
/// per-backend cost predictions, and the committed backend. Carried on
/// `S2Outcome`/`S2Stats` so benches can compare the prediction against the
/// measured per-backend times and audit mispredictions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct S2Decision {
    /// Retained (deduplicated) sets at decision time.
    pub set_count: usize,
    /// Distinct elements across the retained sets.
    pub universe: usize,
    /// Total element occurrences across the retained sets.
    pub total_elements: usize,
    /// Predicted compaction cost in milliseconds per concrete backend, in
    /// [`S2Backend::concrete`] order (inverted, bitset, extremal). All zero
    /// when `modeled` is false.
    pub predicted_millis: [f64; 3],
    /// The backend the dispatcher committed to.
    pub chosen: S2Backend,
    /// Whether the cost model made the choice. `false` means the
    /// small-family fallback fired and `predicted_millis` is meaningless.
    pub modeled: bool,
}

/// Per-backend log-linear cost surfaces fitted by `experiments s2-calibrate`.
///
/// `coeffs[k]` holds `[c₀, c₁, c₂, c₃]` for the `k`-th backend of
/// [`S2Backend::concrete`]; the predicted compaction cost is
/// `exp(c₀ + c₁·ln(sets) + c₂·ln(universe) + c₃·ln(overlap))` milliseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct S2CostModel {
    /// Fitted coefficients, one row per concrete backend.
    pub coeffs: [[f64; 4]; 3],
}

impl Default for S2CostModel {
    fn default() -> Self {
        Self::checked_in()
    }
}

/// The feature vector of a family shape: `[1, ln n, ln u, ln(m/u)]`, with
/// every argument clamped to ≥ 1 so degenerate shapes stay finite.
fn features(set_count: usize, universe: usize, total_elements: usize) -> [f64; 4] {
    let n = set_count.max(1) as f64;
    let u = universe.max(1) as f64;
    let overlap = (total_elements as f64 / u).max(1.0);
    [1.0, n.ln(), u.ln(), overlap.ln()]
}

impl S2CostModel {
    /// The model parsed from the checked-in `s2_cost_model.tsv` (parsed once,
    /// then copied — the struct is `Copy`).
    pub fn checked_in() -> Self {
        static MODEL: OnceLock<S2CostModel> = OnceLock::new();
        *MODEL.get_or_init(|| {
            S2CostModel::from_table_str(CHECKED_IN_TABLE)
                .expect("the checked-in s2_cost_model.tsv is valid (see its header comment)")
        })
    }

    /// Parses the table format emitted by [`Self::to_table_string`]: `#`
    /// comment lines, then one `backend\tc0\tc1\tc2\tc3` row per concrete
    /// backend (any run of whitespace separates columns).
    pub fn from_table_str(text: &str) -> Result<Self, String> {
        let mut coeffs = [[f64::NAN; 4]; 3];
        let mut seen = [false; 3];
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut cols = line.split_whitespace();
            let name = cols.next().expect("non-empty line has a first column");
            let slot = S2Backend::concrete()
                .iter()
                .position(|b| b.name() == name)
                .ok_or_else(|| format!("line {}: unknown backend {name:?}", lineno + 1))?;
            for (k, item) in coeffs[slot].iter_mut().enumerate() {
                let raw = cols
                    .next()
                    .ok_or_else(|| format!("line {}: missing coefficient {k}", lineno + 1))?;
                let value: f64 = raw
                    .parse()
                    .map_err(|_| format!("line {}: bad coefficient {raw:?}", lineno + 1))?;
                if !value.is_finite() {
                    return Err(format!(
                        "line {}: non-finite coefficient {raw:?}",
                        lineno + 1
                    ));
                }
                *item = value;
            }
            if let Some(extra) = cols.next() {
                return Err(format!("line {}: trailing column {extra:?}", lineno + 1));
            }
            if seen[slot] {
                return Err(format!("line {}: duplicate backend {name:?}", lineno + 1));
            }
            seen[slot] = true;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!(
                "no row for backend {:?}",
                S2Backend::concrete()[missing].name()
            ));
        }
        Ok(S2CostModel { coeffs })
    }

    /// Serialises the model in the checked-in table format (the exact bytes
    /// `s2-calibrate --emit` writes).
    pub fn to_table_string(&self) -> String {
        let mut out = String::from(
            "# S2 maximality-backend cost model, fitted by `experiments s2-calibrate`.\n\
             # ln(millis) = c0 + c1*ln(sets) + c2*ln(universe) + c3*ln(overlap)\n\
             # where overlap = total element occurrences / universe.\n\
             # backend\tc0\tc1\tc2\tc3\n",
        );
        for (k, backend) in S2Backend::concrete().iter().enumerate() {
            out.push_str(backend.name());
            for c in self.coeffs[k] {
                out.push('\t');
                out.push_str(&format!("{c:.6}"));
            }
            out.push('\n');
        }
        out
    }

    /// Predicted compaction cost in milliseconds for one concrete backend on
    /// a family with `set_count` sets over `universe` distinct elements and
    /// `total_elements` element occurrences. `None` for [`S2Backend::Auto`].
    pub fn predict_millis(
        &self,
        backend: S2Backend,
        set_count: usize,
        universe: usize,
        total_elements: usize,
    ) -> Option<f64> {
        let slot = S2Backend::concrete().iter().position(|b| *b == backend)?;
        let x = features(set_count, universe, total_elements);
        let ln_cost: f64 = self.coeffs[slot].iter().zip(x).map(|(c, x)| c * x).sum();
        Some(ln_cost.exp())
    }

    /// Dispatches a family shape: the backend with the lowest predicted cost,
    /// or the inverted-index fallback below [`MODEL_MIN_SETS`]. Returns the
    /// full decision record (shape, predictions, choice).
    pub fn decide(&self, set_count: usize, universe: usize, total_elements: usize) -> S2Decision {
        let mut decision = S2Decision {
            set_count,
            universe,
            total_elements,
            predicted_millis: [0.0; 3],
            chosen: S2Backend::Inverted,
            modeled: false,
        };
        if set_count < MODEL_MIN_SETS || universe == 0 {
            return decision;
        }
        decision.modeled = true;
        let mut best = 0usize;
        for (k, backend) in S2Backend::concrete().iter().enumerate() {
            let cost = self
                .predict_millis(*backend, set_count, universe, total_elements)
                .expect("concrete backends always have a prediction");
            decision.predicted_millis[k] = cost;
            if cost < decision.predicted_millis[best] {
                best = k;
            }
        }
        decision.chosen = S2Backend::concrete()[best];
        decision
    }
}

/// Least-squares fit of one backend's log-linear cost surface from measured
/// samples `(set_count, universe, total_elements, millis)`. Returns the
/// `[c₀, c₁, c₂, c₃]` row, or `None` when the samples cannot pin the surface
/// down (fewer than 4, non-positive timings, or a degenerate design matrix —
/// e.g. every sample sharing one universe).
pub fn fit_log_linear(samples: &[(usize, usize, usize, f64)]) -> Option<[f64; 4]> {
    if samples.len() < 4 {
        return None;
    }
    // Normal equations XᵀX β = Xᵀy over the 4 features.
    let mut xtx = [[0.0f64; 4]; 4];
    let mut xty = [0.0f64; 4];
    for &(n, u, m, millis) in samples {
        if millis <= 0.0 || !millis.is_finite() {
            return None;
        }
        let x = features(n, u, m);
        let y = millis.ln();
        for i in 0..4 {
            for j in 0..4 {
                xtx[i][j] += x[i] * x[j];
            }
            xty[i] += x[i] * y;
        }
    }
    solve4(xtx, xty)
}

/// Solves the 4×4 linear system `a·β = b` by Gaussian elimination with
/// partial pivoting; `None` for (numerically) singular systems.
fn solve4(mut a: [[f64; 4]; 4], mut b: [f64; 4]) -> Option<[f64; 4]> {
    for col in 0..4 {
        let pivot = (col..4).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("pivot magnitudes are finite")
        })?;
        if a[pivot][col].abs() < 1e-9 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..4 {
            let factor = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            for (x, &p) in rest[0].iter_mut().zip(pivot_rows[col].iter()).skip(col) {
                *x -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut beta = [0.0f64; 4];
    for col in (0..4).rev() {
        let mut acc = b[col];
        for k in col + 1..4 {
            acc -= a[col][k] * beta[k];
        }
        beta[col] = acc / a[col][col];
    }
    Some(beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_in_table_parses_and_round_trips() {
        let model = S2CostModel::checked_in();
        let rebuilt = S2CostModel::from_table_str(&model.to_table_string()).unwrap();
        for (a, b) in model
            .coeffs
            .iter()
            .flatten()
            .zip(rebuilt.coeffs.iter().flatten())
        {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn table_parse_rejects_malformed_input() {
        assert!(S2CostModel::from_table_str("").is_err());
        assert!(S2CostModel::from_table_str("inverted 1 2 3").is_err());
        assert!(S2CostModel::from_table_str("alien 1 2 3 4").is_err());
        assert!(S2CostModel::from_table_str("inverted 1 2 3 x").is_err());
        assert!(S2CostModel::from_table_str(
            "inverted 1 2 3 4\nbitset 1 2 3 4\nextremal 1 2 3 4\ninverted 0 0 0 0"
        )
        .is_err());
        assert!(S2CostModel::from_table_str("inverted 1 2 3 4 5").is_err());
        // Non-finite coefficients would silently neuter the dispatcher
        // (every NaN comparison is false), so they are rejected at parse.
        assert!(S2CostModel::from_table_str(
            "inverted NaN 2 3 4\nbitset 1 2 3 4\nextremal 1 2 3 4"
        )
        .is_err());
        assert!(S2CostModel::from_table_str(
            "inverted 1 2 3 inf\nbitset 1 2 3 4\nextremal 1 2 3 4"
        )
        .is_err());
        let ok = S2CostModel::from_table_str(
            "# comment\ninverted 1 2 3 4\n\nbitset 1 2 3 4\nextremal -1 0.5 0 2\n",
        )
        .unwrap();
        assert_eq!(ok.coeffs[2], [-1.0, 0.5, 0.0, 2.0]);
    }

    #[test]
    fn small_families_bypass_the_model() {
        let model = S2CostModel::checked_in();
        let d = model.decide(MODEL_MIN_SETS - 1, 50, 5000);
        assert_eq!(d.chosen, S2Backend::Inverted);
        assert!(!d.modeled);
        assert_eq!(d.predicted_millis, [0.0; 3]);
        let d = model.decide(1_000_000, 0, 0);
        assert!(!d.modeled);
        assert_eq!(d.chosen, S2Backend::Inverted);
    }

    #[test]
    fn decide_picks_the_cheapest_prediction() {
        // A synthetic model where the universe term alone separates the
        // backends: tiny universes → bitset, huge → extremal.
        let model = S2CostModel {
            coeffs: [
                [0.0, 0.0, 0.5, 0.0],  // inverted: middling everywhere
                [-2.0, 0.0, 1.0, 0.0], // bitset: cheap only when u is small
                [4.0, 0.0, 0.0, 0.0],  // extremal: flat
            ],
        };
        let d = model.decide(10_000, 16, 200_000);
        assert!(d.modeled);
        assert_eq!(d.chosen, S2Backend::Bitset);
        let d = model.decide(10_000, 1_000_000, 200_000);
        assert_eq!(d.chosen, S2Backend::Extremal);
        assert_eq!(d.set_count, 10_000);
        // The recorded predictions are consistent with the choice.
        let best: f64 = d
            .predicted_millis
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let chosen_slot = S2Backend::concrete()
            .iter()
            .position(|b| *b == d.chosen)
            .unwrap();
        assert_eq!(d.predicted_millis[chosen_slot], best);
    }

    #[test]
    fn fit_recovers_a_known_surface() {
        let truth = [-3.0, 1.2, 0.3, 0.7];
        let mut samples = Vec::new();
        for &n in &[2000usize, 8000, 30000, 120000] {
            for &u in &[64usize, 512, 4096] {
                for &mean_size in &[8usize, 20] {
                    let m = n * mean_size;
                    let x = features(n, u, m);
                    let ln_cost: f64 = truth.iter().zip(x).map(|(c, x)| c * x).sum();
                    samples.push((n, u, m, ln_cost.exp()));
                }
            }
        }
        let fitted = fit_log_linear(&samples).unwrap();
        for (f, t) in fitted.iter().zip(truth) {
            assert!((f - t).abs() < 1e-6, "fitted {f} vs true {t}");
        }
        // Predictions come back in the original (non-log) scale.
        let model = S2CostModel {
            coeffs: [fitted, fitted, fitted],
        };
        let (n, u, m) = (5000usize, 256usize, 5000 * 12);
        let x = features(n, u, m);
        let expected: f64 = truth.iter().zip(x).map(|(c, x)| c * x).sum::<f64>().exp();
        let got = model.predict_millis(S2Backend::Inverted, n, u, m).unwrap();
        assert!((got / expected - 1.0).abs() < 1e-6);
        assert!(model.predict_millis(S2Backend::Auto, n, u, m).is_none());
    }

    #[test]
    fn fit_rejects_degenerate_samples() {
        assert!(fit_log_linear(&[]).is_none());
        assert!(fit_log_linear(&[(1000, 10, 10000, 5.0)]).is_none());
        // All samples share every feature: the design matrix is singular.
        let flat = vec![(1000, 10, 10000, 5.0); 10];
        assert!(fit_log_linear(&flat).is_none());
        // Non-positive timings cannot be log-fitted.
        let bad = vec![
            (1000, 10, 10000, 0.0),
            (2000, 20, 30000, 1.0),
            (4000, 40, 90000, 2.0),
            (8000, 80, 270000, 3.0),
        ];
        assert!(fit_log_linear(&bad).is_none());
    }
}
