//! The set-trie data structure.

use std::collections::BTreeMap;

/// A node of the set-trie. Children are keyed by element and kept ordered so
/// that subset/superset searches can prune by element order.
#[derive(Clone, Debug, Default)]
struct Node {
    children: BTreeMap<u32, Node>,
    /// Number of stored sets terminating at this node (supports duplicates).
    terminal: usize,
}

/// A set-trie over sets of `u32` elements.
///
/// Sets are normalised (sorted, deduplicated) on insertion. The structure
/// supports the queries needed by MQCE-S2:
///
/// * [`contains`](SetTrie::contains) — exact-set membership,
/// * [`contains_subset_of`](SetTrie::contains_subset_of) — is some stored set
///   a subset of the query?
/// * [`get_all_subsets`](SetTrie::get_all_subsets) — all stored subsets of the
///   query (the `GetAllSubsets` query of the paper),
/// * [`exists_superset_of`](SetTrie::exists_superset_of) — is some stored set
///   a superset of the query?
/// * [`remove`](SetTrie::remove) — delete one copy of an exact set.
#[derive(Clone, Debug, Default)]
pub struct SetTrie {
    root: Node,
    len: usize,
}

fn normalize(set: &[u32]) -> Vec<u32> {
    let mut s = set.to_vec();
    s.sort_unstable();
    s.dedup();
    s
}

impl SetTrie {
    /// Creates an empty set-trie.
    pub fn new() -> Self {
        SetTrie::default()
    }

    /// Number of stored sets (counting duplicates).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie stores no sets.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a set (normalised to sorted/deduplicated form).
    pub fn insert(&mut self, set: &[u32]) {
        let s = normalize(set);
        let mut node = &mut self.root;
        for &x in &s {
            node = node.children.entry(x).or_default();
        }
        node.terminal += 1;
        self.len += 1;
    }

    /// Whether the exact set is stored.
    pub fn contains(&self, set: &[u32]) -> bool {
        let s = normalize(set);
        let mut node = &self.root;
        for &x in &s {
            match node.children.get(&x) {
                Some(child) => node = child,
                None => return false,
            }
        }
        node.terminal > 0
    }

    /// Removes one copy of the exact set; returns `true` if it was present.
    pub fn remove(&mut self, set: &[u32]) -> bool {
        let s = normalize(set);
        if !self.contains(&s) {
            return false;
        }
        fn rec(node: &mut Node, set: &[u32]) -> bool {
            // Returns true if the child node can be pruned.
            if set.is_empty() {
                node.terminal -= 1;
            } else {
                let x = set[0];
                let prune = {
                    let child = node.children.get_mut(&x).expect("checked by contains");
                    rec(child, &set[1..])
                };
                if prune {
                    node.children.remove(&x);
                }
            }
            node.terminal == 0 && node.children.is_empty()
        }
        rec(&mut self.root, &s);
        self.len -= 1;
        true
    }

    /// Whether some stored set is a subset of `query` (including equal sets).
    pub fn contains_subset_of(&self, query: &[u32]) -> bool {
        let q = normalize(query);
        Self::subset_search(&self.root, &q)
    }

    fn subset_search(node: &Node, query: &[u32]) -> bool {
        if node.terminal > 0 {
            return true;
        }
        // Try to extend the current path with any query element; children and
        // query are both sorted, so walk them in tandem.
        let mut qi = 0usize;
        for (&elem, child) in &node.children {
            while qi < query.len() && query[qi] < elem {
                qi += 1;
            }
            if qi >= query.len() {
                break;
            }
            if query[qi] == elem && Self::subset_search(child, &query[qi + 1..]) {
                return true;
            }
        }
        false
    }

    /// All stored sets that are subsets of `query` (the `GetAllSubsets` query
    /// used to solve MQCE-S2). Duplicated stored sets are reported once.
    pub fn get_all_subsets(&self, query: &[u32]) -> Vec<Vec<u32>> {
        let q = normalize(query);
        let mut out = Vec::new();
        let mut path = Vec::new();
        Self::collect_subsets(&self.root, &q, &mut path, &mut out);
        out
    }

    fn collect_subsets(node: &Node, query: &[u32], path: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if node.terminal > 0 {
            out.push(path.clone());
        }
        let mut qi = 0usize;
        for (&elem, child) in &node.children {
            while qi < query.len() && query[qi] < elem {
                qi += 1;
            }
            if qi >= query.len() {
                break;
            }
            if query[qi] == elem {
                path.push(elem);
                Self::collect_subsets(child, &query[qi + 1..], path, out);
                path.pop();
            }
        }
    }

    /// Whether some stored set is a superset of `query` (including equal
    /// sets). This is the primitive used to filter out non-maximal QCs.
    pub fn exists_superset_of(&self, query: &[u32]) -> bool {
        let q = normalize(query);
        Self::superset_search(&self.root, &q)
    }

    fn superset_search(node: &Node, query: &[u32]) -> bool {
        if query.is_empty() {
            // Any stored set below this node is a superset of the (consumed)
            // query.
            return Self::has_any_terminal(node);
        }
        let next = query[0];
        for (&elem, child) in &node.children {
            if elem > next {
                break;
            }
            let rest = if elem == next { &query[1..] } else { query };
            if Self::superset_search(child, rest) {
                return true;
            }
        }
        false
    }

    fn has_any_terminal(node: &Node) -> bool {
        if node.terminal > 0 {
            return true;
        }
        node.children.values().any(Self::has_any_terminal)
    }

    /// Whether some *other* stored set is a proper superset of `query`
    /// (a stored copy equal to `query` does not count). This is exactly the
    /// non-maximality test of MQCE-S2.
    pub fn exists_proper_superset_of(&self, query: &[u32]) -> bool {
        let q = normalize(query);
        Self::proper_superset_search(&self.root, &q, false)
    }

    fn proper_superset_search(node: &Node, query: &[u32], extended: bool) -> bool {
        if query.is_empty() {
            if extended {
                return Self::has_any_terminal(node);
            }
            // Path equals the query so far: need at least one more element.
            return node.children.values().any(Self::has_any_terminal);
        }
        let next = query[0];
        for (&elem, child) in &node.children {
            if elem > next {
                break;
            }
            let (rest, ext) = if elem == next {
                (&query[1..], extended)
            } else {
                (query, true)
            };
            if Self::proper_superset_search(child, rest, ext) {
                return true;
            }
        }
        false
    }

    /// All stored sets, in lexicographic order.
    pub fn iter_sets(&self) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        Self::collect_all(&self.root, &mut path, &mut out);
        out
    }

    fn collect_all(node: &Node, path: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        for _ in 0..node.terminal {
            out.push(path.clone());
        }
        for (&elem, child) in &node.children {
            path.push(elem);
            Self::collect_all(child, path, out);
            path.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut t = SetTrie::new();
        assert!(t.is_empty());
        t.insert(&[3, 1, 2]);
        t.insert(&[1, 2]);
        assert_eq!(t.len(), 2);
        assert!(t.contains(&[1, 2, 3]));
        assert!(t.contains(&[2, 1]));
        assert!(!t.contains(&[1, 3]));
        assert!(t.remove(&[1, 2, 3]));
        assert!(!t.contains(&[1, 2, 3]));
        assert!(t.contains(&[1, 2]));
        assert!(!t.remove(&[9]));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicates_are_counted() {
        let mut t = SetTrie::new();
        t.insert(&[1, 2]);
        t.insert(&[2, 1, 1]);
        assert_eq!(t.len(), 2);
        assert!(t.remove(&[1, 2]));
        assert!(t.contains(&[1, 2]));
        assert!(t.remove(&[1, 2]));
        assert!(!t.contains(&[1, 2]));
        assert!(t.is_empty());
    }

    #[test]
    fn subset_queries() {
        let mut t = SetTrie::new();
        t.insert(&[1, 2, 3]);
        t.insert(&[2, 4]);
        t.insert(&[5]);
        assert!(t.contains_subset_of(&[1, 2, 3, 4, 5]));
        assert!(t.contains_subset_of(&[2, 4]));
        assert!(!t.contains_subset_of(&[1, 3, 4]));
        let subs = t.get_all_subsets(&[1, 2, 3, 4]);
        assert_eq!(subs.len(), 2);
        assert!(subs.contains(&vec![1, 2, 3]));
        assert!(subs.contains(&vec![2, 4]));
    }

    #[test]
    fn superset_queries() {
        let mut t = SetTrie::new();
        t.insert(&[1, 2, 3]);
        t.insert(&[2, 4, 6]);
        assert!(t.exists_superset_of(&[1, 3]));
        assert!(t.exists_superset_of(&[2]));
        assert!(t.exists_superset_of(&[]));
        assert!(!t.exists_superset_of(&[3, 4]));
        assert!(t.exists_superset_of(&[2, 4, 6]));
    }

    #[test]
    fn proper_superset_excludes_equal() {
        let mut t = SetTrie::new();
        t.insert(&[1, 2, 3]);
        assert!(!t.exists_proper_superset_of(&[1, 2, 3]));
        assert!(t.exists_proper_superset_of(&[1, 2]));
        assert!(t.exists_proper_superset_of(&[2, 3]));
        assert!(!t.exists_proper_superset_of(&[4]));
        t.insert(&[1, 2, 3, 4]);
        assert!(t.exists_proper_superset_of(&[1, 2, 3]));
    }

    #[test]
    fn empty_set_handling() {
        let mut t = SetTrie::new();
        t.insert(&[]);
        assert!(t.contains(&[]));
        assert!(t.contains_subset_of(&[7, 8]));
        assert!(t.contains_subset_of(&[]));
        assert!(!t.exists_proper_superset_of(&[]));
        t.insert(&[9]);
        assert!(t.exists_proper_superset_of(&[]));
    }

    #[test]
    fn empty_trie_answers_all_queries_negatively() {
        let t = SetTrie::new();
        assert!(!t.contains(&[]));
        assert!(!t.contains_subset_of(&[]));
        assert!(!t.contains_subset_of(&[1, 2, 3]));
        assert!(!t.exists_superset_of(&[]));
        assert!(!t.exists_superset_of(&[1]));
        assert!(t.get_all_subsets(&[1, 2, 3]).is_empty());
        assert!(t.iter_sets().is_empty());
    }

    #[test]
    fn empty_set_is_subset_of_everything_and_superset_of_nothing_larger() {
        let mut t = SetTrie::new();
        t.insert(&[]);
        // The empty set is a subset of every query, including the empty one.
        assert!(t.contains_subset_of(&[]));
        assert!(t.contains_subset_of(&[42]));
        assert_eq!(t.get_all_subsets(&[1, 2]), vec![Vec::<u32>::new()]);
        // And it is a (non-proper) superset only of the empty query.
        assert!(t.exists_superset_of(&[]));
        assert!(!t.exists_superset_of(&[1]));
    }

    #[test]
    fn duplicate_inserts_do_not_change_query_semantics() {
        let mut t = SetTrie::new();
        t.insert(&[2, 4, 6]);
        t.insert(&[2, 4, 6]);
        t.insert(&[6, 4, 2]); // same set, different order
        assert_eq!(t.len(), 3);
        // Queries behave exactly as with one copy.
        assert!(t.contains(&[2, 4, 6]));
        assert!(t.contains_subset_of(&[2, 4, 6, 8]));
        assert!(t.exists_superset_of(&[4]));
        assert!(!t.exists_proper_superset_of(&[2, 4, 6]));
        // get_all_subsets reports the stored set once, not three times.
        assert_eq!(t.get_all_subsets(&[2, 4, 6]), vec![vec![2, 4, 6]]);
        // Each remove peels one copy.
        assert!(t.remove(&[2, 4, 6]));
        assert!(t.remove(&[2, 4, 6]));
        assert!(t.contains(&[2, 4, 6]));
        assert!(t.remove(&[2, 4, 6]));
        assert!(!t.contains(&[2, 4, 6]));
        assert!(t.is_empty());
    }

    #[test]
    fn singleton_alphabet() {
        // Every stored set is over the one-symbol alphabet {7}: the trie
        // degenerates to a single edge, which stresses the path-sharing and
        // dedup logic.
        let mut t = SetTrie::new();
        t.insert(&[7]);
        t.insert(&[7, 7, 7]); // normalises to {7}
        t.insert(&[]);
        assert_eq!(t.len(), 3);
        assert!(t.contains(&[7]));
        assert!(t.contains_subset_of(&[7]));
        assert!(t.contains_subset_of(&[6, 7, 8]));
        assert!(t.exists_superset_of(&[7]));
        assert!(!t.exists_superset_of(&[7, 8]));
        assert!(!t.exists_proper_superset_of(&[7]));
        assert!(t.exists_proper_superset_of(&[]));
        assert_eq!(t.iter_sets(), vec![vec![], vec![7], vec![7]]);
    }

    #[test]
    fn insert_normalises_unsorted_duplicated_input() {
        let mut t = SetTrie::new();
        t.insert(&[9, 1, 5, 1, 9, 5, 5]);
        assert_eq!(t.iter_sets(), vec![vec![1, 5, 9]]);
        assert!(t.contains(&[5, 9, 1]));
        assert!(t.contains_subset_of(&[0, 1, 3, 5, 9]));
        assert!(!t.contains_subset_of(&[1, 5]));
        assert!(t.exists_superset_of(&[1, 9]));
    }

    #[test]
    fn iter_sets_returns_everything() {
        let mut t = SetTrie::new();
        let sets: Vec<Vec<u32>> = vec![vec![1, 5, 9], vec![2], vec![1, 5], vec![3, 4, 7, 8]];
        for s in &sets {
            t.insert(s);
        }
        let all = t.iter_sets();
        assert_eq!(all.len(), 4);
        for s in &sets {
            assert!(all.contains(s));
        }
    }
}
