//! Maximality filtering (MQCE-S2): remove sets contained in other sets.

/// Filters a collection of sets down to the ones that are not strict subsets
/// of any other set in the collection (duplicates are collapsed to one copy).
///
/// This solves MQCE-S2: if the input is the output of a correct MQCE-S1
/// algorithm (a superset of all maximal QCs in which every element is a QC),
/// the result is exactly the set of maximal QCs.
///
/// Sets are processed from largest to smallest, so a set can only be
/// dominated by an *already accepted* set. The superset query is answered
/// through an inverted index (element → accepted sets containing it) probed
/// at the query's least-frequent element; on the heavily overlapping set
/// families S1 emits for dense community graphs this is output-sensitive and
/// far faster than backtracking superset search in a
/// [`SetTrie`](crate::SetTrie) (which
/// degenerates on wide tries with long shared paths).
pub fn filter_maximal(sets: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let mut normalised: Vec<Vec<u32>> = sets
        .iter()
        .map(|s| {
            let mut v = s.clone();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    // Largest first so that any potential superset of a set is accepted
    // before the set itself is queried. Ties broken lexicographically to make
    // duplicate detection trivial.
    normalised.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    normalised.dedup();

    // Compress element values to dense ids so the inverted index stays
    // bounded by the input size even for sparse universes (element values
    // are arbitrary u32s at this API's level, not graph vertex ids).
    let mut distinct: Vec<u32> = normalised.iter().flatten().copied().collect();
    distinct.sort_unstable();
    distinct.dedup();
    let compress = |x: u32| -> usize {
        distinct
            .binary_search(&x)
            .expect("element seen during compression")
    };

    // containing[compress(x)] = indices (into `accepted`) of accepted sets
    // containing x.
    let mut containing: Vec<Vec<u32>> = vec![Vec::new(); distinct.len()];
    let mut accepted: Vec<Vec<u32>> = Vec::new();
    for set in normalised {
        if set.is_empty() {
            // The empty set is a strict subset of any other set; it survives
            // only when it is the sole input.
            if accepted.is_empty() {
                accepted.push(set);
            }
            continue;
        }
        // Probe the accepted-set lists of the query's least-frequent element:
        // every superset of `set` must appear in each element's list.
        let compressed: Vec<usize> = set.iter().map(|&x| compress(x)).collect();
        let probe = compressed
            .iter()
            .copied()
            .min_by_key(|&c| containing[c].len())
            .expect("set is non-empty");
        let dominated = containing[probe]
            .iter()
            .any(|&i| is_sorted_subset(&set, &accepted[i as usize]));
        if !dominated {
            let id = accepted.len() as u32;
            for &c in &compressed {
                containing[c].push(id);
            }
            accepted.push(set);
        }
    }
    accepted.sort();
    accepted
}

/// `a ⊆ b` for sorted, deduplicated slices.
pub(crate) fn is_sorted_subset(a: &[u32], b: &[u32]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// Quadratic reference implementation of [`filter_maximal`], used by tests and
/// kept public so downstream tests can cross-check the trie-based filter.
pub fn filter_maximal_naive(sets: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let normalised: Vec<Vec<u32>> = sets
        .iter()
        .map(|s| {
            let mut v = s.clone();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let mut result: Vec<Vec<u32>> = Vec::new();
    for (i, s) in normalised.iter().enumerate() {
        let dominated = normalised.iter().enumerate().any(|(j, t)| {
            if i == j {
                return false;
            }
            if s == t {
                // Keep only the first copy of duplicates.
                return j < i;
            }
            is_sorted_subset(s, t)
        });
        if !dominated {
            result.push(s.clone());
        }
    }
    result.sort();
    result.dedup();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_subsets() {
        let sets = vec![vec![1, 2, 3], vec![1, 2], vec![2, 3], vec![4, 5], vec![5]];
        let out = filter_maximal(&sets);
        assert_eq!(out, vec![vec![1, 2, 3], vec![4, 5]]);
    }

    #[test]
    fn keeps_incomparable_sets() {
        let sets = vec![vec![1, 2], vec![2, 3], vec![1, 3]];
        let out = filter_maximal(&sets);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn collapses_duplicates() {
        let sets = vec![vec![3, 1], vec![1, 3], vec![1, 3, 3]];
        let out = filter_maximal(&sets);
        assert_eq!(out, vec![vec![1, 3]]);
    }

    #[test]
    fn empty_input() {
        assert!(filter_maximal(&[]).is_empty());
    }

    #[test]
    fn empty_set_is_dominated_by_anything() {
        let sets = vec![vec![], vec![7]];
        assert_eq!(filter_maximal(&sets), vec![vec![7]]);
        let only_empty = vec![vec![]];
        assert_eq!(filter_maximal(&only_empty), vec![Vec::<u32>::new()]);
    }

    #[test]
    fn sparse_universe_does_not_allocate_by_element_value() {
        // Element values are arbitrary u32s; memory must scale with the
        // input, not with the largest value.
        let sets = vec![vec![0], vec![4_000_000_000], vec![0, 4_000_000_000]];
        assert_eq!(filter_maximal(&sets), vec![vec![0, 4_000_000_000]]);
        assert_eq!(filter_maximal(&[vec![u32::MAX]]), vec![vec![u32::MAX]]);
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Simple deterministic pseudo-random set families.
        let mut families = Vec::new();
        for family in 0..30u64 {
            let mut sets = Vec::new();
            for i in 0..25u64 {
                let mut h = DefaultHasher::new();
                (family, i).hash(&mut h);
                let mut x = h.finish();
                let len = (x % 6) as usize + 1;
                let mut s = Vec::new();
                for _ in 0..len {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    s.push((x >> 33) as u32 % 12);
                }
                sets.push(s);
            }
            families.push(sets);
        }
        for sets in families {
            assert_eq!(filter_maximal(&sets), filter_maximal_naive(&sets));
        }
    }
}
