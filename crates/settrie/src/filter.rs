//! Maximality filtering (MQCE-S2): remove sets contained in other sets.

use crate::trie::SetTrie;

/// Filters a collection of sets down to the ones that are not strict subsets
/// of any other set in the collection (duplicates are collapsed to one copy).
///
/// This solves MQCE-S2: if the input is the output of a correct MQCE-S1
/// algorithm (a superset of all maximal QCs in which every element is a QC),
/// the result is exactly the set of maximal QCs.
///
/// Runs in `O(Σ|set| · log)` trie operations by processing sets from largest
/// to smallest and asking, for each set, whether a superset has already been
/// inserted.
pub fn filter_maximal(sets: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let mut normalised: Vec<Vec<u32>> = sets
        .iter()
        .map(|s| {
            let mut v = s.clone();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    // Largest first so that any potential superset of a set is inserted
    // before the set itself is queried. Ties broken lexicographically to make
    // duplicate detection trivial.
    normalised.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    normalised.dedup();

    let mut trie = SetTrie::new();
    let mut result = Vec::new();
    for set in normalised {
        if !trie.exists_superset_of(&set) {
            trie.insert(&set);
            result.push(set);
        }
    }
    result.sort();
    result
}

/// Quadratic reference implementation of [`filter_maximal`], used by tests and
/// kept public so downstream tests can cross-check the trie-based filter.
pub fn filter_maximal_naive(sets: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let normalised: Vec<Vec<u32>> = sets
        .iter()
        .map(|s| {
            let mut v = s.clone();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let is_subset = |a: &[u32], b: &[u32]| -> bool {
        // a ⊆ b, both sorted.
        let mut j = 0;
        for &x in a {
            while j < b.len() && b[j] < x {
                j += 1;
            }
            if j >= b.len() || b[j] != x {
                return false;
            }
            j += 1;
        }
        true
    };
    let mut result: Vec<Vec<u32>> = Vec::new();
    for (i, s) in normalised.iter().enumerate() {
        let dominated = normalised.iter().enumerate().any(|(j, t)| {
            if i == j {
                return false;
            }
            if s == t {
                // Keep only the first copy of duplicates.
                return j < i;
            }
            is_subset(s, t)
        });
        if !dominated {
            result.push(s.clone());
        }
    }
    result.sort();
    result.dedup();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_subsets() {
        let sets = vec![vec![1, 2, 3], vec![1, 2], vec![2, 3], vec![4, 5], vec![5]];
        let out = filter_maximal(&sets);
        assert_eq!(out, vec![vec![1, 2, 3], vec![4, 5]]);
    }

    #[test]
    fn keeps_incomparable_sets() {
        let sets = vec![vec![1, 2], vec![2, 3], vec![1, 3]];
        let out = filter_maximal(&sets);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn collapses_duplicates() {
        let sets = vec![vec![3, 1], vec![1, 3], vec![1, 3, 3]];
        let out = filter_maximal(&sets);
        assert_eq!(out, vec![vec![1, 3]]);
    }

    #[test]
    fn empty_input() {
        assert!(filter_maximal(&[]).is_empty());
    }

    #[test]
    fn empty_set_is_dominated_by_anything() {
        let sets = vec![vec![], vec![7]];
        assert_eq!(filter_maximal(&sets), vec![vec![7]]);
        let only_empty = vec![vec![]];
        assert_eq!(filter_maximal(&only_empty), vec![Vec::<u32>::new()]);
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Simple deterministic pseudo-random set families.
        let mut families = Vec::new();
        for family in 0..30u64 {
            let mut sets = Vec::new();
            for i in 0..25u64 {
                let mut h = DefaultHasher::new();
                (family, i).hash(&mut h);
                let mut x = h.finish();
                let len = (x % 6) as usize + 1;
                let mut s = Vec::new();
                for _ in 0..len {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    s.push((x >> 33) as u32 % 12);
                }
                sets.push(s);
            }
            families.push(sets);
        }
        for sets in families {
            assert_eq!(filter_maximal(&sets), filter_maximal_naive(&sets));
        }
    }
}
