//! Allocation regression test for the DC subgraph-extraction hot path.
//!
//! `InducedSubgraph::new_in` is specified to do O(|H|) work per subproblem
//! (H = the extracted two-hop ball) and, after a warmup pass has grown the
//! scratch buffers, to run without heap allocation. This test measures that
//! property directly with the `count-allocs` global allocator: a full
//! extract/recycle sweep over every vertex's two-hop ball is repeated on one
//! warm [`SubproblemScratch`], and the steady-state passes must stay under a
//! small constant number of allocation events *in total* — not per
//! subproblem.
//!
//! The test lives in its own integration-test binary (own process, single
//! `#[test]`) so no concurrent test thread can pollute the process-wide
//! counters.
#![cfg(feature = "count-allocs")]

use mqce_bench::alloc_stats;
use mqce_graph::generators::{community_graph, CommunityGraphParams};
use mqce_graph::{InducedSubgraph, SubproblemScratch};

#[test]
fn warm_subgraph_extraction_is_allocation_free() {
    assert!(alloc_stats::enabled());
    let g = community_graph(
        CommunityGraphParams {
            n: 400,
            num_communities: 20,
            p_intra: 0.9,
            inter_degree: 1.5,
        },
        7,
    );
    let mut scratch = SubproblemScratch::new();
    let mut ball = Vec::new();

    let sweep = |scratch: &mut SubproblemScratch, ball: &mut Vec<u32>| -> usize {
        let mut subproblems = 0;
        for v in g.vertices() {
            scratch.two_hop_into(&g, v, ball);
            let sub = InducedSubgraph::new_in(&g, ball, scratch);
            // Touch the result so the extraction cannot be optimised away.
            std::hint::black_box(sub.graph.num_edges());
            subproblems += 1;
            scratch.recycle(sub);
        }
        subproblems
    };

    // Warmup: grows the stamp arrays, the two-hop ball, and the CSR buffers
    // to the largest subproblem in the sweep.
    sweep(&mut scratch, &mut ball);

    let before = alloc_stats::snapshot();
    let mut subproblems = 0;
    for _ in 0..3 {
        subproblems += sweep(&mut scratch, &mut ball);
    }
    let after = alloc_stats::snapshot();
    let allocs = after.alloc_count - before.alloc_count;

    assert!(subproblems >= 3 * g.num_vertices());
    // Steady state should be exactly 0 allocation events; allow a small
    // constant of slack for incidental runtime allocations, far below the
    // one-per-subproblem floor the pre-scratch path paid.
    assert!(
        allocs <= 8,
        "expected an allocation-free warm extraction sweep, measured \
         {allocs} allocation events across {subproblems} subproblems"
    );
}
