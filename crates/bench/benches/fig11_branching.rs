//! Figure 11: branching-strategy ablation — DCFastQC with Hybrid-SE, Sym-SE
//! and plain SE branching.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mqce_bench::datasets::{email, lexicon, SuiteScale};
use mqce_core::{solve_s1, Algorithm, BranchingStrategy, MqceConfig};

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_branching");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for dataset in [email(SuiteScale::Small), lexicon(SuiteScale::Small)] {
        for (label, branching) in [
            ("Hybrid-SE", BranchingStrategy::HybridSe),
            ("Sym-SE", BranchingStrategy::SymSe),
            ("SE", BranchingStrategy::Se),
        ] {
            let config = MqceConfig::new(dataset.gamma_d, dataset.theta_d)
                .unwrap()
                .with_algorithm(Algorithm::DcFastQc)
                .with_branching(branching)
                .with_time_limit(Duration::from_secs(3));
            group.bench_with_input(
                BenchmarkId::new(label, dataset.name),
                &dataset.graph,
                |b, g| b.iter(|| solve_s1(g, &config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
