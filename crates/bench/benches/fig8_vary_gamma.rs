//! Figure 8: running time of DCFastQC vs Quick+ as γ varies, on two of the
//! default datasets (reduced scale).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mqce_bench::datasets::{email, lexicon, SuiteScale};
use mqce_core::{solve_s1, Algorithm, MqceConfig};

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_vary_gamma");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for dataset in [email(SuiteScale::Small), lexicon(SuiteScale::Small)] {
        for gamma in [0.85, 0.9, 0.95] {
            for (label, algo) in [
                ("DCFastQC", Algorithm::DcFastQc),
                ("QuickPlus", Algorithm::QuickPlus),
            ] {
                let config = MqceConfig::new(gamma, dataset.theta_d)
                    .unwrap()
                    .with_algorithm(algo)
                    .with_time_limit(Duration::from_secs(3));
                let id = format!("{}/gamma={gamma}", dataset.name);
                group.bench_with_input(BenchmarkId::new(label, id), &dataset.graph, |b, g| {
                    b.iter(|| solve_s1(g, &config))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
