//! MQCE-S2 cost (Section 2.2): set-trie maximality filtering on realistic S1
//! outputs, compared against the quadratic reference filter.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mqce_bench::datasets::{email, web, SuiteScale};
use mqce_core::{solve_s1, Algorithm, MqceConfig};
use mqce_settrie::{filter_maximal, filter_maximal_naive, SetTrie};

fn bench_settrie(c: &mut Criterion) {
    let mut group = c.benchmark_group("settrie_filter");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    for dataset in [email(SuiteScale::Small), web(SuiteScale::Small)] {
        // Real S1 output of Quick+ (contains non-maximal QCs to filter out).
        let config = MqceConfig::new(dataset.gamma_d, dataset.theta_d)
            .unwrap()
            .with_algorithm(Algorithm::QuickPlus)
            .with_time_limit(Duration::from_secs(10));
        let s1 = solve_s1(&dataset.graph, &config).outputs;

        group.bench_with_input(
            BenchmarkId::new("set_trie", dataset.name),
            &s1,
            |b, sets| b.iter(|| filter_maximal(sets)),
        );
        group.bench_with_input(
            BenchmarkId::new("quadratic_reference", dataset.name),
            &s1,
            |b, sets| b.iter(|| filter_maximal_naive(sets)),
        );
        group.bench_with_input(
            BenchmarkId::new("trie_build_and_query", dataset.name),
            &s1,
            |b, sets| {
                b.iter(|| {
                    let mut trie = SetTrie::new();
                    for s in sets {
                        trie.insert(s);
                    }
                    sets.iter()
                        .filter(|s| !trie.exists_proper_superset_of(s))
                        .count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_settrie);
criterion_main!(benches);
