//! Figure 7: DCFastQC vs Quick+ on every dataset of the suite at its default
//! `γ_d` / `θ_d` (reduced-scale graphs so `cargo bench` stays quick; the
//! `experiments fig7` binary runs the full-scale version).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mqce_bench::datasets::{standard_suite, SuiteScale};
use mqce_core::{solve_s1, Algorithm, MqceConfig};

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_all_datasets");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for dataset in standard_suite(SuiteScale::Small) {
        for (label, algo) in [
            ("DCFastQC", Algorithm::DcFastQc),
            ("QuickPlus", Algorithm::QuickPlus),
        ] {
            let config = MqceConfig::new(dataset.gamma_d, dataset.theta_d)
                .unwrap()
                .with_algorithm(algo)
                .with_time_limit(Duration::from_secs(3));
            group.bench_with_input(
                BenchmarkId::new(label, dataset.name),
                &dataset.graph,
                |b, g| b.iter(|| solve_s1(g, &config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
