//! Benchmarks for the extension APIs built on top of the core enumeration:
//! query-driven search vs. filtering a full enumeration, top-k mining, and
//! the kernel-expansion heuristic.
//!
//! These do not correspond to a table or figure of the paper; they quantify
//! the value of the related-work style entry points the library additionally
//! provides (Section 7 of the paper discusses both problem variants).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mqce_bench::datasets::{collab, email, SuiteScale};
use mqce_core::kernel::{expand_kernels, KernelConfig};
use mqce_core::query::find_mqcs_containing;
use mqce_core::{find_largest_mqcs, MqceConfig, Session};

fn bench_query_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_query_vs_full");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for dataset in [collab(SuiteScale::Small), email(SuiteScale::Small)] {
        let config = MqceConfig::new(dataset.gamma_d, dataset.theta_d).unwrap();
        // Query the highest-degree vertex: the worst case for the restricted
        // search, since its 2-hop ball is the largest.
        let hub = (0..dataset.graph.num_vertices() as u32)
            .max_by_key(|&v| dataset.graph.degree(v))
            .unwrap_or(0);
        group.bench_with_input(
            BenchmarkId::new("full-then-filter", dataset.name),
            &dataset.graph,
            |b, g| {
                let session = Session::open(g.clone()).config(config);
                b.iter(|| {
                    let all = session.run();
                    all.mqcs.iter().filter(|m| m.contains(&hub)).count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("query-driven", dataset.name),
            &dataset.graph,
            |b, g| b.iter(|| find_mqcs_containing(g, &[hub], &config).unwrap().mqcs.len()),
        );
    }
    group.finish();
}

fn bench_topk_and_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_topk_and_kernels");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for dataset in [collab(SuiteScale::Small), email(SuiteScale::Small)] {
        let gamma = dataset.gamma_d;
        group.bench_with_input(
            BenchmarkId::new("topk-exact", dataset.name),
            &dataset.graph,
            |b, g| b.iter(|| find_largest_mqcs(g, gamma, 5, None).unwrap().mqcs.len()),
        );
        let kernel_config = KernelConfig::new(gamma, (gamma + 0.05).min(1.0), 4, 5).unwrap();
        group.bench_with_input(
            BenchmarkId::new("kernel-expansion", dataset.name),
            &dataset.graph,
            |b, g| b.iter(|| expand_kernels(g, kernel_config).unwrap().qcs.len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query_vs_full, bench_topk_and_kernels);
criterion_main!(benches);
