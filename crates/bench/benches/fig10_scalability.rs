//! Figure 10: scalability on synthetic Erdős–Rényi graphs — (a) varying the
//! number of vertices at fixed edge density, (b) varying the edge density at
//! a fixed vertex count (γ = 0.9, θ = 10 as in the paper).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mqce_bench::datasets::er;
use mqce_core::{solve_s1, Algorithm, MqceConfig};

fn bench_fig10a_vertices(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10a_vary_vertices");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for n in [500usize, 1000, 2000, 4000] {
        let dataset = er(n, 20.0, 7);
        for (label, algo) in [
            ("DCFastQC", Algorithm::DcFastQc),
            ("QuickPlus", Algorithm::QuickPlus),
        ] {
            let config = MqceConfig::new(dataset.gamma_d, dataset.theta_d)
                .unwrap()
                .with_algorithm(algo)
                .with_time_limit(Duration::from_secs(3));
            group.bench_with_input(BenchmarkId::new(label, n), &dataset.graph, |b, g| {
                b.iter(|| solve_s1(g, &config))
            });
        }
    }
    group.finish();
}

fn bench_fig10b_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10b_vary_density");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for density in [5.0f64, 10.0, 20.0, 40.0] {
        let dataset = er(1000, density, 11);
        for (label, algo) in [
            ("DCFastQC", Algorithm::DcFastQc),
            ("QuickPlus", Algorithm::QuickPlus),
        ] {
            let config = MqceConfig::new(dataset.gamma_d, dataset.theta_d)
                .unwrap()
                .with_algorithm(algo)
                .with_time_limit(Duration::from_secs(3));
            group.bench_with_input(
                BenchmarkId::new(label, format!("density={density}")),
                &dataset.graph,
                |b, g| b.iter(|| solve_s1(g, &config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig10a_vertices, bench_fig10b_density);
criterion_main!(benches);
