//! Substrate microbenchmarks: the graph-side primitives the enumeration
//! algorithms lean on (core decomposition, degeneracy ordering, 2-hop
//! neighbourhoods, induced subgraphs).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mqce_bench::datasets::{social_large, social_sparse, SuiteScale};
use mqce_graph::core_decomp::core_decomposition;
use mqce_graph::subgraph::{two_hop_neighborhood, InducedSubgraph};

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_substrate");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    for dataset in [social_sparse(SuiteScale::Small), social_large(SuiteScale::Small)] {
        let g = &dataset.graph;
        group.bench_with_input(
            BenchmarkId::new("core_decomposition", dataset.name),
            g,
            |b, g| b.iter(|| core_decomposition(g)),
        );
        group.bench_with_input(
            BenchmarkId::new("two_hop_neighborhoods", dataset.name),
            g,
            |b, g| {
                b.iter(|| {
                    let mut total = 0usize;
                    for v in (0..g.num_vertices() as u32).step_by(37) {
                        total += two_hop_neighborhood(g, v).len();
                    }
                    total
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("induced_subgraphs", dataset.name),
            g,
            |b, g| {
                b.iter(|| {
                    let mut edges = 0usize;
                    for v in (0..g.num_vertices() as u32).step_by(101) {
                        let ball = two_hop_neighborhood(g, v);
                        edges += InducedSubgraph::new(g, &ball).graph.num_edges();
                    }
                    edges
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
