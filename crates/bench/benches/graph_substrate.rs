//! Substrate microbenchmarks: the graph-side primitives the enumeration
//! algorithms lean on (core decomposition, degeneracy ordering, 2-hop
//! neighbourhoods, induced subgraphs).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mqce_bench::datasets::{social_large, social_sparse, SuiteScale};
use mqce_graph::bitset::{AdjacencyMatrix, BitSet};
use mqce_graph::core_decomp::core_decomposition;
use mqce_graph::generators::erdos_renyi_gnm;
use mqce_graph::subgraph::{two_hop_neighborhood, InducedSubgraph};

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_substrate");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    for dataset in [
        social_sparse(SuiteScale::Small),
        social_large(SuiteScale::Small),
    ] {
        let g = &dataset.graph;
        group.bench_with_input(
            BenchmarkId::new("core_decomposition", dataset.name),
            g,
            |b, g| b.iter(|| core_decomposition(g)),
        );
        group.bench_with_input(
            BenchmarkId::new("two_hop_neighborhoods", dataset.name),
            g,
            |b, g| {
                b.iter(|| {
                    let mut total = 0usize;
                    for v in (0..g.num_vertices() as u32).step_by(37) {
                        total += two_hop_neighborhood(g, v).len();
                    }
                    total
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("induced_subgraphs", dataset.name),
            g,
            |b, g| {
                b.iter(|| {
                    let mut edges = 0usize;
                    for v in (0..g.num_vertices() as u32).step_by(101) {
                        let ball = two_hop_neighborhood(g, v);
                        edges += InducedSubgraph::new(g, &ball).graph.num_edges();
                    }
                    edges
                })
            },
        );
    }
    group.finish();
}

/// Micro-bench guard for the 4-word-chunked popcount kernels: the
/// `degree_in_mask` / `common_neighbors_in_mask` loops are the hottest word
/// operations of the bitset adjacency backend, so a regression here shows up
/// before it degrades the end-to-end figures.
fn bench_popcount_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("popcount_kernels");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // 1024 vertices = 16 words per row: large enough for the chunked loop to
    // dominate, small enough to stay in cache like a real DC subproblem.
    let g = erdos_renyi_gnm(1024, 40_000, 11);
    let m = AdjacencyMatrix::from_graph(&g);
    let mask = BitSet::from_members(1024, &(0..1024).step_by(3).collect::<Vec<_>>());
    group.bench_function("degree_in_mask_1024", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for v in 0..1024u32 {
                total += m.degree_in_mask(v, &mask);
            }
            total
        })
    });
    group.bench_function("common_neighbors_in_mask_1024", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for v in 0..512u32 {
                total += m.common_neighbors_in_mask(v, 1023 - v, &mask);
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_substrate, bench_popcount_kernels);
criterion_main!(benches);
