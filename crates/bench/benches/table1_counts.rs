//! Table 1: the per-dataset MQC statistics pipeline (DCFastQC S1 output,
//! set-trie filtering, size statistics) measured end to end on the suite.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mqce_bench::datasets::{standard_suite, SuiteScale};
use mqce_core::{Algorithm, MqceConfig, Session};
use mqce_graph::GraphStats;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_counts");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for dataset in standard_suite(SuiteScale::Small) {
        // Graph-statistics columns (|V|, |E|, d, ω).
        group.bench_with_input(
            BenchmarkId::new("graph_stats", dataset.name),
            &dataset.graph,
            |b, g| b.iter(|| GraphStats::compute(g)),
        );
        // The densest stand-in produces tens of thousands of MQCs at its
        // default parameters; regenerating its Table-1 row is the job of the
        // `experiments` binary, not of a Criterion loop that repeats the full
        // pipeline ten times.
        if dataset.name == "social-dense" {
            continue;
        }
        // #MQC / #DCFastQC / size statistics columns.
        let config = MqceConfig::new(dataset.gamma_d, dataset.theta_d)
            .unwrap()
            .with_algorithm(Algorithm::DcFastQc)
            .with_time_limit(Duration::from_secs(3));
        group.bench_with_input(
            BenchmarkId::new("mqc_counts", dataset.name),
            &dataset.graph,
            |b, g| {
                let session = Session::open(g.clone()).config(config);
                b.iter(|| {
                    let result = session.run();
                    (result.mqcs.len(), result.qcs.len(), result.mqc_size_stats())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
