//! Figure 9: running time of DCFastQC vs Quick+ as θ varies, on two of the
//! default datasets (reduced scale).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mqce_bench::datasets::{email, lexicon, SuiteScale};
use mqce_core::{solve_s1, Algorithm, MqceConfig};

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_vary_theta");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for dataset in [email(SuiteScale::Small), lexicon(SuiteScale::Small)] {
        let thetas = [
            dataset.theta_d.saturating_sub(2).max(3),
            dataset.theta_d,
            dataset.theta_d + 2,
        ];
        for theta in thetas {
            for (label, algo) in [
                ("DCFastQC", Algorithm::DcFastQc),
                ("QuickPlus", Algorithm::QuickPlus),
            ] {
                let config = MqceConfig::new(dataset.gamma_d, theta)
                    .unwrap()
                    .with_algorithm(algo)
                    .with_time_limit(Duration::from_secs(3));
                let id = format!("{}/theta={theta}", dataset.name);
                group.bench_with_input(BenchmarkId::new(label, id), &dataset.graph, |b, g| {
                    b.iter(|| solve_s1(g, &config))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
