//! Figure 12: divide-and-conquer ablation — FastQC without DC, the basic DC
//! framework (BDCFastQC), and the paper's DC framework (DCFastQC).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mqce_bench::datasets::{email, lexicon, SuiteScale};
use mqce_core::{solve_s1, Algorithm, MqceConfig};

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_dc_frameworks");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for dataset in [email(SuiteScale::Small), lexicon(SuiteScale::Small)] {
        for (label, algo) in [
            ("DCFastQC", Algorithm::DcFastQc),
            ("BDCFastQC", Algorithm::BasicDcFastQc),
            ("FastQC", Algorithm::FastQc),
        ] {
            let config = MqceConfig::new(dataset.gamma_d, dataset.theta_d)
                .unwrap()
                .with_algorithm(algo)
                .with_time_limit(Duration::from_secs(3));
            group.bench_with_input(
                BenchmarkId::new(label, dataset.name),
                &dataset.graph,
                |b, g| b.iter(|| solve_s1(g, &config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
