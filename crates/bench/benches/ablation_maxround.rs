//! MAX_ROUND ablation (Section 6.2 "other experiments"): effect of the number
//! of one-hop/two-hop pruning rounds applied to each DC subgraph.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mqce_bench::datasets::{email, social_dense, SuiteScale};
use mqce_core::{solve_s1, Algorithm, MqceConfig};

fn bench_maxround(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_maxround");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for dataset in [email(SuiteScale::Small), social_dense(SuiteScale::Small)] {
        for max_round in [1usize, 2, 3, 4] {
            let config = MqceConfig::new(dataset.gamma_d, dataset.theta_d)
                .unwrap()
                .with_algorithm(Algorithm::DcFastQc)
                .with_max_round(max_round)
                .with_time_limit(Duration::from_secs(3));
            group.bench_with_input(
                BenchmarkId::new(format!("round{max_round}"), dataset.name),
                &dataset.graph,
                |b, g| b.iter(|| solve_s1(g, &config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_maxround);
criterion_main!(benches);
