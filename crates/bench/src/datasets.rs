//! The synthetic dataset suite standing in for the paper's real datasets.
//!
//! The paper evaluates on 14 konect.cc graphs (Table 1) that cannot be
//! redistributed here, so each dataset is replaced by a synthetic graph with
//! the same *qualitative* character — the properties the algorithms' costs
//! actually depend on: edge density, degeneracy, degree skew, and whether
//! locally dense regions (the source of large maximal quasi-cliques) exist.
//! Sizes are scaled down so the whole experiment suite completes on one core
//! (see `DESIGN.md` §5). Each dataset also carries its default `γ_d`/`θ_d`,
//! mirroring the per-dataset defaults of Table 1.

use mqce_graph::generators::{
    barabasi_albert, community_graph, erdos_renyi_density, grid, planted_quasi_cliques,
    CommunityGraphParams, PlantedGroup,
};
use mqce_graph::{Graph, GraphStats};

/// A named benchmark dataset with its default parameters.
pub struct Dataset {
    /// Short name used in tables and bench ids.
    pub name: &'static str,
    /// Which real dataset of Table 1 this stands in for.
    pub stand_in_for: &'static str,
    /// The graph itself.
    pub graph: Graph,
    /// Default density threshold `γ_d`.
    pub gamma_d: f64,
    /// Default size threshold `θ_d`.
    pub theta_d: usize,
}

impl Dataset {
    /// Graph statistics (the `|V|, |E|, |E|/|V|, d, ω` columns of Table 1).
    pub fn stats(&self) -> GraphStats {
        GraphStats::compute(&self.graph)
    }
}

/// Scale of the generated suite. `Small` keeps every run under a couple of
/// seconds (used by the Criterion benches and CI); `Full` is the default for
/// the experiments binary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SuiteScale {
    /// Reduced sizes for benches / smoke runs.
    Small,
    /// Full (still laptop-sized) experiment scale.
    Full,
}

fn scaled(scale: SuiteScale, small: usize, full: usize) -> usize {
    match scale {
        SuiteScale::Small => small,
        SuiteScale::Full => full,
    }
}

/// "collab" — a scientific collaboration network (Ca-GrQC-like): many small,
/// tight author groups.
pub fn collab(scale: SuiteScale) -> Dataset {
    let n = scaled(scale, 400, 1500);
    Dataset {
        name: "collab",
        stand_in_for: "Ca-GrQC",
        graph: community_graph(
            CommunityGraphParams {
                n,
                num_communities: n / 14,
                p_intra: 0.92,
                inter_degree: 1.2,
            },
            101,
        ),
        gamma_d: 0.9,
        theta_d: 7,
    }
}

/// "contact" — a dense face-to-face contact network (Opsahl-like): small but
/// comparatively dense, with many overlapping quasi-cliques.
pub fn contact(scale: SuiteScale) -> Dataset {
    let n = scaled(scale, 250, 700);
    Dataset {
        name: "contact",
        stand_in_for: "Opsahl",
        graph: community_graph(
            CommunityGraphParams {
                n,
                num_communities: n / 18,
                p_intra: 0.88,
                inter_degree: 3.0,
            },
            103,
        ),
        gamma_d: 0.9,
        theta_d: 9,
    }
}

/// "email" — a hub-dominated communication network (Enron-like): high maximum
/// degree, dense cores embedded in a sparse periphery.
pub fn email(scale: SuiteScale) -> Dataset {
    let n = scaled(scale, 600, 2500);
    let groups: Vec<PlantedGroup> = (0..n / 120)
        .map(|i| PlantedGroup {
            size: 10 + (i % 6),
            density: 0.93,
        })
        .collect();
    Dataset {
        name: "email",
        stand_in_for: "Enron",
        graph: planted_quasi_cliques(n, 6.0 / n as f64, &groups, 107),
        gamma_d: 0.9,
        theta_d: 8,
    }
}

/// "lexicon" — a word-association network (WordNet-like): medium density,
/// moderate-size dense clusters.
pub fn lexicon(scale: SuiteScale) -> Dataset {
    let n = scaled(scale, 800, 3000);
    Dataset {
        name: "lexicon",
        stand_in_for: "WordNet",
        graph: community_graph(
            CommunityGraphParams {
                n,
                num_communities: n / 16,
                p_intra: 0.9,
                inter_degree: 2.0,
            },
            109,
        ),
        gamma_d: 0.9,
        theta_d: 8,
    }
}

/// "social-sparse" — a very sparse follower network (Douban/Twitter-like):
/// heavy-tailed degrees, almost no locally dense regions.
pub fn social_sparse(scale: SuiteScale) -> Dataset {
    let n = scaled(scale, 2000, 8000);
    Dataset {
        name: "social-sparse",
        stand_in_for: "Douban / Twitter",
        graph: barabasi_albert(n, 2, 113),
        gamma_d: 0.9,
        theta_d: 4,
    }
}

/// "social-large" — a larger social network with embedded friend groups
/// (Hyves-like).
pub fn social_large(scale: SuiteScale) -> Dataset {
    let n = scaled(scale, 2500, 10000);
    let groups: Vec<PlantedGroup> = (0..n / 250)
        .map(|i| PlantedGroup {
            size: 9 + (i % 5),
            density: 0.95,
        })
        .collect();
    Dataset {
        name: "social-large",
        stand_in_for: "Hyves",
        graph: planted_quasi_cliques(n, 3.0 / n as f64, &groups, 127),
        gamma_d: 0.9,
        theta_d: 8,
    }
}

/// "web" — a web/rating graph with very dense niches (Trec/Flixster-like),
/// evaluated at a high γ.
pub fn web(scale: SuiteScale) -> Dataset {
    let n = scaled(scale, 1200, 4000);
    let groups: Vec<PlantedGroup> = (0..n / 150)
        .map(|i| PlantedGroup {
            size: 12 + (i % 8),
            density: 0.97,
        })
        .collect();
    Dataset {
        name: "web",
        stand_in_for: "Trec / Flixster",
        graph: planted_quasi_cliques(n, 5.0 / n as f64, &groups, 131),
        gamma_d: 0.96,
        theta_d: 11,
    }
}

/// "social-dense" — a denser social network (Pokec-like) used as one of the
/// four default datasets for the parameter sweeps.
pub fn social_dense(scale: SuiteScale) -> Dataset {
    let n = scaled(scale, 1000, 4000);
    Dataset {
        name: "social-dense",
        stand_in_for: "Pokec",
        graph: community_graph(
            CommunityGraphParams {
                n,
                num_communities: n / 20,
                p_intra: 0.85,
                inter_degree: 6.0,
            },
            137,
        ),
        gamma_d: 0.9,
        theta_d: 10,
    }
}

/// "road" — a road network (FullUSA-like): an almost-planar grid with no dense
/// regions at all, evaluated at γ just above 0.5.
pub fn road(scale: SuiteScale) -> Dataset {
    let side = scaled(scale, 40, 120);
    Dataset {
        name: "road",
        stand_in_for: "FullUSA",
        graph: grid(side, side),
        gamma_d: 0.51,
        theta_d: 3,
    }
}

/// "er" — the Erdős–Rényi graph family of the synthetic experiments
/// (Figure 10), parameterised by vertex count and edge density.
pub fn er(n: usize, density: f64, seed: u64) -> Dataset {
    Dataset {
        name: "er",
        stand_in_for: "synthetic ER",
        graph: erdos_renyi_density(n, density, seed),
        gamma_d: 0.9,
        theta_d: 10,
    }
}

/// The full dataset suite, in the order used by Table 1 / Figure 7.
pub fn standard_suite(scale: SuiteScale) -> Vec<Dataset> {
    vec![
        collab(scale),
        contact(scale),
        email(scale),
        lexicon(scale),
        social_sparse(scale),
        social_large(scale),
        web(scale),
        social_dense(scale),
        road(scale),
    ]
}

/// The four default datasets used for the γ/θ sweeps (Figures 8, 9, 11, 12),
/// mirroring the paper's Enron / WordNet / Hyves / Pokec selection: they span
/// different sizes and densities.
pub fn default_four(scale: SuiteScale) -> Vec<Dataset> {
    vec![
        email(scale),
        lexicon(scale),
        social_large(scale),
        social_dense(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_expected_members() {
        let suite = standard_suite(SuiteScale::Small);
        assert_eq!(suite.len(), 9);
        let names: Vec<_> = suite.iter().map(|d| d.name).collect();
        assert!(names.contains(&"collab"));
        assert!(names.contains(&"road"));
        // Names are unique.
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn datasets_are_nonempty_and_deterministic() {
        for d in standard_suite(SuiteScale::Small) {
            assert!(d.graph.num_vertices() > 0, "{} empty", d.name);
            assert!(d.graph.num_edges() > 0, "{} has no edges", d.name);
            assert!(d.gamma_d >= 0.5 && d.gamma_d <= 1.0);
            assert!(d.theta_d >= 3);
        }
        // Determinism: regenerating gives the same graph.
        let a = email(SuiteScale::Small);
        let b = email(SuiteScale::Small);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    }

    #[test]
    fn full_scale_is_larger_than_small() {
        let small = lexicon(SuiteScale::Small);
        let full = lexicon(SuiteScale::Full);
        assert!(full.graph.num_vertices() > small.graph.num_vertices());
    }

    #[test]
    fn er_density_parameter() {
        let d = er(500, 8.0, 3);
        assert_eq!(d.graph.num_vertices(), 500);
        assert_eq!(d.graph.num_edges(), 4000);
    }

    #[test]
    fn default_four_is_a_subset_of_suite() {
        let four = default_four(SuiteScale::Small);
        assert_eq!(four.len(), 4);
    }
}
