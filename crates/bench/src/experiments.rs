//! The experiments that regenerate every table and figure of the paper's
//! evaluation (Section 6). Each function returns the run records it produced
//! so the binary can print them and the tests can assert on their shape.

use std::time::{Duration, Instant};

use mqce_core::{AdjacencyBackend, BranchingStrategy};
use mqce_graph::GraphStats;
use mqce_settrie::{S2Backend, S2CostModel};

use crate::datasets::{self, Dataset, SuiteScale};
use crate::runner::{measure, measure_threads, print_table, AlgoSpec, RunRecord};

/// Global options for an experiment run.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentOptions {
    /// Dataset scale.
    pub scale: SuiteScale,
    /// Per-run time limit (the paper's INF cap, scaled down).
    pub time_limit: Duration,
    /// Restricts the `s2-stress` profile to one backend (measured against
    /// the inverted reference) — the CI backend matrix runs the profile once
    /// per concrete backend through this knob. `None` measures every backend
    /// plus the auto dispatcher and audits its decision.
    pub s2_backend: Option<S2Backend>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            scale: SuiteScale::Full,
            time_limit: Duration::from_secs(30),
            s2_backend: None,
        }
    }
}

impl ExperimentOptions {
    /// Quick options used by tests and smoke runs.
    pub fn quick() -> Self {
        ExperimentOptions {
            scale: SuiteScale::Small,
            time_limit: Duration::from_secs(5),
            s2_backend: None,
        }
    }
}

fn gamma_sweep(default: f64) -> Vec<f64> {
    // The paper sweeps γ around each dataset's default (e.g. 0.85..0.99).
    let candidates = [0.8, 0.85, 0.9, 0.95, 0.99];
    if candidates.contains(&default) {
        candidates.to_vec()
    } else {
        let mut v = candidates.to_vec();
        v.push(default);
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }
}

fn theta_sweep(default: usize) -> Vec<usize> {
    let lo = default.saturating_sub(2).max(3);
    (lo..lo + 5).collect()
}

/// **Table 1**: dataset statistics, number of MQCs, number of QCs reported by
/// DCFastQC and Quick+, and MQC size statistics, at each dataset's defaults.
pub fn table1(opts: ExperimentOptions) -> Vec<RunRecord> {
    let mut records = Vec::new();
    println!("\n== Table 1: datasets and large-MQC statistics ==");
    println!(
        "{:<14} {:>8} {:>9} {:>8} {:>6} {:>5} {:>5} {:>5} {:>8} {:>12} {:>10} {:>7} {:>7} {:>7}",
        "dataset",
        "|V|",
        "|E|",
        "|E|/|V|",
        "d",
        "w",
        "th_d",
        "g_d",
        "#MQC",
        "#DCFastQC",
        "#Quick+",
        "Hmin",
        "Hmax",
        "Havg"
    );
    for dataset in datasets::standard_suite(opts.scale) {
        let stats = dataset.stats();
        let dc = measure(
            dataset.name,
            &dataset.graph,
            AlgoSpec::dcfastqc(),
            dataset.gamma_d,
            dataset.theta_d,
            opts.time_limit,
        );
        let quick = measure(
            dataset.name,
            &dataset.graph,
            AlgoSpec::quickplus(),
            dataset.gamma_d,
            dataset.theta_d,
            opts.time_limit,
        );
        println!(
            "{:<14} {:>8} {:>9} {:>8.2} {:>6} {:>5} {:>5} {:>5.2} {:>8} {:>12} {:>10} {:>7} {:>7} {:>7.2}",
            dataset.name,
            stats.num_vertices,
            stats.num_edges,
            stats.edge_density,
            stats.max_degree,
            stats.degeneracy,
            dataset.theta_d,
            dataset.gamma_d,
            dc.mqcs,
            dc.s1_outputs,
            if quick.timed_out { "OUT".to_string() } else { quick.s1_outputs.to_string() },
            dc.mqc_min,
            dc.mqc_max,
            dc.mqc_avg,
        );
        records.push(dc);
        records.push(quick);
    }
    records
}

/// **Figure 7**: DCFastQC vs Quick+ running time on every dataset at its
/// default parameters.
pub fn fig7(opts: ExperimentOptions) -> Vec<RunRecord> {
    let mut records = Vec::new();
    for dataset in datasets::standard_suite(opts.scale) {
        for spec in [AlgoSpec::dcfastqc(), AlgoSpec::quickplus()] {
            records.push(measure(
                dataset.name,
                &dataset.graph,
                spec,
                dataset.gamma_d,
                dataset.theta_d,
                opts.time_limit,
            ));
        }
    }
    print_table(
        "Figure 7: comparison on all datasets (default settings)",
        &records,
    );
    print_speedups(&records, "Quick+", "DCFastQC");
    records
}

/// **Figure 8**: running time as γ varies on the four default datasets.
pub fn fig8(opts: ExperimentOptions) -> Vec<RunRecord> {
    let mut records = Vec::new();
    for dataset in datasets::default_four(opts.scale) {
        for gamma in gamma_sweep(dataset.gamma_d) {
            for spec in [AlgoSpec::dcfastqc(), AlgoSpec::quickplus()] {
                records.push(measure(
                    dataset.name,
                    &dataset.graph,
                    spec,
                    gamma,
                    dataset.theta_d,
                    opts.time_limit,
                ));
            }
        }
    }
    print_table("Figure 8: varying gamma", &records);
    records
}

/// **Figure 9**: running time as θ varies on the four default datasets.
pub fn fig9(opts: ExperimentOptions) -> Vec<RunRecord> {
    let mut records = Vec::new();
    for dataset in datasets::default_four(opts.scale) {
        for theta in theta_sweep(dataset.theta_d) {
            for spec in [AlgoSpec::dcfastqc(), AlgoSpec::quickplus()] {
                records.push(measure(
                    dataset.name,
                    &dataset.graph,
                    spec,
                    dataset.gamma_d,
                    theta,
                    opts.time_limit,
                ));
            }
        }
    }
    print_table("Figure 9: varying theta", &records);
    records
}

/// **Figure 10(a)**: scalability on Erdős–Rényi graphs as the number of
/// vertices grows (edge density fixed at 20, γ=0.9, θ=10).
pub fn fig10a(opts: ExperimentOptions) -> Vec<RunRecord> {
    let sizes: Vec<usize> = match opts.scale {
        SuiteScale::Small => vec![500, 1000, 2000],
        SuiteScale::Full => vec![2_000, 5_000, 10_000, 20_000, 50_000],
    };
    let mut records = Vec::new();
    for &n in &sizes {
        let dataset = datasets::er(n, 20.0, 7);
        let name = format!("er-n{n}");
        for spec in [AlgoSpec::dcfastqc(), AlgoSpec::quickplus()] {
            records.push(measure(
                &name,
                &dataset.graph,
                spec,
                dataset.gamma_d,
                dataset.theta_d,
                opts.time_limit,
            ));
        }
    }
    print_table(
        "Figure 10(a): varying number of vertices (ER, density 20)",
        &records,
    );
    records
}

/// **Figure 10(b)**: scalability on Erdős–Rényi graphs as the edge density
/// grows (vertex count fixed, γ=0.9, θ=10).
pub fn fig10b(opts: ExperimentOptions) -> Vec<RunRecord> {
    let (n, densities): (usize, Vec<f64>) = match opts.scale {
        SuiteScale::Small => (1000, vec![5.0, 10.0, 20.0]),
        SuiteScale::Full => (5_000, vec![10.0, 20.0, 30.0, 50.0, 70.0]),
    };
    let mut records = Vec::new();
    for &density in &densities {
        let dataset = datasets::er(n, density, 11);
        let name = format!("er-d{density}");
        for spec in [AlgoSpec::dcfastqc(), AlgoSpec::quickplus()] {
            records.push(measure(
                &name,
                &dataset.graph,
                spec,
                dataset.gamma_d,
                dataset.theta_d,
                opts.time_limit,
            ));
        }
    }
    print_table("Figure 10(b): varying edge density (ER)", &records);
    records
}

/// **Figure 11**: branching-strategy ablation (Hybrid-SE vs Sym-SE vs SE)
/// while varying γ and θ on two datasets.
pub fn fig11(opts: ExperimentOptions) -> Vec<RunRecord> {
    let specs = [
        AlgoSpec::dcfastqc_with_branching("Hybrid-SE", BranchingStrategy::HybridSe),
        AlgoSpec::dcfastqc_with_branching("Sym-SE", BranchingStrategy::SymSe),
        AlgoSpec::dcfastqc_with_branching("SE", BranchingStrategy::Se),
    ];
    let two: Vec<Dataset> = {
        let mut v = datasets::default_four(opts.scale);
        v.truncate(2);
        v
    };
    let mut records = Vec::new();
    for dataset in &two {
        for gamma in gamma_sweep(dataset.gamma_d) {
            for spec in specs {
                records.push(measure(
                    dataset.name,
                    &dataset.graph,
                    spec,
                    gamma,
                    dataset.theta_d,
                    opts.time_limit,
                ));
            }
        }
        for theta in theta_sweep(dataset.theta_d) {
            for spec in specs {
                records.push(measure(
                    dataset.name,
                    &dataset.graph,
                    spec,
                    dataset.gamma_d,
                    theta,
                    opts.time_limit,
                ));
            }
        }
    }
    print_table(
        "Figure 11: branching strategies (Hybrid-SE / Sym-SE / SE)",
        &records,
    );
    records
}

/// **Figure 12**: divide-and-conquer ablation (FastQC vs BDCFastQC vs
/// DCFastQC) while varying γ and θ on two datasets.
pub fn fig12(opts: ExperimentOptions) -> Vec<RunRecord> {
    let specs = [
        AlgoSpec::dcfastqc(),
        AlgoSpec::bdcfastqc(),
        AlgoSpec::fastqc(),
    ];
    let two: Vec<Dataset> = {
        let mut v = datasets::default_four(opts.scale);
        v.truncate(2);
        v
    };
    let mut records = Vec::new();
    for dataset in &two {
        for gamma in gamma_sweep(dataset.gamma_d) {
            for spec in specs {
                records.push(measure(
                    dataset.name,
                    &dataset.graph,
                    spec,
                    gamma,
                    dataset.theta_d,
                    opts.time_limit,
                ));
            }
        }
        for theta in theta_sweep(dataset.theta_d) {
            for spec in specs {
                records.push(measure(
                    dataset.name,
                    &dataset.graph,
                    spec,
                    dataset.gamma_d,
                    theta,
                    opts.time_limit,
                ));
            }
        }
    }
    print_table(
        "Figure 12: DC frameworks (DCFastQC / BDCFastQC / FastQC)",
        &records,
    );
    records
}

/// **MAX_ROUND ablation** (Section 6.2 "other experiments", item 3).
pub fn maxround(opts: ExperimentOptions) -> Vec<RunRecord> {
    let mut records = Vec::new();
    for dataset in datasets::default_four(opts.scale) {
        for round in 1..=4usize {
            let label: &'static str = match round {
                1 => "MAX_ROUND=1",
                2 => "MAX_ROUND=2",
                3 => "MAX_ROUND=3",
                _ => "MAX_ROUND=4",
            };
            records.push(measure(
                dataset.name,
                &dataset.graph,
                AlgoSpec::dcfastqc_with_max_round(label, round),
                dataset.gamma_d,
                dataset.theta_d,
                opts.time_limit,
            ));
        }
    }
    print_table("MAX_ROUND ablation", &records);
    records
}

/// **DC shrinking effect** (Section 6.2 "other experiments", item 2): how much
/// smaller the DC subgraphs are than the original graph.
pub fn shrink(opts: ExperimentOptions) -> Vec<RunRecord> {
    let mut records = Vec::new();
    println!("\n== DC graph-size reduction ==");
    println!(
        "{:<14} {:>8} {:>14} {:>16} {:>16} {:>10}",
        "dataset", "|V|", "#subproblems", "avg |V_i| (2hop)", "avg |V_i| pruned", "ratio"
    );
    for dataset in datasets::standard_suite(opts.scale) {
        let rec = measure(
            dataset.name,
            &dataset.graph,
            AlgoSpec::dcfastqc(),
            dataset.gamma_d,
            dataset.theta_d,
            opts.time_limit,
        );
        let stats = GraphStats::compute(&dataset.graph);
        let sub = rec.stats.dc_subproblems.max(1) as f64;
        let before = rec.stats.dc_vertices_before_pruning as f64 / sub;
        let after = rec.stats.dc_vertices_after_pruning as f64 / sub;
        println!(
            "{:<14} {:>8} {:>14} {:>16.1} {:>16.1} {:>9.4}%",
            dataset.name,
            stats.num_vertices,
            rec.stats.dc_subproblems,
            before,
            after,
            100.0 * after / stats.num_vertices.max(1) as f64
        );
        records.push(rec);
    }
    records
}

/// **MQCE-S2 cost** (Section 2.2): time spent in the set-trie maximality
/// filter relative to the S1 search.
pub fn s2_cost(opts: ExperimentOptions) -> Vec<RunRecord> {
    let mut records = Vec::new();
    println!("\n== MQCE-S2 (set-trie filtering) cost ==");
    println!(
        "{:<14} {:>10} {:>8} {:>14} {:>14}",
        "dataset", "#S1 out", "#MQC", "S1 time (ms)", "S2 time (ms)"
    );
    for dataset in datasets::standard_suite(opts.scale) {
        let rec = measure(
            dataset.name,
            &dataset.graph,
            AlgoSpec::dcfastqc(),
            dataset.gamma_d,
            dataset.theta_d,
            opts.time_limit,
        );
        println!(
            "{:<14} {:>10} {:>8} {:>14.2} {:>14.3}",
            dataset.name, rec.s1_outputs, rec.mqcs, rec.s1_millis, rec.s2_millis
        );
        records.push(rec);
    }
    records
}

/// **Backend quick profile**: the bitset adjacency kernel against the
/// sorted-slice baseline; powers the per-PR `BENCH_mqce.json` artifact the
/// CI bench-smoke job uploads, so kernel regressions show up in the perf
/// trajectory.
///
/// Unlike the figure experiments, every workload here is tuned to *finish*
/// well under the time limit on both backends — an INF row cannot show a
/// speedup, and a timed-out run's S1 output balloons the uncapped S2 filter.
/// The dense-community configurations are the kernel's target shape
/// (sub-second on slice, 2–5x faster on bitset); the planted-group workload
/// is the sparse-background control where the adaptive threshold must keep
/// the kernel from hurting.
pub fn quick_backends(opts: ExperimentOptions) -> Vec<RunRecord> {
    use mqce_graph::generators::{community_graph, CommunityGraphParams};
    let mut records = Vec::new();
    let community_250 = community_graph(
        CommunityGraphParams {
            n: 250,
            num_communities: 12,
            p_intra: 0.9,
            inter_degree: 2.0,
        },
        42,
    );
    let community_400 = community_graph(
        CommunityGraphParams {
            n: 400,
            num_communities: 20,
            p_intra: 0.92,
            inter_degree: 1.5,
        },
        7,
    );
    let email = datasets::email(SuiteScale::Small);
    let workloads: Vec<(&'static str, &mqce_graph::Graph, f64, usize)> = vec![
        ("community-250", &community_250, 0.9, 8),
        ("community-250-g85", &community_250, 0.85, 8),
        ("community-400", &community_400, 0.9, 8),
        ("email-planted", &email.graph, email.gamma_d, email.theta_d),
    ];
    for &(name, graph, gamma, theta) in &workloads {
        for (label, backend) in [
            ("DCFastQC/slice", AdjacencyBackend::Slice),
            ("DCFastQC/bitset", AdjacencyBackend::Bitset),
        ] {
            records.push(measure(
                name,
                graph,
                AlgoSpec::dcfastqc().with_backend(label, backend),
                gamma,
                theta,
                opts.time_limit,
            ));
        }
    }
    print_table(
        "Backend quick profile: bitset kernel vs sorted-slice",
        &records,
    );
    print_backend_speedups(&records);
    // A mismatch in output counts between backends is a kernel bug; fail
    // loudly here rather than shipping a wrong BENCH_mqce.json.
    for pair in records.chunks(2) {
        if let [slice, bitset] = pair {
            assert!(
                slice.timed_out || bitset.timed_out || slice.mqcs == bitset.mqcs,
                "backend mismatch on {}: slice found {} MQCs, bitset {}",
                slice.dataset,
                slice.mqcs,
                bitset.mqcs
            );
        }
    }
    records
}

/// Checked-in regression bound for [`alloc_gate`]: allocation events per DC
/// subproblem allowed on the community-800 preset, roughly 2× the measured
/// steady state. The budget covers everything a full pipeline run allocates
/// — the warmup ramp of the per-worker scratch buffers, the one-`Vec`-per-
/// surviving-output boxing at the end of the run, and the streaming S2
/// engine — so a reintroduced per-subproblem allocation (the pre-scratch
/// path paid hundreds: a fresh local-id map, `Vec<Vec<_>>` adjacency,
/// per-emission predicate masks and per-QC boxing each time) blows through
/// it immediately. Measured steady state: ~13.1 (most of it the final
/// boxing, which scales with surviving outputs, not subproblems).
pub const ALLOC_GATE_MAX_ALLOCS_PER_SUBPROBLEM: f64 = 30.0;

/// **Allocation gate** (`experiments alloc-gate`): measures heap-allocation
/// events per DC subproblem on the CI smoke preset (community graph, n=800,
/// 80 communities, p_intra=0.9, seed 7, γ=0.9, θ=4) with the `count-allocs`
/// global allocator, and panics if the rate exceeds
/// [`ALLOC_GATE_MAX_ALLOCS_PER_SUBPROBLEM`]. A first untimed run warms the
/// allocator and the page cache; the second run is the measured one. Without
/// the `count-allocs` feature there is nothing to measure and the gate
/// reports itself skipped.
pub fn alloc_gate(opts: ExperimentOptions) -> Vec<RunRecord> {
    use mqce_graph::generators::{community_graph, CommunityGraphParams};
    if !crate::alloc_stats::enabled() {
        println!(
            "alloc-gate: built without the `count-allocs` feature, skipping \
             (rebuild with `--features count-allocs`)"
        );
        return Vec::new();
    }
    let g = community_graph(
        CommunityGraphParams {
            n: 800,
            num_communities: 80,
            p_intra: 0.9,
            inter_degree: 1.0,
        },
        7,
    );
    let spec = AlgoSpec::dcfastqc();
    let _warmup = measure("community-800", &g, spec, 0.9, 4, opts.time_limit);
    let record = measure("community-800", &g, spec, 0.9, 4, opts.time_limit);
    assert!(
        !record.timed_out && !record.s2_timed_out,
        "alloc-gate run hit the time limit; its allocation counts are not comparable"
    );
    let subproblems = record.stats.dc_subproblems.max(1);
    let per_subproblem = record.alloc_count as f64 / subproblems as f64;
    println!(
        "\n== Allocation gate (community-800, gamma=0.9 theta=4) ==\n\
         {} allocation events / {} DC subproblems = {:.2} per subproblem \
         (bound {:.1}); peak heap {:.1} MiB",
        record.alloc_count,
        subproblems,
        per_subproblem,
        ALLOC_GATE_MAX_ALLOCS_PER_SUBPROBLEM,
        record.peak_alloc_bytes as f64 / (1024.0 * 1024.0)
    );
    assert!(
        per_subproblem <= ALLOC_GATE_MAX_ALLOCS_PER_SUBPROBLEM,
        "allocation regression: {per_subproblem:.2} allocation events per DC subproblem \
         exceeds the checked-in bound of {ALLOC_GATE_MAX_ALLOCS_PER_SUBPROBLEM}"
    );
    vec![record]
}

/// Edges per update batch in the [`updates`] profile. Single-edge batches
/// are the realistic churn shape (a stream of local mutations — follow /
/// unfollow, transaction edges — not one bulk rewrite) and keep each
/// batch's dirty two-hop closure confined to the touched communities, which
/// is exactly the regime the incremental session targets; the profile
/// reports totals across the whole schedule either way, so the comparison
/// against per-batch full recompute is fair at any batch size.
pub const UPDATE_BATCH_EDGES: usize = 1;

/// **Incremental-updates profile** (`experiments updates`): random churn
/// schedules at 0.1% / 1% / 5% edge turnover on the community generators,
/// comparing [`IncrementalSession`](mqce_core::IncrementalSession) updates
/// against a full recompute after every batch. Each schedule applies its
/// turnover as a stream of [`UPDATE_BATCH_EDGES`]-edge mixed insert/delete
/// batches; after each batch the profile also runs the full pipeline on the
/// mutated graph, asserts the two families agree (the differential check is
/// free — the baseline timing needs the run anyway), and accumulates both
/// wall-clocks. One record per (graph, turnover): `s1_millis` is the total
/// incremental time, `full_recompute_millis` the total baseline time, and
/// `updates_applied` / `dirty_subproblems` count the schedule's edges and
/// re-run anchors.
pub fn updates(opts: ExperimentOptions) -> Vec<RunRecord> {
    use mqce_core::{IncrementalSession, MqceConfig, Session};
    use mqce_graph::generators::{community_graph, CommunityGraphParams};
    use mqce_graph::GraphDelta;

    let (gamma, theta) = (0.9, 8);
    let graphs: Vec<(&'static str, mqce_graph::Graph)> = match opts.scale {
        // Small enough that the per-batch full-recompute baseline stays
        // cheap even in debug builds (the smoke test runs this preset).
        SuiteScale::Small => vec![(
            "community-120",
            community_graph(
                CommunityGraphParams {
                    n: 120,
                    num_communities: 8,
                    p_intra: 0.9,
                    inter_degree: 1.5,
                },
                42,
            ),
        )],
        // Communities big enough (20 vertices) that the per-anchor
        // branch-and-bound work dominates the shared O(n + m) prepare
        // costs — but no bigger: at 25-vertex 0.9-dense communities the
        // maximal-family count explodes past the profile's time limit —
        // and inter-degree low enough that one edge's two-hop ball stays
        // inside a handful of communities, the workload shape incremental
        // maintenance is for.
        SuiteScale::Full => vec![
            (
                "community-400",
                community_graph(
                    CommunityGraphParams {
                        n: 400,
                        num_communities: 20,
                        p_intra: 0.9,
                        inter_degree: 0.5,
                    },
                    7,
                ),
            ),
            (
                "community-800",
                community_graph(
                    CommunityGraphParams {
                        n: 800,
                        num_communities: 40,
                        p_intra: 0.9,
                        inter_degree: 0.5,
                    },
                    7,
                ),
            ),
        ],
    };

    let mut records = Vec::new();
    println!("\n== Incremental updates: dirty-set re-runs vs full recompute ==");
    println!(
        "{:<16} {:>7} {:>7} {:>8} {:>7} {:>14} {:>14} {:>9}",
        "dataset", "churn%", "edges", "batches", "dirty", "incr (ms)", "full (ms)", "speedup"
    );
    for (name, graph) in &graphs {
        for churn in [0.1, 1.0, 5.0] {
            let config = MqceConfig::new(gamma, theta)
                .expect("benchmark parameters are valid")
                .with_time_limit(opts.time_limit);
            let total = ((graph.num_edges() as f64) * churn / 100.0)
                .round()
                .max(1.0) as usize;
            // The same deterministic LCG the stress families use: the
            // schedule must be reproducible across runs and machines.
            let mut x = (churn * 1000.0) as u64 ^ 0x9E3779B97F4A7C15;
            let mut next = move || {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u32
            };

            let mut session = IncrementalSession::new(graph.clone(), config, 1);
            let mut current = graph.clone();
            let (mut incr_millis, mut full_millis) = (0.0f64, 0.0f64);
            let (mut applied, mut dirty) = (0u64, 0u64);
            let mut batches = 0u64;
            let mut remaining = total;
            while remaining > 0 {
                let batch = remaining.min(UPDATE_BATCH_EDGES);
                remaining -= batch;
                batches += 1;
                let n = current.num_vertices() as u32;
                let edges: Vec<(u32, u32)> = current.edges().collect();
                let mut inserts = Vec::new();
                let mut deletes = Vec::new();
                for _ in 0..batch {
                    if next() % 2 == 0 && !edges.is_empty() {
                        deletes.push(edges[next() as usize % edges.len()]);
                    } else {
                        loop {
                            let (u, v) = (next() % n, next() % n);
                            if u != v && !current.has_edge(u, v) {
                                inserts.push((u, v));
                                break;
                            }
                        }
                    }
                }
                let delta = GraphDelta::new(inserts, deletes);
                current = delta.apply(&current);

                let t = Instant::now();
                let outcome = session.update(&delta);
                incr_millis += t.elapsed().as_secs_f64() * 1e3;
                applied += outcome.updates_applied;
                dirty += outcome.dirty_subproblems;

                let t = Instant::now();
                let fresh = Session::open(current.clone()).config(config).run();
                full_millis += t.elapsed().as_secs_f64() * 1e3;
                assert_eq!(
                    session.family(),
                    &fresh.mqcs[..],
                    "incremental family diverged from full recompute on {name} \
                     (churn {churn}%, batch {batches})"
                );
            }

            let mqcs = session.family().len();
            let (mqc_min, mqc_max) = (
                session.family().iter().map(Vec::len).min().unwrap_or(0),
                session.family().iter().map(Vec::len).max().unwrap_or(0),
            );
            let mqc_avg = if mqcs == 0 {
                0.0
            } else {
                session.family().iter().map(Vec::len).sum::<usize>() as f64 / mqcs as f64
            };
            println!(
                "{:<16} {:>7.1} {:>7} {:>8} {:>7} {:>14.1} {:>14.1} {:>8.1}x",
                name,
                churn,
                applied,
                batches,
                dirty,
                incr_millis,
                full_millis,
                full_millis.max(0.01) / incr_millis.max(0.01)
            );
            records.push(RunRecord {
                dataset: format!("{name}/churn-{churn}%"),
                algorithm: "IncrementalDC".to_string(),
                branching: "HybridSe".to_string(),
                backend: "auto".to_string(),
                gamma,
                theta,
                max_round: 2,
                threads: 1,
                s2_backend: "auto".to_string(),
                s2_timed_out: false,
                s2_predicted_millis: Vec::new(),
                s1_millis: incr_millis,
                s2_millis: 0.0,
                s1_outputs: mqcs,
                mqcs,
                mqc_min,
                mqc_max,
                mqc_avg,
                branches: 0,
                timed_out: false,
                thread_stats: Vec::new(),
                serve_requests: 0,
                serve_cache_hits: 0,
                serve_cache_misses: 0,
                serve_cache_evictions: 0,
                serve_cache_len: 0,
                updates_applied: applied,
                dirty_subproblems: dirty,
                full_recompute_millis: full_millis,
                alloc_count: 0,
                peak_alloc_bytes: 0,
                shards: 0,
                shard_millis: Vec::new(),
                merge_millis: 0.0,
                stats: Default::default(),
            });
        }
    }
    records
}

/// **Sharded execution** (`shards`): the cost-balanced shard planner and
/// frontier merge against the single-process pipeline. For each shard count
/// the profile runs [`run_sharded`](mqce_core::run_sharded) in-process —
/// the same plan/execute/merge steps the multi-process `mqce --shards`
/// coordinator drives over worker processes — asserts the merged family is
/// identical to a fresh single-process run, and records the per-shard
/// wall-clocks plus the merge overhead (the part of sharding that does not
/// parallelise) into `shard_millis` / `merge_millis` of `BENCH_mqce.json`.
pub fn shards(opts: ExperimentOptions) -> Vec<RunRecord> {
    use mqce_core::{run_sharded, MqceConfig, PreparedGraph, Session};
    use mqce_graph::generators::{community_graph, CommunityGraphParams};

    let (gamma, theta) = (0.9, 8);
    let (name, graph, shard_counts): (&str, mqce_graph::Graph, &[usize]) = match opts.scale {
        SuiteScale::Small => (
            "community-120",
            community_graph(
                CommunityGraphParams {
                    n: 120,
                    num_communities: 8,
                    p_intra: 0.9,
                    inter_degree: 1.5,
                },
                42,
            ),
            &[3],
        ),
        SuiteScale::Full => (
            "community-800",
            community_graph(
                CommunityGraphParams {
                    n: 800,
                    num_communities: 80,
                    p_intra: 0.9,
                    inter_degree: 0.5,
                },
                7,
            ),
            &[2, 3, 4],
        ),
    };

    let config = MqceConfig::new(gamma, theta)
        .expect("benchmark parameters are valid")
        .with_time_limit(opts.time_limit);
    let prepared = std::sync::Arc::new(PreparedGraph::new(graph.clone()));

    println!("\n== Sharded execution: cost-balanced shards + frontier merge ==");
    println!(
        "{:<16} {:>7} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "dataset", "shards", "single(ms)", "shards(ms)", "merge(ms)", "imbalance", "#MQC"
    );

    let t = Instant::now();
    let single = Session::open_prepared(prepared.clone())
        .config(config)
        .run();
    let single_millis = t.elapsed().as_secs_f64() * 1e3;

    let mut records = Vec::new();
    for &num_shards in shard_counts {
        let outcome = run_sharded(&prepared, &config, num_shards, 1)
            .expect("DCFastQC has a DC decomposition");
        assert_eq!(
            outcome.mqcs, single.mqcs,
            "sharded family diverged from single-process on {name} ({num_shards} shards)"
        );
        assert!(
            !outcome.best_effort,
            "sharded run on {name} was cut short under the profile time limit"
        );
        let shard_total: f64 = outcome.shard_millis.iter().sum();
        let slowest = outcome.shard_millis.iter().cloned().fold(0.0, f64::max);
        // Slowest shard over the ideal even split: 1.0x is a perfect balance.
        let imbalance = slowest / (shard_total / num_shards as f64).max(0.01);
        println!(
            "{:<16} {:>7} {:>12.1} {:>12.1} {:>12.1} {:>9.2}x {:>8}",
            name,
            num_shards,
            single_millis,
            shard_total,
            outcome.merge_millis,
            imbalance,
            outcome.mqcs.len()
        );
        let (mqc_min, mqc_max) = (
            outcome.mqcs.iter().map(Vec::len).min().unwrap_or(0),
            outcome.mqcs.iter().map(Vec::len).max().unwrap_or(0),
        );
        let mqc_avg = if outcome.mqcs.is_empty() {
            0.0
        } else {
            outcome.mqcs.iter().map(Vec::len).sum::<usize>() as f64 / outcome.mqcs.len() as f64
        };
        records.push(RunRecord {
            dataset: name.to_string(),
            algorithm: format!("DCFastQC/sharded-{num_shards}"),
            branching: "HybridSe".to_string(),
            backend: "auto".to_string(),
            gamma,
            theta,
            max_round: 2,
            threads: 1,
            s2_backend: "auto".to_string(),
            s2_timed_out: false,
            s2_predicted_millis: outcome
                .merge_decision
                .filter(|d| d.modeled)
                .map(|d| d.predicted_millis.to_vec())
                .unwrap_or_default(),
            s1_millis: shard_total,
            s2_millis: outcome.merge_millis,
            s1_outputs: outcome.mqcs.len(),
            mqcs: outcome.mqcs.len(),
            mqc_min,
            mqc_max,
            mqc_avg,
            branches: outcome.stats.branches,
            timed_out: false,
            thread_stats: Vec::new(),
            serve_requests: 0,
            serve_cache_hits: 0,
            serve_cache_misses: 0,
            serve_cache_evictions: 0,
            serve_cache_len: 0,
            updates_applied: 0,
            dirty_subproblems: 0,
            full_recompute_millis: single_millis,
            alloc_count: 0,
            peak_alloc_bytes: 0,
            shards: num_shards,
            shard_millis: outcome.shard_millis,
            merge_millis: outcome.merge_millis,
            stats: outcome.stats,
        });
    }
    records
}

/// Generates a set family with the shape of an INF'd S1 run on a dense
/// community graph (the recorded 382k-set S2 wall): heavily overlapping
/// moderate-size subsets of one community's small element universe, with a
/// skewed element distribution and almost no dominated sets — the worst case
/// for the inverted-index probe, whose accepted lists all grow to a large
/// fraction of the family.
pub fn stress_family(n_sets: usize, universe: u32, seed: u64) -> Vec<Vec<u32>> {
    stress_family_with(n_sets, universe, 12, 25, seed)
}

/// [`stress_family`] with an explicit set-size range `len_lo..=len_hi`: the
/// calibration grid sweeps the range (together with the universe) to move
/// the mean-overlap feature of the cost model independently of the set
/// count.
pub fn stress_family_with(
    n_sets: usize,
    universe: u32,
    len_lo: usize,
    len_hi: usize,
    seed: u64,
) -> Vec<Vec<u32>> {
    assert!(len_lo <= len_hi && universe > 0);
    let span = (len_hi - len_lo + 1) as u32;
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) as u32
    };
    (0..n_sets)
        .map(|_| {
            // Clamped so the rejection sampling below can terminate on tiny
            // universes.
            let len = (len_lo + (next() % span) as usize).min(universe as usize);
            let mut s: Vec<u32> = Vec::with_capacity(len);
            while s.len() < len {
                // min-of-two-uniforms skews toward low element ids, like the
                // high-degree core of a community dominating the QC stream.
                let e = (next() % universe).min(next() % universe);
                if !s.contains(&e) {
                    s.push(e);
                }
            }
            s
        })
        .collect()
}

/// Streams one family through one S2 backend under a wall-clock budget and
/// records the timings. Returns the record plus the maximal family when the
/// run finished inside the budget (`None` for a truncated, incomparable run).
fn measure_s2_backend(
    dataset: &str,
    family: &[Vec<u32>],
    backend: S2Backend,
    time_limit: Duration,
) -> (RunRecord, Option<Vec<Vec<u32>>>) {
    let n_sets = family.len();
    let start = Instant::now();
    let mut engine = backend.new_engine();
    // Stream under the budget, like the pipeline's deadline-aware feed:
    // without this, one slow backend would stall the whole profile.
    let deadline = start + time_limit;
    let mut streamed = n_sets;
    for (i, set) in family.iter().enumerate() {
        if i.is_multiple_of(256) && Instant::now() >= deadline {
            streamed = i;
            break;
        }
        engine.add(set);
    }
    let stream_millis = start.elapsed().as_secs_f64() * 1e3;
    let finish_start = Instant::now();
    let outcome = engine.finish_with_deadline(Some(deadline));
    let finish_millis = finish_start.elapsed().as_secs_f64() * 1e3;
    let timed_out = outcome.timed_out || streamed < n_sets;
    println!(
        "{:<26} {:<12} {:>14.1} {:>14.1} {:>10} {:>8}",
        dataset,
        backend.name(),
        stream_millis,
        finish_millis,
        outcome.mqcs.len(),
        if timed_out { "INF" } else { "ok" }
    );
    let record = RunRecord {
        dataset: dataset.to_string(),
        algorithm: format!("S2/{}", backend.name()),
        branching: "-".to_string(),
        backend: "-".to_string(),
        gamma: 0.0,
        theta: 0,
        max_round: 0,
        threads: 1,
        s2_backend: outcome.backend.to_string(),
        s2_timed_out: timed_out,
        s2_predicted_millis: outcome
            .decision
            .filter(|d| d.modeled)
            .map(|d| d.predicted_millis.to_vec())
            .unwrap_or_default(),
        s1_millis: 0.0,
        s2_millis: stream_millis + finish_millis,
        s1_outputs: streamed,
        mqcs: outcome.mqcs.len(),
        mqc_min: outcome.mqcs.iter().map(Vec::len).min().unwrap_or(0),
        mqc_max: outcome.mqcs.iter().map(Vec::len).max().unwrap_or(0),
        mqc_avg: if outcome.mqcs.is_empty() {
            0.0
        } else {
            outcome.mqcs.iter().map(Vec::len).sum::<usize>() as f64 / outcome.mqcs.len() as f64
        },
        branches: 0,
        timed_out,
        thread_stats: Vec::new(),
        serve_requests: 0,
        serve_cache_hits: 0,
        serve_cache_misses: 0,
        serve_cache_evictions: 0,
        serve_cache_len: 0,
        updates_applied: 0,
        dirty_subproblems: 0,
        full_recompute_millis: 0.0,
        alloc_count: 0,
        peak_alloc_bytes: 0,
        shards: 0,
        shard_millis: Vec::new(),
        merge_millis: 0.0,
        stats: Default::default(),
    };
    (record, (!timed_out).then_some(outcome.mqcs))
}

/// Measured time of one backend's finished row within a family's records;
/// `None` when the backend timed out (its truncated time is incomparable).
fn finished_millis(records: &[RunRecord], backend: S2Backend) -> Option<f64> {
    records
        .iter()
        .find(|r| r.algorithm == format!("S2/{}", backend.name()) && !r.timed_out)
        .map(|r| r.s2_millis)
}

/// Absolute slack added to the 2×-of-optimal assertions of the stress
/// profile, absorbing scheduler/timer noise on short CI runs.
const STRESS_AUDIT_SLACK_MILLIS: f64 = 150.0;

/// **S2 stress profile** (`experiments s2-stress`): replays large
/// overlapping set families — the small-universe heavy-overlap shape of the
/// recorded 382k-set wall *and* a sparse large-universe control — through
/// the maximality-engine backends with a per-backend time budget. Backends
/// that finish must agree with the inverted-index reference; a mismatch is a
/// bug and panics (the CI bench-smoke job runs this at the small preset, and
/// the CI backend matrix re-runs it once per concrete backend via
/// `--s2-backend`).
///
/// In full (no `--s2-backend`) mode the profile also audits the measured
/// cost model: the extremal backend must stay within 2× of the best backend
/// on the heavy-overlap family (the regime where its pre-Bayardo–Panda
/// variant degenerated), and on every family the backend the auto dispatcher
/// committed to must be within 2× of the measured optimum.
pub fn s2_stress(opts: ExperimentOptions) -> Vec<RunRecord> {
    let (dense_sets, sparse_sets, sparse_universe) = match opts.scale {
        SuiteScale::Small => (20_000, 12_000, 4_000),
        // The recorded wall: 382k sets took 203 s through the inverted index.
        SuiteScale::Full => (400_000, 120_000, 30_000),
    };
    // The dense family is the degenerate regime ROADMAP flagged; the sparse
    // family is the opposite corner, so the decision audit spans both.
    let families: Vec<(String, bool, Vec<Vec<u32>>)> = vec![
        (
            format!("s2-stress-{}k-u140", dense_sets / 1000),
            true,
            stress_family(dense_sets, 140, 2024),
        ),
        (
            format!(
                "s2-stress-sparse-{}k-u{}k",
                sparse_sets / 1000,
                sparse_universe / 1000
            ),
            false,
            stress_family_with(sparse_sets, sparse_universe as u32, 8, 20, 4048),
        ),
    ];
    let backends: Vec<S2Backend> = match opts.s2_backend {
        None => vec![
            S2Backend::Inverted,
            S2Backend::Bitset,
            S2Backend::Extremal,
            S2Backend::Auto,
        ],
        Some(S2Backend::Inverted) => vec![S2Backend::Inverted],
        Some(chosen) => vec![S2Backend::Inverted, chosen],
    };
    let mut records = Vec::new();
    for (dataset, dense, family) in &families {
        println!(
            "\n== S2 stress: {} sets, universe {} ==",
            family.len(),
            family
                .iter()
                .flatten()
                .collect::<std::collections::HashSet<_>>()
                .len()
        );
        println!(
            "{:<26} {:<12} {:>14} {:>14} {:>10} {:>8}",
            "dataset", "backend", "stream (ms)", "finish (ms)", "#MQC", "status"
        );
        let mut family_records = Vec::new();
        let mut finished_families: Vec<Option<Vec<Vec<u32>>>> = Vec::new();
        for &backend in &backends {
            let (record, finished) = measure_s2_backend(dataset, family, backend, opts.time_limit);
            family_records.push(record);
            finished_families.push(finished);
        }
        // Differential check: every backend that finished within budget must
        // report exactly the same maximal family as the inverted-index
        // reference (the first finished backend in declaration order is
        // `inverted` unless it blew the budget). The small preset is sized
        // so the reference always finishes — that is the configuration the
        // CI jobs run; at full scale a timed-out reference weakens the
        // check, so say so loudly.
        if family_records[0].timed_out {
            assert!(
                opts.scale != SuiteScale::Small,
                "the inverted reference timed out at the small preset; \
                 the differential check requires it to finish there"
            );
            println!(
                "WARNING: inverted reference hit its budget; \
                 backend agreement only checked among the backends that finished"
            );
        }
        let mut finished = family_records
            .iter()
            .zip(&finished_families)
            .filter_map(|(r, f)| f.as_ref().map(|f| (r, f)));
        if let Some((ref_rec, ref_family)) = finished.next() {
            for (rec, fam) in finished {
                assert_eq!(
                    fam, ref_family,
                    "S2 backend disagreement on {dataset}: {} vs reference {}",
                    rec.algorithm, ref_rec.algorithm
                );
            }
        }
        // Cost-model audit (full mode only): measured-time criteria for the
        // completed extremal backend and the auto dispatcher's choice.
        if opts.s2_backend.is_none() {
            audit_stress_family(dataset, *dense, &family_records, opts.time_limit);
        }
        records.extend(family_records);
    }
    records
}

/// The measured-time assertions of the stress profile: with `best` = the
/// fastest finished concrete backend, the extremal backend must be within
/// 2× of `best` on the heavy-overlap family, and the backend the auto
/// dispatcher committed to must be within 2× of `best` on every family.
fn audit_stress_family(dataset: &str, dense: bool, records: &[RunRecord], time_limit: Duration) {
    let concrete_times: Vec<(S2Backend, f64)> = S2Backend::concrete()
        .into_iter()
        .filter_map(|b| finished_millis(records, b).map(|ms| (b, ms)))
        .collect();
    let Some(&(_, best)) = concrete_times
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("timings are finite"))
    else {
        println!("WARNING: no concrete backend finished on {dataset}; audit skipped");
        return;
    };
    let budget = 2.0 * best + STRESS_AUDIT_SLACK_MILLIS;
    // A timed-out backend is only a genuine audit failure when the
    // 2×-of-best threshold was measurable inside the wall-clock budget: the
    // backend ran for the whole per-measurement limit, so exceeding a
    // *smaller* threshold is proven. When the threshold is beyond the
    // budget, a timeout is a truncation artefact, not evidence of
    // degeneration — warn and skip instead of panicking the profile.
    let limit_millis = time_limit.as_secs_f64() * 1e3;
    let audit_one =
        |backend: S2Backend, label: &str, context: &str| match finished_millis(records, backend) {
            Some(millis) => assert!(
                millis <= budget,
                "{label} on {dataset}: {} took {millis:.1}ms vs best {best:.1}ms{context}",
                backend.name(),
            ),
            None if budget < limit_millis => panic!(
                "{label} on {dataset}: {} blew the {limit_millis:.0}ms budget \
                 with best at {best:.1}ms{context}",
                backend.name(),
            ),
            None => println!(
                "WARNING: {} timed out on {dataset} but the 2x threshold ({budget:.0}ms) \
                 exceeds the budget ({limit_millis:.0}ms); {label} audit inconclusive, skipped",
                backend.name()
            ),
        };
    if dense {
        // The tentpole claim: the full Bayardo–Panda pass no longer
        // degenerates exactly where its predecessor did.
        audit_one(S2Backend::Extremal, "extremal degenerates", "");
    }
    let auto = records
        .iter()
        .find(|r| r.algorithm == "S2/auto")
        .expect("full mode always measures the auto dispatcher");
    let chosen = S2Backend::concrete()
        .into_iter()
        .find(|b| b.name() == auto.s2_backend)
        .expect("auto commits to a concrete backend");
    audit_one(
        chosen,
        "cost model mispredicted",
        &format!(" (predictions {:?})", auto.s2_predicted_millis),
    );
    println!(
        "audit {dataset}: best={best:.1}ms chosen={} ({}) pred={:?}",
        auto.s2_backend,
        finished_millis(records, chosen).map_or("INF".to_string(), |ms| format!("{ms:.1}ms")),
        auto.s2_predicted_millis
    );
}

/// **S2 cost-model calibration** (`experiments s2-calibrate`): measures
/// every concrete maximality backend over a grid of synthetic families
/// spanning the model's three features (set count, universe size, mean
/// overlap), fits each backend's log-linear cost surface by least squares,
/// and prints the fitted table in the checked-in `s2_cost_model.tsv` format
/// (pass `--emit <path>` to write it). Runs that blow the per-measurement
/// budget are recorded but excluded from the fit — a truncated time is not a
/// cost. The profile ends with a self-audit: on every calibration family it
/// reports how far the fitted model's pick is from the measured optimum.
///
/// Returns the measurement records plus the fitted model (backends whose fit
/// is degenerate — e.g. every sample timed out — keep their checked-in row,
/// with a loud warning).
pub fn s2_calibrate(opts: ExperimentOptions) -> (Vec<RunRecord>, S2CostModel) {
    let (set_counts, universes): (Vec<usize>, Vec<usize>) = match opts.scale {
        SuiteScale::Small => (vec![2_000, 6_000], vec![64, 512, 4_096]),
        SuiteScale::Full => (vec![4_000, 16_000, 48_000], vec![64, 512, 4_096, 24_576]),
    };
    let len_ranges: [(usize, usize); 2] = [(8, 16), (16, 32)];
    println!("\n== S2 cost-model calibration ==");
    println!(
        "{:<26} {:<12} {:>14} {:>14} {:>10} {:>8}",
        "family", "backend", "stream (ms)", "finish (ms)", "#MQC", "status"
    );
    let mut records = Vec::new();
    // Per-backend samples (set_count, universe, total_elements, millis) in
    // S2Backend::concrete() order.
    let mut samples: [Vec<(usize, usize, usize, f64)>; 3] = Default::default();
    let mut shapes: Vec<(String, usize, usize, usize)> = Vec::new();
    for &n in &set_counts {
        for &u in &universes {
            for &(lo, hi) in &len_ranges {
                let seed = (n * 31 + u * 7 + lo) as u64;
                let family = stress_family_with(n, u as u32, lo, hi, seed);
                let total: usize = family.iter().map(Vec::len).sum();
                let universe = family
                    .iter()
                    .flatten()
                    .collect::<std::collections::HashSet<_>>()
                    .len();
                let dataset = format!("cal-n{n}-u{u}-l{lo}-{hi}");
                shapes.push((dataset.clone(), n, universe, total));
                for (k, backend) in S2Backend::concrete().into_iter().enumerate() {
                    let (mut record, _finished) =
                        measure_s2_backend(&dataset, &family, backend, opts.time_limit);
                    record.algorithm = format!("S2-cal/{}", backend.name());
                    if !record.timed_out {
                        samples[k].push((n, universe, total, record.s2_millis.max(0.01)));
                    }
                    records.push(record);
                }
            }
        }
    }
    // Fit one surface per backend; a degenerate fit keeps the checked-in row.
    let mut model = S2CostModel::checked_in();
    for (k, backend) in S2Backend::concrete().into_iter().enumerate() {
        match mqce_settrie::fit_log_linear(&samples[k]) {
            Some(row) => model.coeffs[k] = row,
            None => println!(
                "WARNING: {} fit degenerate ({} usable samples); keeping the checked-in row",
                backend.name(),
                samples[k].len()
            ),
        }
    }
    println!("\nfitted cost model:\n{}", model.to_table_string());
    // Self-audit: how far the fitted model's pick is from the measured
    // optimum on each calibration family (1.00 = it picked the fastest).
    let mut worst = 1.0f64;
    for (dataset, n, universe, total) in &shapes {
        let measured: Vec<Option<f64>> = S2Backend::concrete()
            .into_iter()
            .map(|b| {
                records
                    .iter()
                    .find(|r| {
                        &r.dataset == dataset
                            && r.algorithm == format!("S2-cal/{}", b.name())
                            && !r.timed_out
                    })
                    .map(|r| r.s2_millis)
            })
            .collect();
        let Some(best) = measured.iter().flatten().copied().reduce(f64::min) else {
            continue;
        };
        let decision = model.decide(*n, *universe, *total);
        let slot = S2Backend::concrete()
            .into_iter()
            .position(|b| b == decision.chosen)
            .expect("decide returns a concrete backend");
        let ratio = measured[slot].map_or(f64::INFINITY, |ms| ms / best);
        worst = worst.max(ratio);
        println!(
            "audit {dataset}: chose {} at {:.2}x of optimum",
            decision.chosen.name(),
            ratio
        );
    }
    println!("worst calibration-family misprediction: {worst:.2}x of optimum");
    (records, model)
}

/// **Parallel-scaling sweep** (`experiments threads`): DCFastQC over the
/// dense-community workloads — including a *skewed* one (a giant planted
/// community plus a tail of tiny ones, the shape that starves the old
/// shared-index driver) — with 1..N worker threads. Every multi-thread point
/// measures both the work-stealing scheduler and the PR-3 shared-atomic-index
/// baseline, records per-thread busy/steal/idle counters in the JSON rows,
/// and asserts that the parallel maximal family equals the sequential one
/// (the CI bench-smoke job runs this at the small preset, so a
/// parallel-vs-sequential disagreement fails the build).
pub fn thread_sweep(opts: ExperimentOptions) -> Vec<RunRecord> {
    use mqce_graph::generators::{
        community_graph, planted_quasi_cliques, CommunityGraphParams, PlantedGroup,
    };
    let community_250 = community_graph(
        CommunityGraphParams {
            n: 250,
            num_communities: 12,
            p_intra: 0.9,
            inter_degree: 2.0,
        },
        42,
    );
    let community_400 = community_graph(
        CommunityGraphParams {
            n: 400,
            num_communities: 20,
            p_intra: 0.92,
            inter_degree: 1.5,
        },
        7,
    );
    // The skewed family: one heavy community dominates the subproblem costs,
    // so whole-subproblem handout cannot balance it — only intra-subproblem
    // splitting keeps the other workers fed.
    let skewed = {
        let mut groups = vec![PlantedGroup {
            size: 32,
            density: 0.9,
        }];
        for _ in 0..14 {
            groups.push(PlantedGroup {
                size: 8,
                density: 1.0,
            });
        }
        planted_quasi_cliques(260, 0.01, &groups, 2026)
    };
    let workloads: Vec<(&'static str, &mqce_graph::Graph, f64, usize)> = vec![
        ("community-250", &community_250, 0.9, 8),
        ("community-400", &community_400, 0.9, 8),
        ("skewed-giant", &skewed, 0.85, 6),
    ];
    // Sweep at least up to 4 workers even when the OS reports fewer cores:
    // oversubscribed points still exercise the scheduler (and record the
    // per-thread counters); on multi-core machines they show real scaling.
    let max_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(4, 8);
    let thread_counts: Vec<usize> = (0..)
        .map(|i| 1usize << i)
        .take_while(|&t| t <= max_threads)
        .collect();
    let mut records = Vec::new();
    println!("\n== Parallel scaling: DCFastQC, 1..{max_threads} threads (work-stealing vs shared-index) ==");
    println!(
        "{:<16} {:<24} {:>8} {:>12} {:>10} {:>11} {:>8}",
        "dataset", "scheduler", "threads", "S1 time(ms)", "speedup", "efficiency", "#MQC"
    );
    for &(name, graph, gamma, theta) in &workloads {
        let mut t1_millis = None;
        for &threads in &thread_counts {
            let rec = measure_threads(
                name,
                graph,
                AlgoSpec::dcfastqc(),
                gamma,
                theta,
                opts.time_limit,
                threads,
            );
            let t1 = *t1_millis.get_or_insert(rec.s1_millis);
            let speedup = t1 / rec.s1_millis.max(0.01);
            println!(
                "{:<16} {:<24} {:>8} {:>12.1} {:>9.2}x {:>10.2}% {:>8}",
                name,
                "work-stealing",
                threads,
                rec.s1_millis,
                speedup,
                100.0 * speedup / threads as f64,
                rec.mqcs
            );
            // Per-thread efficiency rows: how each worker's wall-clock split
            // between executing tasks and hunting for them, and how much it
            // stole / ran from stolen splits.
            for t in &rec.thread_stats {
                println!(
                    "{:<16} {:<24} {:>8} busy={:<9.1} idle={:<9.1} ({:>3.0}% busy) subproblems={:<5} splits={:<5} steals={}",
                    "", "", format!("t{}", t.thread),
                    t.busy_millis,
                    t.idle_millis,
                    100.0 * t.busy_fraction(),
                    t.subproblems,
                    t.splits,
                    t.steals
                );
            }
            records.push(rec);
            if threads > 1 {
                // The PR-3 baseline at the same point, for the speedup story.
                let mut baseline = crate::runner::measure_threads_with(
                    name,
                    graph,
                    AlgoSpec::dcfastqc(),
                    gamma,
                    theta,
                    opts.time_limit,
                    threads,
                    mqce_core::ParallelScheduler::SharedIndex,
                );
                baseline.algorithm.push_str("/shared-index");
                let speedup = t1 / baseline.s1_millis.max(0.01);
                println!(
                    "{:<16} {:<24} {:>8} {:>12.1} {:>9.2}x {:>10.2}% {:>8}",
                    name,
                    "shared-index",
                    threads,
                    baseline.s1_millis,
                    speedup,
                    100.0 * speedup / threads as f64,
                    baseline.mqcs
                );
                records.push(baseline);
            }
        }
    }
    // The MQC family must be thread-count- and scheduler-invariant; compare
    // the actual families (not just counts) at the largest thread count so
    // the CI smoke run fails loudly on any parallel-vs-sequential drift.
    for &(name, graph, gamma, theta) in &workloads {
        let counts: Vec<usize> = records
            .iter()
            .filter(|r| r.dataset == name && !r.timed_out)
            .map(|r| r.mqcs)
            .collect();
        for pair in counts.windows(2) {
            assert_eq!(pair[0], pair[1], "thread sweep MQC mismatch on {name}");
        }
        let config = mqce_core::MqceConfig::new(gamma, theta)
            .expect("benchmark parameters are valid")
            .with_time_limit(opts.time_limit);
        let session = mqce_core::Session::open(graph.clone()).config(config);
        let sequential = session.run();
        let parallel = session.threads(max_threads).run();
        if !sequential.timed_out() && !parallel.timed_out() {
            assert_eq!(
                parallel.mqcs, sequential.mqcs,
                "parallel MQC family differs from sequential on {name}"
            );
        }
    }
    records
}

/// Prints the per-workload bitset-over-slice speedup (workloads may repeat a
/// dataset name with different parameters, so pairs are matched positionally).
fn print_backend_speedups(records: &[RunRecord]) {
    println!("\nspeedup of DCFastQC/bitset over DCFastQC/slice:");
    for pair in records.chunks(2) {
        if let [slice, bitset] = pair {
            if slice.timed_out || bitset.timed_out {
                println!(
                    "  {} (gamma={}, theta={}): INF",
                    slice.dataset, slice.gamma, slice.theta
                );
            } else {
                println!(
                    "  {} (gamma={}, theta={}): {:.1}x",
                    slice.dataset,
                    slice.gamma,
                    slice.theta,
                    slice.s1_millis.max(0.01) / bitset.s1_millis.max(0.01)
                );
            }
        }
    }
}

fn print_speedups(records: &[RunRecord], baseline: &str, ours: &str) {
    println!("\nspeedup of {ours} over {baseline}:");
    let mut datasets_seen: Vec<&str> = Vec::new();
    for r in records {
        if !datasets_seen.contains(&r.dataset.as_str()) {
            datasets_seen.push(&r.dataset);
        }
    }
    for d in datasets_seen {
        let base = records
            .iter()
            .find(|r| r.dataset == d && r.algorithm == baseline);
        let our = records
            .iter()
            .find(|r| r.dataset == d && r.algorithm == ours);
        if let (Some(b), Some(o)) = (base, our) {
            if b.timed_out {
                println!(
                    "  {d}: > {:.1}x (baseline hit the time limit)",
                    b.s1_millis.max(1.0) / o.s1_millis.max(0.01)
                );
            } else {
                println!(
                    "  {d}: {:.1}x",
                    b.s1_millis.max(0.01) / o.s1_millis.max(0.01)
                );
            }
        }
    }
}

/// Runs every experiment in sequence (the `all` subcommand).
pub fn run_all(opts: ExperimentOptions) -> Vec<RunRecord> {
    let mut all = Vec::new();
    all.extend(table1(opts));
    all.extend(fig7(opts));
    all.extend(fig8(opts));
    all.extend(fig9(opts));
    all.extend(fig10a(opts));
    all.extend(fig10b(opts));
    all.extend(fig11(opts));
    all.extend(fig12(opts));
    all.extend(maxround(opts));
    all.extend(shrink(opts));
    all.extend(s2_cost(opts));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole experiment path works end to end at quick scale; the
    /// comparative *shape* of the headline result (DCFastQC beats Quick+ in
    /// branch count on datasets with dense structure) holds.
    #[test]
    fn fig7_quick_scale_shape() {
        let records = fig7(ExperimentOptions::quick());
        assert!(!records.is_empty());
        // Same MQC count for both algorithms on every dataset they both
        // finished.
        let datasets: Vec<String> = records.iter().map(|r| r.dataset.clone()).collect();
        for d in datasets {
            let rs: Vec<&RunRecord> = records.iter().filter(|r| r.dataset == d).collect();
            if rs.len() == 2 && !rs[0].timed_out && !rs[1].timed_out {
                assert_eq!(rs[0].mqcs, rs[1].mqcs, "MQC count mismatch on {d}");
            }
        }
    }

    #[test]
    fn quick_backend_profile_has_matching_pairs() {
        let records = quick_backends(ExperimentOptions::quick());
        assert!(!records.is_empty());
        assert!(records.len().is_multiple_of(2));
        // The workloads are tuned to finish well inside the cap; if every
        // pair timed out the comparison assertions below would be vacuous.
        assert!(
            records.iter().any(|r| !r.timed_out),
            "every quick-profile run hit the time limit"
        );
        for pair in records.chunks(2) {
            assert_eq!(pair[0].dataset, pair[1].dataset);
            assert_eq!(pair[0].backend, "slice");
            assert_eq!(pair[1].backend, "bitset");
            if !pair[0].timed_out && !pair[1].timed_out {
                assert_eq!(
                    pair[0].mqcs, pair[1].mqcs,
                    "MQC mismatch on {}",
                    pair[0].dataset
                );
                // Identical search trees: the kernel changes how adjacency is
                // answered, never what is explored.
                assert_eq!(
                    pair[0].branches, pair[1].branches,
                    "branch mismatch on {}",
                    pair[0].dataset
                );
            }
        }
    }

    #[test]
    fn updates_profile_records_churn_rows() {
        // The profile's own per-batch assert is the differential check; the
        // test verifies the record shape and that the counters moved.
        let records = updates(ExperimentOptions::quick());
        assert_eq!(records.len(), 3); // one community graph × three churn levels
        for r in &records {
            assert_eq!(r.algorithm, "IncrementalDC");
            assert!(r.dataset.contains("churn"));
            assert!(r.updates_applied > 0);
            assert!(r.full_recompute_millis > 0.0);
            assert!(r.s1_millis > 0.0);
        }
        // Heavier churn applies more edges.
        assert!(records[2].updates_applied > records[0].updates_applied);
    }

    #[test]
    fn stress_family_is_deterministic_and_overlapping() {
        let a = stress_family(500, 140, 9);
        let b = stress_family(500, 140, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        for set in &a {
            assert!((12..=25).contains(&set.len()));
            assert!(set.iter().all(|&e| e < 140));
            let mut dedup = set.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), set.len(), "duplicate elements in {set:?}");
        }
        // Different seeds give different families.
        assert_ne!(a, stress_family(500, 140, 10));
    }

    #[test]
    fn stress_family_backends_agree_with_reference() {
        use mqce_settrie::{filter_maximal, filter_maximal_with};
        let family = stress_family(3000, 100, 5);
        let reference = filter_maximal(&family);
        // Almost nothing dominated: that is what makes the shape a stress.
        assert!(reference.len() > family.len() / 2);
        for backend in S2Backend::concrete() {
            assert_eq!(
                filter_maximal_with(&family, backend),
                reference,
                "{} disagrees on the stress family",
                backend.name()
            );
        }
    }

    #[test]
    fn gamma_and_theta_sweeps_are_sane() {
        assert!(gamma_sweep(0.9).contains(&0.9));
        assert!(gamma_sweep(0.96).contains(&0.96));
        assert!(gamma_sweep(0.51).len() >= 5);
        let t = theta_sweep(8);
        assert_eq!(t.len(), 5);
        assert!(t.contains(&8));
        assert!(theta_sweep(3)[0] >= 3);
    }
}
