//! Heap-allocation counters for the bench harness.
//!
//! The allocation-free DC hot path is a *measured* property, not a hoped-for
//! one: with the `count-allocs` feature enabled this module installs a
//! [`#[global_allocator]`](std::alloc::GlobalAlloc) that wraps the system
//! allocator in three relaxed atomic counters (allocation events, live bytes,
//! peak live bytes). The [`runner`](crate::runner) snapshots the counters
//! around every measured run and records the deltas in `BENCH_mqce.json`
//! (`alloc_count`, `peak_alloc_bytes`), and the `experiments alloc-gate`
//! profile turns the per-subproblem allocation count into a CI regression
//! gate.
//!
//! With the feature disabled the module compiles to no-op stubs and no
//! global allocator is installed, so ordinary builds keep the default
//! allocator untouched.
//!
//! Counting uses `Relaxed` ordering throughout: the counters are statistics,
//! not synchronisation, and the harness only reads them on the measuring
//! thread after the run's worker threads have been joined.

/// A point-in-time reading of the process-wide allocation counters. All
/// zeros when the `count-allocs` feature is off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events since process start (`alloc`, `alloc_zeroed`, and
    /// every `realloc`, successful or not at the old site, counts as one).
    pub alloc_count: u64,
    /// Bytes currently live.
    pub current_bytes: u64,
    /// High-water mark of live bytes since process start or the last
    /// [`reset_peak`].
    pub peak_bytes: u64,
}

/// Whether the counting allocator is compiled in.
pub fn enabled() -> bool {
    cfg!(feature = "count-allocs")
}

#[cfg(feature = "count-allocs")]
#[allow(unsafe_code)]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
    static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
    static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

    fn on_alloc(size: u64) {
        ALLOC_COUNT.fetch_add(1, Relaxed);
        let live = CURRENT_BYTES.fetch_add(size, Relaxed) + size;
        PEAK_BYTES.fetch_max(live, Relaxed);
    }

    fn on_dealloc(size: u64) {
        CURRENT_BYTES.fetch_sub(size, Relaxed);
    }

    /// System allocator wrapped in event/byte counters.
    struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc_zeroed(layout) };
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            on_dealloc(layout.size() as u64);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                on_dealloc(layout.size() as u64);
                on_alloc(new_size as u64);
            }
            p
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    pub(super) fn snapshot() -> super::AllocSnapshot {
        super::AllocSnapshot {
            alloc_count: ALLOC_COUNT.load(Relaxed),
            current_bytes: CURRENT_BYTES.load(Relaxed),
            peak_bytes: PEAK_BYTES.load(Relaxed),
        }
    }

    pub(super) fn reset_peak() {
        PEAK_BYTES.store(CURRENT_BYTES.load(Relaxed), Relaxed);
    }
}

/// Reads the current counters. Zeros when counting is compiled out.
pub fn snapshot() -> AllocSnapshot {
    #[cfg(feature = "count-allocs")]
    {
        imp::snapshot()
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        AllocSnapshot::default()
    }
}

/// Resets the peak-bytes high-water mark to the current live-byte count, so
/// a following run's `peak_bytes` reflects its own high-water mark rather
/// than an earlier run's. No-op when counting is compiled out.
pub fn reset_peak() {
    #[cfg(feature = "count-allocs")]
    imp::reset_peak();
}

#[cfg(all(test, feature = "count-allocs"))]
mod tests {
    use super::*;

    #[test]
    fn counters_observe_a_boxed_allocation() {
        let before = snapshot();
        let v: Vec<u64> = Vec::with_capacity(1 << 12);
        let after = snapshot();
        drop(v);
        let released = snapshot();
        assert!(after.alloc_count > before.alloc_count);
        assert!(after.current_bytes >= before.current_bytes + (1 << 15));
        assert!(after.peak_bytes >= after.current_bytes);
        // NB: other test threads may allocate concurrently, so only
        // one-sided bounds are safe here.
        assert!(released.alloc_count >= after.alloc_count);
    }

    #[test]
    fn reset_peak_rebaselines_high_water() {
        let spike: Vec<u64> = Vec::with_capacity(1 << 14);
        drop(spike);
        reset_peak();
        let s = snapshot();
        // Concurrent tests can allocate between the reset and the read, so
        // the peak only has to be near the live count, not equal to it.
        assert!(s.peak_bytes <= s.current_bytes + (1 << 20));
    }
}
