//! Command-line driver for the paper-reproduction experiments.
//!
//! ```text
//! cargo run --release -p mqce-bench --bin experiments -- <experiment> [--quick] [--json out.json]
//! ```
//!
//! Experiments: `table1`, `fig7`, `fig8`, `fig9`, `fig10a`, `fig10b`,
//! `fig11`, `fig12`, `maxround`, `shrink`, `s2`, `quick`, `s2-stress`,
//! `s2-calibrate`, `threads`, `alloc-gate`, `updates`, `shards`, `all`.
//!
//! `quick` is the backend-comparison profile (bitset kernel vs sorted
//! slices); it writes `BENCH_mqce.json` by default so the CI bench-smoke
//! job and the perf trajectory can pick the records up. `s2-stress` (the
//! maximality-engine backends on large overlapping families; restrict it to
//! one backend with `--s2-backend`, as the CI matrix does), `s2-calibrate`
//! (fits the S2 cost model from measured timings; `--emit <path>` writes the
//! fitted table, e.g. over `crates/settrie/src/s2_cost_model.tsv`),
//! `threads` (the parallel-scaling sweep) and `alloc-gate` (heap-allocation
//! events per DC subproblem against a checked-in bound; needs a
//! `--features count-allocs` build) *append* their rows to the same file.
//!
//! `--quick` runs the reduced-scale suite with a short time limit (useful for
//! smoke-testing the harness); the default is the full laptop-scale suite.
//!
//! `fuzz` is the odd one out: it runs the structured differential fuzzer
//! (`--fuzz-iters`, `--seed`, `--fixture-dir`, or `--replay <fixture>`)
//! instead of a measurement sweep, writes minimised fixtures for any
//! divergence it finds, and exits nonzero on failure so CI can gate on it.

use std::path::PathBuf;
use std::time::Duration;

use mqce_bench::experiments::{self, ExperimentOptions};
use mqce_bench::fuzz::{replay_fixture, run_fuzz, FuzzOptions};
use mqce_bench::runner::{append_json, save_json, RunRecord};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <table1|fig7|fig8|fig9|fig10a|fig10b|fig11|fig12|maxround|shrink|s2|quick|s2-stress|s2-calibrate|threads|alloc-gate|updates|shards|fuzz|all> \
         [--quick] [--time-limit <seconds>] [--json <path>] \
         [--s2-backend <inverted|bitset|extremal>] [--emit <path>] \
         [--fuzz-iters <n>] [--seed <n>] [--fixture-dir <dir>] [--replay <fixture>]"
    );
    std::process::exit(2);
}

/// Runs `experiments fuzz`: a seeded differential sweep (or a single fixture
/// replay), printing a summary and exiting nonzero on any confirmed failure.
fn run_fuzz_command(fuzz_opts: FuzzOptions, replay: Option<PathBuf>) -> ! {
    let report = match replay {
        Some(path) => {
            println!("replaying fixture {}", path.display());
            match replay_fixture(&path) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("fuzz replay failed: {e}");
                    std::process::exit(2);
                }
            }
        }
        None => {
            println!(
                "fuzzing {} cases (seed {:#x}), fixtures -> {}",
                fuzz_opts.iterations,
                fuzz_opts.seed,
                fuzz_opts.fixture_dir.display()
            );
            run_fuzz(&fuzz_opts)
        }
    };
    println!(
        "fuzz: {} cases, {} checks, {} contained injected panics, {} failures",
        report.cases,
        report.checks,
        report.contained_panics,
        report.failures.len()
    );
    if report.failures.is_empty() {
        std::process::exit(0);
    }
    for failure in &report.failures {
        eprintln!(
            "FAIL case {} [{}]: {}{}",
            failure.case,
            failure.check,
            failure.detail,
            failure
                .fixture
                .as_ref()
                .map(|p| format!(" (fixture: {})", p.display()))
                .unwrap_or_default()
        );
    }
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut experiment: Option<String> = None;
    let mut opts = ExperimentOptions::default();
    let mut json_path: Option<PathBuf> = None;
    let mut emit_path: Option<PathBuf> = None;
    let mut fuzz_opts = FuzzOptions::default();
    let mut replay_path: Option<PathBuf> = None;

    let mut i = 0;
    let mut time_limit_set = false;
    let mut quick = false;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--fuzz-iters" => {
                i += 1;
                fuzz_opts.iterations = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                fuzz_opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--fixture-dir" => {
                i += 1;
                fuzz_opts.fixture_dir =
                    PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--replay" => {
                i += 1;
                replay_path = Some(PathBuf::from(
                    args.get(i).cloned().unwrap_or_else(|| usage()),
                ));
            }
            "--time-limit" => {
                i += 1;
                let secs: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.time_limit = Duration::from_secs(secs);
                time_limit_set = true;
            }
            "--json" => {
                i += 1;
                json_path = Some(PathBuf::from(
                    args.get(i).cloned().unwrap_or_else(|| usage()),
                ));
            }
            "--emit" => {
                i += 1;
                emit_path = Some(PathBuf::from(
                    args.get(i).cloned().unwrap_or_else(|| usage()),
                ));
            }
            "--s2-backend" => {
                i += 1;
                opts.s2_backend = match args.get(i).map(String::as_str) {
                    Some("inverted") => Some(mqce_settrie::S2Backend::Inverted),
                    Some("bitset") => Some(mqce_settrie::S2Backend::Bitset),
                    Some("extremal") => Some(mqce_settrie::S2Backend::Extremal),
                    _ => usage(),
                };
            }
            name if experiment.is_none() && !name.starts_with('-') => {
                experiment = Some(name.to_string());
            }
            _ => usage(),
        }
        i += 1;
    }
    let experiment = experiment.unwrap_or_else(|| usage());
    // `fuzz` is not a measurement sweep: it never returns RunRecords and
    // exits with its own status so CI can gate on divergences directly.
    if experiment == "fuzz" {
        run_fuzz_command(fuzz_opts, replay_path);
    }
    // `--quick` switches to the small-scale suite; an explicit
    // `--time-limit` wins over quick's short default regardless of the
    // order the two flags appeared in.
    if quick {
        let mut quick_opts = ExperimentOptions::quick();
        quick_opts.s2_backend = opts.s2_backend;
        if time_limit_set {
            quick_opts.time_limit = opts.time_limit;
        } else {
            time_limit_set = true;
        }
        opts = quick_opts;
    }
    // The perf profiles are the per-PR smoke signal: bounded time limits and
    // always a machine-readable artifact. `quick` starts the file fresh;
    // `s2-stress`, `s2-calibrate` and `threads` append so one CI job can
    // accumulate them into a single BENCH_mqce.json.
    let perf_profile = matches!(
        experiment.as_str(),
        "quick" | "s2-stress" | "s2-calibrate" | "threads" | "alloc-gate" | "updates" | "shards"
    );
    if perf_profile {
        if !time_limit_set {
            opts.time_limit = Duration::from_secs(10);
        }
        if json_path.is_none() {
            json_path = Some(PathBuf::from("BENCH_mqce.json"));
        }
    }

    let records: Vec<RunRecord> = match experiment.as_str() {
        "table1" => experiments::table1(opts),
        "fig7" => experiments::fig7(opts),
        "fig8" => experiments::fig8(opts),
        "fig9" => experiments::fig9(opts),
        "fig10a" => experiments::fig10a(opts),
        "fig10b" => experiments::fig10b(opts),
        "fig11" => experiments::fig11(opts),
        "fig12" => experiments::fig12(opts),
        "maxround" => experiments::maxround(opts),
        "shrink" => experiments::shrink(opts),
        "s2" => experiments::s2_cost(opts),
        "quick" => experiments::quick_backends(opts),
        "s2-stress" => experiments::s2_stress(opts),
        "s2-calibrate" => {
            let (records, model) = experiments::s2_calibrate(opts);
            if let Some(path) = &emit_path {
                std::fs::write(path, model.to_table_string()).expect("write fitted cost model");
                println!("wrote fitted cost model to {}", path.display());
            }
            records
        }
        "threads" => experiments::thread_sweep(opts),
        "alloc-gate" => experiments::alloc_gate(opts),
        "updates" => experiments::updates(opts),
        "shards" => experiments::shards(opts),
        "all" => experiments::run_all(opts),
        _ => usage(),
    };

    if let Some(path) = json_path {
        if matches!(
            experiment.as_str(),
            "s2-stress" | "s2-calibrate" | "threads" | "alloc-gate" | "updates" | "shards"
        ) {
            append_json(&path, &records).expect("append JSON results");
            println!("\nappended {} records to {}", records.len(), path.display());
        } else {
            save_json(&path, &records).expect("write JSON results");
            println!("\nwrote {} records to {}", records.len(), path.display());
        }
    }
}
