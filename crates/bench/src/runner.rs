//! Measurement harness: run one algorithm configuration on one dataset and
//! record everything the paper's tables and figures report.

use std::time::Duration;

use mqce_core::{
    AdjacencyBackend, Algorithm, BranchingStrategy, MqceConfig, ParallelScheduler, SearchStats,
    Session, ThreadStats,
};
use mqce_graph::Graph;
use serde::{Deserialize, Serialize};

/// Per-worker counters of a parallel run, the serialisable mirror of
/// [`mqce_core::ThreadStats`]: what each thread ran, stole and donated, and
/// how its wall-clock split between busy and hungry. These are the
/// per-thread efficiency rows of `BENCH_mqce.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ThreadRow {
    /// Worker index.
    pub thread: usize,
    /// Whole per-vertex subproblems this worker ran.
    pub subproblems: u64,
    /// Donated split tasks this worker ran.
    pub splits: u64,
    /// Tasks stolen from another worker's deque.
    pub steals: u64,
    /// Milliseconds spent executing tasks.
    pub busy_millis: f64,
    /// Milliseconds spent hungry (looking for work).
    pub idle_millis: f64,
}

impl ThreadRow {
    /// Fraction of this worker's wall-clock spent executing tasks, with the
    /// same zero-time semantics as [`ThreadStats::busy_fraction`] (a worker
    /// that recorded no time counts as fully busy) so the bench tables and
    /// the CLI report the same number.
    pub fn busy_fraction(&self) -> f64 {
        let total = self.busy_millis + self.idle_millis;
        if total <= 0.0 {
            1.0
        } else {
            self.busy_millis / total
        }
    }
}

impl From<&ThreadStats> for ThreadRow {
    fn from(t: &ThreadStats) -> Self {
        ThreadRow {
            thread: t.thread,
            subproblems: t.subproblems,
            splits: t.splits,
            steals: t.steals,
            busy_millis: t.busy_millis,
            idle_millis: t.idle_millis,
        }
    }
}

/// One measured run: the row unit of every experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunRecord {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name (e.g. `DCFastQC`).
    pub algorithm: String,
    /// Branching strategy used (only meaningful for FastQC variants).
    pub branching: String,
    /// Adjacency backend used by the searchers (`auto` / `slice` / `bitset`).
    pub backend: String,
    /// Density threshold γ.
    pub gamma: f64,
    /// Size threshold θ.
    pub theta: usize,
    /// `MAX_ROUND` used by the DC pruning.
    pub max_round: usize,
    /// Worker threads used by the DC driver (1 = sequential).
    pub threads: usize,
    /// The S2 maximality-engine backend that ran the final compaction.
    pub s2_backend: String,
    /// Whether S2 hit its deadline (the MQC count is then a partial result).
    pub s2_timed_out: bool,
    /// The auto dispatcher's predicted compaction cost per concrete backend
    /// (`[inverted, bitset, extremal]` milliseconds), empty when a concrete
    /// backend was requested or the small-family fallback fired — the raw
    /// material for auditing cost-model mispredictions against `s2_millis`.
    /// `default` so pre-cost-model records still parse.
    #[serde(default)]
    pub s2_predicted_millis: Vec<f64>,
    /// Wall-clock time of the MQCE-S1 window in milliseconds. Since the
    /// streaming-S2 rework this includes the engine `add` probes that run
    /// inline with the DC search (the filtering work deliberately overlapped
    /// with S1); it is not comparable with pre-streaming records.
    pub s1_millis: f64,
    /// Wall-clock time of MQCE-S2 (engine merge + final compaction) in
    /// milliseconds.
    pub s2_millis: f64,
    /// Number of quasi-cliques reported by S1.
    pub s1_outputs: usize,
    /// Number of maximal quasi-cliques after filtering.
    pub mqcs: usize,
    /// Minimum / maximum / average MQC size (0 when there is none).
    pub mqc_min: usize,
    /// Maximum MQC size.
    pub mqc_max: usize,
    /// Average MQC size.
    pub mqc_avg: f64,
    /// Branch-and-bound nodes explored.
    pub branches: u64,
    /// Whether the run hit the time limit (reported as `INF` in tables).
    pub timed_out: bool,
    /// Per-thread busy/steal/idle counters (empty for sequential runs).
    /// `default` so records written before this field existed still parse —
    /// `append_json` would otherwise discard the whole accumulated file.
    #[serde(default)]
    pub thread_stats: Vec<ThreadRow>,
    /// Requests the `mqce serve` daemon answered over this record's lifetime
    /// (0 for ordinary bench runs; the daemon flushes one summary record at
    /// shutdown). `default` so pre-daemon files still parse.
    #[serde(default)]
    pub serve_requests: u64,
    /// How many of those requests were served from the daemon's result
    /// cache. `default` for the same schema-evolution reason.
    #[serde(default)]
    pub serve_cache_hits: u64,
    /// Requests that consulted the daemon's cache and missed. `default` so
    /// pre-update-protocol files still parse.
    #[serde(default)]
    pub serve_cache_misses: u64,
    /// Cache entries dropped by the daemon, counting both LRU evictions and
    /// invalidations forced by `update` requests. `default` as above.
    #[serde(default)]
    pub serve_cache_evictions: u64,
    /// Cache entries resident when the daemon shut down. `default` as above.
    #[serde(default)]
    pub serve_cache_len: u64,
    /// Edges applied by `GraphDelta` batches over this record's lifetime
    /// (0 for non-incremental runs). `default` so older files parse.
    #[serde(default)]
    pub updates_applied: u64,
    /// Subproblems re-run by the incremental session across those batches —
    /// the dirty-set size the update machinery actually paid for. `default`
    /// as above.
    #[serde(default)]
    pub dirty_subproblems: u64,
    /// Wall-clock milliseconds a full recompute took on the same schedule,
    /// the baseline against which `s1_millis` (incremental wall-clock) shows
    /// the update speedup. 0 when no baseline was measured. `default` as
    /// above.
    #[serde(default)]
    pub full_recompute_millis: f64,
    /// Heap-allocation events during the run (0 unless the harness was
    /// built with the `count-allocs` feature — see
    /// [`alloc_stats`](crate::alloc_stats)). `default` so older files parse.
    #[serde(default)]
    pub alloc_count: u64,
    /// Peak live heap bytes during the run (same feature gate and schema
    /// caveat as `alloc_count`).
    #[serde(default)]
    pub peak_alloc_bytes: u64,
    /// Worker processes used by the sharded coordinator (0 for ordinary
    /// single-process runs). `default` so pre-sharding files still parse.
    #[serde(default)]
    pub shards: usize,
    /// Per-shard wall-clock milliseconds (worker spawn + handshake + DC run +
    /// result decode), one entry per shard, empty for single-process runs.
    /// `default` as above.
    #[serde(default)]
    pub shard_millis: Vec<f64>,
    /// Wall-clock milliseconds the coordinator spent merging the per-shard
    /// families through the frontier-restricted maximality engine — the
    /// sharding overhead that does not parallelise. `default` as above.
    #[serde(default)]
    pub merge_millis: f64,
    /// Raw search statistics.
    #[serde(skip)]
    pub stats: SearchStats,
}

impl RunRecord {
    /// Total pipeline time in milliseconds.
    pub fn total_millis(&self) -> f64 {
        self.s1_millis + self.s2_millis
    }

    /// The time cell as printed in the figures: the S1 time, or `INF` when the
    /// limit was hit (matching the paper's convention of reporting the
    /// enumeration time and a 24 h INF cap).
    pub fn time_cell(&self) -> String {
        if self.timed_out {
            "INF".to_string()
        } else {
            format!("{:.1}", self.s1_millis)
        }
    }
}

/// A named algorithm configuration to measure.
#[derive(Clone, Copy, Debug)]
pub struct AlgoSpec {
    /// Label used in reports.
    pub label: &'static str,
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Branching strategy (FastQC variants only).
    pub branching: BranchingStrategy,
    /// `MAX_ROUND` for DC pruning.
    pub max_round: usize,
    /// Adjacency backend the searchers use.
    pub backend: AdjacencyBackend,
}

impl AlgoSpec {
    /// The paper's algorithm with default settings.
    pub fn dcfastqc() -> Self {
        AlgoSpec {
            label: "DCFastQC",
            algorithm: Algorithm::DcFastQc,
            branching: BranchingStrategy::HybridSe,
            max_round: 2,
            backend: AdjacencyBackend::Auto,
        }
    }

    /// The Quick+ baseline.
    pub fn quickplus() -> Self {
        AlgoSpec {
            label: "Quick+",
            algorithm: Algorithm::QuickPlus,
            branching: BranchingStrategy::HybridSe,
            max_round: 1,
            backend: AdjacencyBackend::Auto,
        }
    }

    /// FastQC without divide-and-conquer.
    pub fn fastqc() -> Self {
        AlgoSpec {
            label: "FastQC",
            algorithm: Algorithm::FastQc,
            branching: BranchingStrategy::HybridSe,
            max_round: 2,
            backend: AdjacencyBackend::Auto,
        }
    }

    /// FastQC in the basic DC framework of [19, 24].
    pub fn bdcfastqc() -> Self {
        AlgoSpec {
            label: "BDCFastQC",
            algorithm: Algorithm::BasicDcFastQc,
            branching: BranchingStrategy::HybridSe,
            max_round: 1,
            backend: AdjacencyBackend::Auto,
        }
    }

    /// DCFastQC restricted to a particular branching strategy (Figure 11).
    pub fn dcfastqc_with_branching(label: &'static str, branching: BranchingStrategy) -> Self {
        AlgoSpec {
            label,
            algorithm: Algorithm::DcFastQc,
            branching,
            max_round: 2,
            backend: AdjacencyBackend::Auto,
        }
    }

    /// DCFastQC with a custom `MAX_ROUND` (the MAX_ROUND ablation).
    pub fn dcfastqc_with_max_round(label: &'static str, max_round: usize) -> Self {
        AlgoSpec {
            label,
            algorithm: Algorithm::DcFastQc,
            branching: BranchingStrategy::HybridSe,
            max_round,
            backend: AdjacencyBackend::Auto,
        }
    }

    /// The same configuration restricted to one adjacency backend (the
    /// backend-comparison profile).
    pub fn with_backend(mut self, label: &'static str, backend: AdjacencyBackend) -> Self {
        self.label = label;
        self.backend = backend;
        self
    }
}

/// Runs one configuration on one graph and records the outcome.
pub fn measure(
    dataset: &str,
    g: &Graph,
    spec: AlgoSpec,
    gamma: f64,
    theta: usize,
    time_limit: Duration,
) -> RunRecord {
    measure_threads(dataset, g, spec, gamma, theta, time_limit, 1)
}

/// [`measure`] with an explicit DC worker-thread count (the parallel-scaling
/// sweep); `threads == 1` uses the sequential pipeline.
pub fn measure_threads(
    dataset: &str,
    g: &Graph,
    spec: AlgoSpec,
    gamma: f64,
    theta: usize,
    time_limit: Duration,
    threads: usize,
) -> RunRecord {
    measure_threads_with(
        dataset,
        g,
        spec,
        gamma,
        theta,
        time_limit,
        threads,
        ParallelScheduler::WorkStealing,
    )
}

/// [`measure_threads`] with an explicit parallel-scheduler choice, used by
/// the `threads` profile to compare the work-stealing driver against the
/// shared-atomic-index baseline.
#[allow(clippy::too_many_arguments)]
pub fn measure_threads_with(
    dataset: &str,
    g: &Graph,
    spec: AlgoSpec,
    gamma: f64,
    theta: usize,
    time_limit: Duration,
    threads: usize,
    scheduler: ParallelScheduler,
) -> RunRecord {
    let config = MqceConfig::new(gamma, theta)
        .expect("benchmark parameters are valid")
        .with_algorithm(spec.algorithm)
        .with_branching(spec.branching)
        .with_backend(spec.backend)
        .with_max_round(spec.max_round)
        .with_time_limit(time_limit);
    let threads = threads.max(1);
    crate::alloc_stats::reset_peak();
    let alloc_before = crate::alloc_stats::snapshot();
    let result = Session::open(g.clone())
        .config(config)
        .threads(threads)
        .scheduler(scheduler)
        .run();
    let alloc_after = crate::alloc_stats::snapshot();
    let (mqc_min, mqc_max, mqc_avg) = result.mqc_size_stats().unwrap_or((0, 0, 0.0));
    RunRecord {
        dataset: dataset.to_string(),
        algorithm: spec.label.to_string(),
        branching: format!("{:?}", spec.branching),
        backend: spec.backend.name().to_string(),
        gamma,
        theta,
        max_round: spec.max_round,
        threads,
        s2_backend: result.s2.backend.clone(),
        s2_timed_out: result.s2.timed_out,
        s2_predicted_millis: result
            .s2
            .decision
            .or(result.s2.merge_decision)
            .filter(|d| d.modeled)
            .map(|d| d.predicted_millis.to_vec())
            .unwrap_or_default(),
        s1_millis: result.s1_time.as_secs_f64() * 1e3,
        s2_millis: result.s2_time.as_secs_f64() * 1e3,
        s1_outputs: result.qcs.len(),
        mqcs: result.mqcs.len(),
        mqc_min,
        mqc_max,
        mqc_avg,
        branches: result.stats.branches,
        timed_out: result.timed_out(),
        thread_stats: result.thread_stats.iter().map(ThreadRow::from).collect(),
        serve_requests: 0,
        serve_cache_hits: 0,
        serve_cache_misses: 0,
        serve_cache_evictions: 0,
        serve_cache_len: 0,
        updates_applied: 0,
        dirty_subproblems: 0,
        full_recompute_millis: 0.0,
        alloc_count: alloc_after
            .alloc_count
            .saturating_sub(alloc_before.alloc_count),
        peak_alloc_bytes: alloc_after.peak_bytes,
        shards: 0,
        shard_millis: Vec::new(),
        merge_millis: 0.0,
        stats: result.stats,
    }
}

/// Prints a uniform table of run records (one row per record).
pub fn print_table(title: &str, records: &[RunRecord]) {
    println!("\n== {title} ==");
    println!(
        "{:<14} {:<22} {:>6} {:>5} {:>12} {:>12} {:>10} {:>8} {:>12}",
        "dataset",
        "algorithm",
        "gamma",
        "theta",
        "S1 time(ms)",
        "S2 time(ms)",
        "#S1 out",
        "#MQC",
        "branches"
    );
    for r in records {
        println!(
            "{:<14} {:<22} {:>6.2} {:>5} {:>12} {:>12.2} {:>10} {:>8} {:>12}",
            r.dataset,
            r.algorithm,
            r.gamma,
            r.theta,
            r.time_cell(),
            r.s2_millis,
            r.s1_outputs,
            r.mqcs,
            r.branches
        );
    }
}

/// Serialises run records to a JSON file (one array). The write is atomic:
/// the JSON goes to a temporary file in the target's directory first and is
/// renamed into place, so a concurrent reader never observes a half-written
/// array.
pub fn save_json(path: &std::path::Path, records: &[RunRecord]) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(records).expect("records serialise");
    let tmp = sibling_path(path, ".tmp");
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, path)
}

/// `path` with `suffix` appended to its file name, in the same directory
/// (same filesystem, so a rename onto `path` is atomic).
fn sibling_path(path: &std::path::Path, suffix: &str) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("records.json"));
    name.push(suffix);
    path.with_file_name(name)
}

/// An exclusive advisory lock implemented as a `create_new` lock file next
/// to the guarded path; dropped (and the file removed) when the guard goes
/// out of scope. Locks older than [`FileLock::STALE_AFTER`] are presumed
/// abandoned by a crashed writer and broken.
struct FileLock {
    path: std::path::PathBuf,
}

impl FileLock {
    /// A lock this old belongs to a writer that died without cleaning up:
    /// real holders only keep it for one read-modify-write.
    const STALE_AFTER: Duration = Duration::from_secs(10);
    /// Give up acquiring after this long rather than hang the harness.
    const ACQUIRE_TIMEOUT: Duration = Duration::from_secs(30);

    fn acquire(path: std::path::PathBuf) -> std::io::Result<FileLock> {
        let start = std::time::Instant::now();
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(_) => return Ok(FileLock { path }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let stale = std::fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|m| m.elapsed().ok())
                        .is_some_and(|age| age > Self::STALE_AFTER);
                    if stale {
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    if start.elapsed() > Self::ACQUIRE_TIMEOUT {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            format!("timed out waiting for lock {}", path.display()),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for FileLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Appends run records to a JSON file holding one array: the existing
/// records are read back and the new ones appended, so several experiment
/// profiles can accumulate rows in a single `BENCH_mqce.json`. A missing or
/// unparsable file (e.g. written by an older schema) starts a fresh array.
///
/// The read-modify-write runs under a sibling lock file and the result is
/// renamed into place atomically, so concurrent appenders (a daemon stats
/// flush racing a bench run, or CI matrix jobs sharing a checkout) cannot
/// interleave and drop each other's records.
pub fn append_json(path: &std::path::Path, records: &[RunRecord]) -> std::io::Result<()> {
    let _lock = FileLock::acquire(sibling_path(path, ".lock"))?;
    let mut all: Vec<RunRecord> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
        .unwrap_or_default();
    all.extend(records.iter().cloned());
    save_json(path, &all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqce_graph::Graph;

    #[test]
    fn measure_produces_consistent_record() {
        let g = Graph::complete(6);
        let rec = measure(
            "k6",
            &g,
            AlgoSpec::dcfastqc(),
            0.9,
            3,
            Duration::from_secs(5),
        );
        assert_eq!(rec.dataset, "k6");
        assert_eq!(rec.mqcs, 1);
        assert_eq!(rec.mqc_min, 6);
        assert_eq!(rec.mqc_max, 6);
        assert!(!rec.timed_out);
        assert!(rec.s1_outputs >= rec.mqcs);
        assert!(rec.total_millis() >= rec.s1_millis);
        assert_ne!(rec.time_cell(), "INF");
    }

    #[test]
    fn specs_have_distinct_labels() {
        let labels = [
            AlgoSpec::dcfastqc().label,
            AlgoSpec::quickplus().label,
            AlgoSpec::fastqc().label,
            AlgoSpec::bdcfastqc().label,
        ];
        let mut dedup = labels.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn with_backend_overrides_label_and_backend() {
        let spec = AlgoSpec::dcfastqc().with_backend("DCFastQC/slice", AdjacencyBackend::Slice);
        assert_eq!(spec.label, "DCFastQC/slice");
        assert_eq!(spec.backend, AdjacencyBackend::Slice);
        let rec = measure(
            "k5",
            &Graph::complete(5),
            spec,
            0.9,
            2,
            Duration::from_secs(5),
        );
        assert_eq!(rec.backend, "slice");
        assert_eq!(rec.mqcs, 1);
    }

    #[test]
    fn json_roundtrip() {
        let g = Graph::complete(5);
        let rec = measure(
            "k5",
            &g,
            AlgoSpec::quickplus(),
            0.9,
            2,
            Duration::from_secs(5),
        );
        let dir = std::env::temp_dir().join("mqce_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.json");
        save_json(&path, std::slice::from_ref(&rec)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<RunRecord> = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].dataset, "k5");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn measure_threads_matches_sequential() {
        let g = Graph::complete(8);
        let seq = measure(
            "k8",
            &g,
            AlgoSpec::dcfastqc(),
            0.9,
            3,
            Duration::from_secs(5),
        );
        let par = measure_threads(
            "k8",
            &g,
            AlgoSpec::dcfastqc(),
            0.9,
            3,
            Duration::from_secs(5),
            4,
        );
        assert_eq!(seq.threads, 1);
        assert_eq!(par.threads, 4);
        assert_eq!(seq.mqcs, par.mqcs);
        assert!(!par.s2_timed_out);
        assert!(!par.s2_backend.is_empty());
        // Sequential runs carry no thread rows; parallel runs one per worker.
        assert!(seq.thread_stats.is_empty());
        assert_eq!(par.thread_stats.len(), 4);
        let total: u64 = par.thread_stats.iter().map(|t| t.subproblems).sum();
        assert_eq!(total, par.stats.dc_subproblems);
    }

    #[test]
    fn records_without_thread_stats_still_parse() {
        // A record in the pre-thread_stats schema must keep parsing
        // (append_json would otherwise silently discard the whole
        // accumulated BENCH_mqce.json on the first append after the schema
        // change).
        let legacy = r#"[{
            "dataset": "k5", "algorithm": "Quick+", "branching": "HybridSe",
            "backend": "auto", "gamma": 0.9, "theta": 2, "max_round": 1,
            "threads": 1, "s2_backend": "inverted", "s2_timed_out": false,
            "s1_millis": 1.0, "s2_millis": 0.5, "s1_outputs": 1, "mqcs": 1,
            "mqc_min": 5, "mqc_max": 5, "mqc_avg": 5.0, "branches": 3,
            "timed_out": false
        }]"#;
        let parsed: Vec<RunRecord> = serde_json::from_str(legacy).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].dataset, "k5");
        assert!(parsed[0].thread_stats.is_empty());
    }

    #[test]
    fn thread_rows_survive_json_roundtrip() {
        let g = Graph::complete(8);
        let rec = measure_threads(
            "k8",
            &g,
            AlgoSpec::dcfastqc(),
            0.9,
            3,
            Duration::from_secs(5),
            2,
        );
        let dir = std::env::temp_dir().join("mqce_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("thread_rows.json");
        save_json(&path, std::slice::from_ref(&rec)).unwrap();
        let parsed: Vec<RunRecord> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed[0].thread_stats.len(), rec.thread_stats.len());
        assert_eq!(parsed[0].thread_stats[0].thread, 0);
        assert_eq!(
            parsed[0]
                .thread_stats
                .iter()
                .map(|t| t.subproblems)
                .sum::<u64>(),
            rec.thread_stats.iter().map(|t| t.subproblems).sum::<u64>()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_index_scheduler_measures_identically() {
        use mqce_core::ParallelScheduler;
        let g = Graph::complete(8);
        let ws = measure_threads(
            "k8",
            &g,
            AlgoSpec::dcfastqc(),
            0.9,
            3,
            Duration::from_secs(5),
            2,
        );
        let si = measure_threads_with(
            "k8",
            &g,
            AlgoSpec::dcfastqc(),
            0.9,
            3,
            Duration::from_secs(5),
            2,
            ParallelScheduler::SharedIndex,
        );
        assert_eq!(ws.mqcs, si.mqcs);
        // The shared-index baseline records no per-thread counters.
        assert!(si.thread_stats.is_empty());
    }

    #[test]
    fn append_json_accumulates_records() {
        let g = Graph::complete(5);
        let rec = measure(
            "k5",
            &g,
            AlgoSpec::quickplus(),
            0.9,
            2,
            Duration::from_secs(5),
        );
        let dir = std::env::temp_dir().join("mqce_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("append.json");
        std::fs::remove_file(&path).ok();
        append_json(&path, std::slice::from_ref(&rec)).unwrap();
        append_json(&path, std::slice::from_ref(&rec)).unwrap();
        let parsed: Vec<RunRecord> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.len(), 2);
        // A corrupt file starts a fresh array instead of failing.
        std::fs::write(&path, "not json").unwrap();
        append_json(&path, std::slice::from_ref(&rec)).unwrap();
        let parsed: Vec<RunRecord> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_appends_lose_no_records() {
        // Regression: append_json used to be an unlocked read-modify-write,
        // so two interleaved appenders could each read the same base array
        // and the second rename would silently drop the first one's records.
        let g = Graph::complete(4);
        let rec = measure(
            "k4",
            &g,
            AlgoSpec::quickplus(),
            0.9,
            2,
            Duration::from_secs(5),
        );
        let dir = std::env::temp_dir().join("mqce_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("concurrent_append.json");
        std::fs::remove_file(&path).ok();
        const WRITERS: usize = 4;
        const APPENDS_EACH: usize = 12;
        std::thread::scope(|scope| {
            for _ in 0..WRITERS {
                let path = &path;
                let rec = &rec;
                scope.spawn(move || {
                    for _ in 0..APPENDS_EACH {
                        append_json(path, std::slice::from_ref(rec)).unwrap();
                    }
                });
            }
        });
        let parsed: Vec<RunRecord> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.len(), WRITERS * APPENDS_EACH, "records were lost");
        // The lock and temp files are cleaned up.
        assert!(!sibling_path(&path, ".lock").exists());
        assert!(!sibling_path(&path, ".tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn records_without_serve_stats_still_parse() {
        // A pre-daemon BENCH_mqce.json has no serve_* fields (nor the other
        // later additions); `default` keeps it readable so append_json does
        // not discard the accumulated history.
        let old = r#"[{
            "dataset": "k4", "algorithm": "Quick+", "branching": "HybridSe",
            "backend": "auto", "gamma": 0.9, "theta": 2, "max_round": 1,
            "threads": 1, "s2_backend": "inverted", "s2_timed_out": false,
            "s1_millis": 1.0, "s2_millis": 0.5, "s1_outputs": 1, "mqcs": 1,
            "mqc_min": 4, "mqc_max": 4, "mqc_avg": 4.0, "branches": 3,
            "timed_out": false
        }]"#;
        let parsed: Vec<RunRecord> = serde_json::from_str(old).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].serve_requests, 0);
        assert_eq!(parsed[0].serve_cache_hits, 0);
        assert_eq!(parsed[0].serve_cache_misses, 0);
        assert_eq!(parsed[0].serve_cache_evictions, 0);
        assert_eq!(parsed[0].serve_cache_len, 0);
        assert_eq!(parsed[0].updates_applied, 0);
        assert_eq!(parsed[0].dirty_subproblems, 0);
        assert_eq!(parsed[0].full_recompute_millis, 0.0);
        assert_eq!(parsed[0].dataset, "k4");
        // And the new fields do serialise for fresh records.
        let json = serde_json::to_string_pretty(&parsed).unwrap();
        assert!(json.contains("serve_requests"));
        assert!(json.contains("serve_cache_hits"));
    }

    #[test]
    fn timed_out_record_prints_inf() {
        let mut rec = measure(
            "k4",
            &Graph::complete(4),
            AlgoSpec::fastqc(),
            0.9,
            2,
            Duration::from_secs(5),
        );
        rec.timed_out = true;
        assert_eq!(rec.time_cell(), "INF");
    }
}
