//! Offline structured differential fuzzer (`experiments fuzz`).
//!
//! A hand-rolled structured-input fuzzer: each case is decoded from a seeded
//! RNG into an arbitrary-but-valid instance — a small random graph, γ/θ
//! parameters, and a schedule of edge-update batches — and then executed
//! *differentially*:
//!
//! * every production configuration (algorithm × adjacency backend × S2
//!   engine, sequential and both parallel schedulers) against the
//!   exhaustive [`mqce_core::naive`] oracle;
//! * the incremental session against a full recompute after every batch;
//! * the update WAL against direct application (append → reopen → replay
//!   must land on the same fingerprint, and a log truncated at *any* byte
//!   must reopen to a clean prefix of the appended batches);
//! * an injected per-subproblem panic against the DC drivers' containment
//!   boundary (the panic must never escape, and the surviving family must
//!   stay inside the oracle's).
//!
//! A failing case is minimised by greedy edge removal and written as a
//! replayable fixture file (`experiments fuzz --replay <file>`), so a CI
//! failure reproduces locally from one small artifact.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use mqce_core::{
    AdjacencyBackend, Algorithm, IncrementalSession, MqceConfig, ParallelScheduler, S2Backend,
    Session,
};
use mqce_graph::{Graph, GraphDelta, WriteAheadLog};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the fuzzer runs: case count, base seed, and where failing fixtures go.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Number of structured cases to generate and execute.
    pub iterations: usize,
    /// Base seed; case `i` derives its own RNG from `seed` and `i`, so any
    /// case can be re-run in isolation.
    pub seed: u64,
    /// Directory that receives one fixture file per failing case.
    pub fixture_dir: PathBuf,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            iterations: 200,
            seed: 0xC0FFEE,
            fixture_dir: PathBuf::from("fuzz-fixtures"),
        }
    }
}

/// One confirmed check failure, with the minimised reproducer on disk.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Case index within the run.
    pub case: usize,
    /// Which differential check failed (e.g. `oracle-divergence`).
    pub check: String,
    /// Human-readable detail of the divergence.
    pub detail: String,
    /// Path of the written fixture file, when writing succeeded.
    pub fixture: Option<PathBuf>,
}

/// Aggregate result of one fuzz run.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: usize,
    /// Individual differential checks executed across all cases.
    pub checks: u64,
    /// Injected panics that were properly contained by the DC drivers.
    pub contained_panics: u64,
    /// Confirmed failures (empty on a clean run).
    pub failures: Vec<FuzzFailure>,
}

/// One update batch as `(inserts, deletes)`.
type EdgeBatch = (Vec<(u32, u32)>, Vec<(u32, u32)>);

/// One structured input: a graph, the enumeration parameters, and a
/// schedule of update batches. Everything the differential checks need.
#[derive(Clone, Debug)]
struct FuzzCase {
    index: usize,
    n: usize,
    gamma: f64,
    theta: usize,
    edges: Vec<(u32, u32)>,
    /// Update batches in application order.
    deltas: Vec<EdgeBatch>,
}

/// Silences the *injected* panics (they are expected and caught on every
/// case) while leaving real panics as loud as ever. Installed once per
/// process; chains to whatever hook was active before.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("injected fault:"));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Derives the per-case RNG: independent of every other case, so a failure
/// reported as "case 17 of seed S" re-runs without the preceding 16.
fn case_rng(seed: u64, index: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Decodes one arbitrary-but-valid case from the seeded stream.
fn generate_case(seed: u64, index: usize) -> FuzzCase {
    let mut rng = case_rng(seed, index);
    let n = rng.gen_range(4..=14);
    let p = rng.gen_range(0.15..0.85);
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    let gamma = [0.5, 0.6, 2.0 / 3.0, 0.75, 0.8, 0.9, 0.96, 1.0][rng.gen_range(0..8)];
    let theta = rng.gen_range(2..=4);

    let batches = rng.gen_range(1..=3);
    let mut deltas = Vec::new();
    for _ in 0..batches {
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        for _ in 0..rng.gen_range(1..=4) {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u == v {
                continue; // GraphDelta normalises self-loops away anyway
            }
            if rng.gen_bool(0.5) {
                inserts.push((u, v));
            } else {
                deletes.push((u, v));
            }
        }
        deltas.push((inserts, deletes));
    }
    FuzzCase {
        index,
        n,
        gamma,
        theta,
        edges,
        deltas,
    }
}

/// Renders a family compactly for failure details.
fn family_digest(family: &[Vec<u32>]) -> String {
    let mut out = String::new();
    for (i, set) in family.iter().enumerate().take(8) {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{set:?}");
    }
    if family.len() > 8 {
        let _ = write!(out, " …(+{})", family.len() - 8);
    }
    out
}

/// The full differential battery for one case. Returns every failed check
/// (`(check-name, detail)`); bumps the shared counters as it goes.
fn run_case(case: &FuzzCase, checks: &mut u64, contained: &mut u64) -> Vec<(String, String)> {
    let mut failures = Vec::new();
    let g = Graph::from_edges(case.n, &case.edges);
    let base = match MqceConfig::new(case.gamma, case.theta) {
        Ok(config) => config,
        Err(e) => {
            return vec![("bad-params".to_string(), e.to_string())];
        }
    };

    let oracle = Session::open(g.clone())
        .config(base.with_algorithm(Algorithm::Naive))
        .run();
    *checks += 1;

    // --- production grid vs the oracle ------------------------------------
    let backends = [AdjacencyBackend::Slice, AdjacencyBackend::Bitset];
    let s2s = [
        S2Backend::Inverted,
        S2Backend::Bitset,
        S2Backend::Extremal,
        S2Backend::Auto,
    ];
    let algorithms = [
        Algorithm::DcFastQc,
        Algorithm::FastQc,
        Algorithm::BasicDcFastQc,
        Algorithm::QuickPlus,
    ];
    for (ai, &algorithm) in algorithms.iter().enumerate() {
        for (bi, &backend) in backends.iter().enumerate() {
            // Rotate the S2 engine with the case index so every
            // (algorithm × backend × S2) triple is exercised across a run
            // without paying the full cross product on every case.
            let s2 = s2s[(case.index + ai + bi) % s2s.len()];
            let config = base
                .with_algorithm(algorithm)
                .with_backend(backend)
                .with_s2_backend(s2);
            let result = Session::open(g.clone()).config(config).run();
            *checks += 1;
            if result.mqcs != oracle.mqcs {
                failures.push((
                    "oracle-divergence".to_string(),
                    format!(
                        "{}/{backend:?}/{s2:?}: got {} expected {}",
                        algorithm.name(),
                        family_digest(&result.mqcs),
                        family_digest(&oracle.mqcs)
                    ),
                ));
            }
        }
    }

    // --- parallel schedulers vs the oracle --------------------------------
    for (si, scheduler) in [
        ParallelScheduler::WorkStealing,
        ParallelScheduler::SharedIndex,
    ]
    .into_iter()
    .enumerate()
    {
        let config = base
            .with_backend(backends[(case.index + si) % backends.len()])
            .with_s2_backend(s2s[(case.index + si) % s2s.len()]);
        let result = Session::open(g.clone())
            .config(config)
            .threads(3)
            .scheduler(scheduler)
            .run();
        *checks += 1;
        if result.mqcs != oracle.mqcs {
            failures.push((
                "parallel-divergence".to_string(),
                format!(
                    "{scheduler:?}x3: got {} expected {}",
                    family_digest(&result.mqcs),
                    family_digest(&oracle.mqcs)
                ),
            ));
        }
    }

    // --- injected panic containment ---------------------------------------
    if case.n > 0 {
        let mut config = base;
        config.params.fail_anchor = Some((case.index % case.n) as u32);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Session::open(g.clone()).config(config).run()
        }));
        *checks += 1;
        match caught {
            Err(_) => failures.push((
                "uncontained-panic".to_string(),
                format!(
                    "injected fault at anchor {:?} escaped",
                    config.params.fail_anchor
                ),
            )),
            Ok(result) => {
                *contained += result.stats.subproblem_panics;
                // The survivors must still be real quasi-cliques of the true
                // family (possibly missing the panicked anchor's sets).
                let outside: Vec<_> = result
                    .mqcs
                    .iter()
                    .filter(|h| !oracle.mqcs.iter().any(|e| h.iter().all(|v| e.contains(v))))
                    .cloned()
                    .collect();
                if !outside.is_empty() {
                    failures.push((
                        "contained-panic-torn-output".to_string(),
                        format!("sets outside the true family: {}", family_digest(&outside)),
                    ));
                }
            }
        }
    }

    // --- incremental session vs full recompute, and the WAL ---------------
    let inc_config = base
        .with_backend(backends[case.index % backends.len()])
        .with_s2_backend(s2s[case.index % s2s.len()]);
    let threads = 1 + case.index % 2;
    let mut session = IncrementalSession::new(g.clone(), inc_config, threads);
    let mut current = g.clone();
    let deltas: Vec<GraphDelta> = case
        .deltas
        .iter()
        .map(|(ins, del)| GraphDelta::new(ins.clone(), del.clone()))
        .collect();
    for (di, delta) in deltas.iter().enumerate() {
        if delta.is_empty() {
            continue;
        }
        session.update(delta);
        current = delta.apply(&current);
        let full = Session::open(current.clone()).config(inc_config).run();
        *checks += 1;
        if session.family() != full.mqcs.as_slice() {
            failures.push((
                "incremental-divergence".to_string(),
                format!(
                    "after batch {di}: session {} vs recompute {}",
                    family_digest(session.family()),
                    family_digest(&full.mqcs)
                ),
            ));
        }
    }

    // WAL roundtrip: append every batch, reopen, replay onto the original
    // graph; the result must be fingerprint-identical to direct application.
    // Then truncate the log at an arbitrary byte and reopen: the tail must
    // be dropped cleanly, leaving a strict prefix of the batches.
    let wal_path = std::env::temp_dir().join(format!(
        "mqce_fuzz_{}_{}_{}.wal",
        std::process::id(),
        case.index,
        case.n
    ));
    let _ = std::fs::remove_file(&wal_path);
    let wal_check = (|| -> Result<(), String> {
        let applied: Vec<&GraphDelta> = deltas.iter().filter(|d| !d.is_empty()).collect();
        {
            let (mut wal, replayed) =
                WriteAheadLog::open(&wal_path).map_err(|e| format!("open: {e}"))?;
            if !replayed.is_empty() {
                return Err("fresh WAL replayed nonempty".to_string());
            }
            for delta in &applied {
                wal.append(delta).map_err(|e| format!("append: {e}"))?;
            }
        }
        let (_, replayed) = WriteAheadLog::open(&wal_path).map_err(|e| format!("reopen: {e}"))?;
        if replayed.len() != applied.len() {
            return Err(format!(
                "replay count {} != appended {}",
                replayed.len(),
                applied.len()
            ));
        }
        let mut via_wal = g.clone();
        for delta in &replayed {
            via_wal = delta.apply(&via_wal);
        }
        if via_wal.fingerprint() != current.fingerprint() {
            return Err(format!(
                "replayed fingerprint {:016x} != direct {:016x}",
                via_wal.fingerprint(),
                current.fingerprint()
            ));
        }
        // Torn-tail tolerance at a case-derived cut point.
        let bytes = std::fs::read(&wal_path).map_err(|e| format!("read: {e}"))?;
        if bytes.len() > 8 {
            let cut = 8 + (case.index * 7 + case.n) % (bytes.len() - 8);
            std::fs::write(&wal_path, &bytes[..cut]).map_err(|e| format!("truncate: {e}"))?;
            let (_, prefix) =
                WriteAheadLog::open(&wal_path).map_err(|e| format!("torn reopen: {e}"))?;
            if prefix.len() > applied.len() {
                return Err("torn log replayed more than was appended".to_string());
            }
            for (got, expected) in prefix.iter().zip(applied.iter()) {
                if got.inserts() != expected.inserts() || got.deletes() != expected.deletes() {
                    return Err("torn log replayed a non-prefix".to_string());
                }
            }
        }
        Ok(())
    })();
    *checks += 1;
    let _ = std::fs::remove_file(&wal_path);
    if let Err(detail) = wal_check {
        failures.push(("wal-divergence".to_string(), detail));
    }

    failures
}

/// Greedy minimisation: repeatedly drop any single edge (then any single
/// delta batch) while the named check still fails. Bounded by a re-run
/// budget so a pathological case cannot stall the run.
fn minimise(case: &FuzzCase, check: &str) -> FuzzCase {
    let still_fails = |candidate: &FuzzCase| -> bool {
        let (mut checks, mut contained) = (0u64, 0u64);
        run_case(candidate, &mut checks, &mut contained)
            .iter()
            .any(|(name, _)| name == check)
    };
    let mut best = case.clone();
    let mut budget = 150usize;
    let mut progress = true;
    while progress && budget > 0 {
        progress = false;
        for i in 0..best.edges.len() {
            if budget == 0 {
                break;
            }
            let mut candidate = best.clone();
            candidate.edges.remove(i);
            budget -= 1;
            if still_fails(&candidate) {
                best = candidate;
                progress = true;
                break;
            }
        }
        for i in 0..best.deltas.len() {
            if budget == 0 {
                break;
            }
            let mut candidate = best.clone();
            candidate.deltas.remove(i);
            budget -= 1;
            if still_fails(&candidate) {
                best = candidate;
                progress = true;
                break;
            }
        }
    }
    best
}

/// Serialises a case as a replayable plain-text fixture.
fn fixture_text(case: &FuzzCase, check: &str, detail: &str) -> String {
    let edge_list = |edges: &[(u32, u32)]| {
        edges
            .iter()
            .map(|(u, v)| format!("{u}-{v}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# mqce fuzz fixture — replay: experiments fuzz --replay <this file>"
    );
    let _ = writeln!(out, "# failed check: {check}");
    let _ = writeln!(out, "# detail: {}", detail.replace('\n', " "));
    let _ = writeln!(out, "case = {}", case.index);
    let _ = writeln!(out, "n = {}", case.n);
    let _ = writeln!(out, "gamma = {}", case.gamma);
    let _ = writeln!(out, "theta = {}", case.theta);
    let _ = writeln!(out, "edges = {}", edge_list(&case.edges));
    for (ins, del) in &case.deltas {
        let _ = writeln!(
            out,
            "delta = insert:{} delete:{}",
            edge_list(ins),
            edge_list(del)
        );
    }
    out
}

/// Parses a fixture file written by [`fixture_text`].
fn parse_fixture(text: &str) -> Result<FuzzCase, String> {
    let parse_edges = |s: &str| -> Result<Vec<(u32, u32)>, String> {
        s.split(',')
            .map(str::trim)
            .filter(|pair| !pair.is_empty())
            .map(|pair| {
                let (u, v) = pair
                    .split_once('-')
                    .ok_or_else(|| format!("bad edge `{pair}`"))?;
                Ok((
                    u.parse::<u32>().map_err(|_| format!("bad edge `{pair}`"))?,
                    v.parse::<u32>().map_err(|_| format!("bad edge `{pair}`"))?,
                ))
            })
            .collect()
    };
    let mut case = FuzzCase {
        index: 0,
        n: 0,
        gamma: 0.9,
        theta: 2,
        edges: Vec::new(),
        deltas: Vec::new(),
    };
    let mut saw_n = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("bad fixture line `{line}`"))?;
        let (key, value) = (key.trim(), value.trim());
        match key {
            "case" => case.index = value.parse().map_err(|_| "bad case index".to_string())?,
            "n" => {
                case.n = value.parse().map_err(|_| "bad n".to_string())?;
                saw_n = true;
            }
            "gamma" => case.gamma = value.parse().map_err(|_| "bad gamma".to_string())?,
            "theta" => case.theta = value.parse().map_err(|_| "bad theta".to_string())?,
            "edges" => case.edges = parse_edges(value)?,
            "delta" => {
                let rest = value
                    .strip_prefix("insert:")
                    .ok_or_else(|| format!("bad delta line `{line}`"))?;
                let (ins, del) = rest
                    .split_once(" delete:")
                    .ok_or_else(|| format!("bad delta line `{line}`"))?;
                case.deltas.push((parse_edges(ins)?, parse_edges(del)?));
            }
            other => return Err(format!("unknown fixture key `{other}`")),
        }
    }
    if !saw_n {
        return Err("fixture is missing `n`".to_string());
    }
    Ok(case)
}

/// Runs the fuzzer: `iterations` structured cases, every failure minimised
/// and written under `fixture_dir`.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzReport {
    quiet_injected_panics();
    let mut report = FuzzReport::default();
    for index in 0..opts.iterations {
        let case = generate_case(opts.seed, index);
        let failures = run_case(&case, &mut report.checks, &mut report.contained_panics);
        report.cases += 1;
        for (check, detail) in failures {
            let minimised = minimise(&case, &check);
            let fixture = {
                let text = fixture_text(&minimised, &check, &detail);
                let path = opts
                    .fixture_dir
                    .join(format!("case{:05}_{}.fixture", index, check));
                std::fs::create_dir_all(&opts.fixture_dir)
                    .and_then(|()| std::fs::write(&path, text))
                    .map(|()| path)
                    .ok()
            };
            report.failures.push(FuzzFailure {
                case: index,
                check,
                detail,
                fixture,
            });
        }
    }
    report
}

/// Re-runs the differential battery on one fixture file.
pub fn replay_fixture(path: &Path) -> Result<FuzzReport, String> {
    quiet_injected_panics();
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read fixture: {e}"))?;
    let case = parse_fixture(&text)?;
    let mut report = FuzzReport::default();
    let failures = run_case(&case, &mut report.checks, &mut report.contained_panics);
    report.cases = 1;
    for (check, detail) in failures {
        report.failures.push(FuzzFailure {
            case: case.index,
            check,
            detail,
            fixture: Some(path.to_path_buf()),
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_sweep_is_clean() {
        let opts = FuzzOptions {
            iterations: 12,
            seed: 7,
            fixture_dir: std::env::temp_dir().join("mqce_fuzz_test_fixtures"),
        };
        let report = run_fuzz(&opts);
        assert_eq!(report.cases, 12);
        assert!(report.checks > 12 * 10);
        assert!(
            report.failures.is_empty(),
            "fuzz failures: {:?}",
            report.failures
        );
        // Every case injects one fault; most land on an executing anchor.
        assert!(report.contained_panics > 0);
    }

    #[test]
    fn fixtures_roundtrip_through_text() {
        let case = generate_case(99, 3);
        let text = fixture_text(&case, "oracle-divergence", "detail\nwith newline");
        let back = parse_fixture(&text).unwrap();
        assert_eq!(back.index, case.index);
        assert_eq!(back.n, case.n);
        assert_eq!(back.gamma, case.gamma);
        assert_eq!(back.theta, case.theta);
        assert_eq!(back.edges, case.edges);
        assert_eq!(back.deltas, case.deltas);
    }

    #[test]
    fn broken_fixtures_are_rejected() {
        assert!(parse_fixture("gamma = 0.9").is_err());
        assert!(parse_fixture("n = 5\nedges = 1-2,bad").is_err());
        assert!(parse_fixture("n = 5\ndelta = insert:1-2").is_err());
        assert!(parse_fixture("n = 5\nfrobnicate = 1").is_err());
    }
}
