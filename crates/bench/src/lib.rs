//! Benchmark harness reproducing the paper's evaluation (Section 6).
//!
//! * [`datasets`] — the synthetic dataset suite standing in for the paper's
//!   real konect.cc graphs (see `DESIGN.md` §5 for the substitution
//!   rationale), plus the Erdős–Rényi family of the synthetic experiments.
//! * [`runner`] — measurement plumbing: run one algorithm configuration on
//!   one graph and record times, output counts and search statistics.
//! * [`alloc_stats`] — opt-in (`count-allocs` feature) counting global
//!   allocator whose event/peak-byte deltas become the `alloc_count` /
//!   `peak_alloc_bytes` columns of `BENCH_mqce.json`.
//! * [`experiments`] — one function per table/figure of the paper
//!   (Table 1, Figures 7–12, and the MAX_ROUND / shrinking / S2-cost
//!   "other experiments").
//! * [`fuzz`] — the offline structured differential fuzzer behind
//!   `experiments fuzz`: seeded arbitrary-but-valid instances run through
//!   every production configuration against the naive oracle, the
//!   incremental session, the update WAL, and the panic-containment
//!   boundary, with failing inputs minimised into replayable fixtures.
//!
//! The `experiments` binary drives these from the command line; the Criterion
//! benches in `benches/` cover the same sweeps in `cargo bench` form.

// `deny` rather than `forbid`: the counting global allocator in
// `alloc_stats` must implement `GlobalAlloc`, which is an unsafe trait; that
// one module carries an explicit `allow` and every other module stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_stats;
pub mod datasets;
pub mod experiments;
pub mod fuzz;
pub mod runner;
